#include <gtest/gtest.h>

#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr ClickSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"latency", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Click(const char* country, int64_t latency, int64_t time_sec) {
  return {Value::Str(country), Value::Int64(latency),
          Value::Timestamp(time_sec * kSec)};
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("sstreaming_recovery_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  QueryOptions Durable(OutputMode mode) {
    QueryOptions opts;
    opts.mode = mode;
    opts.num_partitions = 2;
    opts.checkpoint_dir = dir_;
    return opts;
  }

  std::string dir_;

// Ablation for §6.1 recovery and §7.2 rollback: time to restart a stateful
// query as a function of accumulated state, and the cost of a manual
// rollback + recomputation.

#include <cstdio>

#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kInt64, false},
                       {"v", TypeId::kInt64, false}});
}

DataFrame Query(const std::shared_ptr<MemoryStream>& stream) {
  return DataFrame::ReadStream(stream).GroupBy({"k"}).Agg(
      {CountAll("n"), SumOf(Col("v"), "total")});
}

void Run() {
  std::printf("=== §6.1/§7.2 ablation: recovery and rollback ===\n\n");
  std::printf("%12s %10s %16s %16s\n", "state keys", "epochs",
              "restart (ms)", "rollback+redo (ms)");
  for (int64_t keys : {1000, 10000, 100000}) {
    auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 2);
    auto dir = MakeTempDir("bench_recovery").TakeValue();
    DataFrame df = Query(stream);
    QueryOptions opts;
    opts.mode = OutputMode::kUpdate;
    opts.num_partitions = 2;
    opts.checkpoint_dir = dir;

    constexpr int kEpochs = 10;
    {
      auto sink = std::make_shared<MemorySink>();
      auto query = StreamingQuery::Start(df, sink, opts).TakeValue();
      for (int e = 0; e < kEpochs; ++e) {
        std::vector<Row> batch;
        for (int64_t i = 0; i < keys / kEpochs + 1; ++i) {
          batch.push_back(
              {Value::Int64(e * (keys / kEpochs + 1) + i), Value::Int64(1)});
        }
        SS_CHECK_OK(stream->AddData(batch));
        SS_CHECK_OK(query->ProcessAllAvailable());
      }
    }
    // Restart: reopen the checkpoint (loads state, replays nothing new).
    double restart_ms;
    {
      auto sink = std::make_shared<MemorySink>();
      int64_t t0 = MonotonicNanos();
      auto query = StreamingQuery::Start(df, sink, opts).TakeValue();
      restart_ms = static_cast<double>(MonotonicNanos() - t0) / 1e6;
      SS_CHECK(query->last_epoch() == kEpochs);
    }
    // Manual rollback to the midpoint, then recompute the second half.
    double rollback_ms;
    {
      int64_t t0 = MonotonicNanos();
      SS_CHECK_OK(StreamingQuery::Rollback(dir, kEpochs / 2));
      auto sink = std::make_shared<MemorySink>();
      auto query = StreamingQuery::Start(df, sink, opts).TakeValue();
      SS_CHECK_OK(query->ProcessAllAvailable());
      rollback_ms = static_cast<double>(MonotonicNanos() - t0) / 1e6;
      SS_CHECK(query->last_epoch() >= kEpochs / 2 + 1);
    }
    std::printf("%12lld %10d %16.2f %16.2f\n", static_cast<long long>(keys),
                kEpochs, restart_ms, rollback_ms);
    RemoveDirRecursive(dir).ok();
  }
  std::printf("\nrestart = open WAL + restore newest state checkpoint; "
              "rollback = truncate\nWAL/state after epoch k, recompute "
              "epochs k+1.. from the replayable source.\n");
}

}  // namespace
}  // namespace sstreaming

int main() {
  sstreaming::Run();
  return 0;
}

#ifndef SSTREAMING_BENCH_YAHOO_COMMON_H_
#define SSTREAMING_BENCH_YAHOO_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/flinksim.h"
#include "baselines/kstreamssim.h"
#include "connectors/bus_connectors.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "runtime/scheduler.h"
#include "workloads/yahoo.h"

namespace sstreaming {
namespace bench {

// Per-run actuals beyond throughput, for machine-readable output (--json).
// Epoch latencies are wall-clock per-trigger durations from QueryProgress.
struct StructuredRunStats {
  double records_per_sec = 0;
  int64_t epochs = 0;
  int64_t p50_epoch_nanos = 0;
  int64_t p99_epoch_nanos = 0;
  /// Simulated nanos spent in the stateful aggregation's stages (eval,
  /// shard split, per-shard fold) — the denominator of the shard-scaling
  /// benchmark's stateful-stage throughput.
  int64_t stateful_stage_nanos = 0;
};

// Runs the Structured Streaming Yahoo query over all data in `bus`'s
// `topic`, charging task durations to `scheduler`. Returns records/second
// of simulated cluster time; fills `stats` when non-null. `num_state_shards`
// <= 0 keeps the engine default.
inline double RunStructured(MessageBus* bus, const std::string& topic,
                            const std::vector<Row>& campaigns,
                            int num_partitions,
                            SimClusterScheduler* scheduler,
                            int64_t num_events,
                            StructuredRunStats* stats = nullptr,
                            int num_state_shards = 0) {
  auto source = std::make_shared<BusSource>(bus, topic, YahooEventSchema());
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = YahooQuery(source, campaigns);
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = num_partitions;
  opts.scheduler = scheduler;
  if (num_state_shards > 0) opts.num_state_shards = num_state_shards;
  scheduler->reset_virtual_time();
  auto query = StreamingQuery::Start(df, sink, opts);
  SS_CHECK(query.ok()) << query.status().ToString();
  SS_CHECK_OK((*query)->ProcessAllAvailable());
  double seconds =
      static_cast<double>(scheduler->virtual_nanos()) / 1e9;
  double records_per_sec = static_cast<double>(num_events) / seconds;
  if (stats != nullptr) {
    stats->records_per_sec = records_per_sec;
    stats->stateful_stage_nanos =
        scheduler->StageVirtualNanos("StatefulAggregate");
    std::vector<int64_t> durations;
    for (const QueryProgress& p : (*query)->recent_progress()) {
      durations.push_back(p.duration_nanos);
    }
    std::sort(durations.begin(), durations.end());
    stats->epochs = static_cast<int64_t>(durations.size());
    if (!durations.empty()) {
      stats->p50_epoch_nanos = durations[durations.size() / 2];
      stats->p99_epoch_nanos = durations[durations.size() * 99 / 100];
    }
  }
  return records_per_sec;
}

// Runs the flinksim pipelines (one per partition, as scheduler tasks).
inline double RunFlink(MessageBus* bus, const std::string& topic,
                       const std::vector<Row>& campaigns, int num_partitions,
                       SimClusterScheduler* scheduler, int64_t num_events) {
  scheduler->reset_virtual_time();
  std::vector<std::unique_ptr<flinksim::Pipeline>> pipelines;
  for (int p = 0; p < num_partitions; ++p) {
    pipelines.push_back(
        flinksim::BuildYahooPipeline(campaigns).TakeValue());
  }
  std::vector<std::function<Status()>> tasks;
  for (int p = 0; p < num_partitions; ++p) {
    tasks.push_back([=, &pipelines]() -> Status {
      SS_ASSIGN_OR_RETURN(int64_t end, bus->EndOffset(topic, p));
      SS_ASSIGN_OR_RETURN(std::vector<Row> rows, bus->Read(topic, p, 0, end));
      pipelines[static_cast<size_t>(p)]->ProcessAll(rows);
      pipelines[static_cast<size_t>(p)]->Finish();
      return Status::OK();
    });
  }
  SS_CHECK_OK(scheduler->RunStage("flink", std::move(tasks)));
  double seconds =
      static_cast<double>(scheduler->virtual_nanos()) / 1e9;
  return static_cast<double>(num_events) / seconds;
}

// Runs the kstreamssim topology.
inline double RunKStreams(MessageBus* bus, const std::string& topic,
                          const std::vector<Row>& campaigns,
                          SimClusterScheduler* scheduler,
                          int64_t num_events,
                          const std::string& repartition_topic) {
  scheduler->reset_virtual_time();
  auto result = kstreamssim::RunYahoo(bus, topic, repartition_topic,
                                      campaigns, scheduler);
  SS_CHECK(result.ok()) << result.status().ToString();
  double seconds =
      static_cast<double>(scheduler->virtual_nanos()) / 1e9;
  return static_cast<double>(num_events) / seconds;
}

}  // namespace bench
}  // namespace sstreaming

#endif  // SSTREAMING_BENCH_YAHOO_COMMON_H_

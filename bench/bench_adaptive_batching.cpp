// Ablation for §7.3 "adaptive batching": after downtime or a load spike the
// engine executes longer epochs to catch up with the backlog, approaching
// batch-job throughput, then returns to small epochs for low latency. The
// foil is a fixed epoch-size policy, which pays per-epoch overhead (offset
// planning, WAL writes, task launch, state commit) many more times.

#include <cstdio>

#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "runtime/scheduler.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

constexpr int64_t kBacklog = 400000;

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kInt64, false},
                       {"v", TypeId::kInt64, false}});
}

// Catch-up time in simulated cluster seconds (1 node x 8 cores): each
// epoch pays real task-launch and commit-coordination overheads, which is
// exactly what adaptive batching amortizes.
double CatchUpSeconds(int64_t max_records_per_epoch, int64_t* epochs) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 4);
  std::vector<Row> backlog;
  backlog.reserve(kBacklog);
  for (int64_t i = 0; i < kBacklog; ++i) {
    backlog.push_back({Value::Int64(i % 100), Value::Int64(i)});
  }
  SS_CHECK_OK(stream->AddData(backlog));

  auto dir = MakeTempDir("bench_adaptive").TakeValue();
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();
  SimClusterScheduler::Options cluster;
  cluster.num_nodes = 1;
  cluster.cores_per_node = 8;
  cluster.denoise_outliers = true;
  SimClusterScheduler scheduler(cluster);
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 8;
  opts.checkpoint_dir = dir;  // durable: per-epoch WAL + state commits
  opts.max_records_per_epoch = max_records_per_epoch;
  opts.scheduler = &scheduler;
  auto query = StreamingQuery::Start(df, sink, opts);
  SS_CHECK(query.ok()) << query.status().ToString();
  SS_CHECK_OK((*query)->ProcessAllAvailable());
  double seconds = static_cast<double>(scheduler.virtual_nanos()) / 1e9;
  *epochs = (*query)->last_epoch();
  RemoveDirRecursive(dir).ok();
  return seconds;
}

void Run() {
  std::printf("=== §7.3 ablation: adaptive batching vs. fixed epoch size "
              "===\n");
  std::printf("backlog: %lld records; durable checkpointing; simulated\n"
              "1-node x 8-core cluster (task launch overhead 0.2 ms)\n\n",
              static_cast<long long>(kBacklog));
  std::printf("%-28s %8s %12s %14s\n", "policy", "epochs", "catch-up (s)",
              "M rec/s");
  struct Config {
    const char* name;
    int64_t cap;
  };
  const Config configs[] = {
      {"adaptive (unbounded epoch)", 0},
      {"fixed 100k records/epoch", 100000},
      {"fixed 20k records/epoch", 20000},
      {"fixed 5k records/epoch", 5000},
  };
  double adaptive_seconds = 0;
  for (const Config& c : configs) {
    int64_t epochs = 0;
    double seconds = CatchUpSeconds(c.cap, &epochs);
    if (c.cap == 0) adaptive_seconds = seconds;
    std::printf("%-28s %8lld %12.3f %14.2f\n", c.name,
                static_cast<long long>(epochs), seconds,
                static_cast<double>(kBacklog) / seconds / 1e6);
  }
  std::printf("\nadaptive batching catches up the backlog in one epoch; "
              "fixed-size\npolicies pay per-epoch overheads (paper: \"will "
              "automatically execute\nlonger epochs in order to catch up\") "
              "— adaptive baseline: %.3fs\n", adaptive_seconds);
}

}  // namespace
}  // namespace sstreaming

int main() {
  sstreaming::Run();
  return 0;
}

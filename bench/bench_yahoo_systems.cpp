// Reproduces Figure 6a of the paper: maximum throughput of Kafka Streams,
// Apache Flink and Structured Streaming on the Yahoo! Streaming Benchmark,
// on a simulated 5-node x 8-core cluster (the paper's c3.2xlarge setup).
//
// Paper results:  Kafka Streams 0.7 M rec/s, Flink 33 M rec/s, Structured
// Streaming 65 M rec/s (Structured ~2x Flink, ~90x Kafka Streams).
// We reproduce the *shape*: Structured > Flink >> Kafka Streams, with the
// gaps arising from the same architectural causes (vectorized execution vs.
// record-at-a-time interpretation vs. through-the-broker message passing).

#include <algorithm>
#include <cstdio>
#include <string>

#include "yahoo_common.h"

namespace sstreaming {
namespace {

void Run() {
  YahooConfig config;
  config.num_partitions = 40;  // one per core, as in the paper
  config.num_events = 1500000;
  std::printf("=== Figure 6a: Yahoo! benchmark throughput vs. other "
              "systems ===\n");
  std::printf("simulated cluster: 5 nodes x 8 cores, %d partitions, "
              "%lld events\n\n",
              config.num_partitions,
              static_cast<long long>(config.num_events));

  SimClusterScheduler::Options cluster;
  cluster.num_nodes = 5;
  cluster.cores_per_node = 8;
  cluster.denoise_outliers = true;  // see SimClusterScheduler::Options

  MessageBus bus;
  auto campaigns = GenerateYahooData(&bus, "events", config);
  SS_CHECK(campaigns.ok()) << campaigns.status().ToString();

  // Best of 2 runs per engine ("maximum stable throughput").
  double kstreams = 0;
  double flink = 0;
  double structured = 0;
  for (int run = 0; run < 2; ++run) {
    SimClusterScheduler s1(cluster);
    kstreams = std::max(
        kstreams, bench::RunKStreams(&bus, "events", *campaigns, &s1,
                                     config.num_events,
                                     "repart" + std::to_string(run)));
    SimClusterScheduler s2(cluster);
    flink = std::max(flink, bench::RunFlink(&bus, "events", *campaigns,
                                            config.num_partitions, &s2,
                                            config.num_events));
    SimClusterScheduler s3(cluster);
    structured = std::max(
        structured, bench::RunStructured(&bus, "events", *campaigns,
                                         config.num_partitions, &s3,
                                         config.num_events));
  }

  std::printf("%-22s %16s %16s\n", "system", "paper (M rec/s)",
              "measured (M rec/s)");
  std::printf("%-22s %16.1f %16.2f\n", "Kafka Streams", 0.7,
              kstreams / 1e6);
  std::printf("%-22s %16.1f %16.2f\n", "Apache Flink", 33.0, flink / 1e6);
  std::printf("%-22s %16.1f %16.2f\n", "Structured Streaming", 65.0,
              structured / 1e6);
  std::printf("\nratios:  Structured/Flink  paper=2.0x  measured=%.2fx\n",
              structured / flink);
  std::printf("         Structured/KStreams paper=92.9x measured=%.1fx\n",
              structured / kstreams);
}

}  // namespace
}  // namespace sstreaming

int main() {
  sstreaming::Run();
  return 0;
}

// Ablation for §7.3 "run-once triggers for cost savings": running a
// transactional streaming job as periodic one-epoch batch invocations
// instead of a 24/7 cluster. The paper reports up to 10x cost savings for
// lower-volume applications; the cost model is simply cluster-hours, which
// we account directly: a 24/7 deployment bills every second, a run-once
// deployment bills only while an epoch executes.

#include <cstdio>

#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kInt64, false},
                       {"v", TypeId::kInt64, false}});
}

void Run() {
  std::printf("=== §7.3 ablation: run-once trigger cost model ===\n");
  // A lower-volume application: 100k records arrive per hour; a run-once
  // job is invoked hourly and processes the hour's backlog in one epoch.
  constexpr int64_t kRecordsPerHour = 100000;
  constexpr int kHours = 6;

  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 2);
  auto dir = MakeTempDir("bench_run_once").TakeValue();
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();

  double busy_seconds = 0;
  for (int hour = 0; hour < kHours; ++hour) {
    std::vector<Row> batch;
    batch.reserve(kRecordsPerHour);
    for (int64_t i = 0; i < kRecordsPerHour; ++i) {
      batch.push_back({Value::Int64(i % 1000), Value::Int64(i)});
    }
    SS_CHECK_OK(stream->AddData(batch));
    // One run-once invocation: start (recovers from checkpoint), process
    // one epoch, stop — the exact discontinuous-processing pattern.
    QueryOptions opts;
    opts.mode = OutputMode::kUpdate;
    opts.num_partitions = 2;
    opts.checkpoint_dir = dir;
    opts.trigger = Trigger::Once();
    int64_t t0 = MonotonicNanos();
    auto query = StreamingQuery::Start(df, sink, opts);
    SS_CHECK(query.ok()) << query.status().ToString();
    auto ran = (*query)->ProcessOneTrigger();
    SS_CHECK(ran.ok()) << ran.status().ToString();
    busy_seconds += static_cast<double>(MonotonicNanos() - t0) / 1e9;
  }

  const double wall_hours = kHours;
  const double busy_hours = busy_seconds / 3600.0;
  // Per-second billing (the paper cites AWS per-second billing as the
  // enabler), with a 60s minimum per instance start.
  const double billed_run_once_hours =
      (busy_seconds + kHours * 60.0) / 3600.0;
  std::printf("hours simulated:            %d\n", kHours);
  std::printf("records per hour:           %lld\n",
              static_cast<long long>(kRecordsPerHour));
  std::printf("cluster-hours, 24/7 job:    %.2f\n", wall_hours);
  std::printf("busy time, run-once jobs:   %.4f hours (%.2f s)\n",
              busy_hours, busy_seconds);
  std::printf("billed (60s min/invocation): %.4f hours\n",
              billed_run_once_hours);
  std::printf("cost savings vs 24/7:       %.1fx (paper: up to 10x)\n",
              wall_hours / billed_run_once_hours);
  std::printf("exactly-once preserved: all %d invocations resumed from the "
              "WAL.\n", kHours);
  RemoveDirRecursive(dir).ok();
}

}  // namespace
}  // namespace sstreaming

int main() {
  sstreaming::Run();
  return 0;
}

// Ablation for §9.1's explanation of the Structured Streaming result: "the
// performance comes solely from Spark SQL's built-in execution
// optimizations ... storing data in a compact binary format and runtime
// code generation". This benchmark isolates that mechanism: the same
// filter+project+arith expression pipeline evaluated (a) row-at-a-time over
// boxed values (how the record-at-a-time baseline executes) and (b)
// vectorized over columnar batches (how the engine executes).

// The second half benchmarks the selection-vector + pipeline-fusion hot
// path (docs/VECTORIZED_EXEC.md): the same filter -> project -> aggregate
// chain executed operator-at-a-time with materialized intermediates versus
// as one fused pass carrying a selection vector, plus the dictionary
// encoding of string group-by keys used by the stateful aggregate.

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "expr/expression.h"
#include "physical/fused_pipeline.h"
#include "physical/operators.h"
#include "runtime/scheduler.h"
#include "types/record_batch.h"

namespace sstreaming {
namespace {

RecordBatchPtr MakeBatch(int64_t n) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, false},
                              {"b", TypeId::kInt64, false},
                              {"tag", TypeId::kString, false}});
  ColumnPtr a = Column::Make(TypeId::kInt64);
  ColumnPtr b = Column::Make(TypeId::kInt64);
  ColumnPtr tag = Column::Make(TypeId::kString);
  a->Reserve(n);
  b->Reserve(n);
  tag->Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    a->AppendInt64(i % 1000);
    b->AppendInt64(i % 7);
    tag->AppendString(i % 3 == 0 ? "view" : "click");
  }
  return RecordBatch::Make(schema, {a, b, tag});
}

ExprPtr Pipeline(const Schema& schema) {
  // (tag = 'view') AND (a * 3 + b > 100)
  auto e = And(Eq(Col("tag"), Lit("view")),
               Gt(Add(Mul(Col("a"), Lit(3)), Col("b")), Lit(100)));
  return e->Resolve(schema).TakeValue();
}

void BM_RowAtATime(benchmark::State& state) {
  RecordBatchPtr batch = MakeBatch(state.range(0));
  ExprPtr expr = Pipeline(*batch->schema());
  auto rows = batch->ToRows();
  for (auto _ : state) {
    int64_t kept = 0;
    for (const Row& row : rows) {
      auto v = expr->EvalRow(row);
      if (v.ok() && !v->is_null() && v->bool_value()) ++kept;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowAtATime)->Arg(1 << 14)->Arg(1 << 17);

void BM_Vectorized(benchmark::State& state) {
  RecordBatchPtr batch = MakeBatch(state.range(0));
  ExprPtr expr = Pipeline(*batch->schema());
  for (auto _ : state) {
    auto col = expr->EvalBatch(*batch);
    int64_t kept = 0;
    for (int64_t i = 0; i < (*col)->size(); ++i) {
      if (!(*col)->IsNull(i) && (*col)->BoolAt(i)) ++kept;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Vectorized)->Arg(1 << 14)->Arg(1 << 17);

void BM_RowFilterMaterialize(benchmark::State& state) {
  // End-to-end: filter + materialize survivors, row engine style.
  RecordBatchPtr batch = MakeBatch(state.range(0));
  ExprPtr expr = Pipeline(*batch->schema());
  auto rows = batch->ToRows();
  for (auto _ : state) {
    std::vector<Row> out;
    for (const Row& row : rows) {
      auto v = expr->EvalRow(row);
      if (v.ok() && !v->is_null() && v->bool_value()) out.push_back(row);
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowFilterMaterialize)->Arg(1 << 17);

void BM_VectorizedFilterMaterialize(benchmark::State& state) {
  RecordBatchPtr batch = MakeBatch(state.range(0));
  ExprPtr expr = Pipeline(*batch->schema());
  for (auto _ : state) {
    auto col = expr->EvalBatch(*batch);
    std::vector<uint8_t> mask(static_cast<size_t>(batch->num_rows()));
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      mask[static_cast<size_t>(i)] =
          !(*col)->IsNull(i) && (*col)->BoolAt(i) ? 1 : 0;
    }
    auto out = batch->Filter(mask);
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VectorizedFilterMaterialize)->Arg(1 << 17);

// ---------------------------------------------------------------------------
// Fused pipeline vs. operator-at-a-time on the filter -> project ->
// aggregate hot path.
// ---------------------------------------------------------------------------

/// Hands back pre-built batches so the bench measures operator execution,
/// not source scan work.
class FixedOp : public PhysOp {
 public:
  FixedOp(int op_id, SchemaPtr schema, std::vector<RecordBatchPtr> batches)
      : PhysOp(op_id, std::move(schema), {}), batches_(std::move(batches)) {}
  std::string name() const override { return "Fixed"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext*) override {
    return batches_;
  }

 private:
  std::vector<RecordBatchPtr> batches_;
};

/// A realistic event batch: the filter/project columns plus payload columns
/// that the query never projects. The operator-at-a-time engine still pays
/// to gather every one of them when the filter materializes its survivors;
/// the fused selection pass touches only what the projection references.
RecordBatchPtr MakeWideBatch(int64_t n) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, false},
                              {"b", TypeId::kInt64, false},
                              {"tag", TypeId::kString, false},
                              {"url", TypeId::kString, false},
                              {"ua", TypeId::kString, false},
                              {"p0", TypeId::kInt64, false},
                              {"p1", TypeId::kInt64, false},
                              {"p2", TypeId::kFloat64, false}});
  ColumnPtr a = Column::Make(TypeId::kInt64);
  ColumnPtr b = Column::Make(TypeId::kInt64);
  ColumnPtr tag = Column::Make(TypeId::kString);
  ColumnPtr url = Column::Make(TypeId::kString);
  ColumnPtr ua = Column::Make(TypeId::kString);
  ColumnPtr p0 = Column::Make(TypeId::kInt64);
  ColumnPtr p1 = Column::Make(TypeId::kInt64);
  ColumnPtr p2 = Column::Make(TypeId::kFloat64);
  for (ColumnPtr* c : {&a, &b, &tag, &url, &ua, &p0, &p1, &p2}) {
    (*c)->Reserve(n);
  }
  for (int64_t i = 0; i < n; ++i) {
    a->AppendInt64(i % 1000);
    b->AppendInt64(i % 7);
    tag->AppendString(i % 3 == 0 ? "view" : "click");
    url->AppendString("https://example.com/page/" + std::to_string(i % 97));
    ua->AppendString(i % 2 == 0 ? "Mozilla/5.0 (X11; Linux x86_64)"
                                : "Mozilla/5.0 (Macintosh; Intel)");
    p0->AppendInt64(i);
    p1->AppendInt64(i * 31);
    p2->AppendFloat64(static_cast<double>(i) * 0.5);
  }
  return RecordBatch::Make(schema,
                           {a, b, tag, url, ua, p0, p1, p2});
}

/// source -> Filter(a*3+b > 100 AND b < 6) -> Project(x = a*2 + b, a).
/// A cheap numeric predicate with high survival (~83%): the dominant cost
/// difference is what each engine does with the survivors. The projection
/// references neither `tag` nor the payload columns, so the fused pass
/// never touches them, while the materializing filter copies all eight
/// columns (three of them strings) for every surviving row.
PhysOpPtr MakeChain(const RecordBatchPtr& batch, bool emit_selection) {
  auto source = std::make_shared<FixedOp>(
      0, batch->schema(), std::vector<RecordBatchPtr>{batch});
  ExprPtr pred =
      And(Gt(Add(Mul(Col("a"), Lit(3)), Col("b")), Lit(100)),
          Lt(Col("b"), Lit(6)))
          ->Resolve(*batch->schema())
          .TakeValue();
  auto filter =
      std::make_shared<FilterExec>(1, source, pred, emit_selection);
  SchemaPtr out_schema = Schema::Make(
      {{"x", TypeId::kInt64, false}, {"a", TypeId::kInt64, false}});
  std::vector<NamedExpr> exprs = {
      {Add(Mul(Col("a"), Lit(2)), Col("b"))->Resolve(*batch->schema())
           .TakeValue(),
       "x"},
      {Col("a")->Resolve(*batch->schema()).TakeValue(), "a"}};
  return std::make_shared<ProjectExec>(2, filter, out_schema, exprs);
}

struct BenchExec {
  InlineScheduler scheduler;
  StateManager state{"", 0, ShardedStateStore::Options()};
  Arena arena;
  ExecContext ctx;

  BenchExec() {
    ctx.epoch = 1;
    ctx.scheduler = &scheduler;
    ctx.state = &state;
    ctx.arena = &arena;
  }
};

/// The "aggregate" consume: sum the projected column after the stateful
/// boundary's materialize-on-demand, exactly as StatefulAggExec sees it.
int64_t SumFirstColumn(const std::vector<RecordBatchPtr>& batches) {
  int64_t sum = 0;
  for (const RecordBatchPtr& b : batches) {
    RecordBatchPtr m = RecordBatch::Materialize(b);
    const Column& col = *m->column(0);
    for (int64_t i = 0; i < m->num_rows(); ++i) sum += col.Int64At(i);
  }
  return sum;
}

void BM_OperatorAtATimeMaterializing(benchmark::State& state) {
  // Pre-fusion engine: each operator materializes its full output batch.
  RecordBatchPtr batch = MakeWideBatch(state.range(0));
  PhysOpPtr root = MakeChain(batch, /*emit_selection=*/false);
  BenchExec exec;
  for (auto _ : state) {
    {
      auto out = root->Execute(&exec.ctx);
      benchmark::DoNotOptimize(SumFirstColumn(*out));
    }
    // Output (and its arena-backed selection views) released before the
    // epoch-boundary Reset, as the engine does — so chunks recycle.
    exec.arena.Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OperatorAtATimeMaterializing)->Arg(1 << 14)->Arg(1 << 17);

void BM_FusedSelectionPipeline(benchmark::State& state) {
  // Fused engine: one pass per batch, selection vector through the filter,
  // gather restricted to the columns the projection references.
  RecordBatchPtr batch = MakeWideBatch(state.range(0));
  PhysOpPtr chain = MakeChain(batch, /*emit_selection=*/true);
  int next_id = 3;
  PhysOpPtr root = FusePipelines(chain, &next_id, /*emit_selection=*/true);
  BenchExec exec;
  for (auto _ : state) {
    {
      auto out = root->Execute(&exec.ctx);
      benchmark::DoNotOptimize(SumFirstColumn(*out));
    }
    // Output (and its arena-backed selection views) released before the
    // epoch-boundary Reset, as the engine does — so chunks recycle.
    exec.arena.Reset();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FusedSelectionPipeline)->Arg(1 << 14)->Arg(1 << 17);

// ---------------------------------------------------------------------------
// Dictionary encoding of string group-by keys (the stateful aggregate's
// state-store key path).
// ---------------------------------------------------------------------------

ColumnPtr MakeKeyColumn(int64_t n) {
  static const char* kKeys[] = {"alpha", "beta", "gamma", "delta",
                                "epsilon", "zeta", "eta", "theta"};
  ColumnPtr col = Column::Make(TypeId::kString);
  col->Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    col->AppendString(kKeys[i % 8]);
  }
  return col;
}

void BM_KeyEncodePerRow(benchmark::State& state) {
  ColumnPtr col = MakeKeyColumn(state.range(0));
  std::string enc;
  for (auto _ : state) {
    size_t total = 0;
    for (int64_t i = 0; i < col->size(); ++i) {
      enc.clear();
      col->EncodeValueTo(i, &enc);
      total += enc.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KeyEncodePerRow)->Arg(1 << 17);

struct KeyDict {
  std::vector<std::string> encoded;
  std::vector<int32_t> codes;
};

KeyDict BuildDict(const Column& col) {
  // string_view keys into column storage: no per-row allocation, exactly
  // as StatefulAggExec builds its per-batch dictionary.
  KeyDict dict;
  dict.codes.resize(static_cast<size_t>(col.size()));
  std::unordered_map<std::string_view, int32_t> index;
  for (int64_t i = 0; i < col.size(); ++i) {
    std::string_view key = col.StringAt(i);
    auto [it, inserted] =
        index.emplace(key, static_cast<int32_t>(dict.encoded.size()));
    if (inserted) {
      dict.encoded.emplace_back();
      col.EncodeValueTo(i, &dict.encoded.back());
    }
    dict.codes[static_cast<size_t>(i)] = it->second;
  }
  return dict;
}

void BM_KeyDictBuild(benchmark::State& state) {
  // The stage-1 side of the trade: building the per-batch dictionary. In
  // the engine this runs inside the parallel [eval] tasks, overlapped with
  // expression evaluation, not in the serial encode loop below.
  ColumnPtr col = MakeKeyColumn(state.range(0));
  for (auto _ : state) {
    KeyDict dict = BuildDict(*col);
    benchmark::DoNotOptimize(dict.encoded.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KeyDictBuild)->Arg(1 << 17);

void BM_KeyEncodeDictAppend(benchmark::State& state) {
  // The hot encode loop with the dictionary in hand (what the stateful
  // aggregate's per-row state-key loops actually run): one pre-cooked byte
  // append per row instead of a typed encode.
  ColumnPtr col = MakeKeyColumn(state.range(0));
  KeyDict dict = BuildDict(*col);
  std::string enc;
  for (auto _ : state) {
    size_t total = 0;
    for (int64_t i = 0; i < col->size(); ++i) {
      enc.clear();
      enc.append(
          dict.encoded[static_cast<size_t>(
              dict.codes[static_cast<size_t>(i)])]);
      total += enc.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KeyEncodeDictAppend)->Arg(1 << 17);

}  // namespace
}  // namespace sstreaming

BENCHMARK_MAIN();

// Ablation for §9.1's explanation of the Structured Streaming result: "the
// performance comes solely from Spark SQL's built-in execution
// optimizations ... storing data in a compact binary format and runtime
// code generation". This benchmark isolates that mechanism: the same
// filter+project+arith expression pipeline evaluated (a) row-at-a-time over
// boxed values (how the record-at-a-time baseline executes) and (b)
// vectorized over columnar batches (how the engine executes).

#include <benchmark/benchmark.h>

#include "expr/expression.h"
#include "types/record_batch.h"

namespace sstreaming {
namespace {

RecordBatchPtr MakeBatch(int64_t n) {
  auto schema = Schema::Make({{"a", TypeId::kInt64, false},
                              {"b", TypeId::kInt64, false},
                              {"tag", TypeId::kString, false}});
  ColumnPtr a = Column::Make(TypeId::kInt64);
  ColumnPtr b = Column::Make(TypeId::kInt64);
  ColumnPtr tag = Column::Make(TypeId::kString);
  a->Reserve(n);
  b->Reserve(n);
  tag->Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    a->AppendInt64(i % 1000);
    b->AppendInt64(i % 7);
    tag->AppendString(i % 3 == 0 ? "view" : "click");
  }
  return RecordBatch::Make(schema, {a, b, tag});
}

ExprPtr Pipeline(const Schema& schema) {
  // (tag = 'view') AND (a * 3 + b > 100)
  auto e = And(Eq(Col("tag"), Lit("view")),
               Gt(Add(Mul(Col("a"), Lit(3)), Col("b")), Lit(100)));
  return e->Resolve(schema).TakeValue();
}

void BM_RowAtATime(benchmark::State& state) {
  RecordBatchPtr batch = MakeBatch(state.range(0));
  ExprPtr expr = Pipeline(*batch->schema());
  auto rows = batch->ToRows();
  for (auto _ : state) {
    int64_t kept = 0;
    for (const Row& row : rows) {
      auto v = expr->EvalRow(row);
      if (v.ok() && !v->is_null() && v->bool_value()) ++kept;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowAtATime)->Arg(1 << 14)->Arg(1 << 17);

void BM_Vectorized(benchmark::State& state) {
  RecordBatchPtr batch = MakeBatch(state.range(0));
  ExprPtr expr = Pipeline(*batch->schema());
  for (auto _ : state) {
    auto col = expr->EvalBatch(*batch);
    int64_t kept = 0;
    for (int64_t i = 0; i < (*col)->size(); ++i) {
      if (!(*col)->IsNull(i) && (*col)->BoolAt(i)) ++kept;
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Vectorized)->Arg(1 << 14)->Arg(1 << 17);

void BM_RowFilterMaterialize(benchmark::State& state) {
  // End-to-end: filter + materialize survivors, row engine style.
  RecordBatchPtr batch = MakeBatch(state.range(0));
  ExprPtr expr = Pipeline(*batch->schema());
  auto rows = batch->ToRows();
  for (auto _ : state) {
    std::vector<Row> out;
    for (const Row& row : rows) {
      auto v = expr->EvalRow(row);
      if (v.ok() && !v->is_null() && v->bool_value()) out.push_back(row);
    }
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RowFilterMaterialize)->Arg(1 << 17);

void BM_VectorizedFilterMaterialize(benchmark::State& state) {
  RecordBatchPtr batch = MakeBatch(state.range(0));
  ExprPtr expr = Pipeline(*batch->schema());
  for (auto _ : state) {
    auto col = expr->EvalBatch(*batch);
    std::vector<uint8_t> mask(static_cast<size_t>(batch->num_rows()));
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      mask[static_cast<size_t>(i)] =
          !(*col)->IsNull(i) && (*col)->BoolAt(i) ? 1 : 0;
    }
    auto out = batch->Filter(mask);
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VectorizedFilterMaterialize)->Arg(1 << 17);

}  // namespace
}  // namespace sstreaming

BENCHMARK_MAIN();

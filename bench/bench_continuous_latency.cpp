// Reproduces Figure 7 of the paper: latency of continuous processing mode
// versus input rate for a map job, with microbatch mode's maximum stable
// throughput as the reference line. Paper (4-core server): latency stays in
// the low milliseconds until the rate approaches capacity, then blows up;
// microbatch max throughput sits slightly below the continuous maximum,
// with far higher (task-scheduling-bound) latency.
//
// This benchmark runs in real time on the local machine; absolute rates
// depend on the hardware, so rates are swept as fractions of the measured
// continuous-mode capacity.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/clock.h"
#include "connectors/bus_connectors.h"
#include "connectors/memory.h"
#include "connectors/rate_source.h"
#include "exec/continuous.h"
#include "exec/streaming_query.h"

namespace sstreaming {
namespace {

DataFrame MapQuery(SourcePtr source) {
  // Map-only job as in §9.3: filter + projection from bus to bus.
  return DataFrame::ReadStream(std::move(source))
      .Where(Ge(Col("value"), Lit(0)))
      .Select({As(Col("value"), "value"),
               As(Col("timestamp"), "timestamp")});
}

struct LatencyStats {
  double mean_ms = 0;
  double p99_ms = 0;
  int64_t count = 0;
};

// Runs continuous mode at `rate` rows/s for `duration_ms`, measuring the
// event->sink latency of each delivered record.
LatencyStats RunContinuousAtRate(int64_t rate, int64_t duration_ms) {
  SystemClock clock;
  auto source = std::make_shared<RateSource>("rate", rate, 1, &clock);
  std::vector<double> latencies;
  std::mutex mu;
  auto sink = std::make_shared<ForeachSink>(
      [&](int64_t, OutputMode, const std::vector<Row>& rows) -> Status {
        int64_t now = SystemClock().NowMicros();
        std::lock_guard<std::mutex> lock(mu);
        for (const Row& r : rows) {
          latencies.push_back(
              static_cast<double>(now - r[1].int64_value()) / 1000.0);
        }
        return Status::OK();
      });
  ContinuousQuery::Options opts;
  opts.poll_sleep_micros = 100;
  opts.epoch_interval_micros = 50000;
  opts.max_chunk_records = 4096;
  auto query = ContinuousQuery::Start(MapQuery(source), sink, opts);
  SS_CHECK(query.ok()) << query.status().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  (*query)->Stop();

  LatencyStats stats;
  std::lock_guard<std::mutex> lock(mu);
  if (latencies.empty()) return stats;
  // Discard the warmup half-second.
  size_t skip = std::min(latencies.size() / 4, size_t{10000});
  std::vector<double> window(latencies.begin() + skip, latencies.end());
  if (window.empty()) return stats;
  double sum = 0;
  for (double l : window) sum += l;
  std::sort(window.begin(), window.end());
  stats.mean_ms = sum / static_cast<double>(window.size());
  stats.p99_ms = window[static_cast<size_t>(
      static_cast<double>(window.size() - 1) * 0.99)];
  stats.count = static_cast<int64_t>(latencies.size());
  return stats;
}

// Measures microbatch max throughput for the same job over a pre-built
// backlog from the same RateSource the continuous runs use (identical
// record generation cost on both paths).
double MicrobatchMaxThroughput() {
  constexpr int64_t kRows = 4000000;
  ManualClock clock(0);
  auto source = std::make_shared<RateSource>("backlog", kRows, 1, &clock);
  clock.AdvanceMicros(1000000);  // 1 virtual second => kRows available
  auto sink = std::make_shared<ForeachSink>(
      [](int64_t, OutputMode, const std::vector<Row>&) -> Status {
        return Status::OK();
      });
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  opts.num_partitions = 1;
  // Microbatch in steady state runs many short epochs, paying the epoch
  // setup each time; use epochs of ~100ms worth of data.
  opts.max_records_per_epoch = kRows / 10;
  auto query = StreamingQuery::Start(MapQuery(source), sink, opts);
  SS_CHECK(query.ok()) << query.status().ToString();
  int64_t t0 = MonotonicNanos();
  SS_CHECK_OK((*query)->ProcessAllAvailable());
  double seconds = static_cast<double>(MonotonicNanos() - t0) / 1e9;
  return static_cast<double>(kRows) / seconds;
}

void Run() {
  std::printf("=== Figure 7: continuous processing latency vs. input rate "
              "===\n");
  // Probe the continuous-mode capacity with a short saturating run.
  LatencyStats probe = RunContinuousAtRate(30000000, 1200);
  double capacity = static_cast<double>(probe.count) / 1.2;
  std::printf("measured continuous capacity: %.2f M rec/s (1 core)\n",
              capacity / 1e6);
  double microbatch = MicrobatchMaxThroughput();
  std::printf("microbatch max throughput (dashed line in the paper): "
              "%.2f M rec/s\n\n",
              microbatch / 1e6);

  std::printf("%12s %14s %12s %12s\n", "rate (rec/s)", "% of capacity",
              "mean (ms)", "p99 (ms)");
  const double fractions[] = {0.05, 0.1, 0.25, 0.5, 0.75, 0.9};
  for (double f : fractions) {
    int64_t rate = static_cast<int64_t>(capacity * f);
    if (rate < 1000) rate = 1000;
    LatencyStats stats = RunContinuousAtRate(rate, 2000);
    std::printf("%12lld %13.0f%% %12.2f %12.2f\n",
                static_cast<long long>(rate), f * 100, stats.mean_ms,
                stats.p99_ms);
  }
  std::printf("\npaper shape: <10ms latency at half the microbatch max "
              "throughput;\nlatency explodes only as the rate approaches "
              "capacity.\n");
}

}  // namespace
}  // namespace sstreaming

int main() {
  sstreaming::Run();
  return 0;
}

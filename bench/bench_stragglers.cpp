// Ablation for §6.2 "straggler mitigation" and "fine-grained fault
// recovery": epoch completion time on the simulated cluster with straggler
// and failure injection, with and without speculative backup tasks.

#include <cstdio>

#include "connectors/bus_connectors.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "workloads/yahoo.h"

namespace sstreaming {
namespace {

double EpochSeconds(MessageBus* bus, const std::vector<Row>& campaigns,
                    int64_t num_events, SimClusterScheduler::Options cluster,
                    SimClusterScheduler* out_sched) {
  auto source =
      std::make_shared<BusSource>(bus, "events", YahooEventSchema());
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 40;
  SimClusterScheduler scheduler(cluster);
  opts.scheduler = &scheduler;
  auto query = StreamingQuery::Start(YahooQuery(source, campaigns), sink,
                                     opts);
  SS_CHECK(query.ok()) << query.status().ToString();
  SS_CHECK_OK((*query)->ProcessAllAvailable());
  if (out_sched != nullptr) *out_sched = scheduler;
  (void)num_events;
  return static_cast<double>(scheduler.virtual_nanos()) / 1e9;
}

void Run() {
  std::printf("=== §6.2 ablation: stragglers, speculation, task failures "
              "===\n");
  YahooConfig config;
  config.num_partitions = 40;
  config.num_events = 800000;
  MessageBus bus;
  auto campaigns = GenerateYahooData(&bus, "events", config);
  SS_CHECK(campaigns.ok());

  SimClusterScheduler::Options base;
  base.num_nodes = 5;
  base.cores_per_node = 8;
  base.denoise_outliers = true;

  struct Scenario {
    const char* name;
    double straggler_p;
    bool speculation;
    double failure_p;
  };
  const Scenario scenarios[] = {
      {"clean cluster", 0.0, false, 0.0},
      {"10% stragglers, no mitigation", 0.10, false, 0.0},
      {"10% stragglers + speculation", 0.10, true, 0.0},
      {"5% task failures (retried)", 0.0, false, 0.05},
      {"stragglers + failures + spec", 0.10, true, 0.05},
  };
  std::printf("%-32s %12s %10s %9s %7s\n", "scenario", "epoch (s)",
              "slowdown", "straggle", "fail");
  double clean = 0;
  for (const Scenario& s : scenarios) {
    SimClusterScheduler::Options cluster = base;
    cluster.straggler_probability = s.straggler_p;
    cluster.straggler_factor = 8.0;
    cluster.speculation = s.speculation;
    cluster.task_failure_probability = s.failure_p;
    SimClusterScheduler stats(cluster);
    double seconds = EpochSeconds(&bus, *campaigns, config.num_events,
                                  cluster, &stats);
    if (clean == 0) clean = seconds;
    std::printf("%-32s %12.3f %9.2fx %9lld %7lld\n", s.name, seconds,
                seconds / clean,
                static_cast<long long>(stats.stragglers_injected()),
                static_cast<long long>(stats.failures_injected()));
  }
  std::printf("\npaper claim: backup copies of slow tasks cap the straggler "
              "penalty; failed\ntasks are rerun individually instead of "
              "rolling back the whole cluster.\n");
}

}  // namespace
}  // namespace sstreaming

int main() {
  sstreaming::Run();
  return 0;
}

// Ablation for §5.2, the core design claim: incrementalization updates the
// result "in time proportional to the amount of new data received before
// each trigger ... without a dependence on the total amount of data
// received so far". The foil recomputes the aggregation from scratch over
// all data on every trigger (what a naive periodic batch job does).

#include <cstdio>

#include "connectors/memory.h"
#include "exec/batch_executor.h"
#include "exec/streaming_query.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kInt64, false},
                       {"v", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

std::vector<Row> MakeBatch(int64_t start, int64_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64((start + i) % 500), Value::Int64(1),
                    Value::Timestamp((start + i) * kSec / 1000)});
  }
  return rows;
}

void Run() {
  std::printf("=== §5.2 ablation: incremental update vs. full recompute "
              "===\n");
  std::printf("windowed count query; 20k new records per trigger\n\n");
  std::printf("%16s %22s %22s\n", "history (rows)",
              "incremental (ms/trig)", "recompute (ms/trig)");

  constexpr int64_t kPerTrigger = 20000;
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame streaming =
      DataFrame::ReadStream(stream)
          .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                    NamedExpr{Col("k"), "k"}})
          .Count();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  auto query = StreamingQuery::Start(streaming, sink, opts).TakeValue();

  std::vector<Row> history;
  for (int trigger = 1; trigger <= 16; ++trigger) {
    std::vector<Row> batch =
        MakeBatch(static_cast<int64_t>(history.size()), kPerTrigger);
    history.insert(history.end(), batch.begin(), batch.end());
    SS_CHECK_OK(stream->AddData(batch));

    int64_t t0 = MonotonicNanos();
    SS_CHECK_OK(query->ProcessAllAvailable());
    double incremental_ms = static_cast<double>(MonotonicNanos() - t0) / 1e6;

    if ((trigger & (trigger - 1)) != 0) continue;  // report powers of two
    // Full recompute: the same query over the whole history as a batch job.
    DataFrame batch_df =
        DataFrame::FromRows(EventSchema(), history)
            .TakeValue()
            .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                      NamedExpr{Col("k"), "k"}})
            .Count();
    t0 = MonotonicNanos();
    auto result = RunBatch(batch_df, 2);
    SS_CHECK(result.ok());
    double recompute_ms = static_cast<double>(MonotonicNanos() - t0) / 1e6;
    std::printf("%16lld %22.2f %22.2f\n",
                static_cast<long long>(history.size()), incremental_ms,
                recompute_ms);
  }
  std::printf("\npaper claim: incremental trigger cost stays flat as "
              "history grows;\nrecompute cost grows linearly.\n");
}

}  // namespace
}  // namespace sstreaming

int main() {
  sstreaming::Run();
  return 0;
}

// Ablation for §6.1's state checkpointing design: incremental delta
// checkpoints vs. full snapshots every epoch, as state size grows.
// The design claim: commit cost should be proportional to the *changes*
// in an epoch, not to total state size.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/random.h"
#include "state/state_store.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

// Commits `epochs` epochs of `changes_per_epoch` changes over a store
// preloaded with `initial_keys` entries.
void RunCommits(benchmark::State& state, int snapshot_interval) {
  const int64_t initial_keys = state.range(0);
  const int64_t changes_per_epoch = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    auto dir = MakeTempDir("bench_state_store").TakeValue();
    StateStore::Options opts;
    opts.snapshot_interval = snapshot_interval;
    auto store = StateStore::Open(dir, 0, opts).TakeValue();
    Random rng(7);
    for (int64_t i = 0; i < initial_keys; ++i) {
      store->Put("key" + std::to_string(i), std::string(64, 'x'));
    }
    SS_CHECK_OK(store->Commit(1));
    state.ResumeTiming();

    for (int64_t epoch = 2; epoch <= 11; ++epoch) {
      for (int64_t c = 0; c < changes_per_epoch; ++c) {
        store->Put("key" + std::to_string(rng.Uniform(
                       static_cast<uint64_t>(initial_keys))),
                   std::string(64, 'y'));
      }
      SS_CHECK_OK(store->Commit(epoch));
    }
    state.PauseTiming();
    int64_t bytes = store->bytes_written();
    store.reset();
    RemoveDirRecursive(dir).ok();
    state.ResumeTiming();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetLabel("state_keys=" + std::to_string(initial_keys));
}

void BM_IncrementalCheckpoints(benchmark::State& state) {
  RunCommits(state, /*snapshot_interval=*/1000);  // deltas only
}
BENCHMARK(BM_IncrementalCheckpoints)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_FullSnapshotEveryEpoch(benchmark::State& state) {
  RunCommits(state, /*snapshot_interval=*/1);  // paper's non-incremental foil
}
BENCHMARK(BM_FullSnapshotEveryEpoch)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Recovery(benchmark::State& state) {
  // Restore time vs. number of delta files to replay.
  const int snapshot_interval = static_cast<int>(state.range(0));
  auto dir = MakeTempDir("bench_state_recovery").TakeValue();
  {
    StateStore::Options opts;
    opts.snapshot_interval = snapshot_interval;
    auto store = StateStore::Open(dir, 0, opts).TakeValue();
    Random rng(7);
    for (int64_t epoch = 1; epoch <= 50; ++epoch) {
      for (int64_t c = 0; c < 2000; ++c) {
        store->Put("key" + std::to_string(rng.Uniform(20000)),
                   std::string(64, 'z'));
      }
      SS_CHECK_OK(store->Commit(epoch));
    }
  }
  for (auto _ : state) {
    auto store = StateStore::Open(dir, 50).TakeValue();
    benchmark::DoNotOptimize(store->size());
  }
  RemoveDirRecursive(dir).ok();
  state.SetLabel("snapshot_interval=" + std::to_string(snapshot_interval));
}
BENCHMARK(BM_Recovery)->Arg(5)->Arg(25)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sstreaming

BENCHMARK_MAIN();

// Reproduces Figure 6b of the paper: Structured Streaming throughput on the
// Yahoo! benchmark as the cluster grows from 1 to 20 nodes (8 cores each,
// one partition per core). Paper: near-linear scaling, 11.5 M rec/s at 1
// node to 225 M rec/s at 20 nodes (~19.6x over 20x the nodes).

#include <cstdio>

#include "yahoo_common.h"

namespace sstreaming {
namespace {

void Run() {
  std::printf("=== Figure 6b: Structured Streaming scaling ===\n");
  std::printf("%6s %10s %18s %18s %10s\n", "nodes", "cores",
              "paper (M rec/s)", "measured (M rec/s)", "speedup");

  const int node_counts[] = {1, 5, 10, 20};
  const double paper[] = {11.5, 65.0, 120.0, 225.0};
  double base = 0;
  for (size_t i = 0; i < 4; ++i) {
    int nodes = node_counts[i];
    YahooConfig config;
    config.num_partitions = nodes * 8;
    // Weak scaling: constant work per core, as in a max-throughput
    // measurement (the paper reports the max sustainable rate, which by
    // definition grows with the cluster).
    config.num_events = 60000 * config.num_partitions;
    config.event_time_span_seconds = 100;
    MessageBus bus;
    auto campaigns = GenerateYahooData(&bus, "events", config);
    SS_CHECK(campaigns.ok()) << campaigns.status().ToString();

    SimClusterScheduler::Options cluster;
    cluster.num_nodes = nodes;
    cluster.cores_per_node = 8;
    cluster.denoise_outliers = true;  // see SimClusterScheduler::Options
    // "Maximum stable throughput" (paper's metric): best of 3 runs; the
    // simulated stage time is a max over per-task durations, so a single
    // OS-descheduled task would otherwise skew the whole stage.
    double throughput = 0;
    for (int run = 0; run < 3; ++run) {
      SimClusterScheduler scheduler(cluster);
      double t = bench::RunStructured(&bus, "events", *campaigns,
                                      config.num_partitions, &scheduler,
                                      config.num_events);
      if (t > throughput) throughput = t;
    }
    if (i == 0) base = throughput;
    std::printf("%6d %10d %18.1f %18.2f %9.1fx\n", nodes, nodes * 8,
                paper[i], throughput / 1e6, throughput / base);
  }
  std::printf("\npaper speedup at 20 nodes: 19.6x (near-linear)\n");
}

}  // namespace
}  // namespace sstreaming

int main() {
  sstreaming::Run();
  return 0;
}

// Reproduces Figure 6b of the paper: Structured Streaming throughput on the
// Yahoo! benchmark as the cluster grows from 1 to 20 nodes (8 cores each,
// one partition per core). Paper: near-linear scaling, 11.5 M rec/s at 1
// node to 225 M rec/s at 20 nodes (~19.6x over 20x the nodes).
//
// --json <path> additionally writes the results as machine-readable JSON
// (throughput, p50/p99 epoch latency, and the configuration of every point)
// for CI trend tracking, e.g.:  bench_yahoo_scaling --json BENCH_yahoo.json

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/json.h"
#include "obs/profiler.h"
#include "storage/fs.h"
#include "yahoo_common.h"

namespace sstreaming {
namespace {

/// Build type baked in by bench/CMakeLists.txt. The committed ledger
/// (BENCH_*.json) only means something from an optimized build, so the
/// binary embeds what it was compiled as and refuses to write JSON from
/// anything but Release/RelWithDebInfo (ssctl bench-diff would otherwise
/// "detect" a regression that is just -O0).
const char* BuildType() {
#ifdef SS_BUILD_TYPE
  if (SS_BUILD_TYPE[0] != '\0') return SS_BUILD_TYPE;
#endif
#ifdef NDEBUG
  return "unknown-optimized";
#else
  return "unknown-debug";
#endif
}

bool IsOptimizedBuild() {
  const char* bt = BuildType();
  return std::strcmp(bt, "Release") == 0 ||
         std::strcmp(bt, "RelWithDebInfo") == 0 ||
         std::strcmp(bt, "unknown-optimized") == 0;
}

// Shard scaling: one 8-core simulated node, a single input partition, and
// the keyed state hash-sharded {1, 2, 4, 8} ways. With partition parallelism
// pinned to 1, the per-shard fold tasks are the only way the stateful stage
// can use the other cores, so the stateful-stage speedup isolates what
// sharding buys (docs/STATE_SHARDING.md). These points intentionally omit
// "nodes": ssctl bench-diff matches points by node count, and shard points
// are a separate axis with their own history.
Json RunShardSweep() {
  std::printf("\n=== Keyed-state shard scaling (1 node, 1 partition) ===\n");
  std::printf("%7s %18s %22s %10s\n", "shards", "total (M rec/s)",
              "stateful stage (M/s)", "speedup");

  Json points = Json::Array();
  const int shard_counts[] = {1, 2, 4, 8};
  YahooConfig config;
  config.num_partitions = 1;
  config.num_events = 480000;
  config.event_time_span_seconds = 100;
  MessageBus bus;
  auto campaigns = GenerateYahooData(&bus, "shard_events", config);
  SS_CHECK(campaigns.ok()) << campaigns.status().ToString();

  double base_stateful = 0;
  for (int shards : shard_counts) {
    SimClusterScheduler::Options cluster;
    cluster.num_nodes = 1;
    cluster.cores_per_node = 8;
    cluster.denoise_outliers = true;
    double throughput = 0;
    bench::StructuredRunStats best_stats;
    for (int run = 0; run < 3; ++run) {
      SimClusterScheduler scheduler(cluster);
      bench::StructuredRunStats stats;
      double t = bench::RunStructured(&bus, "shard_events", *campaigns,
                                      config.num_partitions, &scheduler,
                                      config.num_events, &stats, shards);
      if (t > throughput) {
        throughput = t;
        best_stats = stats;
      }
    }
    SS_CHECK(best_stats.stateful_stage_nanos > 0)
        << "stateful stage ledger empty — stage names changed?";
    double stateful_rate =
        static_cast<double>(config.num_events) /
        (static_cast<double>(best_stats.stateful_stage_nanos) / 1e9);
    if (shards == 1) base_stateful = stateful_rate;
    std::printf("%7d %18.2f %22.2f %9.1fx\n", shards, throughput / 1e6,
                stateful_rate / 1e6, stateful_rate / base_stateful);

    Json point = Json::Object();
    point.Set("shards", Json::Int(shards));
    point.Set("numPartitions", Json::Int(config.num_partitions));
    point.Set("numEvents", Json::Int(config.num_events));
    point.Set("throughputRecsPerSec", Json::Double(throughput));
    point.Set("statefulThroughputRecsPerSec", Json::Double(stateful_rate));
    point.Set("statefulStageNanos", Json::Int(best_stats.stateful_stage_nanos));
    point.Set("epochs", Json::Int(best_stats.epochs));
    points.Append(std::move(point));
  }
  return points;
}

// Profiler overhead A/B: the 1-node scaling workload measured with the
// sampling profiler disarmed and armed at the default 99 Hz. The ledger
// commits the pair so every revision proves the documented <=2% overhead
// budget (docs/OBSERVABILITY.md). This rides as a doc-level "profilerAB"
// object, not a point: ssctl bench-diff matches points by node/shard count
// and must not treat the deliberately-slower "on" run as a regression.
Json RunProfilerAB() {
  std::printf("\n=== Sampling-profiler overhead (1 node, %g Hz) ===\n",
              Profiler::kDefaultHz);
  YahooConfig config;
  config.num_partitions = 8;
  config.num_events = 60000 * config.num_partitions;
  config.event_time_span_seconds = 100;
  MessageBus bus;
  auto campaigns = GenerateYahooData(&bus, "prof_events", config);
  SS_CHECK(campaigns.ok()) << campaigns.status().ToString();

  auto measure = [&bus, &campaigns, &config] {
    SimClusterScheduler::Options cluster;
    cluster.num_nodes = 1;
    cluster.cores_per_node = 8;
    cluster.denoise_outliers = true;
    SimClusterScheduler scheduler(cluster);
    bench::StructuredRunStats stats;
    return bench::RunStructured(&bus, "prof_events", *campaigns,
                                config.num_partitions, &scheduler,
                                config.num_events, &stats);
  };

  auto measure_armed = [&measure] {
    Profiler::Instance().Arm(Profiler::kDefaultHz);
    double t = measure();
    Profiler::Instance().Disarm();
    return t;
  };

  // Interleave the arms and alternate which goes first in each pair, so
  // machine-load drift and any run-position effect (warm caches, frequency
  // ramp) hit both arms equally; compare best-of like the scaling points do
  // (max sustainable rate).
  double off = 0;
  double on = 0;
  for (int pair = 0; pair < 8; ++pair) {
    if (pair % 2 == 0) {
      off = std::max(off, measure());
      on = std::max(on, measure_armed());
    } else {
      on = std::max(on, measure_armed());
      off = std::max(off, measure());
    }
  }
  double overhead_pct = off > 0 ? (off - on) / off * 100.0 : 0;
  std::printf("profiler off: %10.2f M rec/s\n", off / 1e6);
  std::printf("profiler on:  %10.2f M rec/s   (overhead %.2f%%)\n", on / 1e6,
              overhead_pct);

  Json ab = Json::Object();
  ab.Set("hz", Json::Double(Profiler::kDefaultHz));
  ab.Set("offThroughputRecsPerSec", Json::Double(off));
  ab.Set("onThroughputRecsPerSec", Json::Double(on));
  ab.Set("overheadPct", Json::Double(overhead_pct));
  return ab;
}

void Run(const char* json_path, bool shards_only) {
  std::printf("build type: %s\n", BuildType());
  Json shard_points = Json::Array();
  if (shards_only) {
    shard_points = RunShardSweep();
    if (json_path != nullptr) {
      Json doc = Json::Object();
      doc.Set("benchmark", Json::Str("yahoo_scaling"));
      doc.Set("figure", Json::Str("6b"));
      doc.Set("buildType", Json::Str(BuildType()));
      doc.Set("runsPerPoint", Json::Int(3));
      doc.Set("points", std::move(shard_points));
      std::string text = doc.Dump();
      text += "\n";
      Status s = WriteFileAtomic(json_path, text);
      SS_CHECK(s.ok()) << s.ToString();
      std::printf("wrote %s\n", json_path);
    }
    return;
  }
  std::printf("=== Figure 6b: Structured Streaming scaling ===\n");
  std::printf("%6s %10s %18s %18s %10s\n", "nodes", "cores",
              "paper (M rec/s)", "measured (M rec/s)", "speedup");

  Json points = Json::Array();
  const int node_counts[] = {1, 5, 10, 20};
  const double paper[] = {11.5, 65.0, 120.0, 225.0};
  double base = 0;
  for (size_t i = 0; i < 4; ++i) {
    int nodes = node_counts[i];
    YahooConfig config;
    config.num_partitions = nodes * 8;
    // Weak scaling: constant work per core, as in a max-throughput
    // measurement (the paper reports the max sustainable rate, which by
    // definition grows with the cluster).
    config.num_events = 60000 * config.num_partitions;
    config.event_time_span_seconds = 100;
    MessageBus bus;
    auto campaigns = GenerateYahooData(&bus, "events", config);
    SS_CHECK(campaigns.ok()) << campaigns.status().ToString();

    SimClusterScheduler::Options cluster;
    cluster.num_nodes = nodes;
    cluster.cores_per_node = 8;
    cluster.denoise_outliers = true;  // see SimClusterScheduler::Options
    // "Maximum stable throughput" (paper's metric): best of 3 runs; the
    // simulated stage time is a max over per-task durations, so a single
    // OS-descheduled task would otherwise skew the whole stage.
    double throughput = 0;
    bench::StructuredRunStats best_stats;
    for (int run = 0; run < 3; ++run) {
      SimClusterScheduler scheduler(cluster);
      bench::StructuredRunStats stats;
      double t = bench::RunStructured(&bus, "events", *campaigns,
                                      config.num_partitions, &scheduler,
                                      config.num_events, &stats);
      if (t > throughput) {
        throughput = t;
        best_stats = stats;
      }
    }
    if (i == 0) base = throughput;
    std::printf("%6d %10d %18.1f %18.2f %9.1fx\n", nodes, nodes * 8,
                paper[i], throughput / 1e6, throughput / base);

    Json point = Json::Object();
    point.Set("nodes", Json::Int(nodes));
    point.Set("cores", Json::Int(nodes * 8));
    point.Set("numPartitions", Json::Int(config.num_partitions));
    point.Set("numEvents", Json::Int(config.num_events));
    point.Set("paperThroughputRecsPerSec", Json::Double(paper[i] * 1e6));
    point.Set("throughputRecsPerSec", Json::Double(throughput));
    point.Set("epochs", Json::Int(best_stats.epochs));
    point.Set("p50EpochNanos", Json::Int(best_stats.p50_epoch_nanos));
    point.Set("p99EpochNanos", Json::Int(best_stats.p99_epoch_nanos));
    points.Append(std::move(point));
  }
  std::printf("\npaper speedup at 20 nodes: 19.6x (near-linear)\n");

  // The shard sweep rides along in the same ledger; its points have a
  // "shards" field instead of "nodes".
  shard_points = RunShardSweep();
  for (const Json& p : shard_points.array_items()) {
    points.Append(p);
  }

  Json profiler_ab = RunProfilerAB();

  if (json_path != nullptr) {
    Json doc = Json::Object();
    doc.Set("benchmark", Json::Str("yahoo_scaling"));
    doc.Set("figure", Json::Str("6b"));
    doc.Set("buildType", Json::Str(BuildType()));
    doc.Set("runsPerPoint", Json::Int(3));
    doc.Set("profilerAB", std::move(profiler_ab));
    doc.Set("points", std::move(points));
    std::string text = doc.Dump();
    text += "\n";
    Status s = WriteFileAtomic(json_path, text);
    SS_CHECK(s.ok()) << s.ToString();
    std::printf("wrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace sstreaming

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool shards_only = false;
  bool allow_unoptimized = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards_only = true;
    } else if (std::strcmp(argv[i], "--allow-unoptimized") == 0) {
      allow_unoptimized = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards] [--json <path>]"
                   " [--allow-unoptimized]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!sstreaming::IsOptimizedBuild()) {
    if (json_path != nullptr && !allow_unoptimized) {
      std::fprintf(stderr,
                   "bench_yahoo_scaling: refusing to write %s from a '%s' "
                   "build — numbers from unoptimized builds must not enter "
                   "the committed ledger. Rebuild with "
                   "-DCMAKE_BUILD_TYPE=Release, or pass --allow-unoptimized "
                   "to force (the buildType field will flag the file).\n",
                   json_path, sstreaming::BuildType());
      return 3;
    }
    std::fprintf(stderr,
                 "bench_yahoo_scaling: WARNING: '%s' build — throughput "
                 "numbers below are NOT comparable to the committed "
                 "Release ledger.\n",
                 sstreaming::BuildType());
  }
  sstreaming::Run(json_path, shards_only);
  return 0;
}

// ssctl — operator CLI for the sstreaming engine.
//
//   ssctl queries --port N              list queries on a live server
//   ssctl history <checkpoint_dir>      summarize a durable query history
//   ssctl history --port N --query Q    same, via a live server
//   ssctl diff <checkpoint_a> <checkpoint_b>
//                                       compare two runs' histories
//   ssctl bench-diff <baseline.json> <current.json> [--max-regress PCT]
//                                       gate on bench_yahoo_scaling --json
//                                       output: exit 1 when throughput drops
//                                       or p99 epoch latency grows by more
//                                       than PCT (default 10%) at any point
//   ssctl bench-diff --self-test        verify the gate trips on a synthetic
//                                       20% regression (CI sanity check)
//   ssctl doctor <checkpoint_dir>       offline bottleneck diagnosis from a
//                                       checkpoint's durable history — same
//                                       rule engine (and verdicts) as the
//                                       live /queries/<id>/doctor endpoint
//   ssctl lint-checkpoint <checkpoint_dir> [--against <manifest.json>]
//                                       validate a checkpoint's plan manifest
//                                       offline: integrity, shard-count
//                                       cross-check against on-disk SHARDS
//                                       files, and (with --against) the same
//                                       SS3xxx compatibility diff a restart
//                                       would run (docs/UPGRADES.md)
//
// Exit codes: 0 ok, 1 regression/degradation detected, 2 usage or I/O error.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "analysis/checkpoint_compat.h"
#include "common/json.h"
#include "obs/doctor.h"
#include "obs/http_server.h"
#include "obs/progress.h"
#include "obs/query_history.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ssctl queries --port N\n"
      "       ssctl history <checkpoint_dir> | --port N --query Q\n"
      "       ssctl diff <checkpoint_a> <checkpoint_b>\n"
      "       ssctl bench-diff <baseline.json> <current.json>"
      " [--max-regress PCT]\n"
      "       ssctl bench-diff --self-test\n"
      "       ssctl doctor <checkpoint_dir>\n"
      "       ssctl lint-checkpoint <checkpoint_dir>"
      " [--against <manifest.json>]\n");
  return 2;
}

int64_t GetInt(const Json& obj, const char* key) {
  const Json& v = obj.Get(key);
  return v.is_number() ? v.int_value() : 0;
}

double GetDouble(const Json& obj, const char* key) {
  const Json& v = obj.Get(key);
  return v.is_number() ? v.double_value() : 0;
}

std::string GetStr(const Json& obj, const char* key) {
  const Json& v = obj.Get(key);
  return v.is_string() ? v.string_value() : std::string();
}

// ---------------------------------------------------------------- queries

int CmdQueries(int port) {
  auto resp = HttpGet(port, "/queries", 5000);
  if (!resp.ok()) {
    std::fprintf(stderr, "ssctl: %s\n", resp.status().ToString().c_str());
    return 2;
  }
  auto json = Json::Parse(resp->body);
  if (!json.ok() || !json->is_array()) {
    std::fprintf(stderr, "ssctl: /queries returned malformed JSON\n");
    return 2;
  }
  std::printf("%-24s %-8s %10s %14s %14s\n", "NAME", "ACTIVE", "EPOCH",
              "E2E P99 (us)", "WM LAG (us)");
  for (const Json& q : json->array_items()) {
    const Json& last = q.Get("lastProgress");
    int64_t p99 = last.is_object()
                      ? GetInt(last.Get("e2eLatency"), "p99Micros")
                      : 0;
    std::printf("%-24s %-8s %10" PRId64 " %14" PRId64 " %14" PRId64 "\n",
                GetStr(q, "name").c_str(),
                q.Get("active").bool_value() ? "yes" : "no",
                GetInt(q, "lastEpoch"), p99,
                last.is_object() ? GetInt(last, "watermarkLagMicros") : 0);
  }
  return 0;
}

// ---------------------------------------------------------------- history

/// Aggregate view of one run's history events (offline or over HTTP).
struct HistorySummary {
  std::string query;
  int64_t starts = 0;
  int64_t recoveries = 0;
  int64_t terminations = 0;
  int64_t epochs = 0;  // progress lines (recovery replays count again)
  int64_t last_epoch = 0;
  int64_t rows_read = 0;
  int64_t rows_written = 0;
  int64_t duration_nanos = 0;
  LogHistogram e2e;  // merged across all progress lines
  std::string last_error;
};

// Out-param because HistorySummary embeds a (non-copyable) LogHistogram.
void Summarize(const std::vector<Json>& events, HistorySummary* out) {
  HistorySummary& s = *out;
  for (const Json& event : events) {
    std::string kind = GetStr(event, "event");
    if (s.query.empty()) s.query = GetStr(event, "query");
    if (kind == "started") {
      ++s.starts;
      if (event.Get("recovered").bool_value()) ++s.recoveries;
    } else if (kind == "terminated") {
      ++s.terminations;
      s.last_error = GetStr(event, "error");
      int64_t last = GetInt(event, "lastEpoch");
      if (last > s.last_epoch) s.last_epoch = last;
    } else if (kind == "progress") {
      auto progress = QueryProgress::FromJson(event.Get("progress"));
      if (!progress.ok()) continue;
      ++s.epochs;
      if (progress->epoch > s.last_epoch) s.last_epoch = progress->epoch;
      s.rows_read += progress->rows_read;
      s.rows_written += progress->rows_written;
      s.duration_nanos += progress->duration_nanos;
      progress->e2e_latency.MergeInto(&s.e2e);
    }
  }
}

void PrintSummary(const HistorySummary& s) {
  std::printf("query            %s\n", s.query.c_str());
  std::printf("starts           %" PRId64 " (%" PRId64 " recovered)\n",
              s.starts, s.recoveries);
  std::printf("terminations     %" PRId64 "%s%s\n", s.terminations,
              s.last_error.empty() ? "" : ", last error: ",
              s.last_error.c_str());
  std::printf("epochs logged    %" PRId64 " (last epoch %" PRId64 ")\n",
              s.epochs, s.last_epoch);
  std::printf("rows read        %" PRId64 "\n", s.rows_read);
  std::printf("rows written     %" PRId64 "\n", s.rows_written);
  if (s.epochs > 0) {
    std::printf("mean epoch       %.3f ms\n",
                static_cast<double>(s.duration_nanos) /
                    static_cast<double>(s.epochs) / 1e6);
  }
  if (s.e2e.count() > 0) {
    std::printf("e2e latency      p50 %" PRId64 " us, p95 %" PRId64
                " us, p99 %" PRId64 " us, max %" PRId64 " us (%" PRId64
                " rows)\n",
                s.e2e.ValueAtQuantile(0.50), s.e2e.ValueAtQuantile(0.95),
                s.e2e.ValueAtQuantile(0.99), s.e2e.max(), s.e2e.count());
  }
}

Result<std::vector<Json>> LoadHistory(const std::string& dir_or_empty,
                                      int port, const std::string& query) {
  if (!dir_or_empty.empty()) return QueryHistoryLog::ReadAll(dir_or_empty);
  SS_ASSIGN_OR_RETURN(HttpResponse resp,
                      HttpGet(port, "/queries/" + query + "/history", 5000));
  if (resp.status != 200) {
    return Status::NotFound("server returned HTTP " +
                            std::to_string(resp.status) + ": " + resp.body);
  }
  SS_ASSIGN_OR_RETURN(Json json, Json::Parse(resp.body));
  std::vector<Json> events;
  for (const Json& event : json.Get("events").array_items()) {
    events.push_back(event);
  }
  return events;
}

int CmdHistory(const std::string& dir, int port, const std::string& query) {
  auto events = LoadHistory(dir, port, query);
  if (!events.ok()) {
    std::fprintf(stderr, "ssctl: %s\n", events.status().ToString().c_str());
    return 2;
  }
  HistorySummary summary;
  Summarize(*events, &summary);
  PrintSummary(summary);
  return 0;
}

// ------------------------------------------------------------------- diff

void PrintDelta(const char* label, double a, double b, bool lower_is_better) {
  double pct = a != 0 ? (b - a) / a * 100.0 : 0;
  const char* tag = pct == 0                          ? "  ="
                    : (pct < 0) == lower_is_better ? "  better"
                                                      : "  worse";
  std::printf("%-18s %14.1f %14.1f %+8.1f%%%s\n", label, a, b, pct, tag);
}

int CmdDiff(const std::string& dir_a, const std::string& dir_b) {
  auto ea = QueryHistoryLog::ReadAll(dir_a);
  auto eb = QueryHistoryLog::ReadAll(dir_b);
  if (!ea.ok() || !eb.ok()) {
    std::fprintf(stderr, "ssctl: %s\n",
                 (!ea.ok() ? ea.status() : eb.status()).ToString().c_str());
    return 2;
  }
  HistorySummary a;
  HistorySummary b;
  Summarize(*ea, &a);
  Summarize(*eb, &b);
  std::printf("%-18s %14s %14s %9s\n", "", "A", "B", "delta");
  PrintDelta("epochs", static_cast<double>(a.epochs),
             static_cast<double>(b.epochs), false);
  PrintDelta("rows written", static_cast<double>(a.rows_written),
             static_cast<double>(b.rows_written), false);
  if (a.epochs > 0 && b.epochs > 0) {
    PrintDelta("mean epoch (ms)",
               static_cast<double>(a.duration_nanos) /
                   static_cast<double>(a.epochs) / 1e6,
               static_cast<double>(b.duration_nanos) /
                   static_cast<double>(b.epochs) / 1e6,
               true);
  }
  if (a.e2e.count() > 0 && b.e2e.count() > 0) {
    PrintDelta("e2e p50 (us)",
               static_cast<double>(a.e2e.ValueAtQuantile(0.50)),
               static_cast<double>(b.e2e.ValueAtQuantile(0.50)), true);
    PrintDelta("e2e p99 (us)",
               static_cast<double>(a.e2e.ValueAtQuantile(0.99)),
               static_cast<double>(b.e2e.ValueAtQuantile(0.99)), true);
  }
  return 0;
}

// ------------------------------------------------------------- bench-diff

/// One comparable point of a bench_yahoo_scaling --json document.
struct BenchPoint {
  int64_t nodes = 0;
  double throughput = 0;
  int64_t p99_epoch_nanos = 0;
};

Result<std::vector<BenchPoint>> ParseBench(const Json& doc) {
  if (!doc.is_object() || !doc.Get("points").is_array()) {
    return Status::InvalidArgument("not a bench JSON document");
  }
  std::vector<BenchPoint> points;
  for (const Json& p : doc.Get("points").array_items()) {
    BenchPoint point;
    point.nodes = GetInt(p, "nodes");
    point.throughput = GetDouble(p, "throughputRecsPerSec");
    point.p99_epoch_nanos = GetInt(p, "p99EpochNanos");
    points.push_back(point);
  }
  return points;
}

/// Returns 0 when `current` holds up against `baseline`, 1 on a regression
/// beyond `max_regress` (fraction), 2 on malformed inputs.
int DiffBench(const Json& baseline_doc, const Json& current_doc,
              double max_regress) {
  auto baseline = ParseBench(baseline_doc);
  auto current = ParseBench(current_doc);
  if (!baseline.ok() || !current.ok()) {
    std::fprintf(stderr, "ssctl: %s\n",
                 (!baseline.ok() ? baseline.status() : current.status())
                     .ToString()
                     .c_str());
    return 2;
  }
  std::printf("%6s %16s %16s %9s %12s %12s %9s\n", "nodes", "base rec/s",
              "cur rec/s", "tput", "base p99ms", "cur p99ms", "p99");
  int regressions = 0;
  for (const BenchPoint& b : *baseline) {
    const BenchPoint* c = nullptr;
    for (const BenchPoint& candidate : *current) {
      if (candidate.nodes == b.nodes) c = &candidate;
    }
    if (c == nullptr) {
      std::fprintf(stderr, "ssctl: current run lacks the %" PRId64
                           "-node point\n", b.nodes);
      ++regressions;
      continue;
    }
    double tput_delta =
        b.throughput > 0 ? (c->throughput - b.throughput) / b.throughput : 0;
    double p99_delta = b.p99_epoch_nanos > 0
                           ? static_cast<double>(c->p99_epoch_nanos -
                                                 b.p99_epoch_nanos) /
                                 static_cast<double>(b.p99_epoch_nanos)
                           : 0;
    bool tput_bad = tput_delta < -max_regress;
    bool p99_bad = p99_delta > max_regress;
    if (tput_bad || p99_bad) ++regressions;
    std::printf("%6" PRId64 " %16.0f %16.0f %+8.1f%% %12.2f %12.2f %+8.1f%%%s\n",
                b.nodes, b.throughput, c->throughput, tput_delta * 100,
                static_cast<double>(b.p99_epoch_nanos) / 1e6,
                static_cast<double>(c->p99_epoch_nanos) / 1e6,
                p99_delta * 100,
                tput_bad ? "  THROUGHPUT REGRESSION"
                         : (p99_bad ? "  P99 REGRESSION" : ""));
  }
  if (regressions > 0) {
    std::printf("FAIL: %d point(s) regressed beyond %.0f%%\n", regressions,
                max_regress * 100);
    return 1;
  }
  std::printf("OK: within %.0f%% of baseline\n", max_regress * 100);
  return 0;
}

Result<Json> LoadJson(const std::string& path) {
  SS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return Json::Parse(text);
}

/// The gate must trip on the regressions it exists to catch: feed it a
/// synthetic run 20% slower than its own baseline and require exit 1
/// (and exit 0 on an identical run). Wired into CI so a silently broken
/// comparator cannot wave real regressions through.
int BenchDiffSelfTest() {
  Json baseline = Json::Object();
  baseline.Set("benchmark", Json::Str("yahoo_scaling"));
  Json points = Json::Array();
  const int64_t nodes[] = {1, 5};
  for (int64_t n : nodes) {
    Json p = Json::Object();
    p.Set("nodes", Json::Int(n));
    p.Set("throughputRecsPerSec", Json::Double(1e7 * static_cast<double>(n)));
    p.Set("p99EpochNanos", Json::Int(50000000));
    points.Append(std::move(p));
  }
  baseline.Set("points", std::move(points));

  auto degrade = [&baseline](double tput_factor, double p99_factor) {
    Json doc = Json::Object();
    doc.Set("benchmark", Json::Str("yahoo_scaling"));
    Json pts = Json::Array();
    for (const Json& p : baseline.Get("points").array_items()) {
      Json q = Json::Object();
      q.Set("nodes", Json::Int(p.Get("nodes").int_value()));
      q.Set("throughputRecsPerSec",
            Json::Double(p.Get("throughputRecsPerSec").double_value() *
                         tput_factor));
      q.Set("p99EpochNanos",
            Json::Int(static_cast<int64_t>(
                static_cast<double>(p.Get("p99EpochNanos").int_value()) *
                p99_factor)));
      pts.Append(std::move(q));
    }
    doc.Set("points", std::move(pts));
    return doc;
  };

  std::printf("--- self-test: identical run must pass\n");
  if (DiffBench(baseline, degrade(1.0, 1.0), 0.10) != 0) {
    std::fprintf(stderr, "self-test FAILED: identical run flagged\n");
    return 1;
  }
  std::printf("--- self-test: 20%% throughput drop must fail\n");
  if (DiffBench(baseline, degrade(0.8, 1.0), 0.10) != 1) {
    std::fprintf(stderr, "self-test FAILED: 20%% tput drop not flagged\n");
    return 1;
  }
  std::printf("--- self-test: 20%% p99 growth must fail\n");
  if (DiffBench(baseline, degrade(1.0, 1.2), 0.10) != 1) {
    std::fprintf(stderr, "self-test FAILED: 20%% p99 growth not flagged\n");
    return 1;
  }
  std::printf("self-test PASS\n");
  return 0;
}

int CmdBenchDiff(const std::string& baseline_path,
                 const std::string& current_path, double max_regress) {
  auto baseline = LoadJson(baseline_path);
  auto current = LoadJson(current_path);
  if (!baseline.ok() || !current.ok()) {
    std::fprintf(stderr, "ssctl: %s\n",
                 (!baseline.ok() ? baseline.status() : current.status())
                     .ToString()
                     .c_str());
    return 2;
  }
  return DiffBench(*baseline, *current, max_regress);
}

// -------------------------------------------------------- lint-checkpoint

/// Offline manifest validation — the same LintCheckpoint the tests run, so
/// the CLI reports exactly the SS3xxx codes a restart against this
/// checkpoint would. Exit 0 clean (warnings allowed), 1 when any SS3xxx
/// error is present, 2 on I/O problems (no manifest, unreadable --against).
int CmdLintCheckpoint(const std::string& dir, const std::string& against) {
  std::optional<PlanFingerprint> candidate;
  if (!against.empty()) {
    auto text = ReadFile(against);
    if (!text.ok()) {
      std::fprintf(stderr, "ssctl: %s\n", text.status().ToString().c_str());
      return 2;
    }
    auto json = Json::Parse(*text);
    if (!json.ok()) {
      std::fprintf(stderr, "ssctl: %s is not JSON: %s\n", against.c_str(),
                   json.status().ToString().c_str());
      return 2;
    }
    auto fp = PlanFingerprint::FromJson(*json);
    if (!fp.ok()) {
      std::fprintf(stderr, "ssctl: %s: %s\n", against.c_str(),
                   fp.status().ToString().c_str());
      return 2;
    }
    candidate = std::move(*fp);
  }
  auto analysis =
      LintCheckpoint(dir, candidate.has_value() ? &*candidate : nullptr);
  if (!analysis.ok()) {
    std::fprintf(stderr, "ssctl: %s\n",
                 analysis.status().ToString().c_str());
    return 2;
  }
  if (analysis->diagnostics().empty()) {
    std::printf("%s: manifest ok\n", dir.c_str());
    return 0;
  }
  std::printf("%s", analysis->Explain().c_str());
  return analysis->has_errors() ? 1 : 0;
}

// ----------------------------------------------------------------- doctor

int CmdDoctor(const std::string& dir) {
  auto report = DiagnoseHistory(dir);
  if (!report.ok()) {
    std::fprintf(stderr, "ssctl: %s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", report->Render().c_str());
  // Diagnosis is informational: a bottleneck verdict is not a failure.
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  std::vector<std::string> args;
  int port = 0;
  std::string query;
  double max_regress = 0.10;
  bool self_test = false;
  std::string against;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      query = argv[++i];
    } else if (std::strcmp(argv[i], "--against") == 0 && i + 1 < argc) {
      against = argv[++i];
    } else if (std::strcmp(argv[i], "--max-regress") == 0 && i + 1 < argc) {
      max_regress = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      args.push_back(argv[i]);
    }
  }
  if (cmd == "queries") {
    if (port == 0 || !args.empty()) return Usage();
    return CmdQueries(port);
  }
  if (cmd == "history") {
    if (args.size() == 1 && port == 0) return CmdHistory(args[0], 0, "");
    if (args.empty() && port != 0 && !query.empty()) {
      return CmdHistory("", port, query);
    }
    return Usage();
  }
  if (cmd == "diff") {
    if (args.size() != 2) return Usage();
    return CmdDiff(args[0], args[1]);
  }
  if (cmd == "bench-diff") {
    if (self_test && args.empty()) return BenchDiffSelfTest();
    if (args.size() != 2) return Usage();
    return CmdBenchDiff(args[0], args[1], max_regress);
  }
  if (cmd == "doctor") {
    if (args.size() != 1) return Usage();
    return CmdDoctor(args[0]);
  }
  if (cmd == "lint-checkpoint") {
    if (args.size() != 1) return Usage();
    return CmdLintCheckpoint(args[0], against);
  }
  return Usage();
}

}  // namespace
}  // namespace sstreaming

int main(int argc, char** argv) { return sstreaming::Main(argc, argv); }

#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit in src/ and tools/, using the compile database from a
# CMake build.
#
#   tools/run_clang_tidy.sh [--require] [build_dir]
#
# build_dir defaults to ./build; it is created (with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON) if it does not exist. Exits non-zero if
# any check fires. On machines without clang-tidy (e.g. the gcc-only CI
# image) the script prints a notice and exits 0 so it can be wired into
# always-on verification — unless --require is passed (the dedicated CI
# lint job), in which case a missing clang-tidy is itself a failure.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
require=0
if [[ "${1:-}" == "--require" ]]; then
  require=1
  shift
fi
build_dir="${1:-$repo_root/build}"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "$tidy_bin" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy_bin="$candidate"
      break
    fi
  done
fi
if [[ -z "$tidy_bin" ]]; then
  if [[ $require -eq 1 ]]; then
    echo "run_clang_tidy: clang-tidy not found on PATH and --require was" \
         "given (set CLANG_TIDY to override)." >&2
    exit 1
  fi
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (set" \
       "CLANG_TIDY to override)."
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  cmake -B "$build_dir" -S "$repo_root" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: no compile_commands.json in $build_dir" >&2
  exit 1
fi

mapfile -t sources < <(find "$repo_root/src" "$repo_root/tools" \
                            -name '*.cc' | sort)
echo "run_clang_tidy: $tidy_bin over ${#sources[@]} files in src/ + tools/"

status=0
for f in "${sources[@]}"; do
  "$tidy_bin" -p "$build_dir" --quiet "$f" || status=1
done

if [[ $status -ne 0 ]]; then
  echo "run_clang_tidy: findings reported above" >&2
fi
exit $status

#!/usr/bin/env bash
# Repo hygiene gate: the top level of the tree is a curated, documented set
# of files and directories. Anything else (editor droppings, stray test
# scratch files, misplaced outputs — e.g. the historical stray `e`) fails
# CI until it is either removed or added to the allowlist below on purpose.
#
# Usage: tools/check_repo_hygiene.sh   (from the repo root; uses git ls-tree
# so only *committed* top-level entries are checked)
set -euo pipefail

cd "$(dirname "$0")/.."

# Directories and files that belong at the top level. BENCH_<n>.json is the
# per-PR bench ledger (EXPERIMENTS.md), so it matches as a pattern.
ALLOWED_REGEX='^(\.clang-tidy|\.claude|\.github|\.gitignore|CMakeLists\.txt|BENCH_[0-9]+\.json|CHANGES\.md|DESIGN\.md|EXPERIMENTS\.md|ISSUE\.md|PAPER\.md|PAPERS\.md|README\.md|ROADMAP\.md|SNIPPETS\.md|bench|docs|examples|src|tests|tools)$'

STRAY=0
while IFS= read -r entry; do
  if ! [[ "$entry" =~ $ALLOWED_REGEX ]]; then
    echo "FAIL: unexpected top-level entry '$entry'" >&2
    echo "      remove it or add it to the allowlist in $0" >&2
    STRAY=1
  fi
done < <(git ls-tree --name-only HEAD)

if [[ "$STRAY" -ne 0 ]]; then
  exit 1
fi
echo "PASS: top level is clean ($(git ls-tree --name-only HEAD | wc -l) entries)"

#!/usr/bin/env bash
# Smoke test for the embedded observability HTTP server: starts the
# live_dashboard example on an ephemeral port, curls every endpoint, and
# validates the JSON payloads. Used by CI next to `ctest -L http`.
#
# Usage: tools/http_smoke.sh [path-to-live_dashboard]
set -euo pipefail

BIN="${1:-build/examples/live_dashboard}"
if [[ ! -x "$BIN" ]]; then
  echo "FAIL: $BIN not found or not executable (build the project first)" >&2
  exit 1
fi

LOG="$(mktemp)"
CKPT="$(mktemp -d)"
cleanup() {
  kill "$PID" 2>/dev/null || true
  wait "$PID" 2>/dev/null || true
  rm -f "$LOG"
  rm -rf "$CKPT"
}
trap cleanup EXIT

"$BIN" --port 0 --serve-seconds 30 --checkpoint "$CKPT" >"$LOG" 2>&1 &
PID=$!

# The example prints "serving http://127.0.0.1:PORT" once the socket is up.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's|^serving http://127\.0\.0\.1:\([0-9]*\)$|\1|p' "$LOG")"
  [[ -n "$PORT" ]] && break
  kill -0 "$PID" 2>/dev/null || { echo "FAIL: example died"; cat "$LOG"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: no port in log"; cat "$LOG"; exit 1; }
echo "serving on port $PORT"

# Let a few epochs run so progress/state/metrics are non-trivial.
sleep 1.5

fail() { echo "FAIL: $1" >&2; exit 1; }
get() { curl -sf --max-time 5 "http://127.0.0.1:$PORT$1"; }
json_ok() { python3 -c 'import json,sys; json.load(sys.stdin)'; }

[[ "$(get /healthz)" == "ok" ]] || fail "/healthz"
echo "ok /healthz"

METRICS="$(get /metrics)"
grep -q '^# TYPE sstreaming_epochs_total counter' <<<"$METRICS" \
  || fail "/metrics missing TYPE line"
grep -q '^sstreaming_state_bytes{' <<<"$METRICS" \
  || fail "/metrics missing state_bytes gauge"
grep -q '^sstreaming_e2e_latency_micros_count' <<<"$METRICS" \
  || fail "/metrics missing e2e latency histogram"
grep -Eq '^sstreaming_process_uptime_seconds [0-9.]+' <<<"$METRICS" \
  || fail "/metrics missing process uptime gauge"
grep -Eq '^sstreaming_process_rss_bytes [0-9]+' <<<"$METRICS" \
  || fail "/metrics missing process RSS gauge"
echo "ok /metrics"

get /queries | json_ok || fail "/queries is not JSON"
get /queries | python3 -c '
import json, sys
queries = json.load(sys.stdin)
assert queries and queries[0]["name"] == "dashboard", queries
assert queries[0]["lastEpoch"] > 0, queries
' || fail "/queries content"
echo "ok /queries"

get /queries/dashboard | python3 -c '
import json, sys
detail = json.load(sys.stdin)
assert detail["progress"], detail
epoch = detail["progress"][-1]
assert epoch["durationNanos"] > 0, epoch
assert "e2eLatency" in epoch, epoch
' || fail "/queries/dashboard content"
echo "ok /queries/dashboard"

get /queries/dashboard/history | python3 -c '
import json, sys
history = json.load(sys.stdin)
assert history["name"] == "dashboard", history
kinds = [event["event"] for event in history["events"]]
assert kinds[0] == "started", kinds
assert "progress" in kinds, kinds
' || fail "/queries/dashboard/history content"
echo "ok /queries/dashboard/history"

get /queries/dashboard/plan | python3 -c '
import json, sys
plan = json.load(sys.stdin)
assert plan["epochs"] > 0, plan
assert "EXPLAIN ANALYZE" in plan["explain"], plan
def rows(node):
    return node["rowsIn"] + sum(rows(c) for c in node["children"])
assert rows(plan["root"]) > 0, plan
' || fail "/queries/dashboard/plan content"
echo "ok /queries/dashboard/plan"

get /queries/dashboard/fingerprint | python3 -c '
import json, sys
fp = json.load(sys.stdin)
assert fp["name"] == "dashboard", fp
assert fp["formatVersion"] >= 1, fp
assert fp["planHash"] and fp["statefulHash"], fp
assert any(op["stateful"] for op in fp["operators"]), fp
' || fail "/queries/dashboard/fingerprint content"
# The fingerprint is a stable identity: two scrapes must be byte-identical
# (map-ordered JSON, no timestamps or counters mixed in).
A="$(get /queries/dashboard/fingerprint)"
B="$(get /queries/dashboard/fingerprint)"
[[ "$A" == "$B" ]] || fail "/queries/dashboard/fingerprint not byte-stable"
echo "ok /queries/dashboard/fingerprint"

get /queries/dashboard/trace | python3 -c '
import json, sys
trace = json.load(sys.stdin)
assert isinstance(trace["traceEvents"], list), trace
' || fail "/queries/dashboard/trace content"
echo "ok /queries/dashboard/trace"

get /queries/dashboard/doctor | python3 -c '
import json, sys
report = json.load(sys.stdin)
assert report["query"] == "dashboard", report
assert report["epochsExamined"] > 0, report
assert report["topVerdict"], report  # a verdict or "healthy", never empty
for finding in report["findings"]:
    assert finding["verdict"] and finding["summary"], finding
    assert finding["suggestion"] and "evidence" in finding, finding
' || fail "/queries/dashboard/doctor content"
echo "ok /queries/dashboard/doctor"

# /profile arms the sampling profiler for a second and returns the window.
get '/profile?seconds=1&hz=199' | python3 -c '
import json, sys
profile = json.load(sys.stdin)
assert profile["hz"] == 199, profile
assert profile["ticks"] > 0, profile
assert isinstance(profile["entries"], list), profile
assert isinstance(profile["collapsed"], list), profile
' || fail "/profile content"
echo "ok /profile"

curl -s --max-time 5 -o /dev/null -w '%{http_code}' \
  "http://127.0.0.1:$PORT/nope" | grep -q 404 || fail "404 handling"
echo "ok 404"

echo "PASS: all endpoints healthy"

file(REMOVE_RECURSE
  "CMakeFiles/continuous_test.dir/continuous_test.cpp.o"
  "CMakeFiles/continuous_test.dir/continuous_test.cpp.o.d"
  "continuous_test"
  "continuous_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for e2e_pipelines_test.
# This may be replaced when dependencies are built.

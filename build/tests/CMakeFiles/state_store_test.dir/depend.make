# Empty dependencies file for state_store_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/state_store_test.dir/state_store_test.cpp.o"
  "CMakeFiles/state_store_test.dir/state_store_test.cpp.o.d"
  "state_store_test"
  "state_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/message_bus_test.dir/message_bus_test.cpp.o"
  "CMakeFiles/message_bus_test.dir/message_bus_test.cpp.o.d"
  "message_bus_test"
  "message_bus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

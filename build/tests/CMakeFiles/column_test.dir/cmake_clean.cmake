file(REMOVE_RECURSE
  "CMakeFiles/column_test.dir/column_test.cpp.o"
  "CMakeFiles/column_test.dir/column_test.cpp.o.d"
  "column_test"
  "column_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for column_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for record_batch_test.
# This may be replaced when dependencies are built.

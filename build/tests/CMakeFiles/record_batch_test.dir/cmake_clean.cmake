file(REMOVE_RECURSE
  "CMakeFiles/record_batch_test.dir/record_batch_test.cpp.o"
  "CMakeFiles/record_batch_test.dir/record_batch_test.cpp.o.d"
  "record_batch_test"
  "record_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for checkpoint_policy_test.
# This may be replaced when dependencies are built.

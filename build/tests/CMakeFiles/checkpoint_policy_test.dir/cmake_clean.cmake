file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_policy_test.dir/checkpoint_policy_test.cpp.o"
  "CMakeFiles/checkpoint_policy_test.dir/checkpoint_policy_test.cpp.o.d"
  "checkpoint_policy_test"
  "checkpoint_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

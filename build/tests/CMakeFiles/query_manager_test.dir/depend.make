# Empty dependencies file for query_manager_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/query_manager_test.dir/query_manager_test.cpp.o"
  "CMakeFiles/query_manager_test.dir/query_manager_test.cpp.o.d"
  "query_manager_test"
  "query_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

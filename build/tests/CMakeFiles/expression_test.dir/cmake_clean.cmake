file(REMOVE_RECURSE
  "CMakeFiles/expression_test.dir/expression_test.cpp.o"
  "CMakeFiles/expression_test.dir/expression_test.cpp.o.d"
  "expression_test"
  "expression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

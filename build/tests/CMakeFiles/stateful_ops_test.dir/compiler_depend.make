# Empty compiler generated dependencies file for stateful_ops_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stateful_ops_test.dir/stateful_ops_test.cpp.o"
  "CMakeFiles/stateful_ops_test.dir/stateful_ops_test.cpp.o.d"
  "stateful_ops_test"
  "stateful_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stateful_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stateful_ops_test.

# Empty dependencies file for physical_ops_test.
# This may be replaced when dependencies are built.

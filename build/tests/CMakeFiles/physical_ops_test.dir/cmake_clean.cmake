file(REMOVE_RECURSE
  "CMakeFiles/physical_ops_test.dir/physical_ops_test.cpp.o"
  "CMakeFiles/physical_ops_test.dir/physical_ops_test.cpp.o.d"
  "physical_ops_test"
  "physical_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physical_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/watermark_property_test.dir/watermark_property_test.cpp.o"
  "CMakeFiles/watermark_property_test.dir/watermark_property_test.cpp.o.d"
  "watermark_property_test"
  "watermark_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watermark_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for watermark_property_test.
# This may be replaced when dependencies are built.

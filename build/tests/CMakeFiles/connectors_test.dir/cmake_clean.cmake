file(REMOVE_RECURSE
  "CMakeFiles/connectors_test.dir/connectors_test.cpp.o"
  "CMakeFiles/connectors_test.dir/connectors_test.cpp.o.d"
  "connectors_test"
  "connectors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for connectors_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/streaming_query_test.dir/streaming_query_test.cpp.o"
  "CMakeFiles/streaming_query_test.dir/streaming_query_test.cpp.o.d"
  "streaming_query_test"
  "streaming_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

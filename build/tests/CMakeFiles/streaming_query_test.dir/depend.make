# Empty dependencies file for streaming_query_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for obs_metrics_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/obs_metrics_test.dir/obs_metrics_test.cpp.o"
  "CMakeFiles/obs_metrics_test.dir/obs_metrics_test.cpp.o.d"
  "obs_metrics_test"
  "obs_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

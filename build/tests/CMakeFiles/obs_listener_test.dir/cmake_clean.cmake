file(REMOVE_RECURSE
  "CMakeFiles/obs_listener_test.dir/obs_listener_test.cpp.o"
  "CMakeFiles/obs_listener_test.dir/obs_listener_test.cpp.o.d"
  "obs_listener_test"
  "obs_listener_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_listener_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

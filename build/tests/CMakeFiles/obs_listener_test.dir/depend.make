# Empty dependencies file for obs_listener_test.
# This may be replaced when dependencies are built.

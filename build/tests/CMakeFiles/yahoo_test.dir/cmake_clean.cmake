file(REMOVE_RECURSE
  "CMakeFiles/yahoo_test.dir/yahoo_test.cpp.o"
  "CMakeFiles/yahoo_test.dir/yahoo_test.cpp.o.d"
  "yahoo_test"
  "yahoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yahoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

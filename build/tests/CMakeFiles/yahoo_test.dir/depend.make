# Empty dependencies file for yahoo_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cc" "src/CMakeFiles/sstreaming.dir/analysis/analyzer.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/analysis/analyzer.cc.o.d"
  "/root/repo/src/baselines/flinksim.cc" "src/CMakeFiles/sstreaming.dir/baselines/flinksim.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/baselines/flinksim.cc.o.d"
  "/root/repo/src/baselines/kstreamssim.cc" "src/CMakeFiles/sstreaming.dir/baselines/kstreamssim.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/baselines/kstreamssim.cc.o.d"
  "/root/repo/src/bus/message_bus.cc" "src/CMakeFiles/sstreaming.dir/bus/message_bus.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/bus/message_bus.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/sstreaming.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/common/clock.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/sstreaming.dir/common/json.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/common/json.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/sstreaming.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sstreaming.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/sstreaming.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/connectors/bus_connectors.cc" "src/CMakeFiles/sstreaming.dir/connectors/bus_connectors.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/connectors/bus_connectors.cc.o.d"
  "/root/repo/src/connectors/file_connectors.cc" "src/CMakeFiles/sstreaming.dir/connectors/file_connectors.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/connectors/file_connectors.cc.o.d"
  "/root/repo/src/connectors/memory.cc" "src/CMakeFiles/sstreaming.dir/connectors/memory.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/connectors/memory.cc.o.d"
  "/root/repo/src/connectors/rate_source.cc" "src/CMakeFiles/sstreaming.dir/connectors/rate_source.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/connectors/rate_source.cc.o.d"
  "/root/repo/src/exec/batch_executor.cc" "src/CMakeFiles/sstreaming.dir/exec/batch_executor.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/exec/batch_executor.cc.o.d"
  "/root/repo/src/exec/continuous.cc" "src/CMakeFiles/sstreaming.dir/exec/continuous.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/exec/continuous.cc.o.d"
  "/root/repo/src/exec/query_manager.cc" "src/CMakeFiles/sstreaming.dir/exec/query_manager.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/exec/query_manager.cc.o.d"
  "/root/repo/src/exec/streaming_query.cc" "src/CMakeFiles/sstreaming.dir/exec/streaming_query.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/exec/streaming_query.cc.o.d"
  "/root/repo/src/expr/aggregate.cc" "src/CMakeFiles/sstreaming.dir/expr/aggregate.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/expr/aggregate.cc.o.d"
  "/root/repo/src/expr/expression.cc" "src/CMakeFiles/sstreaming.dir/expr/expression.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/expr/expression.cc.o.d"
  "/root/repo/src/incremental/incrementalizer.cc" "src/CMakeFiles/sstreaming.dir/incremental/incrementalizer.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/incremental/incrementalizer.cc.o.d"
  "/root/repo/src/logical/dataframe.cc" "src/CMakeFiles/sstreaming.dir/logical/dataframe.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/logical/dataframe.cc.o.d"
  "/root/repo/src/logical/plan.cc" "src/CMakeFiles/sstreaming.dir/logical/plan.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/logical/plan.cc.o.d"
  "/root/repo/src/obs/histogram.cc" "src/CMakeFiles/sstreaming.dir/obs/histogram.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/obs/histogram.cc.o.d"
  "/root/repo/src/obs/listener.cc" "src/CMakeFiles/sstreaming.dir/obs/listener.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/obs/listener.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/sstreaming.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/progress.cc" "src/CMakeFiles/sstreaming.dir/obs/progress.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/obs/progress.cc.o.d"
  "/root/repo/src/obs/tracer.cc" "src/CMakeFiles/sstreaming.dir/obs/tracer.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/obs/tracer.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/sstreaming.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/physical/operators.cc" "src/CMakeFiles/sstreaming.dir/physical/operators.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/physical/operators.cc.o.d"
  "/root/repo/src/physical/phys_op.cc" "src/CMakeFiles/sstreaming.dir/physical/phys_op.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/physical/phys_op.cc.o.d"
  "/root/repo/src/physical/stateful_ops.cc" "src/CMakeFiles/sstreaming.dir/physical/stateful_ops.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/physical/stateful_ops.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/CMakeFiles/sstreaming.dir/runtime/scheduler.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/runtime/scheduler.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/sstreaming.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/sql/parser.cc.o.d"
  "/root/repo/src/state/state_store.cc" "src/CMakeFiles/sstreaming.dir/state/state_store.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/state/state_store.cc.o.d"
  "/root/repo/src/storage/fs.cc" "src/CMakeFiles/sstreaming.dir/storage/fs.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/storage/fs.cc.o.d"
  "/root/repo/src/types/column.cc" "src/CMakeFiles/sstreaming.dir/types/column.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/types/column.cc.o.d"
  "/root/repo/src/types/data_type.cc" "src/CMakeFiles/sstreaming.dir/types/data_type.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/types/data_type.cc.o.d"
  "/root/repo/src/types/record_batch.cc" "src/CMakeFiles/sstreaming.dir/types/record_batch.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/types/record_batch.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/sstreaming.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/types/schema.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/sstreaming.dir/types/value.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/types/value.cc.o.d"
  "/root/repo/src/wal/write_ahead_log.cc" "src/CMakeFiles/sstreaming.dir/wal/write_ahead_log.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/wal/write_ahead_log.cc.o.d"
  "/root/repo/src/workloads/yahoo.cc" "src/CMakeFiles/sstreaming.dir/workloads/yahoo.cc.o" "gcc" "src/CMakeFiles/sstreaming.dir/workloads/yahoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsstreaming.a"
)

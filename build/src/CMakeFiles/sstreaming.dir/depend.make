# Empty dependencies file for sstreaming.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_yahoo_scaling.dir/bench_yahoo_scaling.cpp.o"
  "CMakeFiles/bench_yahoo_scaling.dir/bench_yahoo_scaling.cpp.o.d"
  "bench_yahoo_scaling"
  "bench_yahoo_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yahoo_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

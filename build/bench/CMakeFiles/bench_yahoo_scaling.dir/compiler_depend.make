# Empty compiler generated dependencies file for bench_yahoo_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_run_once.dir/bench_run_once.cpp.o"
  "CMakeFiles/bench_run_once.dir/bench_run_once.cpp.o.d"
  "bench_run_once"
  "bench_run_once.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_run_once.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

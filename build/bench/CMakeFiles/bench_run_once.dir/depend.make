# Empty dependencies file for bench_run_once.
# This may be replaced when dependencies are built.

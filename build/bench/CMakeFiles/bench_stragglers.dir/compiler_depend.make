# Empty compiler generated dependencies file for bench_stragglers.
# This may be replaced when dependencies are built.

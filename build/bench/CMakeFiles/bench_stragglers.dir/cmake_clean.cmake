file(REMOVE_RECURSE
  "CMakeFiles/bench_stragglers.dir/bench_stragglers.cpp.o"
  "CMakeFiles/bench_stragglers.dir/bench_stragglers.cpp.o.d"
  "bench_stragglers"
  "bench_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

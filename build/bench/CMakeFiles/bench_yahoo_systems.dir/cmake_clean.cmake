file(REMOVE_RECURSE
  "CMakeFiles/bench_yahoo_systems.dir/bench_yahoo_systems.cpp.o"
  "CMakeFiles/bench_yahoo_systems.dir/bench_yahoo_systems.cpp.o.d"
  "bench_yahoo_systems"
  "bench_yahoo_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yahoo_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

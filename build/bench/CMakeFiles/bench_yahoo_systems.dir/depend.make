# Empty dependencies file for bench_yahoo_systems.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_adaptive_batching.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_batching.dir/bench_adaptive_batching.cpp.o"
  "CMakeFiles/bench_adaptive_batching.dir/bench_adaptive_batching.cpp.o.d"
  "bench_adaptive_batching"
  "bench_adaptive_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

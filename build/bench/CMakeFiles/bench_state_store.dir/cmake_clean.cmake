file(REMOVE_RECURSE
  "CMakeFiles/bench_state_store.dir/bench_state_store.cpp.o"
  "CMakeFiles/bench_state_store.dir/bench_state_store.cpp.o.d"
  "bench_state_store"
  "bench_state_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_state_store.
# This may be replaced when dependencies are built.

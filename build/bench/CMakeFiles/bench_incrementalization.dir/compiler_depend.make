# Empty compiler generated dependencies file for bench_incrementalization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_incrementalization.dir/bench_incrementalization.cpp.o"
  "CMakeFiles/bench_incrementalization.dir/bench_incrementalization.cpp.o.d"
  "bench_incrementalization"
  "bench_incrementalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incrementalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_vectorized_exec.dir/bench_vectorized_exec.cpp.o"
  "CMakeFiles/bench_vectorized_exec.dir/bench_vectorized_exec.cpp.o.d"
  "bench_vectorized_exec"
  "bench_vectorized_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vectorized_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

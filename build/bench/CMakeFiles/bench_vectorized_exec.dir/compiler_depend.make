# Empty compiler generated dependencies file for bench_vectorized_exec.
# This may be replaced when dependencies are built.

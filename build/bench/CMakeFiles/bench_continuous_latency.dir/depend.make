# Empty dependencies file for bench_continuous_latency.
# This may be replaced when dependencies are built.

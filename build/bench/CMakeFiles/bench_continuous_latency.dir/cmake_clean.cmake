file(REMOVE_RECURSE
  "CMakeFiles/bench_continuous_latency.dir/bench_continuous_latency.cpp.o"
  "CMakeFiles/bench_continuous_latency.dir/bench_continuous_latency.cpp.o.d"
  "bench_continuous_latency"
  "bench_continuous_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_continuous_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

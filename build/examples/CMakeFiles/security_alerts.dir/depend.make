# Empty dependencies file for security_alerts.
# This may be replaced when dependencies are built.

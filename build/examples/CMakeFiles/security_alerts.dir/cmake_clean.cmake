file(REMOVE_RECURSE
  "CMakeFiles/security_alerts.dir/security_alerts.cpp.o"
  "CMakeFiles/security_alerts.dir/security_alerts.cpp.o.d"
  "security_alerts"
  "security_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sessionization.dir/sessionization.cpp.o"
  "CMakeFiles/sessionization.dir/sessionization.cpp.o.d"
  "sessionization"
  "sessionization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sessionization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

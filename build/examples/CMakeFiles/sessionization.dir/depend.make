# Empty dependencies file for sessionization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/video_quality.dir/video_quality.cpp.o"
  "CMakeFiles/video_quality.dir/video_quality.cpp.o.d"
  "video_quality"
  "video_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

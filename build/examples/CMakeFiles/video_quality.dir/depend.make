# Empty dependencies file for video_quality.
# This may be replaced when dependencies are built.

# Empty dependencies file for sql_dashboard.
# This may be replaced when dependencies are built.

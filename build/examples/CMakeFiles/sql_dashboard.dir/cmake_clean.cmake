file(REMOVE_RECURSE
  "CMakeFiles/sql_dashboard.dir/sql_dashboard.cpp.o"
  "CMakeFiles/sql_dashboard.dir/sql_dashboard.cpp.o.d"
  "sql_dashboard"
  "sql_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

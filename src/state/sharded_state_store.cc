#include "state/sharded_state_store.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "analysis/diagnostics.h"
#include "common/logging.h"
#include "storage/fs.h"

namespace sstreaming {

namespace {

constexpr char kShardCountFile[] = "SHARDS";

std::string ShardDir(const std::string& dir, int shard) {
  return dir + "/s" + std::to_string(shard);
}

/// Shard subdirectories present under `dir`, as shard indices, sorted.
std::vector<int> ListShardDirs(const std::string& dir) {
  std::vector<int> shards;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() < 2 || name[0] != 's') continue;
    char* end = nullptr;
    long v = std::strtol(name.c_str() + 1, &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) continue;
    shards.push_back(static_cast<int>(v));
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

}  // namespace

uint64_t ShardedStateStore::StableHashKey(const std::string& key) {
  // FNV-1a, 64-bit: stable across platforms and standard libraries, unlike
  // std::hash — routing is part of the durable layout.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Result<std::unique_ptr<ShardedStateStore>> ShardedStateStore::Open(
    const std::string& dir, int64_t version, Options options) {
  SS_RETURN_IF_ERROR(EnsureDir(dir));
  int num_shards = std::max(1, options.num_shards);
  const std::string meta_path = dir + "/" + kShardCountFile;
  if (FileExists(meta_path)) {
    SS_ASSIGN_OR_RETURN(std::string meta, ReadFile(meta_path));
    int on_disk = std::atoi(meta.c_str());
    if (on_disk < 1) {
      return Status::IOError("corrupt shard-count file: " + meta_path);
    }
    if (on_disk != num_shards) {
      // Pre-recovery, the plan-manifest gate (analysis/checkpoint_compat.h)
      // catches this as SS3004; this store-level check is defense in depth
      // for checkpoints that predate manifests or were opened directly.
      if (!options.allow_shard_count_mismatch) {
        return Status::FailedPrecondition(
            DiagCodeString(DiagCode::kCheckpointShardCountChanged) +
            ": state at " + dir + " was created with " +
            std::to_string(on_disk) + " shards but " +
            std::to_string(num_shards) +
            " were requested; resharding is not supported (set "
            "allow_checkpoint_incompatibility to adopt the on-disk count)");
      }
      SS_LOG(Warn) << "state at " << dir << " was created with "
                      << on_disk << " shards; ignoring requested "
                      << num_shards << " (resharding is not supported)";
    }
    num_shards = on_disk;
  } else {
    SS_RETURN_IF_ERROR(WriteFileAtomic(meta_path,
                                       std::to_string(num_shards) + "\n"));
  }
  std::vector<std::unique_ptr<LocalStateShard>> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    SS_ASSIGN_OR_RETURN(std::unique_ptr<LocalStateShard> shard,
                        LocalStateShard::Open(ShardDir(dir, s), version,
                                              options.shard_options));
    shards.push_back(std::move(shard));
  }
  return std::unique_ptr<ShardedStateStore>(
      new ShardedStateStore(std::move(shards)));
}

void ShardedStateStore::ForEach(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  for (const auto& shard : shards_) shard->ForEach(fn);
}

int64_t ShardedStateStore::loaded_version() const {
  int64_t min_version = INT64_MAX;
  for (const auto& shard : shards_) {
    min_version = std::min(min_version, shard->restored_version());
  }
  return shards_.empty() ? 0 : min_version;
}

Status ShardedStateStore::Commit(int64_t version) {
  // Shard errors propagate unchanged: wrapping would strip the failpoint
  // marker crash-injection tests use to recognize injected faults. A commit
  // that fails midway leaves earlier shards checkpointed at `version` —
  // safe, because recovery restores from the WAL-committed epoch and newer
  // shard files are ignored (then overwritten on replay).
  for (const auto& shard : shards_) {
    SS_RETURN_IF_ERROR(shard->Snapshot(version));
  }
  return Status::OK();
}

int64_t ShardedStateStore::size() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->rows();
  return total;
}

int64_t ShardedStateStore::ApproxBytes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->ApproxBytes();
  return total;
}

int64_t ShardedStateStore::bytes_written() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->bytes_written();
  return total;
}

std::vector<ShardedStateStore::ShardSize> ShardedStateStore::PerShardSizes()
    const {
  std::vector<ShardSize> sizes(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    sizes[s].rows = shards_[s]->rows();
    sizes[s].bytes = shards_[s]->ApproxBytes();
  }
  return sizes;
}

Status ShardedStateStore::TruncateAfter(const std::string& dir,
                                        int64_t version) {
  std::vector<int> shards = ListShardDirs(dir);
  if (shards.empty()) {
    // Flat (pre-sharding) layout: version files live directly under `dir`.
    return StateStore::TruncateAfter(dir, version);
  }
  for (int s : shards) {
    SS_RETURN_IF_ERROR(StateStore::TruncateAfter(ShardDir(dir, s), version));
  }
  return Status::OK();
}

Status ShardedStateStore::PurgeBefore(const std::string& dir, int64_t keep) {
  std::vector<int> shards = ListShardDirs(dir);
  if (shards.empty()) return StateStore::PurgeBefore(dir, keep);
  for (int s : shards) {
    SS_RETURN_IF_ERROR(StateStore::PurgeBefore(ShardDir(dir, s), keep));
  }
  return Status::OK();
}

}  // namespace sstreaming

#ifndef SSTREAMING_STATE_STATE_SHARD_H_
#define SSTREAMING_STATE_STATE_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "state/state_store.h"

namespace sstreaming {

/// The narrow per-shard state protocol: everything a stateful operator (or
/// the checkpoint machinery) may ask of one shard of keyed state. The split
/// mirrors faabric's StateServer verbs — pull (Get/Contains/ForEach), push
/// (Put/Append/Remove), and snapshot/restore — so a shard's backing can
/// later move out of process without touching the operators.
///
/// A shard is single-writer: within one epoch exactly one scheduler task
/// touches a given shard, so implementations need no internal locking.
class StateShardProtocol {
 public:
  virtual ~StateShardProtocol() = default;

  // -- pull --
  virtual std::optional<std::string> Get(const std::string& key) const = 0;
  virtual bool Contains(const std::string& key) const = 0;
  /// Visits every live entry. Do not mutate during iteration.
  virtual void ForEach(
      const std::function<void(const std::string& key,
                               const std::string& value)>& fn) const = 0;

  // -- push --
  virtual void Put(const std::string& key, std::string value) = 0;
  /// Appends bytes to the value under `key` (creates the entry if absent).
  /// Returns a Status — unlike Put/Remove this verb ships deltas and is the
  /// one most likely to fail partially once shards go remote.
  virtual Status Append(const std::string& key, const std::string& tail) = 0;
  virtual void Remove(const std::string& key) = 0;

  // -- snapshot / restore --
  /// Durably checkpoints all changes since the last snapshot as `version`.
  virtual Status Snapshot(int64_t version) = 0;
  /// The version this shard actually restored when it was opened.
  virtual int64_t restored_version() const = 0;

  // -- accounting --
  virtual int64_t rows() const = 0;
  virtual int64_t ApproxBytes() const = 0;
  virtual int64_t bytes_written() const = 0;
};

/// In-process shard backed by a versioned StateStore in its own directory.
/// Carries the per-shard chaos seams: `state.shard.restore` fires before the
/// backing store is opened, `state.shard.checkpoint` before each durable
/// snapshot, and `state.shard.append` before each append — so fault
/// injection can strike one shard of a group independently.
class LocalStateShard : public StateShardProtocol {
 public:
  static Result<std::unique_ptr<LocalStateShard>> Open(
      const std::string& dir, int64_t version,
      StateStore::Options options = StateStore::Options());

  std::optional<std::string> Get(const std::string& key) const override {
    return store_->Get(key);
  }
  bool Contains(const std::string& key) const override {
    return store_->Contains(key);
  }
  void ForEach(const std::function<void(const std::string&,
                                        const std::string&)>& fn)
      const override {
    store_->ForEach(fn);
  }

  void Put(const std::string& key, std::string value) override {
    store_->Put(key, std::move(value));
  }
  Status Append(const std::string& key, const std::string& tail) override;
  void Remove(const std::string& key) override { store_->Remove(key); }

  Status Snapshot(int64_t version) override;
  int64_t restored_version() const override {
    return store_->loaded_version();
  }

  int64_t rows() const override { return store_->size(); }
  int64_t ApproxBytes() const override { return store_->ApproxBytes(); }
  int64_t bytes_written() const override { return store_->bytes_written(); }

  /// Delta-vs-snapshot commit counters of the backing store (metrics).
  int64_t delta_commits() const { return store_->delta_commits(); }
  int64_t snapshot_commits() const { return store_->snapshot_commits(); }

 private:
  explicit LocalStateShard(std::unique_ptr<StateStore> store)
      : store_(std::move(store)) {}

  std::unique_ptr<StateStore> store_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_STATE_STATE_SHARD_H_

#ifndef SSTREAMING_STATE_SHARDED_STATE_STORE_H_
#define SSTREAMING_STATE_SHARDED_STATE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "state/state_shard.h"
#include "state/state_store.h"

namespace sstreaming {

/// One stateful operator-partition's keyed state, hash-partitioned into N
/// independent shards (docs/STATE_SHARDING.md). Each shard is a
/// StateShardProtocol with its own directory, checkpoint files, and memory
/// accounting, so a stateful stage can process shards as parallel scheduler
/// tasks and checkpoint/restore them independently.
///
/// Layout under `dir`:
///   SHARDS        - decimal shard count, written once at creation
///   s<K>/         - shard K's StateStore (K in [0, N))
///
/// The shard count is sticky: reopening adopts the on-disk count even if the
/// query now asks for a different one, because durable keys are already
/// routed by `hash % N`. (Operator output is shard-count-invariant, so this
/// only pins the layout, not the results.)
///
/// Routing: StableHashKey (FNV-1a, fixed across platforms and std::hash
/// implementations) of the encoded key, mod N. The routed facade
/// (Get/Put/...) serves single-threaded callers; parallel operators instead
/// partition their input with ShardOf and hand each shard() to its own task
/// — shards are single-writer and unsynchronized.
class ShardedStateStore {
 public:
  struct Options {
    Options() {}
    /// Number of independent key-hash shards (>= 1).
    int num_shards = 4;
    /// A request that disagrees with the sticky on-disk SHARDS count is an
    /// SS3004 error by default (keys are already routed hash % N on disk).
    /// Setting this adopts the on-disk count with a warning instead — the
    /// QueryOptions::allow_checkpoint_incompatibility migration override
    /// plumbs through here.
    bool allow_shard_count_mismatch = false;
    StateStore::Options shard_options;
  };

  /// Opens (creating if needed) the shard group and restores every shard to
  /// the newest durable version <= `version`.
  static Result<std::unique_ptr<ShardedStateStore>> Open(
      const std::string& dir, int64_t version, Options options = Options());

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Stable 64-bit FNV-1a of the encoded key; shard = hash % num_shards.
  static uint64_t StableHashKey(const std::string& key);
  int ShardOf(const std::string& key) const {
    return static_cast<int>(StableHashKey(key) %
                            static_cast<uint64_t>(shards_.size()));
  }
  StateShardProtocol* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }
  const StateShardProtocol* shard(int i) const {
    return shards_[static_cast<size_t>(i)].get();
  }

  // Routed facade over the shards (single-threaded use).
  std::optional<std::string> Get(const std::string& key) const {
    return shards_[static_cast<size_t>(ShardOf(key))]->Get(key);
  }
  void Put(const std::string& key, std::string value) {
    shards_[static_cast<size_t>(ShardOf(key))]->Put(key, std::move(value));
  }
  Status Append(const std::string& key, const std::string& tail) {
    return shards_[static_cast<size_t>(ShardOf(key))]->Append(key, tail);
  }
  void Remove(const std::string& key) {
    shards_[static_cast<size_t>(ShardOf(key))]->Remove(key);
  }
  bool Contains(const std::string& key) const {
    return shards_[static_cast<size_t>(ShardOf(key))]->Contains(key);
  }
  /// Visits every entry, shard 0 first — a fixed iteration grouping, though
  /// order within a shard follows the backing hash map.
  void ForEach(const std::function<void(const std::string& key,
                                        const std::string& value)>& fn) const;

  /// Oldest version any shard restored (shards checkpoint independently; a
  /// crash between shard snapshots is healed by replaying from the min).
  int64_t loaded_version() const;

  /// Snapshots every shard at `version`, in shard order.
  Status Commit(int64_t version);

  // Aggregated accounting across shards.
  int64_t size() const;
  int64_t ApproxBytes() const;
  int64_t bytes_written() const;

  /// Per-shard live state sizes, indexed by shard.
  struct ShardSize {
    int64_t rows = 0;
    int64_t bytes = 0;
  };
  std::vector<ShardSize> PerShardSizes() const;

  /// Removes durable versions > `version` in every shard under `dir`
  /// (rollback). Also handles a pre-sharding flat layout, where the version
  /// files sit directly in `dir`.
  static Status TruncateAfter(const std::string& dir, int64_t version);

  /// Drops durable files not needed to restore versions >= `keep`, per
  /// shard.
  static Status PurgeBefore(const std::string& dir, int64_t keep);

 private:
  explicit ShardedStateStore(
      std::vector<std::unique_ptr<LocalStateShard>> shards)
      : shards_(std::move(shards)) {}

  std::vector<std::unique_ptr<LocalStateShard>> shards_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_STATE_SHARDED_STATE_STORE_H_

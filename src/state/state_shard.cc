#include "state/state_shard.h"

#include "testing/failpoints.h"

namespace sstreaming {

Result<std::unique_ptr<LocalStateShard>> LocalStateShard::Open(
    const std::string& dir, int64_t version, StateStore::Options options) {
  SS_FAILPOINT("state.shard.restore");
  SS_ASSIGN_OR_RETURN(std::unique_ptr<StateStore> store,
                      StateStore::Open(dir, version, options));
  return std::unique_ptr<LocalStateShard>(
      new LocalStateShard(std::move(store)));
}

Status LocalStateShard::Append(const std::string& key,
                               const std::string& tail) {
  SS_FAILPOINT("state.shard.append");
  store_->Append(key, tail);
  return Status::OK();
}

Status LocalStateShard::Snapshot(int64_t version) {
  SS_FAILPOINT("state.shard.checkpoint");
  return store_->Commit(version);
}

}  // namespace sstreaming

#include "state/state_store.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "storage/fs.h"
#include "testing/failpoints.h"

namespace sstreaming {

namespace {

constexpr char kOpPut = 1;
constexpr char kOpRemove = 2;

void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetFixed64(const std::string& data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

void AppendPut(std::string* out, const std::string& key,
               const std::string& value) {
  out->push_back(kOpPut);
  PutFixed64(out, key.size());
  out->append(key);
  PutFixed64(out, value.size());
  out->append(value);
}

void AppendRemove(std::string* out, const std::string& key) {
  out->push_back(kOpRemove);
  PutFixed64(out, key.size());
  out->append(key);
}

Status ApplyLog(const std::string& data,
                std::unordered_map<std::string, std::string>* map) {
  size_t pos = 0;
  while (pos < data.size()) {
    char op = data[pos++];
    uint64_t klen;
    if (!GetFixed64(data, &pos, &klen) || pos + klen > data.size()) {
      return Status::IOError("corrupt state file (key)");
    }
    std::string key = data.substr(pos, klen);
    pos += klen;
    if (op == kOpPut) {
      uint64_t vlen;
      if (!GetFixed64(data, &pos, &vlen) || pos + vlen > data.size()) {
        return Status::IOError("corrupt state file (value)");
      }
      (*map)[std::move(key)] = data.substr(pos, vlen);
      pos += vlen;
    } else if (op == kOpRemove) {
      map->erase(key);
    } else {
      return Status::IOError("corrupt state file (op byte)");
    }
  }
  return Status::OK();
}

struct VersionFile {
  int64_t version;
  bool is_snapshot;
};

Result<std::vector<VersionFile>> ListVersionFiles(const std::string& dir) {
  SS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir));
  std::vector<VersionFile> files;
  for (const std::string& name : names) {
    bool snapshot = name.size() > 9 &&
                    name.compare(name.size() - 9, 9, ".snapshot") == 0;
    bool delta =
        name.size() > 6 && name.compare(name.size() - 6, 6, ".delta") == 0;
    if (!snapshot && !delta) continue;
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(name.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '.') continue;
    files.push_back(VersionFile{static_cast<int64_t>(v), snapshot});
  }
  std::sort(files.begin(), files.end(),
            [](const VersionFile& a, const VersionFile& b) {
              if (a.version != b.version) return a.version < b.version;
              return a.is_snapshot < b.is_snapshot;
            });
  return files;
}

std::string VersionPath(const std::string& dir, int64_t version,
                        bool snapshot) {
  return dir + "/" + std::to_string(version) +
         (snapshot ? ".snapshot" : ".delta");
}

}  // namespace

Result<std::unique_ptr<StateStore>> StateStore::Open(const std::string& dir,
                                                     int64_t version,
                                                     Options options) {
  SS_RETURN_IF_ERROR(EnsureDir(dir));
  std::unique_ptr<StateStore> store(new StateStore(dir, options));
  if (version > 0) {
    SS_RETURN_IF_ERROR(store->LoadUpTo(version));
    // ApplyLog fills data_ directly; charge the restored contents once here
    // so the incremental accounting in Put/Remove starts from truth.
    for (const auto& [key, value] : store->data_) {
      store->approx_bytes_ +=
          static_cast<int64_t>(key.size() + value.size()) +
          kEntryOverheadBytes;
    }
  }
  store->last_commit_version_ = store->loaded_version_;
  return store;
}

Status StateStore::LoadUpTo(int64_t version) {
  SS_FAILPOINT("state.load");
  SS_ASSIGN_OR_RETURN(std::vector<VersionFile> files, ListVersionFiles(dir_));
  // Newest snapshot at or below `version`.
  int64_t base = 0;
  for (const VersionFile& f : files) {
    if (f.is_snapshot && f.version <= version) base = f.version;
  }
  if (base > 0) {
    SS_ASSIGN_OR_RETURN(std::string data,
                        ReadFile(VersionPath(dir_, base, true)));
    SS_RETURN_IF_ERROR(ApplyLog(data, &data_));
    loaded_version_ = base;
  }
  // Apply deltas in (base, version] in order.
  for (const VersionFile& f : files) {
    if (f.is_snapshot || f.version <= base || f.version > version) continue;
    SS_ASSIGN_OR_RETURN(std::string data,
                        ReadFile(VersionPath(dir_, f.version, false)));
    SS_RETURN_IF_ERROR(ApplyLog(data, &data_));
    loaded_version_ = f.version;
  }
  return Status::OK();
}

std::optional<std::string> StateStore::Get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void StateStore::Put(const std::string& key, std::string value) {
  auto it = data_.find(key);
  if (it == data_.end()) {
    approx_bytes_ +=
        static_cast<int64_t>(key.size() + value.size()) + kEntryOverheadBytes;
    data_.emplace(key, value);
  } else {
    approx_bytes_ += static_cast<int64_t>(value.size()) -
                     static_cast<int64_t>(it->second.size());
    it->second = value;
  }
  pending_[key] = std::move(value);
}

void StateStore::Append(const std::string& key, const std::string& tail) {
  auto it = data_.find(key);
  if (it == data_.end()) {
    Put(key, tail);
    return;
  }
  approx_bytes_ += static_cast<int64_t>(tail.size());
  it->second.append(tail);
  pending_[key] = it->second;
}

void StateStore::Remove(const std::string& key) {
  auto it = data_.find(key);
  if (it != data_.end()) {
    approx_bytes_ -=
        static_cast<int64_t>(key.size() + it->second.size()) +
        kEntryOverheadBytes;
    data_.erase(it);
  }
  pending_[key] = std::nullopt;
}

bool StateStore::Contains(const std::string& key) const {
  return data_.find(key) != data_.end();
}

void StateStore::ForEach(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  for (const auto& [key, value] : data_) fn(key, value);
}

Status StateStore::Commit(int64_t version) {
  if (version <= last_commit_version_) {
    return Status::InvalidArgument(
        "state commit versions must increase: " + std::to_string(version) +
        " <= " + std::to_string(last_commit_version_));
  }
  const bool snapshot = commits_since_snapshot_ + 1 >=
                            options_.snapshot_interval ||
                        last_commit_version_ == 0;
  SS_FAILPOINT("state.commit.before_write");
  if (snapshot) SS_FAILPOINT("state.snapshot.before_write");
  std::string buf;
  if (snapshot) {
    for (const auto& [key, value] : data_) AppendPut(&buf, key, value);
    ++snapshot_commits_;
    commits_since_snapshot_ = 0;
  } else {
    for (const auto& [key, value] : pending_) {
      if (value.has_value()) {
        AppendPut(&buf, key, *value);
      } else {
        AppendRemove(&buf, key);
      }
    }
    ++delta_commits_;
    ++commits_since_snapshot_;
  }
  SS_RETURN_IF_ERROR(
      WriteFileAtomic(VersionPath(dir_, version, snapshot), buf));
  // Crash window after the version file is durable but before the store
  // adopts it: recovery must treat the on-disk version as authoritative.
  SS_FAILPOINT("state.commit.after_write");
  bytes_written_ += static_cast<int64_t>(buf.size());
  pending_.clear();
  last_commit_version_ = version;
  loaded_version_ = version;
  return Status::OK();
}

Status StateStore::TruncateAfter(const std::string& dir, int64_t version) {
  SS_RETURN_IF_ERROR(EnsureDir(dir));
  SS_ASSIGN_OR_RETURN(std::vector<VersionFile> files, ListVersionFiles(dir));
  for (const VersionFile& f : files) {
    if (f.version > version) {
      SS_RETURN_IF_ERROR(
          RemoveFile(VersionPath(dir, f.version, f.is_snapshot)));
    }
  }
  return Status::OK();
}

Status StateStore::PurgeBefore(const std::string& dir, int64_t keep) {
  SS_ASSIGN_OR_RETURN(std::vector<VersionFile> files, ListVersionFiles(dir));
  // Keep the newest snapshot <= keep and everything after it.
  int64_t base = 0;
  for (const VersionFile& f : files) {
    if (f.is_snapshot && f.version <= keep) base = f.version;
  }
  for (const VersionFile& f : files) {
    if (f.version < base || (f.version == base && !f.is_snapshot)) {
      SS_RETURN_IF_ERROR(
          RemoveFile(VersionPath(dir, f.version, f.is_snapshot)));
    }
  }
  return Status::OK();
}

}  // namespace sstreaming

#ifndef SSTREAMING_STATE_STATE_STORE_H_
#define SSTREAMING_STATE_STATE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace sstreaming {

/// A versioned key-value store holding one stateful operator's state for one
/// partition (paper §6.1). The working copy is an in-memory hash map;
/// Commit(version) durably records the changes made since the previous commit
/// as an incremental delta file, writing a full snapshot every
/// `snapshot_interval` commits so recovery replays a bounded number of
/// deltas. Checkpoints are epoch-tagged: Open(dir, v) reconstructs the newest
/// durable version <= v, and reports which version it actually loaded so the
/// engine can replay the missing epochs from the write-ahead log (checkpoints
/// may legally lag the sink, §3 "written asynchronously ... may be behind").
///
/// Layout under `dir`:
///   <version>.snapshot  - full contents at `version`
///   <version>.delta     - changes from the previous committed version
class StateStore {
 public:
  struct Options {
    Options() {}
    /// Write a full snapshot every N commits (1 = always snapshot).
    int snapshot_interval = 10;
  };

  /// Opens the store and restores the newest durable version <= `version`.
  /// `version` 0 (or a directory with no checkpoints) yields an empty store.
  static Result<std::unique_ptr<StateStore>> Open(const std::string& dir,
                                                  int64_t version,
                                                  Options options = Options());

  /// The version actually restored (<= the requested version).
  int64_t loaded_version() const { return loaded_version_; }

  std::optional<std::string> Get(const std::string& key) const;
  void Put(const std::string& key, std::string value);
  /// Appends `tail` to the value under `key` (creating the entry when
  /// absent) without copying the existing value out. The next commit
  /// records the full appended value, so durability is unchanged; the win
  /// is the in-memory path for grow-only values (e.g. join side state).
  void Append(const std::string& key, const std::string& tail);
  void Remove(const std::string& key);
  bool Contains(const std::string& key) const;
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  /// Approximate in-memory footprint of the working copy: key and value
  /// payloads plus a fixed per-entry overhead. Maintained incrementally on
  /// Put/Remove (O(1) per call), so the epoch loop can publish state-size
  /// gauges without walking the map.
  int64_t ApproxBytes() const { return approx_bytes_; }

  /// Visits every live entry. Do not mutate during iteration; collect keys
  /// first when evicting.
  void ForEach(const std::function<void(const std::string& key,
                                        const std::string& value)>& fn) const;

  /// Durably commits all changes since the last commit as `version`.
  /// Versions must be strictly increasing across commits.
  Status Commit(int64_t version);

  /// Removes durable versions > `version` (manual rollback support).
  static Status TruncateAfter(const std::string& dir, int64_t version);

  /// Removes durable files no longer needed to restore versions >= `keep`.
  static Status PurgeBefore(const std::string& dir, int64_t keep);

  /// Total bytes written to durable storage by this instance (metric).
  int64_t bytes_written() const { return bytes_written_; }
  /// Number of delta (vs snapshot) commits (metric).
  int64_t delta_commits() const { return delta_commits_; }
  int64_t snapshot_commits() const { return snapshot_commits_; }

 private:
  StateStore(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {}

  Status LoadUpTo(int64_t version);

  /// Accounting charge per map entry beyond the payload (hash-map node,
  /// string headers). A rough constant — the gauges are approximations.
  static constexpr int64_t kEntryOverheadBytes = 64;

  std::string dir_;
  Options options_;
  int64_t loaded_version_ = 0;
  int64_t approx_bytes_ = 0;
  int64_t last_commit_version_ = 0;
  int commits_since_snapshot_ = 0;
  int64_t bytes_written_ = 0;
  int64_t delta_commits_ = 0;
  int64_t snapshot_commits_ = 0;

  std::unordered_map<std::string, std::string> data_;
  // Pending changes since the last commit: value present = put, absent =
  // delete.
  std::unordered_map<std::string, std::optional<std::string>> pending_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_STATE_STATE_STORE_H_

#ifndef SSTREAMING_STORAGE_FS_H_
#define SSTREAMING_STORAGE_FS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sstreaming {

/// Durable-directory primitives used by the write-ahead log and state store.
/// Stands in for HDFS/S3 in the paper (§6.1): the engine only requires
/// durable, atomically-visible file writes, which we provide via
/// write-to-temp + rename.

/// Creates `path` (and parents) if absent.
Status EnsureDir(const std::string& path);

/// Atomically creates/replaces `path` with `data` (temp file + rename), so a
/// crash never exposes a partially written file under its final name. The
/// parent directory is fsynced after the rename so the entry survives power
/// failure (failpoint seam "fs.dirsync").
Status WriteFileAtomic(const std::string& path, const std::string& data);

/// Reads the whole file.
Result<std::string> ReadFile(const std::string& path);

/// Names (not paths) of regular files directly under `path`, sorted.
Result<std::vector<std::string>> ListDir(const std::string& path);

bool FileExists(const std::string& path);

Status RemoveFile(const std::string& path);

/// Recursively removes `path` if it exists.
Status RemoveDirRecursive(const std::string& path);

/// Creates a fresh unique temp directory for tests/examples.
Result<std::string> MakeTempDir(const std::string& prefix);

}  // namespace sstreaming

#endif  // SSTREAMING_STORAGE_FS_H_

#include "storage/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "testing/failpoints.h"

namespace sstreaming {

namespace fs = std::filesystem;

Status EnsureDir(const std::string& path) {
  SS_FAILPOINT("fs.ensure_dir");
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("create_directories(" + path + "): " +
                           ec.message());
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  SS_FAILPOINT("fs.open");
  // Torn-write injection: models a filesystem that publishes the file name
  // before all data blocks are durable (a crash between write and fsync on
  // a real FS). The caller sees a failure — the "process" died — but a
  // truncated file is left visible under the final name for recovery code
  // to cope with.
  static FailpointSite torn_site("fs.write.torn");
  const bool torn =
      torn_site.armed() && Failpoints::Instance().EvaluateTorn(&torn_site);
  const size_t write_len = torn ? data.size() / 2 : data.size();

  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(counter.fetch_add(1));
  auto cleanup_tmp = [&tmp] {
    std::error_code ec;
    fs::remove(tmp, ec);
  };
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open temp file " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(write_len));
    out.flush();
    if (!out) {
      cleanup_tmp();
      return Status::IOError("short write to " + tmp);
    }
  }
  {
    // Injected write/sync failure: the temp file must not leak.
    static FailpointSite write_site("fs.write");
    if (write_site.armed()) {
      Status s = Failpoints::Instance().Evaluate(&write_site);
      if (!s.ok()) {
        cleanup_tmp();
        return s;
      }
    }
  }
  {
    static FailpointSite rename_site("fs.rename");
    if (rename_site.armed()) {
      Status s = Failpoints::Instance().Evaluate(&rename_site);
      if (!s.ok()) {
        cleanup_tmp();
        return s;
      }
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    cleanup_tmp();
    return Status::IOError("rename to " + path + " failed");
  }
  // The rename publishes the name, but only an fsync of the parent
  // directory makes the directory entry itself durable — without it a
  // power failure can forget small single-write files (manifest, SHARDS
  // meta) that no later append would resurrect.
  {
    static FailpointSite dirsync_site("fs.dirsync");
    if (dirsync_site.armed()) {
      Status s = Failpoints::Instance().Evaluate(&dirsync_site);
      if (!s.ok()) return s;  // file is visible; only durability was lost
    }
  }
  const fs::path parent_dir = fs::path(path).parent_path();
  const std::string parent =
      parent_dir.empty() ? std::string(".") : parent_dir.string();
  int dir_fd = ::open(parent.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    // Surface fsync failures (a dying disk), but tolerate filesystems that
    // refuse to open directories at all.
    int rc = ::fsync(dir_fd);
    ::close(dir_fd);
    if (rc != 0) {
      return Status::IOError("fsync of directory " + parent + " failed");
    }
  }
  if (torn) {
    return Status::IOError("failpoint: fs.write.torn (injected torn write to " +
                           path + ")");
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  SS_FAILPOINT("fs.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::IOError("read error on " + path);
  return ss.str();
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  SS_FAILPOINT("fs.list");
  std::error_code ec;
  std::vector<std::string> names;
  fs::directory_iterator it(path, ec);
  if (ec) return Status::IOError("cannot list " + path + ": " + ec.message());
  for (const auto& entry : fs::directory_iterator(path)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status RemoveFile(const std::string& path) {
  SS_FAILPOINT("fs.remove");
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::IOError("cannot remove " + path);
  }
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("cannot remove " + path + ": " + ec.message());
  return Status::OK();
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  std::string base = fs::temp_directory_path().string();
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::string path = base + "/" + prefix + "." +
                       std::to_string(::getpid()) + "." +
                       std::to_string(counter.fetch_add(1));
    std::error_code ec;
    if (fs::create_directories(path, ec) && !ec) return path;
  }
  return Status::IOError("cannot create temp dir with prefix " + prefix);
}

}  // namespace sstreaming

#ifndef SSTREAMING_EXEC_BATCH_EXECUTOR_H_
#define SSTREAMING_EXEC_BATCH_EXECUTOR_H_

#include <vector>

#include "logical/dataframe.h"

namespace sstreaming {

/// One-shot batch execution of a static DataFrame query — the other half of
/// the paper's batch/stream unification (§7.3): the same logical plan,
/// optimizer and physical operators as streaming, run over all data at once
/// with ephemeral state ("the update function will only be called once",
/// §4.3.2). Returns the full result table.
Result<std::vector<Row>> RunBatch(const DataFrame& df,
                                  int num_partitions = 4);

/// RunBatch with rows sorted for deterministic comparison.
Result<std::vector<Row>> RunBatchSorted(const DataFrame& df,
                                        int num_partitions = 4);

}  // namespace sstreaming

#endif  // SSTREAMING_EXEC_BATCH_EXECUTOR_H_

#ifndef SSTREAMING_EXEC_STREAMING_QUERY_H_
#define SSTREAMING_EXEC_STREAMING_QUERY_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "connectors/sink.h"
#include "incremental/incrementalizer.h"
#include "logical/dataframe.h"
#include "runtime/scheduler.h"
#include "wal/write_ahead_log.h"

namespace sstreaming {

/// When the engine attempts a new incremental computation (paper §4, API
/// feature 1). Continuous triggers are served by ContinuousQuery.
struct Trigger {
  enum class Type { kProcessingTime, kOnce };

  Type type = Type::kProcessingTime;
  int64_t interval_micros = 0;  // 0 = re-trigger as soon as possible

  /// Fire every `interval_micros` of processing time.
  static Trigger ProcessingTime(int64_t interval_micros) {
    return Trigger{Type::kProcessingTime, interval_micros};
  }
  /// Run exactly one epoch then stop — the paper's "run-once" trigger used
  /// for discontinuous processing (§7.3).
  static Trigger Once() { return Trigger{Type::kOnce, 0}; }
};

struct QueryOptions {
  QueryOptions() {}

  OutputMode mode = OutputMode::kAppend;
  Trigger trigger;
  /// Directory for the write-ahead log and state store. Empty = ephemeral
  /// (no durability, no recovery) — for tests and throwaway queries.
  std::string checkpoint_dir;
  /// Shuffle fan-out for stateful stages.
  int num_partitions = 4;
  /// Cap on records ingested per epoch across all sources (0 = unlimited).
  /// The default (unlimited) IS the paper's adaptive batching (§7.3): a
  /// backlog yields one large catch-up epoch; setting a cap disables that
  /// and is used by the adaptive-batching ablation benchmark.
  int64_t max_records_per_epoch = 0;
  /// Checkpoint operator state every N epochs (paper §6.1: "these
  /// checkpoints do not need to happen on every epoch"; footnote 2 says
  /// Spark 2.3 checkpointed per epoch but planned to reduce frequency).
  /// With N > 1, recovery replays the epochs since the newest checkpoint
  /// from the write-ahead log — re-commits to the sink are idempotent.
  int state_checkpoint_interval = 1;
  /// Keep at least this many recent epochs of WAL entries and state files
  /// (0 = keep everything). Bounds checkpoint growth while preserving
  /// manual rollback over that horizon (§7.2).
  int64_t retain_epochs = 0;
  StateStore::Options state_options;
  const Clock* clock = nullptr;           // default: SystemClock
  TaskScheduler* scheduler = nullptr;     // default: InlineScheduler
  bool run_optimizer = true;
};

/// Per-epoch progress information (paper §7.4 monitoring).
struct QueryProgress {
  int64_t epoch = 0;
  int64_t rows_read = 0;
  int64_t rows_written = 0;
  int64_t watermark_micros = INT64_MIN;
  int64_t state_entries = 0;
  int64_t duration_nanos = 0;
};

/// A running (or runnable) incremental query: the microbatch execution mode
/// (paper §6.2). Each trigger plans an epoch in the write-ahead log,
/// executes it as a DAG of per-partition tasks, checkpoints state, commits
/// the sink idempotently, then records the commit — the exactly-once
/// protocol of §6.1.
class StreamingQuery {
 public:
  /// Analyzes, validates (output-mode rules §5.1), optimizes and
  /// incrementalizes the query; recovers from `checkpoint_dir` if it holds a
  /// previous run's log (replaying uncommitted epochs against the sink).
  static Result<std::unique_ptr<StreamingQuery>> Start(const DataFrame& df,
                                                       SinkPtr sink,
                                                       QueryOptions options);

  ~StreamingQuery();

  StreamingQuery(const StreamingQuery&) = delete;
  StreamingQuery& operator=(const StreamingQuery&) = delete;

  /// Runs one trigger synchronously. Returns true if an epoch executed
  /// (false when no new data was available and the query is idle).
  Result<bool> ProcessOneTrigger();

  /// Runs triggers until all currently-available input is processed (the
  /// standard way to drive a query deterministically in tests/examples).
  Status ProcessAllAvailable();

  /// Runs the trigger loop on a background thread until Stop().
  Status StartBackground();
  void Stop();
  bool IsActive() const { return background_active_.load(); }

  /// Monitoring (§7.4).
  const std::vector<QueryProgress>& recent_progress() const {
    return progress_;
  }
  int64_t last_epoch() const { return last_epoch_; }
  int64_t watermark_micros() const { return watermark_micros_; }
  const PhysicalPlan& physical_plan() const { return plan_; }
  /// Non-OK once an epoch has failed; the query must be restarted (§7.1:
  /// fix the UDF, restart from the log).
  const Status& error() const { return error_; }

  /// Manual rollback (paper §7.2): removes WAL entries and state versions
  /// after `epoch` so a restarted query recomputes from there. The query
  /// using this checkpoint must be stopped. Sink cleanup (removing output
  /// of rolled-back epochs) is sink-specific and up to the operator.
  static Status Rollback(const std::string& checkpoint_dir, int64_t epoch);

 private:
  StreamingQuery() = default;

  Status Recover();
  /// Executes `plan` and commits sink+WAL. Used for both new epochs and
  /// recovery replay.
  Status RunPlannedEpoch(const EpochPlan& plan);
  Result<EpochPlan> PlanNextEpoch();

  QueryOptions options_;
  SinkPtr sink_;
  PhysicalPlan plan_;
  std::unique_ptr<WriteAheadLog> wal_;          // null when ephemeral
  std::unique_ptr<StateManager> state_;
  std::unique_ptr<TaskScheduler> owned_scheduler_;
  TaskScheduler* scheduler_ = nullptr;
  const Clock* clock_ = nullptr;

  int64_t last_epoch_ = 0;
  int64_t last_state_commit_ = 0;
  int64_t watermark_micros_ = INT64_MIN;
  // Running per-watermark-operator candidates (min across them = global).
  std::map<int, int64_t> per_op_watermark_;
  // Offsets consumed so far per source (end of last epoch).
  std::map<std::string, std::vector<int64_t>> committed_offsets_;
  std::vector<QueryProgress> progress_;
  Status error_;

  std::thread background_;
  std::atomic<bool> background_active_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace sstreaming

#endif  // SSTREAMING_EXEC_STREAMING_QUERY_H_

#ifndef SSTREAMING_EXEC_STREAMING_QUERY_H_
#define SSTREAMING_EXEC_STREAMING_QUERY_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/plan_fingerprint.h"
#include "common/arena.h"
#include "common/clock.h"
#include "connectors/sink.h"
#include "incremental/incrementalizer.h"
#include "logical/dataframe.h"
#include "obs/metrics.h"
#include "obs/plan_profile.h"
#include "obs/progress.h"
#include "obs/query_history.h"
#include "obs/tracer.h"
#include "runtime/scheduler.h"
#include "wal/write_ahead_log.h"

namespace sstreaming {

/// When the engine attempts a new incremental computation (paper §4, API
/// feature 1). Continuous triggers are served by ContinuousQuery.
struct Trigger {
  enum class Type { kProcessingTime, kOnce };

  Type type = Type::kProcessingTime;
  int64_t interval_micros = 0;  // 0 = re-trigger as soon as possible

  /// Fire every `interval_micros` of processing time.
  static Trigger ProcessingTime(int64_t interval_micros) {
    return Trigger{Type::kProcessingTime, interval_micros};
  }
  /// Run exactly one epoch then stop — the paper's "run-once" trigger used
  /// for discontinuous processing (§7.3).
  static Trigger Once() { return Trigger{Type::kOnce, 0}; }
};

struct QueryOptions {
  QueryOptions() {}

  OutputMode mode = OutputMode::kAppend;
  Trigger trigger;
  /// Directory for the write-ahead log and state store. Empty = ephemeral
  /// (no durability, no recovery) — for tests and throwaway queries.
  std::string checkpoint_dir;
  /// Shuffle fan-out for stateful stages.
  int num_partitions = 4;
  /// Cap on records ingested per epoch across all sources (0 = unlimited).
  /// The default (unlimited) IS the paper's adaptive batching (§7.3): a
  /// backlog yields one large catch-up epoch; setting a cap disables that
  /// and is used by the adaptive-batching ablation benchmark.
  int64_t max_records_per_epoch = 0;
  /// Checkpoint operator state every N epochs (paper §6.1: "these
  /// checkpoints do not need to happen on every epoch"; footnote 2 says
  /// Spark 2.3 checkpointed per epoch but planned to reduce frequency).
  /// With N > 1, recovery replays the epochs since the newest checkpoint
  /// from the write-ahead log — re-commits to the sink are idempotent.
  int state_checkpoint_interval = 1;
  /// Keep at least this many recent epochs of WAL entries and state files
  /// (0 = keep everything). Bounds checkpoint growth while preserving
  /// manual rollback over that horizon (§7.2).
  int64_t retain_epochs = 0;
  StateStore::Options state_options;
  /// Keyed state within each (operator, partition) store is hash-sharded
  /// across this many independent shards; stateful operators process shards
  /// as parallel scheduler tasks and checkpoint/restore them independently
  /// (docs/STATE_SHARDING.md). Results are byte-identical for any count.
  /// Existing on-disk layouts keep the count they were created with.
  int num_state_shards = 4;
  const Clock* clock = nullptr;           // default: SystemClock
  TaskScheduler* scheduler = nullptr;     // default: InlineScheduler
  bool run_optimizer = true;
  /// Collapse chains of stateless operators into single-pass fused
  /// pipelines (docs/VECTORIZED_EXEC.md). Off reproduces the one-batch-per-
  /// operator execution; output is byte-identical either way.
  bool fuse_pipelines = true;
  /// Filters emit zero-copy selection views instead of copying survivors;
  /// the engine materializes views at operator boundaries that need compact
  /// storage and before the sink. Byte-identical output either way.
  bool selection_vectors = true;
  /// Intentional-migration escape hatch for the pre-recovery checkpoint
  /// compatibility gate (docs/UPGRADES.md): SS3xxx errors — key-schema or
  /// output-mode changes, stateful-operator removal, shard/partition count
  /// mismatches — normally fail Start() before any state is touched. With
  /// this set they are downgraded to warnings (same codes, riding
  /// plan_warnings) and the manifest is rewritten for the new plan. Also
  /// lets ShardedStateStore adopt a mismatched on-disk shard count.
  bool allow_checkpoint_incompatibility = false;

  /// Name used in progress events, metric log lines and log prefixes.
  std::string query_name;
  /// When > 0, arms the process-wide sampling profiler (obs/profiler.h) for
  /// this query's lifetime at the given rate (Hz, clamped to [1, 1000]).
  /// Profiles are readable any time via GET /profile?seconds=N. 0 (default)
  /// leaves the profiler to on-demand HTTP arming only.
  double profile_hz = 0;
  /// Metrics registry to record into; the query creates a private one when
  /// unset. Pass a shared registry to aggregate several queries.
  std::shared_ptr<MetricsRegistry> metrics;
  /// Epoch tracer to record spans into; the query creates a private one
  /// when unset (unless tracing is disabled).
  std::shared_ptr<EpochTracer> tracer;
  bool enable_tracing = true;
};

/// A running (or runnable) incremental query: the microbatch execution mode
/// (paper §6.2). Each trigger plans an epoch in the write-ahead log,
/// executes it as a DAG of per-partition tasks, checkpoints state, commits
/// the sink idempotently, then records the commit — the exactly-once
/// protocol of §6.1.
class StreamingQuery {
 public:
  /// Analyzes, validates (output-mode rules §5.1), optimizes and
  /// incrementalizes the query; recovers from `checkpoint_dir` if it holds a
  /// previous run's log (replaying uncommitted epochs against the sink).
  static Result<std::unique_ptr<StreamingQuery>> Start(const DataFrame& df,
                                                       SinkPtr sink,
                                                       QueryOptions options);

  ~StreamingQuery();

  StreamingQuery(const StreamingQuery&) = delete;
  StreamingQuery& operator=(const StreamingQuery&) = delete;

  /// Runs one trigger synchronously. Returns true if an epoch executed
  /// (false when no new data was available and the query is idle).
  Result<bool> ProcessOneTrigger();

  /// Runs triggers until all currently-available input is processed (the
  /// standard way to drive a query deterministically in tests/examples).
  Status ProcessAllAvailable();

  /// Runs the trigger loop on a background thread until Stop().
  Status StartBackground();
  void Stop();
  bool IsActive() const { return background_active_.load(); }

  /// Monitoring (§7.4). `recent_progress()` returns the live ring buffer —
  /// only safe while no trigger is running concurrently (tests, synchronous
  /// drivers). Concurrent observers (the HTTP server) use the snapshot
  /// accessors below.
  const std::vector<QueryProgress>& recent_progress() const
      SS_NO_THREAD_SAFETY_ANALYSIS {
    return progress_;
  }
  /// Thread-safe copy of the progress ring buffer.
  std::vector<QueryProgress> GetProgressSnapshot() const;
  /// Thread-safe copy of the most recent progress; false when no epoch has
  /// completed yet.
  bool GetLastProgress(QueryProgress* out) const;
  /// Thread-safe copy of error() (safe while triggers run concurrently).
  Status GetError() const;
  int64_t last_epoch() const { return last_epoch_; }
  int64_t watermark_micros() const { return watermark_micros_; }
  const PhysicalPlan& physical_plan() const { return plan_; }

  /// EXPLAIN ANALYZE (§7.4): the physical plan annotated with cumulative
  /// per-operator actuals — rows, batches, self CPU, output bytes, live and
  /// peak state size. Thread-safe; callable while the query runs. Also
  /// served as JSON by the observability HTTP endpoint
  /// /queries/<id>/plan (see obs/http_server.h).
  std::string ExplainAnalyze() const { return plan_profile_.Render(); }
  const PlanProfile& plan_profile() const { return plan_profile_; }

  /// Static plan-analysis warnings (SS2xxx) found at Start — unbounded
  /// state, lost watermarks, complete-mode memory. The query runs anyway;
  /// these also surface through QueryStartedEvent.plan_warnings and the
  /// `sstreaming_plan_warnings_total` counter (labeled by code).
  const std::vector<Diagnostic>& plan_warnings() const {
    return plan_warnings_;
  }

  /// The canonical plan fingerprint computed at Start (the identity the
  /// checkpoint manifest records; docs/UPGRADES.md). Immutable once the
  /// query is built, so it is safe to read concurrently — the HTTP endpoint
  /// /queries/<id>/fingerprint serves its ToJson() byte-identically across
  /// scrapes.
  const PlanFingerprint& plan_fingerprint() const { return fingerprint_; }

  /// The checkpoint directory (empty for ephemeral queries).
  const std::string& checkpoint_dir() const {
    return options_.checkpoint_dir;
  }

  /// Doctor inputs (obs/doctor.h): the scheduler's worker parallelism and
  /// the configured keyed-state shard count. Immutable after Start.
  int scheduler_parallelism() const { return scheduler_->parallelism(); }
  int num_state_shards() const { return options_.num_state_shards; }

  /// The durable history log (null for ephemeral queries). Sticky append
  /// errors surface via history()->status(); they never fail epochs.
  const QueryHistoryLog* history() const { return history_.get(); }

  /// The registry this query records into (never null after Start).
  const std::shared_ptr<MetricsRegistry>& metrics() const { return metrics_; }
  /// The epoch tracer (null when tracing is disabled).
  const std::shared_ptr<EpochTracer>& tracer() const { return tracer_; }

  /// Invoked synchronously after every completed epoch, including recovery
  /// replay. Set before driving the query (QueryManager wires this to its
  /// listener bus).
  void SetProgressCallback(std::function<void(const QueryProgress&)> cb) {
    progress_callback_ = std::move(cb);
  }
  /// Invoked exactly once when the query terminates: on Stop(), destruction,
  /// or the first failed epoch (with the failure status).
  void SetTerminationCallback(
      std::function<void(const Status&, int64_t last_epoch)> cb) {
    termination_callback_ = std::move(cb);
  }
  /// Non-OK once an epoch has failed; the query must be restarted (§7.1:
  /// fix the UDF, restart from the log). Like recent_progress(), only safe
  /// when no trigger runs concurrently; use GetError() otherwise.
  const Status& error() const SS_NO_THREAD_SAFETY_ANALYSIS { return error_; }

  /// Manual rollback (paper §7.2): removes WAL entries and state versions
  /// after `epoch` so a restarted query recomputes from there. The query
  /// using this checkpoint must be stopped. Sink cleanup (removing output
  /// of rolled-back epochs) is sink-specific and up to the operator.
  static Status Rollback(const std::string& checkpoint_dir, int64_t epoch);

 private:
  StreamingQuery() = default;

  Status Recover();
  ShardedStateStore::Options StateOptions() const;
  /// Executes `plan` and commits sink+WAL. Used for both new epochs and
  /// recovery replay.
  Status RunPlannedEpoch(const EpochPlan& plan);
  Result<EpochPlan> PlanNextEpoch();
  void BuildOpIndex();
  void NotifyTerminated();

  /// One physical-plan node, in pre-order (root first) — the skeleton
  /// per-operator progress is derived against each epoch.
  struct OpIndexEntry {
    int op_id = 0;
    std::string name;
    bool is_source = false;
    std::vector<int> child_ids;
  };

  QueryOptions options_;
  SinkPtr sink_;
  PhysicalPlan plan_;
  std::unique_ptr<WriteAheadLog> wal_;          // null when ephemeral
  std::unique_ptr<QueryHistoryLog> history_;    // null when ephemeral
  std::unique_ptr<StateManager> state_;
  std::unique_ptr<TaskScheduler> owned_scheduler_;
  TaskScheduler* scheduler_ = nullptr;
  const Clock* clock_ = nullptr;
  /// Per-epoch scratch (selection vectors); Reset() at each epoch start.
  Arena arena_;

  int64_t last_epoch_ = 0;
  int64_t last_state_commit_ = 0;
  int64_t watermark_micros_ = INT64_MIN;
  // Running per-watermark-operator candidates (min across them = global).
  std::map<int, int64_t> per_op_watermark_;
  // Offsets consumed so far per source (end of last epoch).
  std::map<std::string, std::vector<int64_t>> committed_offsets_;
  // Guards progress_ and error_ against concurrent observers (HTTP scrape
  // threads read snapshots while the trigger thread appends).
  mutable std::mutex progress_mu_;
  std::vector<QueryProgress> progress_ SS_GUARDED_BY(progress_mu_);
  std::vector<Diagnostic> plan_warnings_;
  PlanFingerprint fingerprint_;
  Status error_ SS_GUARDED_BY(progress_mu_);

  // Observability (§7.4).
  std::shared_ptr<MetricsRegistry> metrics_;
  std::shared_ptr<EpochTracer> tracer_;
  PlanProfile plan_profile_;  // internally synchronized
  std::vector<OpIndexEntry> op_index_;
  std::function<void(const QueryProgress&)> progress_callback_;
  std::function<void(const Status&, int64_t)> termination_callback_;
  std::atomic<bool> termination_notified_{false};
  // Interned profiler label for this query's name (0 until Start), and
  // whether Start armed the sampler (so termination disarms exactly once).
  uint32_t profile_query_label_ = 0;
  bool profiler_armed_ = false;
  // Stage-timing state handed from ProcessOneTrigger to RunPlannedEpoch
  // (zero during recovery replay, which skips the planning stage).
  int64_t pending_epoch_start_nanos_ = 0;
  int64_t pending_plan_nanos_ = 0;
  int64_t pending_trigger_wait_nanos_ = 0;
  // Lateness of this trigger against its scheduled fire time, measured by
  // the background loop (0 for manual triggers and recovery replay).
  int64_t pending_trigger_drift_nanos_ = 0;
  int64_t last_trigger_end_nanos_ = 0;
  std::map<std::string, int64_t> pending_backlog_rows_;
  // Age (micros) of the oldest record each source deferred at plan time.
  std::map<std::string, int64_t> pending_backlog_age_;

  std::thread background_;
  std::atomic<bool> background_active_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace sstreaming

#endif  // SSTREAMING_EXEC_STREAMING_QUERY_H_

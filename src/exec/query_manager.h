#ifndef SSTREAMING_EXEC_QUERY_MANAGER_H_
#define SSTREAMING_EXEC_QUERY_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/streaming_query.h"

namespace sstreaming {

/// Manages the streaming queries of an application (paper §1: "users can
/// manage multiple streaming queries dynamically"): start queries under
/// names, list/stop them, drive them together, and aggregate their
/// progress. Production deployments in §8 run many queries side by side
/// (ETL + alerting + dashboards) against shared sources.
class QueryManager {
 public:
  QueryManager() = default;
  ~QueryManager() { StopAll(); }

  QueryManager(const QueryManager&) = delete;
  QueryManager& operator=(const QueryManager&) = delete;

  /// Starts and registers a query under `name` (must be unique among
  /// active queries) and launches its background trigger loop.
  Status StartQuery(const std::string& name, const DataFrame& df,
                    SinkPtr sink, QueryOptions options);

  /// Starts without a background thread (caller drives it via Get()).
  Status StartQuerySynchronous(const std::string& name, const DataFrame& df,
                               SinkPtr sink, QueryOptions options);

  /// The named query, or nullptr.
  StreamingQuery* Get(const std::string& name);

  std::vector<std::string> ActiveQueryNames() const;

  /// Runs every registered query until its currently-available input is
  /// consumed (deterministic test/ETL driver).
  Status ProcessAllAvailable();

  /// Stops and unregisters one query. NotFound if absent.
  Status StopQuery(const std::string& name);

  void StopAll();

  /// Latest progress of every active query (paper §7.4 monitoring).
  std::map<std::string, QueryProgress> LatestProgress() const;

  /// First error across queries (OK if none failed).
  Status AnyError() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<StreamingQuery>> queries_;
};

/// Appends each epoch's QueryProgress as one JSON line to a file — the
/// "structured event log" operators feed into their monitoring stacks
/// (paper §7.4). Call Report() after triggers, or wire it into a driver
/// loop.
class MetricsEventLog {
 public:
  explicit MetricsEventLog(std::string path) : path_(std::move(path)) {}

  /// Appends progress entries newer than the last reported epoch.
  Status Report(const std::string& query_name, const StreamingQuery& query);

  /// Parses the log back (for tests/tools).
  Result<std::vector<Json>> ReadAll() const;

 private:
  std::string path_;
  std::map<std::string, int64_t> last_reported_;
  std::mutex mu_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_EXEC_QUERY_MANAGER_H_

#ifndef SSTREAMING_EXEC_QUERY_MANAGER_H_
#define SSTREAMING_EXEC_QUERY_MANAGER_H_

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "exec/streaming_query.h"
#include "obs/listener.h"

namespace sstreaming {

/// Manages the streaming queries of an application (paper §1: "users can
/// manage multiple streaming queries dynamically"): start queries under
/// names, list/stop them, drive them together, and aggregate their
/// progress. Production deployments in §8 run many queries side by side
/// (ETL + alerting + dashboards) against shared sources.
class ObservabilityServer;

class QueryManager {
 public:
  QueryManager();
  ~QueryManager();

  QueryManager(const QueryManager&) = delete;
  QueryManager& operator=(const QueryManager&) = delete;

  /// Starts and registers a query under `name` (must be unique among
  /// active queries) and launches its background trigger loop.
  Status StartQuery(const std::string& name, const DataFrame& df,
                    SinkPtr sink, QueryOptions options);

  /// Starts without a background thread (caller drives it via Get()).
  Status StartQuerySynchronous(const std::string& name, const DataFrame& df,
                               SinkPtr sink, QueryOptions options);

  /// The named query, or nullptr.
  StreamingQuery* Get(const std::string& name);

  /// Runs `fn` against the named query while holding the manager lock, so a
  /// concurrent StopQuery cannot destroy the query mid-call (the HTTP
  /// handlers resolve queries through this). `fn` must be brief and must not
  /// call back into the manager. Returns false when no such query is active.
  bool WithQuery(const std::string& name,
                 const std::function<void(const StreamingQuery&)>& fn) const;

  std::vector<std::string> ActiveQueryNames() const;

  /// Runs every registered query until its currently-available input is
  /// consumed (deterministic test/ETL driver).
  Status ProcessAllAvailable();

  /// Stops and unregisters one query. NotFound if absent.
  Status StopQuery(const std::string& name);

  void StopAll();

  /// Latest progress of every active query (paper §7.4 monitoring).
  std::map<std::string, QueryProgress> LatestProgress() const;

  /// First error across queries (OK if none failed).
  Status AnyError() const;

  /// Registers a listener observing every managed query's lifecycle
  /// (started → progress × N → terminated; see StreamingQueryListener).
  /// Listeners added after a query started only see its later events.
  void AddListener(std::shared_ptr<StreamingQueryListener> listener) {
    bus_.Add(std::move(listener));
  }
  void RemoveListener(const StreamingQueryListener* listener) {
    bus_.Remove(listener);
  }
  size_t num_listeners() const { return bus_.size(); }

  /// Starts the embedded observability HTTP server on 127.0.0.1:`port`
  /// (0 = ephemeral; read the bound port back via http_port()). Serves
  /// /metrics, /healthz, /queries and the per-query plan/trace endpoints
  /// for every query this manager holds — see obs/http_server.h. The server
  /// is off by default and costs nothing until started.
  Status ServeHttp(int port);
  void StopHttp();
  /// Port the HTTP server is bound to (0 when not serving).
  int http_port() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<StreamingQuery>> queries_
      SS_GUARDED_BY(mu_);
  ListenerBus bus_;  // internally synchronized
  // Separate lock: StopHttp joins the serving thread, which may be waiting
  // on mu_ inside WithQuery — holding mu_ here would deadlock.
  mutable std::mutex http_mu_;
  std::unique_ptr<ObservabilityServer> http_ SS_GUARDED_BY(http_mu_);
};

/// Appends each epoch's QueryProgress as one JSON line to a file — the
/// "structured event log" operators feed into their monitoring stacks
/// (paper §7.4). It is a StreamingQueryListener: register it on a
/// QueryManager to stream every epoch's progress to disk as it happens, or
/// call Report() manually after triggers. Every line is flushed and the
/// stream state checked before the epoch counts as reported, so a full disk
/// or revoked permission surfaces as a Status (and via status()) instead of
/// silently dropping telemetry.
class MetricsEventLog : public StreamingQueryListener {
 public:
  explicit MetricsEventLog(std::string path) : path_(std::move(path)) {}

  /// Appends progress entries newer than the last reported epoch.
  Status Report(const std::string& query_name, const StreamingQuery& query);

  /// Listener hookup: appends the event's progress line immediately.
  /// Failures are recorded in status() (the listener API has no return).
  void OnQueryProgress(const QueryProgressEvent& event) override;

  /// Sticky first write error (OK while the log is healthy).
  Status status() const;

  /// Parses the log back (for tests/tools).
  Result<std::vector<Json>> ReadAll() const;

 private:
  /// Appends one line; requires mu_ held. Updates last_reported_ only after
  /// the line is flushed and verified.
  Status AppendLineLocked(std::ofstream& out, const std::string& query_name,
                          const QueryProgress& progress) SS_REQUIRES(mu_);

  std::string path_;
  std::map<std::string, int64_t> last_reported_ SS_GUARDED_BY(mu_);
  Status status_ SS_GUARDED_BY(mu_);
  mutable std::mutex mu_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_EXEC_QUERY_MANAGER_H_

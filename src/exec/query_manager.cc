#include "exec/query_manager.h"

#include <fstream>

#include "obs/http_server.h"
#include "storage/fs.h"

namespace sstreaming {

QueryManager::QueryManager() = default;

QueryManager::~QueryManager() {
  StopHttp();
  StopAll();
}

Status QueryManager::StartQuery(const std::string& name, const DataFrame& df,
                                SinkPtr sink, QueryOptions options) {
  SS_RETURN_IF_ERROR(
      StartQuerySynchronous(name, df, std::move(sink), options));
  StreamingQuery* query;
  {
    std::lock_guard<std::mutex> lock(mu_);
    query = queries_[name].get();
  }
  return query->StartBackground();
}

Status QueryManager::StartQuerySynchronous(const std::string& name,
                                           const DataFrame& df, SinkPtr sink,
                                           QueryOptions options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queries_.count(name)) {
      return Status::AlreadyExists("query '" + name + "' is already active");
    }
  }
  if (options.query_name.empty()) options.query_name = name;
  const Clock* clock =
      options.clock != nullptr ? options.clock : SystemClock::Default();
  SS_ASSIGN_OR_RETURN(std::unique_ptr<StreamingQuery> query,
                      StreamingQuery::Start(df, std::move(sink), options));
  // Wire the query's per-epoch and termination callbacks into the listener
  // bus. Callbacks fire on the trigger-driving thread; the bus (a member)
  // outlives every managed query, including during StopAll().
  query->SetProgressCallback([this, name](const QueryProgress& progress) {
    QueryProgressEvent event;
    event.name = name;
    event.progress = progress;
    bus_.NotifyProgress(event);
  });
  query->SetTerminationCallback(
      [this, name](const Status& error, int64_t last_epoch) {
        QueryTerminatedEvent event;
        event.name = name;
        event.error = error;
        event.last_epoch = last_epoch;
        bus_.NotifyTerminated(event);
      });
  std::vector<Diagnostic> plan_warnings = query->plan_warnings();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queries_.count(name)) {
      return Status::AlreadyExists("query '" + name + "' raced registration");
    }
    queries_[name] = std::move(query);
  }
  QueryStartedEvent started;
  started.name = name;
  started.timestamp_micros = clock->NowMicros();
  started.plan_warnings = std::move(plan_warnings);
  bus_.NotifyStarted(started);
  return Status::OK();
}

StreamingQuery* QueryManager::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  return it == queries_.end() ? nullptr : it->second.get();
}

bool QueryManager::WithQuery(
    const std::string& name,
    const std::function<void(const StreamingQuery&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  if (it == queries_.end()) return false;
  fn(*it->second);
  return true;
}

std::vector<std::string> QueryManager::ActiveQueryNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& [name, query] : queries_) names.push_back(name);
  return names;
}

Status QueryManager::ProcessAllAvailable() {
  std::vector<StreamingQuery*> active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, query] : queries_) active.push_back(query.get());
  }
  for (StreamingQuery* query : active) {
    SS_RETURN_IF_ERROR(query->ProcessAllAvailable());
  }
  return Status::OK();
}

Status QueryManager::StopQuery(const std::string& name) {
  std::unique_ptr<StreamingQuery> query;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(name);
    if (it == queries_.end()) {
      return Status::NotFound("no active query '" + name + "'");
    }
    query = std::move(it->second);
    queries_.erase(it);
  }
  query->Stop();
  return Status::OK();
}

void QueryManager::StopAll() {
  std::map<std::string, std::unique_ptr<StreamingQuery>> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    taken.swap(queries_);
  }
  for (auto& [name, query] : taken) query->Stop();
}

std::map<std::string, QueryProgress> QueryManager::LatestProgress() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, QueryProgress> out;
  for (const auto& [name, query] : queries_) {
    QueryProgress last;
    if (query->GetLastProgress(&last)) out[name] = std::move(last);
  }
  return out;
}

Status QueryManager::AnyError() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, query] : queries_) {
    Status error = query->GetError();
    if (!error.ok()) return error;
  }
  return Status::OK();
}

Status QueryManager::ServeHttp(int port) {
  std::lock_guard<std::mutex> lock(http_mu_);
  if (http_ != nullptr) {
    return Status::AlreadyExists("HTTP server already serving on port " +
                                 std::to_string(http_->port()));
  }
  auto server = std::make_unique<ObservabilityServer>();
  server->MountQueryManager(this);
  SS_RETURN_IF_ERROR(server->Start(port));
  http_ = std::move(server);
  return Status::OK();
}

void QueryManager::StopHttp() {
  std::unique_ptr<ObservabilityServer> server;
  {
    std::lock_guard<std::mutex> lock(http_mu_);
    server.swap(http_);
  }
  // Stopped (and the serving thread joined) outside http_mu_; see the
  // member comment on lock ordering.
  if (server != nullptr) server->Stop();
}

int QueryManager::http_port() const {
  std::lock_guard<std::mutex> lock(http_mu_);
  return http_ != nullptr ? http_->port() : 0;
}

Status MetricsEventLog::AppendLineLocked(std::ofstream& out,
                                         const std::string& query_name,
                                         const QueryProgress& progress) {
  Json obj = progress.ToJson();
  obj.Set("query", Json::Str(query_name));
  std::string line = obj.Dump();
  line += "\n";
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  // Flush and re-check after *every* line: a full disk or revoked
  // permission must fail the epoch that hit it, not be noticed (or lost)
  // lines later.
  out.flush();
  if (!out.good()) {
    status_ = Status::IOError("failed writing metrics log " + path_ +
                              " at epoch " + std::to_string(progress.epoch) +
                              " of query '" + query_name + "'");
    return status_;
  }
  last_reported_[query_name] = progress.epoch;
  return Status::OK();
}

Status MetricsEventLog::Report(const std::string& query_name,
                               const StreamingQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t last = last_reported_[query_name];
  std::vector<const QueryProgress*> fresh;
  for (const QueryProgress& p : query.recent_progress()) {
    if (p.epoch > last) fresh.push_back(&p);
  }
  if (fresh.empty()) return Status::OK();
  std::ofstream out(path_, std::ios::app | std::ios::binary);
  if (!out) {
    status_ = Status::IOError("cannot open metrics log " + path_);
    return status_;
  }
  for (const QueryProgress* p : fresh) {
    SS_RETURN_IF_ERROR(AppendLineLocked(out, query_name, *p));
  }
  return Status::OK();
}

void MetricsEventLog::OnQueryProgress(const QueryProgressEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (event.progress.epoch <= last_reported_[event.name]) return;
  std::ofstream out(path_, std::ios::app | std::ios::binary);
  if (!out) {
    status_ = Status::IOError("cannot open metrics log " + path_);
    return;
  }
  // The listener interface cannot return a Status; failures stick in
  // status() for the operator to poll.
  AppendLineLocked(out, event.name, event.progress).ok();
}

Status MetricsEventLog::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

Result<std::vector<Json>> MetricsEventLog::ReadAll() const {
  SS_ASSIGN_OR_RETURN(std::string text, ReadFile(path_));
  std::vector<Json> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    SS_ASSIGN_OR_RETURN(Json json, Json::Parse(line));
    out.push_back(std::move(json));
  }
  return out;
}

}  // namespace sstreaming

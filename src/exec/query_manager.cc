#include "exec/query_manager.h"

#include <fstream>

#include "storage/fs.h"

namespace sstreaming {

Status QueryManager::StartQuery(const std::string& name, const DataFrame& df,
                                SinkPtr sink, QueryOptions options) {
  SS_RETURN_IF_ERROR(
      StartQuerySynchronous(name, df, std::move(sink), options));
  StreamingQuery* query;
  {
    std::lock_guard<std::mutex> lock(mu_);
    query = queries_[name].get();
  }
  return query->StartBackground();
}

Status QueryManager::StartQuerySynchronous(const std::string& name,
                                           const DataFrame& df, SinkPtr sink,
                                           QueryOptions options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queries_.count(name)) {
      return Status::AlreadyExists("query '" + name + "' is already active");
    }
  }
  SS_ASSIGN_OR_RETURN(std::unique_ptr<StreamingQuery> query,
                      StreamingQuery::Start(df, std::move(sink), options));
  std::lock_guard<std::mutex> lock(mu_);
  if (queries_.count(name)) {
    return Status::AlreadyExists("query '" + name + "' raced registration");
  }
  queries_[name] = std::move(query);
  return Status::OK();
}

StreamingQuery* QueryManager::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(name);
  return it == queries_.end() ? nullptr : it->second.get();
}

std::vector<std::string> QueryManager::ActiveQueryNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& [name, query] : queries_) names.push_back(name);
  return names;
}

Status QueryManager::ProcessAllAvailable() {
  std::vector<StreamingQuery*> active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, query] : queries_) active.push_back(query.get());
  }
  for (StreamingQuery* query : active) {
    SS_RETURN_IF_ERROR(query->ProcessAllAvailable());
  }
  return Status::OK();
}

Status QueryManager::StopQuery(const std::string& name) {
  std::unique_ptr<StreamingQuery> query;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(name);
    if (it == queries_.end()) {
      return Status::NotFound("no active query '" + name + "'");
    }
    query = std::move(it->second);
    queries_.erase(it);
  }
  query->Stop();
  return Status::OK();
}

void QueryManager::StopAll() {
  std::map<std::string, std::unique_ptr<StreamingQuery>> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    taken.swap(queries_);
  }
  for (auto& [name, query] : taken) query->Stop();
}

std::map<std::string, QueryProgress> QueryManager::LatestProgress() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, QueryProgress> out;
  for (const auto& [name, query] : queries_) {
    if (!query->recent_progress().empty()) {
      out[name] = query->recent_progress().back();
    }
  }
  return out;
}

Status QueryManager::AnyError() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, query] : queries_) {
    if (!query->error().ok()) return query->error();
  }
  return Status::OK();
}

Status MetricsEventLog::Report(const std::string& query_name,
                               const StreamingQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t& last = last_reported_[query_name];
  std::string lines;
  for (const QueryProgress& p : query.recent_progress()) {
    if (p.epoch <= last) continue;
    Json obj = Json::Object();
    obj.Set("query", Json::Str(query_name));
    obj.Set("epoch", Json::Int(p.epoch));
    obj.Set("rowsRead", Json::Int(p.rows_read));
    obj.Set("rowsWritten", Json::Int(p.rows_written));
    if (p.watermark_micros != INT64_MIN) {
      obj.Set("watermarkMicros", Json::Int(p.watermark_micros));
    }
    obj.Set("stateEntries", Json::Int(p.state_entries));
    obj.Set("durationNanos", Json::Int(p.duration_nanos));
    lines += obj.Dump();
    lines += "\n";
    last = p.epoch;
  }
  if (lines.empty()) return Status::OK();
  std::ofstream out(path_, std::ios::app | std::ios::binary);
  if (!out) return Status::IOError("cannot open metrics log " + path_);
  out.write(lines.data(), static_cast<std::streamsize>(lines.size()));
  if (!out) return Status::IOError("short write to metrics log");
  return Status::OK();
}

Result<std::vector<Json>> MetricsEventLog::ReadAll() const {
  SS_ASSIGN_OR_RETURN(std::string text, ReadFile(path_));
  std::vector<Json> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    SS_ASSIGN_OR_RETURN(Json json, Json::Parse(line));
    out.push_back(std::move(json));
  }
  return out;
}

}  // namespace sstreaming

#ifndef SSTREAMING_EXEC_CONTINUOUS_H_
#define SSTREAMING_EXEC_CONTINUOUS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "connectors/sink.h"
#include "logical/dataframe.h"
#include "wal/write_ahead_log.h"

namespace sstreaming {

/// Continuous processing mode (paper §6.3, added in Spark 2.3): long-lived
/// operators — one worker per source partition — process records as soon as
/// they arrive and push them straight to the sink, giving millisecond
/// latency instead of the microbatch task-launch floor. As in Spark 2.3,
/// only map-like queries (selection/projection/watermark over one source)
/// are supported: no shuffles, no stateful operators.
///
/// Epochs still exist but are decoupled from data movement: a master thread
/// periodically snapshots each worker's position and records start/end
/// offsets in the write-ahead log ("the master is not on the critical
/// path"). Output between the last epoch marker and a crash may be
/// re-delivered on restart (at-least-once across restarts for sinks without
/// external dedup — matching the real system's Kafka sink).
class ContinuousQuery {
 public:
  struct Options {
    Options() {}
    std::string checkpoint_dir;  // empty = no durability
    /// Cadence at which the master logs epoch offsets.
    int64_t epoch_interval_micros = 100000;
    /// Worker sleep when no data is available.
    int64_t poll_sleep_micros = 100;
    /// Max records a worker takes per poll.
    int64_t max_chunk_records = 1024;
    const Clock* clock = nullptr;
  };

  /// Validates that the query is map-like, recovers offsets from the
  /// checkpoint if present, and launches the workers and the epoch master.
  static Result<std::unique_ptr<ContinuousQuery>> Start(const DataFrame& df,
                                                        SinkPtr sink,
                                                        Options options);

  ~ContinuousQuery();

  ContinuousQuery(const ContinuousQuery&) = delete;
  ContinuousQuery& operator=(const ContinuousQuery&) = delete;

  /// Stops workers and the master, logging a final epoch.
  void Stop();

  int64_t records_processed() const { return records_processed_.load(); }
  int64_t epochs_committed() const { return epochs_committed_.load(); }
  bool IsActive() const { return active_.load(); }
  const Status& error() const { return error_; }

 private:
  ContinuousQuery() = default;

  void WorkerLoop(int partition);
  void MasterLoop();
  Status CommitEpochMarker();

  // One stateless transformation step of the map-like pipeline.
  struct Step {
    enum class Kind { kFilter, kProject };
    Kind kind;
    ExprPtr predicate;             // kFilter
    std::vector<NamedExpr> exprs;  // kProject
    SchemaPtr schema;              // kProject output schema
  };

  Result<RecordBatchPtr> ApplyPipeline(RecordBatchPtr batch) const;

  Options options_;
  SinkPtr sink_;
  SourcePtr source_;
  std::vector<Step> steps_;
  std::unique_ptr<WriteAheadLog> wal_;
  const Clock* clock_ = nullptr;

  std::vector<std::thread> workers_;
  std::thread master_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> active_{false};
  std::atomic<int64_t> records_processed_{0};
  std::atomic<int64_t> epochs_committed_{0};
  std::atomic<int64_t> chunk_counter_{0};
  std::vector<std::unique_ptr<std::atomic<int64_t>>> positions_;
  std::vector<int64_t> epoch_start_positions_;
  int64_t next_epoch_ = 1;
  Status error_ SS_GUARDED_BY(error_mu_);
  std::mutex error_mu_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_EXEC_CONTINUOUS_H_

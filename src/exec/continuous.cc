#include "exec/continuous.h"

#include <algorithm>
#include <chrono>

#include "analysis/analyzer.h"
#include "common/logging.h"
#include "optimizer/optimizer.h"

namespace sstreaming {

Result<std::unique_ptr<ContinuousQuery>> ContinuousQuery::Start(
    const DataFrame& df, SinkPtr sink, Options options) {
  if (!df.IsStreaming()) {
    return Status::InvalidArgument("continuous mode needs a streaming query");
  }
  PlanPtr optimized = Optimizer::Optimize(df.plan());
  SS_ASSIGN_OR_RETURN(PlanPtr analyzed, Analyzer::Analyze(optimized));

  std::unique_ptr<ContinuousQuery> query(new ContinuousQuery());
  query->options_ = options;
  query->sink_ = std::move(sink);
  query->clock_ =
      options.clock != nullptr ? options.clock : SystemClock::Default();

  // Walk down the single chain collecting steps; reject anything stateful.
  std::vector<Step> reversed;
  PlanPtr node = analyzed;
  while (true) {
    switch (node->kind()) {
      case LogicalPlan::Kind::kStreamScan: {
        const auto& scan = static_cast<const StreamScanNode&>(*node);
        query->source_ = scan.source();
        break;
      }
      case LogicalPlan::Kind::kFilter: {
        const auto& f = static_cast<const FilterNode&>(*node);
        Step step;
        step.kind = Step::Kind::kFilter;
        step.predicate = f.predicate();
        reversed.push_back(std::move(step));
        node = node->children()[0];
        continue;
      }
      case LogicalPlan::Kind::kProject: {
        const auto& p = static_cast<const ProjectNode&>(*node);
        Step step;
        step.kind = Step::Kind::kProject;
        step.exprs = p.exprs();
        step.schema = p.schema();
        reversed.push_back(std::move(step));
        node = node->children()[0];
        continue;
      }
      case LogicalPlan::Kind::kWithWatermark:
        // Watermarks are irrelevant without stateful operators; pass.
        node = node->children()[0];
        continue;
      default:
        return Status::UnsupportedOperation(
            "continuous processing supports only map-like queries "
            "(selection/projection over one source) in this version, as in "
            "Spark 2.3 (§6.3); found " + node->ToString());
    }
    break;
  }
  std::reverse(reversed.begin(), reversed.end());
  query->steps_ = std::move(reversed);

  const int parts = query->source_->num_partitions();
  query->positions_.reserve(static_cast<size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    query->positions_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
  query->epoch_start_positions_.assign(static_cast<size_t>(parts), 0);

  if (!options.checkpoint_dir.empty()) {
    SS_ASSIGN_OR_RETURN(WriteAheadLog wal,
                        WriteAheadLog::Open(options.checkpoint_dir + "/wal"));
    query->wal_ = std::make_unique<WriteAheadLog>(std::move(wal));
    // Recovery: resume from the last committed epoch's end offsets.
    SS_ASSIGN_OR_RETURN(std::optional<int64_t> committed,
                        query->wal_->LatestCommittedEpoch());
    if (committed.has_value()) {
      SS_ASSIGN_OR_RETURN(EpochPlan plan, query->wal_->ReadPlan(*committed));
      query->next_epoch_ = *committed + 1;
      for (const SourceOffsets& so : plan.sources) {
        for (size_t p = 0; p < so.end.size(); ++p) {
          query->positions_[p]->store(so.end[p]);
          query->epoch_start_positions_[p] = so.end[p];
        }
      }
    }
  }

  query->active_.store(true);
  for (int p = 0; p < parts; ++p) {
    query->workers_.emplace_back([q = query.get(), p] { q->WorkerLoop(p); });
  }
  query->master_ = std::thread([q = query.get()] { q->MasterLoop(); });
  return query;
}

ContinuousQuery::~ContinuousQuery() { Stop(); }

Result<RecordBatchPtr> ContinuousQuery::ApplyPipeline(
    RecordBatchPtr batch) const {
  for (const Step& step : steps_) {
    if (step.kind == Step::Kind::kFilter) {
      SS_ASSIGN_OR_RETURN(ColumnPtr mask_col,
                          step.predicate->EvalBatch(*batch));
      std::vector<uint8_t> mask(static_cast<size_t>(batch->num_rows()));
      for (int64_t i = 0; i < batch->num_rows(); ++i) {
        mask[static_cast<size_t>(i)] =
            !mask_col->IsNull(i) && mask_col->BoolAt(i) ? 1 : 0;
      }
      batch = batch->Filter(mask);
    } else {
      std::vector<ColumnPtr> columns;
      columns.reserve(step.exprs.size());
      for (const NamedExpr& e : step.exprs) {
        SS_ASSIGN_OR_RETURN(ColumnPtr col, e.expr->EvalBatch(*batch));
        columns.push_back(std::move(col));
      }
      batch = RecordBatch::Make(step.schema, std::move(columns));
    }
  }
  return batch;
}

void ContinuousQuery::WorkerLoop(int partition) {
  std::atomic<int64_t>& pos = *positions_[static_cast<size_t>(partition)];
  while (!stop_.load(std::memory_order_relaxed)) {
    auto latest = source_->LatestOffsets();
    if (!latest.ok()) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (error_.ok()) error_ = latest.status();
      return;
    }
    int64_t end = (*latest)[static_cast<size_t>(partition)];
    int64_t start = pos.load(std::memory_order_relaxed);
    if (end <= start) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.poll_sleep_micros));
      continue;
    }
    end = std::min(end, start + options_.max_chunk_records);
    auto process = [&]() -> Status {
      SS_ASSIGN_OR_RETURN(RecordBatchPtr batch,
                          source_->ReadPartition(partition, start, end));
      SS_ASSIGN_OR_RETURN(RecordBatchPtr result, ApplyPipeline(batch));
      if (result->num_rows() > 0) {
        SS_RETURN_IF_ERROR(
            sink_->CommitEpoch(chunk_counter_.fetch_add(1),
                               OutputMode::kAppend, 0, {result}));
      }
      return Status::OK();
    };
    Status s = process();
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (error_.ok()) error_ = s;
      return;
    }
    records_processed_.fetch_add(end - start, std::memory_order_relaxed);
    pos.store(end, std::memory_order_release);
  }
}

Status ContinuousQuery::CommitEpochMarker() {
  if (wal_ == nullptr) {
    ++epochs_committed_;
    return Status::OK();
  }
  EpochPlan plan;
  plan.epoch = next_epoch_;
  SourceOffsets so;
  so.source_name = source_->name();
  so.start = epoch_start_positions_;
  for (const auto& pos : positions_) so.end.push_back(pos->load());
  bool progressed = so.end != so.start;
  if (!progressed) return Status::OK();
  plan.sources.push_back(so);
  SS_RETURN_IF_ERROR(wal_->WritePlan(plan));
  SS_RETURN_IF_ERROR(wal_->WriteCommit(plan.epoch));
  epoch_start_positions_ = so.end;
  ++next_epoch_;
  ++epochs_committed_;
  return Status::OK();
}

void ContinuousQuery::MasterLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    int64_t wait = options_.epoch_interval_micros;
    while (wait > 0 && !stop_.load(std::memory_order_relaxed)) {
      int64_t chunk = std::min<int64_t>(wait, 5000);
      std::this_thread::sleep_for(std::chrono::microseconds(chunk));
      wait -= chunk;
    }
    Status s = CommitEpochMarker();
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (error_.ok()) error_ = s;
      return;
    }
  }
}

void ContinuousQuery::Stop() {
  if (!active_.load()) return;
  stop_.store(true);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (master_.joinable()) master_.join();
  CommitEpochMarker().ok();  // final marker
  active_.store(false);
}

}  // namespace sstreaming

#include "exec/batch_executor.h"

#include <algorithm>

#include "analysis/analyzer.h"
#include "incremental/incrementalizer.h"
#include "optimizer/optimizer.h"

namespace sstreaming {

Result<std::vector<Row>> RunBatch(const DataFrame& df, int num_partitions) {
  if (df.IsStreaming()) {
    return Status::InvalidArgument(
        "RunBatch requires static inputs; start a StreamingQuery for "
        "streaming sources");
  }
  PlanPtr optimized = Optimizer::Optimize(df.plan());
  SS_ASSIGN_OR_RETURN(PlanPtr analyzed, Analyzer::Analyze(optimized));
  return RunStaticPlan(analyzed, num_partitions);
}

Result<std::vector<Row>> RunBatchSorted(const DataFrame& df,
                                        int num_partitions) {
  SS_ASSIGN_OR_RETURN(std::vector<Row> rows, RunBatch(df, num_partitions));
  std::sort(rows.begin(), rows.end(), RowLess());
  return rows;
}

}  // namespace sstreaming

#include "exec/streaming_query.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <set>

#include "analysis/analyzer.h"
#include "analysis/checkpoint_compat.h"
#include "analysis/plan_analyzer.h"
#include "common/logging.h"
#include "obs/doctor.h"
#include "obs/profiler.h"
#include "optimizer/optimizer.h"
#include "state/state_store.h"
#include "storage/fs.h"
#include "testing/failpoints.h"

namespace sstreaming {

Result<std::unique_ptr<StreamingQuery>> StreamingQuery::Start(
    const DataFrame& df, SinkPtr sink, QueryOptions options) {
  if (!df.IsStreaming()) {
    return Status::InvalidArgument(
        "not a streaming query; use RunBatch for static data (§7.3)");
  }
  if (!sink->SupportsMode(options.mode)) {
    return Status::InvalidArgument(std::string("sink does not support ") +
                                   OutputModeName(options.mode) +
                                   " output mode");
  }
  // Plan: optimize (on names), re-analyze, validate (§5.1), incrementalize.
  PlanPtr logical = df.plan();
  if (options.run_optimizer) {
    logical = Optimizer::Optimize(logical);
  }
  SS_ASSIGN_OR_RETURN(PlanPtr analyzed, Analyzer::Analyze(logical));
  // Static plan analysis (§4.2 checks + unbounded-state/watermark
  // advisories): any SS1xxx error fails the start; SS2xxx warnings ride on
  // the query (listener event + metrics) and are logged once here.
  PlanAnalysis plan_analysis = PlanAnalyzer::Analyze(analyzed, options.mode);
  SS_RETURN_IF_ERROR(plan_analysis.FirstErrorStatus());

  std::unique_ptr<StreamingQuery> query(new StreamingQuery());
  query->plan_warnings_ = plan_analysis.warnings();
  // Canonical plan identity (docs/UPGRADES.md): computed for every query so
  // EXPLAIN and the /fingerprint endpoint can render it; for durable
  // queries it is also the pre-recovery compatibility gate below.
  query->fingerprint_ = ComputePlanFingerprint(
      analyzed, options.mode, options.num_partitions,
      options.num_state_shards);
  if (!options.checkpoint_dir.empty()) {
    // Diff against the manifest the previous run left behind BEFORE any
    // recovery work: an incompatible plan must fail fast with provenance
    // instead of replaying WAL epochs into mismatched state.
    SS_ASSIGN_OR_RETURN(CompatCheck compat,
                        CheckCheckpointCompatibility(options.checkpoint_dir,
                                                     query->fingerprint_));
    if (compat.analysis.has_errors() &&
        !options.allow_checkpoint_incompatibility) {
      return compat.analysis.FirstErrorStatus();
    }
    for (const Diagnostic& d : compat.analysis.diagnostics()) {
      // With the override, errors ride along as warnings under their
      // original SS3xxx code so the migration stays visible in listener
      // events, metrics, and logs.
      Diagnostic downgraded = d;
      downgraded.severity = DiagSeverity::kWarning;
      query->plan_warnings_.push_back(std::move(downgraded));
    }
  }
  query->options_ = options;
  query->sink_ = std::move(sink);
  query->clock_ = options.clock != nullptr ? options.clock
                                           : SystemClock::Default();
  if (options.scheduler != nullptr) {
    query->scheduler_ = options.scheduler;
  } else {
    query->owned_scheduler_ = std::make_unique<InlineScheduler>();
    query->scheduler_ = query->owned_scheduler_.get();
  }
  // Observability wiring (§7.4): adopt shared instruments or create private
  // ones, before recovery so replayed epochs are already instrumented.
  query->metrics_ = options.metrics != nullptr
                        ? options.metrics
                        : std::make_shared<MetricsRegistry>();
  if (options.tracer != nullptr) {
    query->tracer_ = options.tracer;
  } else if (options.enable_tracing) {
    query->tracer_ = std::make_shared<EpochTracer>();
  }
  for (const Diagnostic& w : query->plan_warnings_) {
    SS_LOG(Warn) << "plan analysis [" << options.query_name
                 << "]: " << w.Render();
    query->metrics_
        ->GetCounter("sstreaming_plan_warnings_total",
                     {{"code", DiagCodeString(w.code)}})
        ->Increment();
  }
  if (query->owned_scheduler_ != nullptr) {
    // An externally supplied scheduler may be shared across queries (and
    // outlive this one); its owner decides whether/where it reports.
    query->owned_scheduler_->set_metrics(query->metrics_.get());
  }
  // Profiler attribution label for this query; armed for the query's
  // lifetime when profile_hz asks for it (disarmed in NotifyTerminated —
  // also reached via the unique_ptr destructor on any later Start failure).
  query->profile_query_label_ = Profiler::Instance().Intern(
      options.query_name.empty() ? "<unnamed-query>" : options.query_name);
  if (options.profile_hz > 0) {
    Profiler::Instance().Arm(options.profile_hz);
    query->profiler_armed_ = true;
  }
  IncrementalizeOptions inc_options;
  inc_options.fuse_pipelines = options.fuse_pipelines;
  inc_options.selection_vectors = options.selection_vectors;
  SS_ASSIGN_OR_RETURN(
      query->plan_,
      Incrementalize(analyzed, options.num_partitions, inc_options));
  query->BuildOpIndex();

  // Initialize per-source consumed offsets to zero.
  for (const SourcePtr& source : query->plan_.sources) {
    query->committed_offsets_[source->name()] = std::vector<int64_t>(
        static_cast<size_t>(source->num_partitions()), 0);
  }

  if (!options.checkpoint_dir.empty()) {
    SS_ASSIGN_OR_RETURN(WriteAheadLog wal,
                        WriteAheadLog::Open(options.checkpoint_dir + "/wal"));
    query->wal_ = std::make_unique<WriteAheadLog>(std::move(wal));
    query->wal_->set_metrics(query->metrics_.get());
    // Open history before recovery so replayed epochs append their progress
    // lines too; the "started" line leads the run's events, with
    // recovered=true when the checkpoint already held planned epochs.
    SS_ASSIGN_OR_RETURN(
        query->history_,
        QueryHistoryLog::Open(options.checkpoint_dir, query->clock_));
    SS_ASSIGN_OR_RETURN(std::optional<int64_t> prior,
                        query->wal_->LatestPlannedEpoch());
    (void)query->history_->AppendStarted(
        options.query_name, prior.has_value(), query->plan_warnings_);
    // Persist (or refresh) the manifest before recovery so a crash at any
    // later point leaves the compatibility gate armed for the next start.
    SS_RETURN_IF_ERROR(StorePlanManifest(options.checkpoint_dir,
                                         query->fingerprint_));
    SS_RETURN_IF_ERROR(query->Recover());
  } else {
    query->state_ = std::make_unique<StateManager>(
        "", 0, query->StateOptions());
    query->state_->set_metrics(query->metrics_.get());
  }
  return query;
}

ShardedStateStore::Options StreamingQuery::StateOptions() const {
  ShardedStateStore::Options opts;
  opts.num_shards = options_.num_state_shards;
  opts.shard_options = options_.state_options;
  opts.allow_shard_count_mismatch = options_.allow_checkpoint_incompatibility;
  return opts;
}

void StreamingQuery::BuildOpIndex() {
  // Pre-order walk; a visited set keeps shared subtrees from being listed
  // twice (their stats are already per-op_id). Operators describe their own
  // profile nodes: most contribute one, a fused pipeline contributes itself
  // plus one node per original stage so per-operator row accounting still
  // ties out after fusion.
  std::set<int> seen;
  std::function<void(const PhysOp&)> walk = [&](const PhysOp& op) {
    if (seen.count(op.op_id()) > 0) return;
    std::vector<OpProfileNode> nodes;
    op.CollectProfileNodes(&nodes);
    for (OpProfileNode& node : nodes) {
      if (!seen.insert(node.op_id).second) continue;
      OpIndexEntry entry;
      entry.op_id = node.op_id;
      entry.name = node.name;
      entry.is_source = node.is_source;
      entry.child_ids = node.child_ids;
      plan_profile_.AddNode(entry.op_id, entry.name, entry.is_source,
                            entry.child_ids);
      op_index_.push_back(std::move(entry));
    }
    for (const PhysOpPtr& child : op.children()) walk(*child);
  };
  if (plan_.root != nullptr) walk(*plan_.root);
}

std::vector<QueryProgress> StreamingQuery::GetProgressSnapshot() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  return progress_;
}

bool StreamingQuery::GetLastProgress(QueryProgress* out) const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  if (progress_.empty()) return false;
  *out = progress_.back();
  return true;
}

Status StreamingQuery::GetError() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  return error_;
}

StreamingQuery::~StreamingQuery() { Stop(); }

Status StreamingQuery::Recover() {
  // A crash can leave a torn entry at the WAL tail (see RepairTornTail);
  // drop it rather than refusing to start — the epoch it described never
  // took effect and is simply recomputed.
  SS_ASSIGN_OR_RETURN(int repaired, wal_->RepairTornTail());
  if (repaired > 0) {
    SS_LOG(Warn) << "recovery repaired " << repaired
                 << " torn WAL tail entr" << (repaired == 1 ? "y" : "ies");
  }
  // Paper §6.1 step 4: find the last planned epoch; reload state at the
  // newest checkpoint at or below the last *committed* epoch; replay
  // everything after it (sinks are idempotent, so replayed commits are
  // safe); then resume defining new epochs.
  SS_ASSIGN_OR_RETURN(std::optional<int64_t> latest_planned,
                      wal_->LatestPlannedEpoch());
  SS_ASSIGN_OR_RETURN(std::optional<int64_t> latest_committed,
                      wal_->LatestCommittedEpoch());
  int64_t committed = latest_committed.value_or(0);

  state_ = std::make_unique<StateManager>(options_.checkpoint_dir + "/state",
                                          committed, StateOptions());
  state_->set_metrics(metrics_.get());
  if (!latest_planned.has_value()) return Status::OK();

  // Open every store that exists on disk so MinLoadedVersion reflects how
  // far state checkpoints lag the committed epoch (they may legally lag
  // when state_checkpoint_interval > 1). Epochs after the state restore
  // point are replayed from the log; sink re-commits are idempotent.
  SS_RETURN_IF_ERROR(state_->PreopenExisting());
  int64_t state_floor = state_->MinLoadedVersion();
  if (plan_.has_stateful && state_->num_open_stores() == 0) {
    state_floor = 0;  // stateful query that never checkpointed: replay all
  }
  last_state_commit_ = state_floor;
  int64_t replay_from = std::min(state_floor, committed) + 1;
  for (int64_t e = replay_from; e <= *latest_planned; ++e) {
    auto plan = wal_->ReadPlan(e);
    if (!plan.ok()) {
      if (plan.status().IsNotFound()) continue;  // hole after rollback
      return plan.status();
    }
    SS_RETURN_IF_ERROR(RunPlannedEpoch(*plan));
  }
  // Adopt the consumed offsets / watermark of the last replayed or
  // committed epoch.
  if (last_epoch_ < *latest_planned) {
    // Nothing replayed (everything committed): rebuild cursor state from
    // the last plan.
    SS_ASSIGN_OR_RETURN(EpochPlan plan, wal_->ReadPlan(*latest_planned));
    last_epoch_ = plan.epoch;
    watermark_micros_ = plan.watermark_micros;
    for (const SourceOffsets& so : plan.sources) {
      committed_offsets_[so.source_name] = so.end;
    }
  }
  // The commit record carries the watermark as advanced by the epoch's own
  // data; prefer it over the plan's pre-epoch watermark.
  if (latest_committed.has_value()) {
    auto commit_wm = wal_->ReadCommitWatermark(*latest_committed);
    if (commit_wm.ok() && *commit_wm > watermark_micros_) {
      watermark_micros_ = *commit_wm;
    }
  }
  return Status::OK();
}

Result<EpochPlan> StreamingQuery::PlanNextEpoch() {
  EpochPlan plan;
  plan.epoch = last_epoch_ + 1;
  plan.watermark_micros = watermark_micros_;
  int64_t budget = options_.max_records_per_epoch;
  bool any_new = false;
  pending_backlog_rows_.clear();
  pending_backlog_age_.clear();
  for (const SourcePtr& source : plan_.sources) {
    SS_ASSIGN_OR_RETURN(std::vector<int64_t> latest,
                        source->LatestOffsets());
    std::vector<int64_t>& start = committed_offsets_[source->name()];
    if (latest.size() != start.size()) {
      return Status::Internal("source repartitioned mid-query: " +
                              source->name());
    }
    std::vector<int64_t> end = latest;
    if (options_.max_records_per_epoch > 0) {
      // Fixed-size batching (adaptive batching disabled): cap the total
      // records taken this epoch, spread across partitions.
      int64_t per_part = std::max<int64_t>(
          1, budget / static_cast<int64_t>(start.size()));
      for (size_t p = 0; p < end.size(); ++p) {
        end[p] = std::min(end[p], start[p] + per_part);
      }
    }
    int64_t backlog = 0;
    int64_t oldest_deferred = 0;
    for (size_t p = 0; p < end.size(); ++p) {
      if (end[p] < start[p]) {
        return Status::Internal("source offsets moved backwards: " +
                                source->name());
      }
      if (end[p] > start[p]) any_new = true;
      backlog += latest[p] - end[p];  // deferred by max_records_per_epoch
      if (latest[p] > end[p]) {
        int64_t ingest = source->OldestIngestMicros(static_cast<int>(p),
                                                    end[p], latest[p]);
        if (ingest > 0 && (oldest_deferred == 0 || ingest < oldest_deferred)) {
          oldest_deferred = ingest;
        }
      }
    }
    pending_backlog_rows_[source->name()] = backlog;
    pending_backlog_age_[source->name()] =
        oldest_deferred > 0
            ? std::max<int64_t>(0, clock_->NowMicros() - oldest_deferred)
            : 0;
    plan.sources.push_back(SourceOffsets{source->name(), start, end});
  }
  if (!any_new) plan.epoch = -1;  // sentinel: nothing to do
  return plan;
}

Status StreamingQuery::RunPlannedEpoch(const EpochPlan& plan) {
  // Stage timing: ProcessOneTrigger seeds the epoch start (taken before
  // planning) plus the planning duration; recovery replay enters directly,
  // so its epochs have no plan or trigger-wait stage.
  int64_t t0 = pending_epoch_start_nanos_ != 0 ? pending_epoch_start_nanos_
                                               : MonotonicNanos();
  int64_t plan_nanos = pending_plan_nanos_;
  int64_t trigger_wait = pending_trigger_wait_nanos_;
  int64_t trigger_drift = pending_trigger_drift_nanos_;
  std::map<std::string, int64_t> backlog = std::move(pending_backlog_rows_);
  std::map<std::string, int64_t> backlog_age =
      std::move(pending_backlog_age_);
  pending_epoch_start_nanos_ = 0;
  pending_plan_nanos_ = 0;
  pending_trigger_wait_nanos_ = 0;
  pending_trigger_drift_nanos_ = 0;
  pending_backlog_rows_.clear();
  pending_backlog_age_.clear();
  LogContext log_ctx(options_.query_name, plan.epoch);

  // Profiler attribution: everything the trigger thread does this epoch
  // samples under this query's label; operators and stages refine the word
  // below (obs/profiler.h). All no-ops while the sampler is disarmed.
  ProfileQueryScope prof_query(profile_query_label_);
  static const uint32_t kStageExecute = Profiler::Instance().Intern("execute");
  static const uint32_t kStageCheckpoint =
      Profiler::Instance().Intern("checkpoint");
  static const uint32_t kStageCommit = Profiler::Instance().Intern("commit");

  // Recycle per-epoch scratch; the previous epoch's output was materialized
  // before commit, so no selection view can still alias the arena.
  arena_.Reset();

  ExecContext ctx;
  ctx.epoch = plan.epoch;
  ctx.watermark_micros = plan.watermark_micros;
  ctx.mode = options_.mode;
  ctx.scheduler = scheduler_;
  ctx.state = state_.get();
  ctx.clock = clock_;
  ctx.tracer = tracer_.get();
  ctx.arena = &arena_;
  for (const SourceOffsets& so : plan.sources) {
    ctx.offsets[so.source_name] = {so.start, so.end};
  }

  int64_t exec_t0 = MonotonicNanos();
  std::vector<RecordBatchPtr> output;
  {
    ProfileStageScope prof_stage(kStageExecute);
    SS_ASSIGN_OR_RETURN(output, plan_.root->Execute(&ctx));
    // Forced materialization boundary: the sink sees compact batches, never
    // selection views (docs/VECTORIZED_EXEC.md).
    for (RecordBatchPtr& b : output) b = RecordBatch::Materialize(b);
  }
  int64_t exec_total = MonotonicNanos() - exec_t0;

  // §6.1 commit protocol: checkpoint state, then commit the sink, then log
  // the commit. A crash between any two steps is repaired by replaying this
  // epoch (idempotent sink, state restored to the pre-epoch version). The
  // epoch.* failpoints sit exactly in those crash windows; the chaos
  // harness drives each of them.
  SS_FAILPOINT("epoch.before_checkpoint");
  int64_t ckpt_t0 = MonotonicNanos();
  {
    ProfileStageScope prof_stage(kStageCheckpoint);
    if (plan_.has_stateful) {
      const int interval = options_.state_checkpoint_interval;
      if (interval <= 1 || plan.epoch % interval == 0) {
        SS_RETURN_IF_ERROR(state_->CommitAll(plan.epoch));
        last_state_commit_ = plan.epoch;
      }
    }
  }
  int64_t ckpt_end = MonotonicNanos();
  int num_keys = options_.mode == OutputMode::kUpdate
                     ? plan_.num_key_columns
                     : 0;
  OutputMode sink_mode = options_.mode;
  if (sink_mode == OutputMode::kUpdate && num_keys == 0) {
    // Update mode on a keyless (map-only / stateful-op) query degenerates
    // to append: every emitted row is new.
    sink_mode = OutputMode::kAppend;
  }
  SS_FAILPOINT("epoch.before_sink_commit");
  // Time Sink::CommitEpoch alone (the sink-bound doctor signal); the
  // broader commit stage below also covers the WAL commit and retention.
  int64_t sink_t0 = MonotonicNanos();
  {
    ProfileStageScope prof_stage(kStageCommit);
    SS_RETURN_IF_ERROR(
        sink_->CommitEpoch(plan.epoch, sink_mode, num_keys, output));
  }
  int64_t sink_commit_nanos = MonotonicNanos() - sink_t0;
  // The classic at-least-once window: output delivered, commit not yet
  // logged. Replay re-delivers; the sink's idempotence deduplicates.
  SS_FAILPOINT("epoch.after_sink_commit");

  // Advance cursors and the watermark for the next epoch (§4.3.1: the
  // watermark moves at epoch boundaries using event times seen so far).
  last_epoch_ = plan.epoch;
  for (const SourceOffsets& so : plan.sources) {
    committed_offsets_[so.source_name] = so.end;
  }
  if (plan.watermark_micros > watermark_micros_) {
    watermark_micros_ = plan.watermark_micros;  // recovery replay case
  }
  // Fold this epoch's per-operator candidates into the running per-operator
  // maxima, then advance the global watermark to the MINIMUM across
  // watermarked inputs that have reported data — the safe policy when a
  // query has several event-time streams (each input's lateness bound must
  // hold). The global watermark itself never regresses.
  for (const auto& [op_id, candidate] : ctx.observed_watermarks) {
    auto it = per_op_watermark_.find(op_id);
    if (it == per_op_watermark_.end() || candidate > it->second) {
      per_op_watermark_[op_id] = candidate;
    }
  }
  if (!per_op_watermark_.empty()) {
    int64_t combined = INT64_MAX;
    for (const auto& [op_id, candidate] : per_op_watermark_) {
      combined = std::min(combined, candidate);
    }
    if (combined > watermark_micros_) watermark_micros_ = combined;
  }
  if (wal_ != nullptr) {
    SS_RETURN_IF_ERROR(wal_->WriteCommit(plan.epoch, watermark_micros_));
    // Retention: drop history older than the configured horizon, but never
    // past the newest state checkpoint (recovery must be able to replay
    // from it).
    if (options_.retain_epochs > 0) {
      int64_t keep = last_epoch_ - options_.retain_epochs + 1;
      if (plan_.has_stateful) keep = std::min(keep, last_state_commit_);
      if (keep > 1) {
        SS_RETURN_IF_ERROR(wal_->PurgeBefore(keep));
        SS_RETURN_IF_ERROR(state_->PurgeBefore(keep));
      }
    }
  }
  int64_t commit_end = MonotonicNanos();

  // End-to-end latency (sink commit time minus source ingest time),
  // row-weighted per output batch. Batches that lost their stamp in a
  // materializing operator fall back to the epoch's oldest source ingest —
  // conservative (never under-reports) and exact for single-source epochs.
  LogHistogram e2e_hist;
  {
    int64_t commit_micros = clock_->NowMicros();
    int64_t epoch_min_ingest = ctx.MinIngestMicros();
    LogHistogram* lifetime =
        metrics_ != nullptr
            ? metrics_->GetHistogram("sstreaming_e2e_latency_micros")
            : nullptr;
    for (const RecordBatchPtr& b : output) {
      if (b->num_rows() == 0) continue;
      int64_t ingest = b->ingest_micros() > 0 ? b->ingest_micros()
                                              : epoch_min_ingest;
      if (ingest <= 0) continue;  // undated: nothing to measure
      int64_t delta = std::max<int64_t>(0, commit_micros - ingest);
      e2e_hist.RecordN(delta, b->num_rows());
      // Same (value, weight) stream into the lifetime series, so merging
      // the per-epoch summaries reproduces it bucket-for-bucket (tested).
      if (lifetime != nullptr) lifetime->RecordN(delta, b->num_rows());
    }
  }

  // Memory accounting (§7.4): live state size per stateful operator, read
  // once per epoch (not per row) so the cost is one map walk.
  std::map<int, StateManager::OpStateSize> state_sizes =
      state_->PerOpSizes();
  std::map<int, std::vector<StateManager::OpStateSize>> shard_sizes =
      state_->PerOpShardSizes();

  QueryProgress progress;
  progress.epoch = plan.epoch;
  progress.rows_read = ctx.rows_read;
  for (const RecordBatchPtr& b : output) progress.rows_written += b->num_rows();
  progress.watermark_micros = watermark_micros_;
  if (watermark_micros_ != INT64_MIN) {
    progress.watermark_lag_micros =
        std::max<int64_t>(0, clock_->NowMicros() - watermark_micros_);
  }
  progress.trigger_drift_nanos = trigger_drift;
  progress.e2e_latency = LatencySummary::FromHistogram(e2e_hist);
  progress.state_entries = state_->TotalEntries();
  for (const auto& [op_id, size] : state_sizes) {
    (void)op_id;
    progress.state_bytes += size.bytes;
  }
  progress.trigger_wait_nanos = trigger_wait;
  progress.plan_nanos = plan_nanos;
  // Source-scan leaves run their partition reads inside their own Execute,
  // so their inclusive wall times are disjoint from each other; attribute
  // them as the epoch's "source read" stage and the rest of the DAG as
  // "exec".
  int64_t source_read = 0;
  {
    std::lock_guard<std::mutex> lock(ctx.metrics_mu);
    for (const OpIndexEntry& entry : op_index_) {
      if (!entry.is_source) continue;
      auto it = ctx.op_stats.find(entry.op_id);
      if (it != ctx.op_stats.end()) source_read += it->second.wall_nanos;
    }
  }
  source_read = std::min(source_read, exec_total);
  progress.source_read_nanos = source_read;
  progress.exec_nanos = exec_total - source_read;
  progress.checkpoint_nanos = ckpt_end - ckpt_t0;
  progress.commit_nanos = commit_end - ckpt_end;
  progress.sink_commit_nanos = sink_commit_nanos;
  // `other` absorbs the unattributed remainder (context setup, watermark
  // bookkeeping) so the stages always sum to the epoch duration.
  int64_t accounted = plan_nanos + exec_total + progress.checkpoint_nanos +
                      progress.commit_nanos;
  progress.other_nanos = std::max<int64_t>(0, (commit_end - t0) - accounted);
  progress.duration_nanos = progress.StageSumNanos();
  SS_DCHECK(progress.duration_nanos == progress.StageSumNanos());

  // Per-source input summaries (rates over the processing duration; backlog
  // from plan time when max_records_per_epoch capped the batch).
  double secs = static_cast<double>(progress.duration_nanos) / 1e9;
  {
    std::lock_guard<std::mutex> lock(ctx.metrics_mu);
    for (const SourceOffsets& so : plan.sources) {
      SourceProgress sp;
      sp.name = so.source_name;
      auto it = ctx.source_rows.find(so.source_name);
      if (it != ctx.source_rows.end()) sp.rows = it->second;
      sp.rows_per_sec =
          secs > 0 ? static_cast<double>(sp.rows) / secs : 0;
      auto bit = backlog.find(so.source_name);
      if (bit != backlog.end()) sp.backlog_rows = bit->second;
      auto ait = backlog_age.find(so.source_name);
      if (ait != backlog_age.end()) sp.backlog_age_micros = ait->second;
      progress.sources.push_back(std::move(sp));
    }
    // Per-operator summaries, in plan pre-order. rows_in is the children's
    // combined output; cpu is the operator's inclusive wall time minus its
    // children's (self time).
    for (const OpIndexEntry& entry : op_index_) {
      OperatorProgress op;
      op.op_id = entry.op_id;
      op.name = entry.name;
      int64_t wall = 0;
      auto it = ctx.op_stats.find(entry.op_id);
      if (it != ctx.op_stats.end()) {
        op.rows_out = it->second.rows_out;
        op.batches = it->second.batches;
        op.output_bytes = it->second.bytes_out;
        op.tasks = it->second.tasks;
        op.queue_wait_nanos = it->second.queue_wait_nanos;
        op.task_run_nanos = it->second.task_run_nanos;
        op.max_task_run_nanos = it->second.max_task_run_nanos;
        progress.queue_wait_nanos += op.queue_wait_nanos;
        wall = it->second.wall_nanos;
      }
      auto sit = state_sizes.find(entry.op_id);
      if (sit != state_sizes.end()) {
        op.state_rows = sit->second.rows;
        op.state_bytes = sit->second.bytes;
        auto shit = shard_sizes.find(entry.op_id);
        if (shit != shard_sizes.end()) {
          for (const StateManager::OpStateSize& ss : shit->second) {
            op.shard_state.emplace_back(ss.rows, ss.bytes);
          }
        }
      }
      int64_t children_wall = 0;
      for (int child_id : entry.child_ids) {
        auto cit = ctx.op_stats.find(child_id);
        if (cit != ctx.op_stats.end()) {
          op.rows_in += cit->second.rows_out;
          children_wall += cit->second.wall_nanos;
        }
      }
      op.cpu_nanos = std::max<int64_t>(0, wall - children_wall);
      progress.operators.push_back(std::move(op));
    }
  }

  if (metrics_ != nullptr) {
    metrics_->GetCounter("sstreaming_epochs_total")->Increment();
    metrics_->GetCounter("sstreaming_rows_read_total")
        ->Increment(progress.rows_read);
    metrics_->GetCounter("sstreaming_rows_written_total")
        ->Increment(progress.rows_written);
    metrics_->GetHistogram("sstreaming_epoch_duration_nanos")
        ->Record(progress.duration_nanos);
    if (progress.watermark_micros != INT64_MIN) {
      metrics_->GetGauge("sstreaming_watermark_micros")
          ->Set(progress.watermark_micros);
      metrics_->GetGauge("sstreaming_watermark_lag_micros")
          ->Set(progress.watermark_lag_micros);
    }
    if (progress.trigger_drift_nanos > 0) {
      metrics_->GetHistogram("sstreaming_trigger_drift_nanos")
          ->Record(progress.trigger_drift_nanos);
    }
    for (const SourceProgress& sp : progress.sources) {
      metrics_->GetCounter("sstreaming_source_rows_total",
                           {{"source", sp.name}})
          ->Increment(sp.rows);
      metrics_->GetGauge("sstreaming_source_backlog_rows",
                         {{"source", sp.name}})
          ->Set(sp.backlog_rows);
      metrics_->GetGauge("sstreaming_source_backlog_age_micros",
                         {{"source", sp.name}})
          ->Set(sp.backlog_age_micros);
    }
    for (const OperatorProgress& op : progress.operators) {
      MetricLabels labels{{"op", op.name},
                          {"op_id", std::to_string(op.op_id)}};
      metrics_->GetCounter("sstreaming_operator_rows_in_total", labels)
          ->Increment(op.rows_in);
      metrics_->GetCounter("sstreaming_operator_rows_out_total", labels)
          ->Increment(op.rows_out);
      metrics_->GetCounter("sstreaming_operator_batches_total", labels)
          ->Increment(op.batches);
      metrics_->GetCounter("sstreaming_operator_cpu_nanos_total", labels)
          ->Increment(op.cpu_nanos);
      if (op.tasks != 0) {
        metrics_->GetCounter("sstreaming_operator_queue_wait_nanos_total",
                             labels)
            ->Increment(op.queue_wait_nanos);
      }
    }
    if (progress.sink_commit_nanos > 0) {
      metrics_->GetHistogram("sstreaming_sink_commit_nanos")
          ->Record(progress.sink_commit_nanos);
    }
    // Arena accounting: lifetime bytes handed out and the bytes currently
    // parked in reusable chunks.
    metrics_->GetGauge("sstreaming_arena_allocated_bytes_total")
        ->Set(arena_.bytes_allocated());
    metrics_->GetGauge("sstreaming_arena_reserved_bytes")
        ->Set(arena_.bytes_reserved());
    // Memory-accounting gauges: live state size per stateful operator,
    // totals plus the per-shard breakdown (summed over partitions).
    for (const auto& [op_id, size] : state_sizes) {
      MetricLabels labels{{"op_id", std::to_string(op_id)}};
      metrics_->GetGauge("sstreaming_state_rows", labels)->Set(size.rows);
      metrics_->GetGauge("sstreaming_state_bytes", labels)->Set(size.bytes);
    }
    for (const auto& [op_id, sizes] : shard_sizes) {
      for (size_t s = 0; s < sizes.size(); ++s) {
        MetricLabels labels{{"op_id", std::to_string(op_id)},
                            {"shard", std::to_string(s)}};
        metrics_->GetGauge("sstreaming_state_shard_rows", labels)
            ->Set(sizes[s].rows);
        metrics_->GetGauge("sstreaming_state_shard_bytes", labels)
            ->Set(sizes[s].bytes);
      }
    }
  }

  if (tracer_ != nullptr) {
    // The per-stage spans tile the epoch span: plan | execute | checkpoint |
    // commit | finalize, in timeline order (per-operator spans nest inside
    // "execute", recorded by PhysOp::Execute).
    if (plan_nanos > 0) {
      tracer_->AddSpan("plan", "stage", t0, plan_nanos, plan.epoch);
    }
    tracer_->AddSpan("execute", "stage", exec_t0, exec_total, plan.epoch);
    tracer_->AddSpan("checkpoint", "stage", ckpt_t0,
                     progress.checkpoint_nanos, plan.epoch);
    tracer_->AddSpan("commit", "stage", ckpt_end, progress.commit_nanos,
                     plan.epoch);
    if (progress.other_nanos > 0) {
      tracer_->AddSpan("finalize", "stage", commit_end, progress.other_nanos,
                       plan.epoch);
    }
    tracer_->AddSpan("epoch-" + std::to_string(plan.epoch), "epoch", t0,
                     progress.duration_nanos, plan.epoch);
  }

  plan_profile_.RecordEpoch(progress);
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    progress_.push_back(progress);
    if (progress_.size() > 256) {
      progress_.erase(progress_.begin(), progress_.begin() + 128);
    }
  }
  // Telemetry, not state: a failed history append must not fail the epoch
  // (the error is sticky in history_->status() and logged once).
  if (history_ != nullptr) {
    (void)history_->AppendProgress(options_.query_name, progress);
  }
  if (progress_callback_) progress_callback_(progress);
  return Status::OK();
}

Result<bool> StreamingQuery::ProcessOneTrigger() {
  Status prior = GetError();
  if (!prior.ok()) {
    return Status::FailedPrecondition(
        "query previously failed (" + prior.ToString() +
        "); fix the code and restart from the checkpoint (§7.1)");
  }
  int64_t now = MonotonicNanos();
  pending_trigger_wait_nanos_ =
      last_trigger_end_nanos_ != 0 ? now - last_trigger_end_nanos_ : 0;
  pending_epoch_start_nanos_ = now;
  SS_ASSIGN_OR_RETURN(EpochPlan plan, PlanNextEpoch());
  if (plan.epoch < 0) {
    // No new data: idle trigger, nothing to time.
    pending_epoch_start_nanos_ = 0;
    pending_trigger_wait_nanos_ = 0;
    pending_trigger_drift_nanos_ = 0;
    pending_backlog_age_.clear();
    last_trigger_end_nanos_ = MonotonicNanos();
    return false;
  }
  // Write the plan to the log *before* executing (§6.1 step 1).
  if (wal_ != nullptr) {
    SS_RETURN_IF_ERROR(wal_->WritePlan(plan));
  }
  pending_plan_nanos_ = MonotonicNanos() - now;
  Status s = RunPlannedEpoch(plan);
  last_trigger_end_nanos_ = MonotonicNanos();
  if (!s.ok()) {
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      error_ = s;
    }
    NotifyTerminated();
    return s;
  }
  return true;
}

Status StreamingQuery::ProcessAllAvailable() {
  while (true) {
    SS_ASSIGN_OR_RETURN(bool ran, ProcessOneTrigger());
    if (!ran) return Status::OK();
  }
}

Status StreamingQuery::StartBackground() {
  if (background_active_.load()) {
    return Status::FailedPrecondition("query already running");
  }
  stop_requested_.store(false);
  background_active_.store(true);
  background_ = std::thread([this] {
    // Scheduled fire time of the next trigger (0 = none): the interval is
    // anchored to the previous trigger's start, so sustained drift means
    // epochs are outrunning the interval, not just one slow sleep.
    int64_t scheduled_nanos = 0;
    while (!stop_requested_.load()) {
      int64_t t0 = MonotonicNanos();
      pending_trigger_drift_nanos_ =
          scheduled_nanos != 0 ? std::max<int64_t>(0, t0 - scheduled_nanos)
                               : 0;
      scheduled_nanos = options_.trigger.interval_micros > 0
                            ? t0 + options_.trigger.interval_micros * 1000
                            : 0;
      auto ran = ProcessOneTrigger();
      if (!ran.ok()) break;  // error_ is set; operator restarts the query
      if (options_.trigger.type == Trigger::Type::kOnce) break;
      int64_t elapsed_micros = (MonotonicNanos() - t0) / 1000;
      int64_t wait = options_.trigger.interval_micros - elapsed_micros;
      if (!*ran && wait < 1000) wait = 1000;  // idle backoff
      while (wait > 0 && !stop_requested_.load()) {
        int64_t chunk = std::min<int64_t>(wait, 5000);
        std::this_thread::sleep_for(std::chrono::microseconds(chunk));
        wait -= chunk;
      }
    }
    background_active_.store(false);
  });
  return Status::OK();
}

void StreamingQuery::Stop() {
  stop_requested_.store(true);
  if (background_.joinable()) background_.join();
  background_active_.store(false);
  NotifyTerminated();
}

void StreamingQuery::NotifyTerminated() {
  // Exactly once across Stop(), destruction and epoch failure.
  if (termination_notified_.exchange(true)) return;
  if (profiler_armed_) {
    Profiler::Instance().Disarm();
    profiler_armed_ = false;
  }
  if (history_ != nullptr) {
    // Post-mortem diagnosis: run the doctor over the progress ring and
    // append its report ahead of the terminated line, so `ssctl doctor`
    // and offline readers get the verdicts without recomputing them.
    DoctorInput input;
    input.query_name = options_.query_name;
    input.window = GetProgressSnapshot();
    input.scheduler_parallelism = scheduler_parallelism();
    input.num_state_shards = options_.num_state_shards;
    if (!input.window.empty()) {
      (void)history_->AppendDoctor(options_.query_name,
                                   Diagnose(input).ToJson());
    }
    (void)history_->AppendTerminated(options_.query_name, GetError(),
                                     last_epoch_, plan_profile_);
  }
  if (termination_callback_) termination_callback_(GetError(), last_epoch_);
}

Status StreamingQuery::Rollback(const std::string& checkpoint_dir,
                                int64_t epoch) {
  SS_ASSIGN_OR_RETURN(WriteAheadLog wal,
                      WriteAheadLog::Open(checkpoint_dir + "/wal"));
  SS_RETURN_IF_ERROR(wal.TruncateAfter(epoch));
  // State stores live under state/op<N>/p<M> (with shard subdirs s<K>);
  // truncate each.
  std::string state_root = checkpoint_dir + "/state";
  if (!FileExists(state_root)) return Status::OK();
  std::error_code ec;
  for (const auto& op_entry :
       std::filesystem::directory_iterator(state_root, ec)) {
    if (!op_entry.is_directory()) continue;
    for (const auto& part_entry :
         std::filesystem::directory_iterator(op_entry.path(), ec)) {
      if (!part_entry.is_directory()) continue;
      SS_RETURN_IF_ERROR(
          ShardedStateStore::TruncateAfter(part_entry.path().string(), epoch));
    }
  }
  return Status::OK();
}

}  // namespace sstreaming

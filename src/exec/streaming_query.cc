#include "exec/streaming_query.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "analysis/analyzer.h"
#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "state/state_store.h"
#include "storage/fs.h"

namespace sstreaming {

Result<std::unique_ptr<StreamingQuery>> StreamingQuery::Start(
    const DataFrame& df, SinkPtr sink, QueryOptions options) {
  if (!df.IsStreaming()) {
    return Status::InvalidArgument(
        "not a streaming query; use RunBatch for static data (§7.3)");
  }
  if (!sink->SupportsMode(options.mode)) {
    return Status::InvalidArgument(std::string("sink does not support ") +
                                   OutputModeName(options.mode) +
                                   " output mode");
  }
  // Plan: optimize (on names), re-analyze, validate (§5.1), incrementalize.
  PlanPtr logical = df.plan();
  if (options.run_optimizer) {
    logical = Optimizer::Optimize(logical);
  }
  SS_ASSIGN_OR_RETURN(PlanPtr analyzed, Analyzer::Analyze(logical));
  SS_RETURN_IF_ERROR(ValidateStreamingQuery(analyzed, options.mode));

  std::unique_ptr<StreamingQuery> query(new StreamingQuery());
  query->options_ = options;
  query->sink_ = std::move(sink);
  query->clock_ = options.clock != nullptr ? options.clock
                                           : SystemClock::Default();
  if (options.scheduler != nullptr) {
    query->scheduler_ = options.scheduler;
  } else {
    query->owned_scheduler_ = std::make_unique<InlineScheduler>();
    query->scheduler_ = query->owned_scheduler_.get();
  }
  SS_ASSIGN_OR_RETURN(query->plan_,
                      Incrementalize(analyzed, options.num_partitions));

  // Initialize per-source consumed offsets to zero.
  for (const SourcePtr& source : query->plan_.sources) {
    query->committed_offsets_[source->name()] = std::vector<int64_t>(
        static_cast<size_t>(source->num_partitions()), 0);
  }

  if (!options.checkpoint_dir.empty()) {
    SS_ASSIGN_OR_RETURN(WriteAheadLog wal,
                        WriteAheadLog::Open(options.checkpoint_dir + "/wal"));
    query->wal_ = std::make_unique<WriteAheadLog>(std::move(wal));
    SS_RETURN_IF_ERROR(query->Recover());
  } else {
    query->state_ = std::make_unique<StateManager>("", 0,
                                                   options.state_options);
  }
  return query;
}

StreamingQuery::~StreamingQuery() { Stop(); }

Status StreamingQuery::Recover() {
  // Paper §6.1 step 4: find the last planned epoch; reload state at the
  // newest checkpoint at or below the last *committed* epoch; replay
  // everything after it (sinks are idempotent, so replayed commits are
  // safe); then resume defining new epochs.
  SS_ASSIGN_OR_RETURN(std::optional<int64_t> latest_planned,
                      wal_->LatestPlannedEpoch());
  SS_ASSIGN_OR_RETURN(std::optional<int64_t> latest_committed,
                      wal_->LatestCommittedEpoch());
  int64_t committed = latest_committed.value_or(0);

  state_ = std::make_unique<StateManager>(options_.checkpoint_dir + "/state",
                                          committed, options_.state_options);
  if (!latest_planned.has_value()) return Status::OK();

  // Open every store that exists on disk so MinLoadedVersion reflects how
  // far state checkpoints lag the committed epoch (they may legally lag
  // when state_checkpoint_interval > 1). Epochs after the state restore
  // point are replayed from the log; sink re-commits are idempotent.
  SS_RETURN_IF_ERROR(state_->PreopenExisting());
  int64_t state_floor = state_->MinLoadedVersion();
  if (plan_.has_stateful && state_->num_open_stores() == 0) {
    state_floor = 0;  // stateful query that never checkpointed: replay all
  }
  last_state_commit_ = state_floor;
  int64_t replay_from = std::min(state_floor, committed) + 1;
  for (int64_t e = replay_from; e <= *latest_planned; ++e) {
    auto plan = wal_->ReadPlan(e);
    if (!plan.ok()) {
      if (plan.status().IsNotFound()) continue;  // hole after rollback
      return plan.status();
    }
    SS_RETURN_IF_ERROR(RunPlannedEpoch(*plan));
  }
  // Adopt the consumed offsets / watermark of the last replayed or
  // committed epoch.
  if (last_epoch_ < *latest_planned) {
    // Nothing replayed (everything committed): rebuild cursor state from
    // the last plan.
    SS_ASSIGN_OR_RETURN(EpochPlan plan, wal_->ReadPlan(*latest_planned));
    last_epoch_ = plan.epoch;
    watermark_micros_ = plan.watermark_micros;
    for (const SourceOffsets& so : plan.sources) {
      committed_offsets_[so.source_name] = so.end;
    }
  }
  // The commit record carries the watermark as advanced by the epoch's own
  // data; prefer it over the plan's pre-epoch watermark.
  if (latest_committed.has_value()) {
    auto commit_wm = wal_->ReadCommitWatermark(*latest_committed);
    if (commit_wm.ok() && *commit_wm > watermark_micros_) {
      watermark_micros_ = *commit_wm;
    }
  }
  return Status::OK();
}

Result<EpochPlan> StreamingQuery::PlanNextEpoch() {
  EpochPlan plan;
  plan.epoch = last_epoch_ + 1;
  plan.watermark_micros = watermark_micros_;
  int64_t budget = options_.max_records_per_epoch;
  bool any_new = false;
  for (const SourcePtr& source : plan_.sources) {
    SS_ASSIGN_OR_RETURN(std::vector<int64_t> latest,
                        source->LatestOffsets());
    std::vector<int64_t>& start = committed_offsets_[source->name()];
    if (latest.size() != start.size()) {
      return Status::Internal("source repartitioned mid-query: " +
                              source->name());
    }
    std::vector<int64_t> end = latest;
    if (options_.max_records_per_epoch > 0) {
      // Fixed-size batching (adaptive batching disabled): cap the total
      // records taken this epoch, spread across partitions.
      int64_t per_part = std::max<int64_t>(
          1, budget / static_cast<int64_t>(start.size()));
      for (size_t p = 0; p < end.size(); ++p) {
        end[p] = std::min(end[p], start[p] + per_part);
      }
    }
    for (size_t p = 0; p < end.size(); ++p) {
      if (end[p] < start[p]) {
        return Status::Internal("source offsets moved backwards: " +
                                source->name());
      }
      if (end[p] > start[p]) any_new = true;
    }
    plan.sources.push_back(SourceOffsets{source->name(), start, end});
  }
  if (!any_new) plan.epoch = -1;  // sentinel: nothing to do
  return plan;
}

Status StreamingQuery::RunPlannedEpoch(const EpochPlan& plan) {
  int64_t t0 = MonotonicNanos();
  ExecContext ctx;
  ctx.epoch = plan.epoch;
  ctx.watermark_micros = plan.watermark_micros;
  ctx.mode = options_.mode;
  ctx.scheduler = scheduler_;
  ctx.state = state_.get();
  ctx.clock = clock_;
  for (const SourceOffsets& so : plan.sources) {
    ctx.offsets[so.source_name] = {so.start, so.end};
  }

  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> output,
                      plan_.root->Execute(&ctx));

  // §6.1 commit protocol: checkpoint state, then commit the sink, then log
  // the commit. A crash between any two steps is repaired by replaying this
  // epoch (idempotent sink, state restored to the pre-epoch version).
  if (plan_.has_stateful) {
    const int interval = options_.state_checkpoint_interval;
    if (interval <= 1 || plan.epoch % interval == 0) {
      SS_RETURN_IF_ERROR(state_->CommitAll(plan.epoch));
      last_state_commit_ = plan.epoch;
    }
  }
  int num_keys = options_.mode == OutputMode::kUpdate
                     ? plan_.num_key_columns
                     : 0;
  OutputMode sink_mode = options_.mode;
  if (sink_mode == OutputMode::kUpdate && num_keys == 0) {
    // Update mode on a keyless (map-only / stateful-op) query degenerates
    // to append: every emitted row is new.
    sink_mode = OutputMode::kAppend;
  }
  SS_RETURN_IF_ERROR(
      sink_->CommitEpoch(plan.epoch, sink_mode, num_keys, output));

  // Advance cursors and the watermark for the next epoch (§4.3.1: the
  // watermark moves at epoch boundaries using event times seen so far).
  last_epoch_ = plan.epoch;
  for (const SourceOffsets& so : plan.sources) {
    committed_offsets_[so.source_name] = so.end;
  }
  if (plan.watermark_micros > watermark_micros_) {
    watermark_micros_ = plan.watermark_micros;  // recovery replay case
  }
  // Fold this epoch's per-operator candidates into the running per-operator
  // maxima, then advance the global watermark to the MINIMUM across
  // watermarked inputs that have reported data — the safe policy when a
  // query has several event-time streams (each input's lateness bound must
  // hold). The global watermark itself never regresses.
  for (const auto& [op_id, candidate] : ctx.observed_watermarks) {
    auto it = per_op_watermark_.find(op_id);
    if (it == per_op_watermark_.end() || candidate > it->second) {
      per_op_watermark_[op_id] = candidate;
    }
  }
  if (!per_op_watermark_.empty()) {
    int64_t combined = INT64_MAX;
    for (const auto& [op_id, candidate] : per_op_watermark_) {
      combined = std::min(combined, candidate);
    }
    if (combined > watermark_micros_) watermark_micros_ = combined;
  }
  if (wal_ != nullptr) {
    SS_RETURN_IF_ERROR(wal_->WriteCommit(plan.epoch, watermark_micros_));
    // Retention: drop history older than the configured horizon, but never
    // past the newest state checkpoint (recovery must be able to replay
    // from it).
    if (options_.retain_epochs > 0) {
      int64_t keep = last_epoch_ - options_.retain_epochs + 1;
      if (plan_.has_stateful) keep = std::min(keep, last_state_commit_);
      if (keep > 1) {
        SS_RETURN_IF_ERROR(wal_->PurgeBefore(keep));
        SS_RETURN_IF_ERROR(state_->PurgeBefore(keep));
      }
    }
  }

  QueryProgress progress;
  progress.epoch = plan.epoch;
  progress.rows_read = ctx.rows_read;
  for (const RecordBatchPtr& b : output) progress.rows_written += b->num_rows();
  progress.watermark_micros = watermark_micros_;
  progress.state_entries = state_->TotalEntries();
  progress.duration_nanos = MonotonicNanos() - t0;
  progress_.push_back(progress);
  if (progress_.size() > 256) {
    progress_.erase(progress_.begin(), progress_.begin() + 128);
  }
  return Status::OK();
}

Result<bool> StreamingQuery::ProcessOneTrigger() {
  if (!error_.ok()) {
    return Status::FailedPrecondition(
        "query previously failed (" + error_.ToString() +
        "); fix the code and restart from the checkpoint (§7.1)");
  }
  SS_ASSIGN_OR_RETURN(EpochPlan plan, PlanNextEpoch());
  if (plan.epoch < 0) return false;  // no new data
  // Write the plan to the log *before* executing (§6.1 step 1).
  if (wal_ != nullptr) {
    SS_RETURN_IF_ERROR(wal_->WritePlan(plan));
  }
  Status s = RunPlannedEpoch(plan);
  if (!s.ok()) {
    error_ = s;
    return s;
  }
  return true;
}

Status StreamingQuery::ProcessAllAvailable() {
  while (true) {
    SS_ASSIGN_OR_RETURN(bool ran, ProcessOneTrigger());
    if (!ran) return Status::OK();
  }
}

Status StreamingQuery::StartBackground() {
  if (background_active_.load()) {
    return Status::FailedPrecondition("query already running");
  }
  stop_requested_.store(false);
  background_active_.store(true);
  background_ = std::thread([this] {
    while (!stop_requested_.load()) {
      int64_t t0 = MonotonicNanos();
      auto ran = ProcessOneTrigger();
      if (!ran.ok()) break;  // error_ is set; operator restarts the query
      if (options_.trigger.type == Trigger::Type::kOnce) break;
      int64_t elapsed_micros = (MonotonicNanos() - t0) / 1000;
      int64_t wait = options_.trigger.interval_micros - elapsed_micros;
      if (!*ran && wait < 1000) wait = 1000;  // idle backoff
      while (wait > 0 && !stop_requested_.load()) {
        int64_t chunk = std::min<int64_t>(wait, 5000);
        std::this_thread::sleep_for(std::chrono::microseconds(chunk));
        wait -= chunk;
      }
    }
    background_active_.store(false);
  });
  return Status::OK();
}

void StreamingQuery::Stop() {
  stop_requested_.store(true);
  if (background_.joinable()) background_.join();
  background_active_.store(false);
}

Status StreamingQuery::Rollback(const std::string& checkpoint_dir,
                                int64_t epoch) {
  SS_ASSIGN_OR_RETURN(WriteAheadLog wal,
                      WriteAheadLog::Open(checkpoint_dir + "/wal"));
  SS_RETURN_IF_ERROR(wal.TruncateAfter(epoch));
  // State stores live under state/op<N>/p<M>; truncate each.
  std::string state_root = checkpoint_dir + "/state";
  if (!FileExists(state_root)) return Status::OK();
  std::error_code ec;
  for (const auto& op_entry :
       std::filesystem::directory_iterator(state_root, ec)) {
    if (!op_entry.is_directory()) continue;
    for (const auto& part_entry :
         std::filesystem::directory_iterator(op_entry.path(), ec)) {
      if (!part_entry.is_directory()) continue;
      SS_RETURN_IF_ERROR(
          StateStore::TruncateAfter(part_entry.path().string(), epoch));
    }
  }
  return Status::OK();
}

}  // namespace sstreaming

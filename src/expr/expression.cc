#include "expr/expression.h"

#include <cmath>

#include "common/logging.h"

namespace sstreaming {

namespace {

// Floor division (rounds toward negative infinity) for window arithmetic on
// possibly-negative timestamps.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

// --- Scalar (boxed) binary evaluation; the single source of truth for
// binary-op semantics. The vectorized kernels must agree with this. ---
Result<Value> EvalBinaryScalar(BinaryOp op, const Value& a, const Value& b,
                               TypeId result_type) {
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    // Kleene three-valued logic.
    auto tri = [](const Value& v) -> int {  // -1 null, 0 false, 1 true
      if (v.is_null()) return -1;
      return v.bool_value() ? 1 : 0;
    };
    int x = tri(a);
    int y = tri(b);
    if (op == BinaryOp::kAnd) {
      if (x == 0 || y == 0) return Value::Bool(false);
      if (x == -1 || y == -1) return Value::Null();
      return Value::Bool(true);
    }
    if (x == 1 || y == 1) return Value::Bool(true);
    if (x == -1 || y == -1) return Value::Null();
    return Value::Bool(false);
  }

  if (a.is_null() || b.is_null()) return Value::Null();

  if (IsComparison(op)) {
    int c = a.Compare(b);
    switch (op) {
      case BinaryOp::kEq:
        return Value::Bool(c == 0);
      case BinaryOp::kNe:
        return Value::Bool(c != 0);
      case BinaryOp::kLt:
        return Value::Bool(c < 0);
      case BinaryOp::kLe:
        return Value::Bool(c <= 0);
      case BinaryOp::kGt:
        return Value::Bool(c > 0);
      case BinaryOp::kGe:
        return Value::Bool(c >= 0);
      default:
        break;
    }
  }

  // Arithmetic.
  if (op == BinaryOp::kDiv) {
    double denom = b.AsDouble();
    if (denom == 0.0) return Value::Null();  // SQL: x/0 is NULL
    return Value::Float64(a.AsDouble() / denom);
  }
  if (op == BinaryOp::kMod) {
    int64_t denom = b.int64_value();
    if (denom == 0) return Value::Null();
    return Value::Int64(a.int64_value() % denom);
  }
  if (result_type == TypeId::kFloat64) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Float64(x + y);
      case BinaryOp::kSub:
        return Value::Float64(x - y);
      case BinaryOp::kMul:
        return Value::Float64(x * y);
      default:
        break;
    }
  } else {
    int64_t x = a.int64_value();
    int64_t y = b.int64_value();
    int64_t r = 0;
    switch (op) {
      case BinaryOp::kAdd:
        r = x + y;
        break;
      case BinaryOp::kSub:
        r = x - y;
        break;
      case BinaryOp::kMul:
        r = x * y;
        break;
      default:
        return Status::Internal("bad arithmetic op");
    }
    return result_type == TypeId::kTimestamp ? Value::Timestamp(r)
                                             : Value::Int64(r);
  }
  return Status::Internal("unhandled binary op");
}

Result<Value> EvalUnaryScalar(UnaryOp op, const Value& v, TypeId result_type) {
  switch (op) {
    case UnaryOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!v.is_null());
    case UnaryOp::kNot:
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.bool_value());
    case UnaryOp::kNeg:
      if (v.is_null()) return Value::Null();
      if (result_type == TypeId::kFloat64) {
        return Value::Float64(-v.AsDouble());
      }
      return Value::Int64(-v.int64_value());
  }
  return Status::Internal("bad unary op");
}

Result<Value> CastScalar(const Value& v, TypeId target) {
  if (v.is_null()) return Value::Null();
  if (v.type() == target) return v;
  switch (target) {
    case TypeId::kInt64:
      switch (v.type()) {
        case TypeId::kBool:
          return Value::Int64(v.bool_value() ? 1 : 0);
        case TypeId::kTimestamp:
          return Value::Int64(v.int64_value());
        case TypeId::kFloat64:
          return Value::Int64(static_cast<int64_t>(v.float64_value()));
        case TypeId::kString: {
          errno = 0;
          char* end = nullptr;
          long long x = std::strtoll(v.string_value().c_str(), &end, 10);
          if (errno != 0 || end == nullptr || *end != '\0' ||
              v.string_value().empty()) {
            return Value::Null();  // unparseable casts yield NULL (SQL-ish)
          }
          return Value::Int64(x);
        }
        default:
          return Value::Null();
      }
    case TypeId::kFloat64:
      if (IsNumeric(v.type())) return Value::Float64(v.AsDouble());
      if (v.type() == TypeId::kBool) {
        return Value::Float64(v.bool_value() ? 1.0 : 0.0);
      }
      if (v.type() == TypeId::kString) {
        char* end = nullptr;
        double d = std::strtod(v.string_value().c_str(), &end);
        if (end == nullptr || *end != '\0' || v.string_value().empty()) {
          return Value::Null();
        }
        return Value::Float64(d);
      }
      return Value::Null();
    case TypeId::kTimestamp:
      if (v.type() == TypeId::kInt64) return Value::Timestamp(v.int64_value());
      if (v.type() == TypeId::kFloat64) {
        return Value::Timestamp(static_cast<int64_t>(v.float64_value()));
      }
      return Value::Null();
    case TypeId::kString:
      return Value::Str(v.ToString());
    case TypeId::kBool:
      if (v.type() == TypeId::kInt64) return Value::Bool(v.int64_value() != 0);
      return Value::Null();
    case TypeId::kNull:
      return Value::Null();
  }
  return Value::Null();
}

}  // namespace

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

// --- ColumnRefExpr ---

ColumnRefExpr::ColumnRefExpr(std::string name) : Expr(Kind::kColumnRef),
                                                 name_(std::move(name)) {
  output_name_ = name_;
}

Result<ExprPtr> ColumnRefExpr::Resolve(const Schema& schema) const {
  SS_ASSIGN_OR_RETURN(int idx, schema.Resolve(name_));
  auto out = std::make_shared<ColumnRefExpr>(name_);
  out->index_ = idx;
  out->type_ = schema.field(idx).type;
  out->resolved_ = true;
  return ExprPtr(out);
}

Result<ColumnPtr> ColumnRefExpr::EvalBatch(const RecordBatch& batch) const {
  SS_DCHECK(resolved_);
  return batch.column(index_);
}

Result<Value> ColumnRefExpr::EvalRow(const Row& row) const {
  SS_DCHECK(resolved_);
  return row[static_cast<size_t>(index_)];
}

void ColumnRefExpr::CollectColumnRefs(std::vector<std::string>* out) const {
  out->push_back(name_);
}

void ColumnRefExpr::CollectColumnIndices(std::vector<int>* out) const {
  out->push_back(index_);
}

// --- LiteralExpr ---

LiteralExpr::LiteralExpr(Value value) : Expr(Kind::kLiteral),
                                        value_(std::move(value)) {
  type_ = value_.type();
  resolved_ = true;
  output_name_ = value_.ToString();
}

Result<ExprPtr> LiteralExpr::Resolve(const Schema&) const {
  return ExprPtr(std::make_shared<LiteralExpr>(value_));
}

Result<ColumnPtr> LiteralExpr::EvalBatch(const RecordBatch& batch) const {
  ColumnPtr col = Column::Make(type_);
  col->Reserve(batch.num_rows());
  for (int64_t i = 0; i < batch.num_rows(); ++i) col->AppendValue(value_);
  return col;
}

Result<Value> LiteralExpr::EvalRow(const Row&) const { return value_; }

// --- BinaryExpr ---

BinaryExpr::BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
    : Expr(Kind::kBinary),
      op_(op),
      left_(std::move(left)),
      right_(std::move(right)) {
  output_name_ = ToString();
}

Result<ExprPtr> BinaryExpr::Resolve(const Schema& schema) const {
  SS_ASSIGN_OR_RETURN(ExprPtr l, left_->Resolve(schema));
  SS_ASSIGN_OR_RETURN(ExprPtr r, right_->Resolve(schema));
  TypeId lt = l->type();
  TypeId rt = r->type();
  TypeId result = TypeId::kBool;
  auto type_error = [&]() {
    return Status::AnalysisError(std::string("operator '") +
                                 BinaryOpName(op_) +
                                 "' cannot be applied to types " +
                                 TypeName(lt) + " and " + TypeName(rt));
  };
  // Untyped nulls are compatible with anything.
  const bool l_null = lt == TypeId::kNull;
  const bool r_null = rt == TypeId::kNull;
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    if ((lt != TypeId::kBool && !l_null) || (rt != TypeId::kBool && !r_null)) {
      return type_error();
    }
    result = TypeId::kBool;
  } else if (IsComparison(op_)) {
    bool compatible = l_null || r_null || lt == rt ||
                      (IsNumeric(lt) && IsNumeric(rt));
    if (!compatible) return type_error();
    result = TypeId::kBool;
  } else {  // arithmetic
    if ((!IsNumeric(lt) && !l_null) || (!IsNumeric(rt) && !r_null)) {
      return type_error();
    }
    if (op_ == BinaryOp::kDiv) {
      result = TypeId::kFloat64;
    } else if (op_ == BinaryOp::kMod) {
      result = TypeId::kInt64;
    } else if ((op_ == BinaryOp::kAdd || op_ == BinaryOp::kSub) &&
               (lt == TypeId::kTimestamp || rt == TypeId::kTimestamp)) {
      // ts + delta / ts - delta stays a timestamp; ts - ts is a duration.
      result = (lt == TypeId::kTimestamp && rt == TypeId::kTimestamp)
                   ? TypeId::kInt64
                   : TypeId::kTimestamp;
    } else {
      result = CommonNumericType(l_null ? TypeId::kInt64 : lt,
                                 r_null ? TypeId::kInt64 : rt);
    }
  }
  auto out = std::make_shared<BinaryExpr>(op_, std::move(l), std::move(r));
  out->type_ = result;
  out->resolved_ = true;
  return ExprPtr(out);
}

Result<ColumnPtr> BinaryExpr::EvalBatch(const RecordBatch& batch) const {
  SS_DCHECK(resolved_);
  // Column-vs-literal kernels: avoid materializing a column of copies of
  // the constant (the common `col = 'x'` / `col > 5` filter shapes).
  if (right_->kind() == Expr::Kind::kLiteral &&
      left_->kind() != Expr::Kind::kLiteral) {
    const Value& lit = static_cast<const LiteralExpr&>(*right_).value();
    SS_ASSIGN_OR_RETURN(ColumnPtr lc, left_->EvalBatch(batch));
    const int64_t n = lc->size();
    // String equality against a constant.
    if ((op_ == BinaryOp::kEq || op_ == BinaryOp::kNe) &&
        lc->type() == TypeId::kString && lit.type() == TypeId::kString) {
      ColumnPtr out = Column::Make(TypeId::kBool);
      out->Reserve(n);
      const std::string& target = lit.string_value();
      const bool want_eq = op_ == BinaryOp::kEq;
      const auto& strings = lc->strings();
      if (!lc->has_nulls()) {
        for (int64_t i = 0; i < n; ++i) {
          out->AppendBool((strings[static_cast<size_t>(i)] == target) ==
                          want_eq);
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          if (lc->IsNull(i)) {
            out->AppendNull();
          } else {
            out->AppendBool((strings[static_cast<size_t>(i)] == target) ==
                            want_eq);
          }
        }
      }
      return out;
    }
    // Int64-backed comparison/arithmetic against an int64-backed constant.
    if (PhysicalKindOf(lc->type()) == PhysicalKind::kInt64 &&
        PhysicalKindOf(lit.type()) == PhysicalKind::kInt64 &&
        !lc->has_nulls() && op_ != BinaryOp::kDiv && op_ != BinaryOp::kMod) {
      const int64_t c = lit.int64_value();
      const int64_t* a = lc->ints().data();
      ColumnPtr out = Column::Make(type_);
      out->Reserve(n);
      if (IsComparison(op_)) {
        for (int64_t i = 0; i < n; ++i) {
          bool r;
          switch (op_) {
            case BinaryOp::kEq:
              r = a[i] == c;
              break;
            case BinaryOp::kNe:
              r = a[i] != c;
              break;
            case BinaryOp::kLt:
              r = a[i] < c;
              break;
            case BinaryOp::kLe:
              r = a[i] <= c;
              break;
            case BinaryOp::kGt:
              r = a[i] > c;
              break;
            default:
              r = a[i] >= c;
              break;
          }
          out->AppendBool(r);
        }
        return out;
      }
      if (PhysicalKindOf(type_) == PhysicalKind::kInt64) {
        for (int64_t i = 0; i < n; ++i) {
          int64_t r;
          switch (op_) {
            case BinaryOp::kAdd:
              r = a[i] + c;
              break;
            case BinaryOp::kSub:
              r = a[i] - c;
              break;
            default:
              r = a[i] * c;
              break;
          }
          out->AppendInt64(r);
        }
        return out;
      }
    }
    // Fall through to the generic path with the literal materialized.
  }
  SS_ASSIGN_OR_RETURN(ColumnPtr lc, left_->EvalBatch(batch));
  SS_ASSIGN_OR_RETURN(ColumnPtr rc, right_->EvalBatch(batch));
  const int64_t n = batch.num_rows();
  ColumnPtr out = Column::Make(type_);
  out->Reserve(n);

  const TypeId lt = lc->type();
  const TypeId rt = rc->type();
  const bool no_nulls = !lc->has_nulls() && !rc->has_nulls();

  // Fast path 1: int64-backed arithmetic with no nulls.
  if (IsArithmetic(op_) && op_ != BinaryOp::kDiv && op_ != BinaryOp::kMod &&
      PhysicalKindOf(type_) == PhysicalKind::kInt64 &&
      PhysicalKindOf(lt) == PhysicalKind::kInt64 &&
      PhysicalKindOf(rt) == PhysicalKind::kInt64 && no_nulls) {
    const int64_t* a = lc->ints().data();
    const int64_t* b = rc->ints().data();
    for (int64_t i = 0; i < n; ++i) {
      int64_t r;
      switch (op_) {
        case BinaryOp::kAdd:
          r = a[i] + b[i];
          break;
        case BinaryOp::kSub:
          r = a[i] - b[i];
          break;
        default:
          r = a[i] * b[i];
          break;
      }
      out->AppendInt64(r);
    }
    return out;
  }

  // Fast path 2: int64-backed comparisons with no nulls.
  if (IsComparison(op_) && PhysicalKindOf(lt) == PhysicalKind::kInt64 &&
      PhysicalKindOf(rt) == PhysicalKind::kInt64 && no_nulls) {
    const int64_t* a = lc->ints().data();
    const int64_t* b = rc->ints().data();
    for (int64_t i = 0; i < n; ++i) {
      bool r;
      switch (op_) {
        case BinaryOp::kEq:
          r = a[i] == b[i];
          break;
        case BinaryOp::kNe:
          r = a[i] != b[i];
          break;
        case BinaryOp::kLt:
          r = a[i] < b[i];
          break;
        case BinaryOp::kLe:
          r = a[i] <= b[i];
          break;
        case BinaryOp::kGt:
          r = a[i] > b[i];
          break;
        default:
          r = a[i] >= b[i];
          break;
      }
      out->AppendBool(r);
    }
    return out;
  }

  // Fast path 3: string equality with no nulls.
  if ((op_ == BinaryOp::kEq || op_ == BinaryOp::kNe) &&
      lt == TypeId::kString && rt == TypeId::kString && no_nulls) {
    const auto& a = lc->strings();
    const auto& b = rc->strings();
    const bool want_eq = op_ == BinaryOp::kEq;
    for (int64_t i = 0; i < n; ++i) {
      out->AppendBool((a[static_cast<size_t>(i)] ==
                       b[static_cast<size_t>(i)]) == want_eq);
    }
    return out;
  }

  // Generic path: boxed per-row evaluation, shared with EvalRow semantics.
  for (int64_t i = 0; i < n; ++i) {
    SS_ASSIGN_OR_RETURN(
        Value v, EvalBinaryScalar(op_, lc->ValueAt(i), rc->ValueAt(i), type_));
    out->AppendValue(v);
  }
  return out;
}

Result<Value> BinaryExpr::EvalRow(const Row& row) const {
  SS_DCHECK(resolved_);
  SS_ASSIGN_OR_RETURN(Value l, left_->EvalRow(row));
  SS_ASSIGN_OR_RETURN(Value r, right_->EvalRow(row));
  return EvalBinaryScalar(op_, l, r, type_);
}

void BinaryExpr::CollectColumnRefs(std::vector<std::string>* out) const {
  left_->CollectColumnRefs(out);
  right_->CollectColumnRefs(out);
}

void BinaryExpr::CollectColumnIndices(std::vector<int>* out) const {
  left_->CollectColumnIndices(out);
  right_->CollectColumnIndices(out);
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpName(op_) + " " +
         right_->ToString() + ")";
}

// --- UnaryExpr ---

UnaryExpr::UnaryExpr(UnaryOp op, ExprPtr child)
    : Expr(Kind::kUnary), op_(op), child_(std::move(child)) {
  output_name_ = ToString();
}

Result<ExprPtr> UnaryExpr::Resolve(const Schema& schema) const {
  SS_ASSIGN_OR_RETURN(ExprPtr c, child_->Resolve(schema));
  TypeId ct = c->type();
  TypeId result = TypeId::kBool;
  switch (op_) {
    case UnaryOp::kNot:
      if (ct != TypeId::kBool && ct != TypeId::kNull) {
        return Status::AnalysisError("NOT requires a bool operand, got " +
                                     std::string(TypeName(ct)));
      }
      result = TypeId::kBool;
      break;
    case UnaryOp::kIsNull:
    case UnaryOp::kIsNotNull:
      result = TypeId::kBool;
      break;
    case UnaryOp::kNeg:
      if (!IsNumeric(ct) && ct != TypeId::kNull) {
        return Status::AnalysisError("negation requires a numeric operand");
      }
      result = ct == TypeId::kFloat64 ? TypeId::kFloat64 : TypeId::kInt64;
      break;
  }
  auto out = std::make_shared<UnaryExpr>(op_, std::move(c));
  out->type_ = result;
  out->resolved_ = true;
  return ExprPtr(out);
}

Result<ColumnPtr> UnaryExpr::EvalBatch(const RecordBatch& batch) const {
  SS_DCHECK(resolved_);
  SS_ASSIGN_OR_RETURN(ColumnPtr c, child_->EvalBatch(batch));
  const int64_t n = batch.num_rows();
  ColumnPtr out = Column::Make(type_);
  out->Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    SS_ASSIGN_OR_RETURN(Value v, EvalUnaryScalar(op_, c->ValueAt(i), type_));
    out->AppendValue(v);
  }
  return out;
}

Result<Value> UnaryExpr::EvalRow(const Row& row) const {
  SS_DCHECK(resolved_);
  SS_ASSIGN_OR_RETURN(Value v, child_->EvalRow(row));
  return EvalUnaryScalar(op_, v, type_);
}

void UnaryExpr::CollectColumnRefs(std::vector<std::string>* out) const {
  child_->CollectColumnRefs(out);
}

void UnaryExpr::CollectColumnIndices(std::vector<int>* out) const {
  child_->CollectColumnIndices(out);
}

std::string UnaryExpr::ToString() const {
  switch (op_) {
    case UnaryOp::kNot:
      return "NOT " + child_->ToString();
    case UnaryOp::kIsNull:
      return child_->ToString() + " IS NULL";
    case UnaryOp::kIsNotNull:
      return child_->ToString() + " IS NOT NULL";
    case UnaryOp::kNeg:
      return "-" + child_->ToString();
  }
  return "?";
}

// --- CastExpr ---

CastExpr::CastExpr(ExprPtr child, TypeId target)
    : Expr(Kind::kCast), child_(std::move(child)), target_(target) {
  output_name_ = ToString();
}

Result<ExprPtr> CastExpr::Resolve(const Schema& schema) const {
  SS_ASSIGN_OR_RETURN(ExprPtr c, child_->Resolve(schema));
  auto out = std::make_shared<CastExpr>(std::move(c), target_);
  out->type_ = target_;
  out->resolved_ = true;
  return ExprPtr(out);
}

Result<ColumnPtr> CastExpr::EvalBatch(const RecordBatch& batch) const {
  SS_DCHECK(resolved_);
  SS_ASSIGN_OR_RETURN(ColumnPtr c, child_->EvalBatch(batch));
  const int64_t n = batch.num_rows();
  ColumnPtr out = Column::Make(type_);
  out->Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    SS_ASSIGN_OR_RETURN(Value v, CastScalar(c->ValueAt(i), target_));
    out->AppendValue(v);
  }
  return out;
}

Result<Value> CastExpr::EvalRow(const Row& row) const {
  SS_DCHECK(resolved_);
  SS_ASSIGN_OR_RETURN(Value v, child_->EvalRow(row));
  return CastScalar(v, target_);
}

void CastExpr::CollectColumnRefs(std::vector<std::string>* out) const {
  child_->CollectColumnRefs(out);
}

void CastExpr::CollectColumnIndices(std::vector<int>* out) const {
  child_->CollectColumnIndices(out);
}

std::string CastExpr::ToString() const {
  return "CAST(" + child_->ToString() + " AS " + TypeName(target_) + ")";
}

// --- WindowExpr ---

WindowExpr::WindowExpr(ExprPtr time, int64_t size_micros, int64_t slide_micros)
    : Expr(Kind::kWindow),
      time_(std::move(time)),
      size_micros_(size_micros),
      slide_micros_(slide_micros) {
  output_name_ = "window";
}

void WindowExpr::EnumerateWindowStarts(int64_t ts,
                                       std::vector<int64_t>* out) const {
  const int64_t last = FloorDiv(ts, slide_micros_) * slide_micros_;
  const int64_t first =
      (FloorDiv(ts - size_micros_, slide_micros_) + 1) * slide_micros_;
  for (int64_t s = first; s <= last; s += slide_micros_) out->push_back(s);
}

Result<ExprPtr> WindowExpr::Resolve(const Schema& schema) const {
  if (size_micros_ <= 0 || slide_micros_ <= 0 ||
      slide_micros_ > size_micros_) {
    return Status::AnalysisError(
        "window() requires 0 < slide <= size; got size=" +
        std::to_string(size_micros_) +
        " slide=" + std::to_string(slide_micros_));
  }
  SS_ASSIGN_OR_RETURN(ExprPtr t, time_->Resolve(schema));
  if (t->type() != TypeId::kTimestamp) {
    return Status::AnalysisError(
        "window() requires a timestamp column, got " +
        std::string(TypeName(t->type())));
  }
  auto out =
      std::make_shared<WindowExpr>(std::move(t), size_micros_, slide_micros_);
  out->type_ = TypeId::kTimestamp;
  out->resolved_ = true;
  return ExprPtr(out);
}

Result<ColumnPtr> WindowExpr::EvalBatch(const RecordBatch& batch) const {
  SS_DCHECK(resolved_);
  SS_ASSIGN_OR_RETURN(ColumnPtr c, time_->EvalBatch(batch));
  const int64_t n = batch.num_rows();
  ColumnPtr out = Column::Make(TypeId::kTimestamp);
  out->Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    if (c->IsNull(i)) {
      out->AppendNull();
    } else {
      out->AppendInt64(FloorDiv(c->Int64At(i), slide_micros_) * slide_micros_);
    }
  }
  return out;
}

Result<Value> WindowExpr::EvalRow(const Row& row) const {
  SS_DCHECK(resolved_);
  SS_ASSIGN_OR_RETURN(Value v, time_->EvalRow(row));
  if (v.is_null()) return Value::Null();
  return Value::Timestamp(FloorDiv(v.int64_value(), slide_micros_) *
                          slide_micros_);
}

void WindowExpr::CollectColumnRefs(std::vector<std::string>* out) const {
  time_->CollectColumnRefs(out);
}

void WindowExpr::CollectColumnIndices(std::vector<int>* out) const {
  time_->CollectColumnIndices(out);
}

std::string WindowExpr::ToString() const {
  return "window(" + time_->ToString() + ", " + std::to_string(size_micros_) +
         "us, " + std::to_string(slide_micros_) + "us)";
}

// --- UdfExpr ---

UdfExpr::UdfExpr(std::string name, ScalarFn fn, TypeId return_type,
                 std::vector<ExprPtr> args)
    : Expr(Kind::kUdf),
      name_(std::move(name)),
      fn_(std::move(fn)),
      return_type_(return_type),
      args_(std::move(args)) {
  output_name_ = name_;
}

Result<ExprPtr> UdfExpr::Resolve(const Schema& schema) const {
  std::vector<ExprPtr> resolved_args;
  resolved_args.reserve(args_.size());
  for (const ExprPtr& a : args_) {
    SS_ASSIGN_OR_RETURN(ExprPtr r, a->Resolve(schema));
    resolved_args.push_back(std::move(r));
  }
  auto out = std::make_shared<UdfExpr>(name_, fn_, return_type_,
                                       std::move(resolved_args));
  out->type_ = return_type_;
  out->resolved_ = true;
  return ExprPtr(out);
}

Result<ColumnPtr> UdfExpr::EvalBatch(const RecordBatch& batch) const {
  SS_DCHECK(resolved_);
  std::vector<ColumnPtr> arg_cols;
  arg_cols.reserve(args_.size());
  for (const ExprPtr& a : args_) {
    SS_ASSIGN_OR_RETURN(ColumnPtr c, a->EvalBatch(batch));
    arg_cols.push_back(std::move(c));
  }
  const int64_t n = batch.num_rows();
  ColumnPtr out = Column::Make(type_);
  out->Reserve(n);
  std::vector<Value> arg_values(args_.size());
  for (int64_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < arg_cols.size(); ++j) {
      arg_values[j] = arg_cols[j]->ValueAt(i);
    }
    SS_ASSIGN_OR_RETURN(Value v, fn_(arg_values));
    out->AppendValue(v);
  }
  return out;
}

Result<Value> UdfExpr::EvalRow(const Row& row) const {
  SS_DCHECK(resolved_);
  std::vector<Value> arg_values;
  arg_values.reserve(args_.size());
  for (const ExprPtr& a : args_) {
    SS_ASSIGN_OR_RETURN(Value v, a->EvalRow(row));
    arg_values.push_back(std::move(v));
  }
  return fn_(arg_values);
}

void UdfExpr::CollectColumnRefs(std::vector<std::string>* out) const {
  for (const ExprPtr& a : args_) a->CollectColumnRefs(out);
}

void UdfExpr::CollectColumnIndices(std::vector<int>* out) const {
  for (const ExprPtr& a : args_) a->CollectColumnIndices(out);
}

std::string UdfExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

// --- Fluent constructors ---

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr Lit(int v) { return Lit(Value::Int64(v)); }
ExprPtr Lit(double v) { return Lit(Value::Float64(v)); }
ExprPtr Lit(const char* v) { return Lit(Value::Str(v)); }
ExprPtr Lit(std::string v) { return Lit(Value::Str(std::move(v))); }
ExprPtr Lit(bool v) { return Lit(Value::Bool(v)); }
ExprPtr LitTimestamp(int64_t micros) { return Lit(Value::Timestamp(micros)); }

namespace {
ExprPtr MakeBinary(BinaryOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(op, std::move(a), std::move(b));
}
}  // namespace

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kDiv, std::move(a), std::move(b));
}
ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kMod, std::move(a), std::move(b));
}
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNot, std::move(a));
}
ExprPtr IsNull(ExprPtr a) {
  return std::make_shared<UnaryExpr>(UnaryOp::kIsNull, std::move(a));
}
ExprPtr IsNotNull(ExprPtr a) {
  return std::make_shared<UnaryExpr>(UnaryOp::kIsNotNull, std::move(a));
}
ExprPtr Neg(ExprPtr a) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNeg, std::move(a));
}
ExprPtr Cast(ExprPtr a, TypeId target) {
  return std::make_shared<CastExpr>(std::move(a), target);
}
ExprPtr Window(ExprPtr time, int64_t size_micros, int64_t slide_micros) {
  return std::make_shared<WindowExpr>(std::move(time), size_micros,
                                      slide_micros);
}
ExprPtr TumblingWindow(ExprPtr time, int64_t size_micros) {
  return Window(std::move(time), size_micros, size_micros);
}
ExprPtr Udf(std::string name, ScalarFn fn, TypeId return_type,
            std::vector<ExprPtr> args) {
  return std::make_shared<UdfExpr>(std::move(name), std::move(fn),
                                   return_type, std::move(args));
}

}  // namespace sstreaming

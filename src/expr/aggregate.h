#ifndef SSTREAMING_EXPR_AGGREGATE_H_
#define SSTREAMING_EXPR_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expression.h"
#include "types/row.h"
#include "types/schema.h"

namespace sstreaming {

/// Supported aggregate functions (paper §4.1 uses count and avg; windowed
/// counts drive the Yahoo! benchmark).
enum class AggFunc { kCount, kCountAll, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc func);

/// One aggregate in an Aggregate plan node: a function over an argument
/// expression (null for count(*)), with an output column name.
struct AggSpec {
  AggFunc func;
  ExprPtr arg;       // nullptr for kCountAll
  std::string name;  // output column name

  std::string ToString() const;
};

AggSpec CountAll(std::string name = "count");
AggSpec CountOf(ExprPtr arg, std::string name = "count");
AggSpec SumOf(ExprPtr arg, std::string name = "sum");
AggSpec MinOf(ExprPtr arg, std::string name = "min");
AggSpec MaxOf(ExprPtr arg, std::string name = "max");
AggSpec AvgOf(ExprPtr arg, std::string name = "avg");

/// Output type of an aggregate given its (resolved) argument type.
Result<TypeId> AggOutputType(AggFunc func, TypeId arg_type);

/// Number of state slots an aggregate keeps (avg keeps sum+count, the rest
/// keep one slot). Aggregation state for a key is the concatenation of each
/// spec's slots — a plain Row, so it round-trips through the state store's
/// row codec unchanged.
int AggStateArity(AggFunc func);

/// Initial (empty) state for a list of specs.
Row InitAggState(const std::vector<AggSpec>& specs);

/// Folds one input into the state. `args` holds the evaluated argument per
/// spec (entry ignored for kCountAll).
void UpdateAggState(const std::vector<AggSpec>& specs, const Row& args,
                    Row* state);

/// Merges `other` into `state` (for partial aggregation across partitions).
void MergeAggState(const std::vector<AggSpec>& specs, const Row& other,
                   Row* state);

/// Produces the final output values (one per spec) from a state row.
Row FinalizeAggState(const std::vector<AggSpec>& specs, const Row& state);

}  // namespace sstreaming

#endif  // SSTREAMING_EXPR_AGGREGATE_H_

#ifndef SSTREAMING_EXPR_EXPRESSION_H_
#define SSTREAMING_EXPR_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/record_batch.h"
#include "types/row.h"
#include "types/schema.h"

namespace sstreaming {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Scalar expression tree. Expressions are immutable; analysis produces a
/// *resolved* copy in which column references carry ordinals and every node
/// carries a result type. Two evaluation paths exist:
///   - EvalBatch: vectorized evaluation over a RecordBatch (the engine's hot
///     path — typed loops over unboxed column storage), and
///   - EvalRow: boxed row-at-a-time evaluation (used by stateful operators,
///     tests and the record-at-a-time baseline engine).
/// SQL null semantics: comparisons/arithmetic with a null input yield null;
/// AND/OR use Kleene three-valued logic.
class Expr {
 public:
  enum class Kind {
    kColumnRef,
    kLiteral,
    kBinary,
    kUnary,
    kCast,
    kWindow,
    kUdf,
  };

  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Result type. Only meaningful on resolved expressions.
  TypeId type() const { return type_; }
  bool resolved() const { return resolved_; }

  /// Returns a resolved copy bound to `schema`, or an analysis error.
  virtual Result<ExprPtr> Resolve(const Schema& schema) const = 0;

  /// Vectorized evaluation. Precondition: resolved() and the batch matches
  /// the schema used to resolve.
  virtual Result<ColumnPtr> EvalBatch(const RecordBatch& batch) const = 0;

  /// Row-at-a-time evaluation. Precondition: resolved().
  virtual Result<Value> EvalRow(const Row& row) const = 0;

  /// Appends the names of all column references in this subtree.
  virtual void CollectColumnRefs(std::vector<std::string>* out) const = 0;

  /// Appends the ordinals of all resolved column references in this
  /// subtree. Only meaningful on resolved expressions; used by
  /// selection-aware execution to gather just the referenced columns of a
  /// batch before evaluation (docs/VECTORIZED_EXEC.md).
  virtual void CollectColumnIndices(std::vector<int>* out) const = 0;

  virtual std::string ToString() const = 0;

  /// The output column name this expression produces when projected
  /// (column name for refs, alias if set, otherwise a rendering).
  const std::string& output_name() const { return output_name_; }

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  TypeId type_ = TypeId::kNull;
  bool resolved_ = false;
  std::string output_name_;
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp { kNot, kIsNull, kIsNotNull, kNeg };

const char* BinaryOpName(BinaryOp op);
bool IsComparison(BinaryOp op);
bool IsArithmetic(BinaryOp op);

/// Reference to a column by name; carries its ordinal once resolved.
class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(std::string name);

  const std::string& name() const { return name_; }
  int index() const { return index_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Result<ColumnPtr> EvalBatch(const RecordBatch& batch) const override;
  Result<Value> EvalRow(const Row& row) const override;
  void CollectColumnRefs(std::vector<std::string>* out) const override;
  void CollectColumnIndices(std::vector<int>* out) const override;
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
  int index_ = -1;
};

/// A constant.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value);

  const Value& value() const { return value_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Result<ColumnPtr> EvalBatch(const RecordBatch& batch) const override;
  Result<Value> EvalRow(const Row& row) const override;
  void CollectColumnRefs(std::vector<std::string>*) const override {}
  void CollectColumnIndices(std::vector<int>*) const override {}
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// Binary arithmetic / comparison / logical operator.
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right);

  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Result<ColumnPtr> EvalBatch(const RecordBatch& batch) const override;
  Result<Value> EvalRow(const Row& row) const override;
  void CollectColumnRefs(std::vector<std::string>* out) const override;
  void CollectColumnIndices(std::vector<int>* out) const override;
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// NOT / IS NULL / IS NOT NULL / unary minus.
class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr child);

  UnaryOp op() const { return op_; }
  const ExprPtr& child() const { return child_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Result<ColumnPtr> EvalBatch(const RecordBatch& batch) const override;
  Result<Value> EvalRow(const Row& row) const override;
  void CollectColumnRefs(std::vector<std::string>* out) const override;
  void CollectColumnIndices(std::vector<int>* out) const override;
  std::string ToString() const override;

 private:
  UnaryOp op_;
  ExprPtr child_;
};

/// CAST(child AS type).
class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr child, TypeId target);

  const ExprPtr& child() const { return child_; }
  TypeId target() const { return target_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Result<ColumnPtr> EvalBatch(const RecordBatch& batch) const override;
  Result<Value> EvalRow(const Row& row) const override;
  void CollectColumnRefs(std::vector<std::string>* out) const override;
  void CollectColumnIndices(std::vector<int>* out) const override;
  std::string ToString() const override;

 private:
  ExprPtr child_;
  TypeId target_;
};

/// window(time, size, slide) — assigns an event-time window (paper §4.1).
/// Evaluates to the *start* of the (last) window containing the timestamp;
/// for sliding windows (slide < size) the aggregation operator enumerates all
/// covering windows itself via EnumerateWindowStarts().
class WindowExpr : public Expr {
 public:
  WindowExpr(ExprPtr time, int64_t size_micros, int64_t slide_micros);

  const ExprPtr& time() const { return time_; }
  int64_t size_micros() const { return size_micros_; }
  int64_t slide_micros() const { return slide_micros_; }
  bool is_tumbling() const { return slide_micros_ == size_micros_; }

  /// All window starts whose [start, start+size) interval contains ts.
  void EnumerateWindowStarts(int64_t ts, std::vector<int64_t>* out) const;

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Result<ColumnPtr> EvalBatch(const RecordBatch& batch) const override;
  Result<Value> EvalRow(const Row& row) const override;
  void CollectColumnRefs(std::vector<std::string>* out) const override;
  void CollectColumnIndices(std::vector<int>* out) const override;
  std::string ToString() const override;

 private:
  ExprPtr time_;
  int64_t size_micros_;
  int64_t slide_micros_;
};

/// A scalar user-defined function. UDFs are the unit of "code update"
/// (paper §7.1): the registry binding a name to a function can be swapped
/// between restarts.
using ScalarFn = std::function<Result<Value>(const std::vector<Value>&)>;

class UdfExpr : public Expr {
 public:
  UdfExpr(std::string name, ScalarFn fn, TypeId return_type,
          std::vector<ExprPtr> args);

  const std::string& name() const { return name_; }

  Result<ExprPtr> Resolve(const Schema& schema) const override;
  Result<ColumnPtr> EvalBatch(const RecordBatch& batch) const override;
  Result<Value> EvalRow(const Row& row) const override;
  void CollectColumnRefs(std::vector<std::string>* out) const override;
  void CollectColumnIndices(std::vector<int>* out) const override;
  std::string ToString() const override;

 private:
  std::string name_;
  ScalarFn fn_;
  TypeId return_type_;
  std::vector<ExprPtr> args_;
};

// ---------------------------------------------------------------------------
// Fluent constructors (the DataFrame expression vocabulary).
// ---------------------------------------------------------------------------

ExprPtr Col(std::string name);
ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(int v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Lit(std::string v);
ExprPtr Lit(bool v);
ExprPtr LitTimestamp(int64_t micros);

ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Mod(ExprPtr a, ExprPtr b);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr IsNull(ExprPtr a);
ExprPtr IsNotNull(ExprPtr a);
ExprPtr Neg(ExprPtr a);
ExprPtr Cast(ExprPtr a, TypeId target);
ExprPtr Window(ExprPtr time, int64_t size_micros, int64_t slide_micros);
ExprPtr TumblingWindow(ExprPtr time, int64_t size_micros);
ExprPtr Udf(std::string name, ScalarFn fn, TypeId return_type,
            std::vector<ExprPtr> args);

/// A projection item: expression plus output column name.
struct NamedExpr {
  ExprPtr expr;
  std::string name;  // empty = use expr->output_name()

  std::string OutputName() const {
    return name.empty() ? expr->output_name() : name;
  }
};

inline NamedExpr As(ExprPtr e, std::string name) {
  return NamedExpr{std::move(e), std::move(name)};
}

}  // namespace sstreaming

#endif  // SSTREAMING_EXPR_EXPRESSION_H_

#include "expr/aggregate.h"

#include "common/logging.h"

namespace sstreaming {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kCountAll:
      return "count(*)";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

std::string AggSpec::ToString() const {
  std::string out = AggFuncName(func);
  if (func != AggFunc::kCountAll) {
    out += "(";
    out += arg ? arg->ToString() : "?";
    out += ")";
  }
  out += " AS " + name;
  return out;
}

AggSpec CountAll(std::string name) {
  return AggSpec{AggFunc::kCountAll, nullptr, std::move(name)};
}
AggSpec CountOf(ExprPtr arg, std::string name) {
  return AggSpec{AggFunc::kCount, std::move(arg), std::move(name)};
}
AggSpec SumOf(ExprPtr arg, std::string name) {
  return AggSpec{AggFunc::kSum, std::move(arg), std::move(name)};
}
AggSpec MinOf(ExprPtr arg, std::string name) {
  return AggSpec{AggFunc::kMin, std::move(arg), std::move(name)};
}
AggSpec MaxOf(ExprPtr arg, std::string name) {
  return AggSpec{AggFunc::kMax, std::move(arg), std::move(name)};
}
AggSpec AvgOf(ExprPtr arg, std::string name) {
  return AggSpec{AggFunc::kAvg, std::move(arg), std::move(name)};
}

Result<TypeId> AggOutputType(AggFunc func, TypeId arg_type) {
  switch (func) {
    case AggFunc::kCount:
    case AggFunc::kCountAll:
      return TypeId::kInt64;
    case AggFunc::kSum:
      if (!IsNumeric(arg_type)) {
        return Status::AnalysisError("sum() requires a numeric argument");
      }
      return arg_type == TypeId::kFloat64 ? TypeId::kFloat64 : TypeId::kInt64;
    case AggFunc::kAvg:
      if (!IsNumeric(arg_type)) {
        return Status::AnalysisError("avg() requires a numeric argument");
      }
      return TypeId::kFloat64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg_type;
  }
  return Status::Internal("bad agg func");
}

int AggStateArity(AggFunc func) { return func == AggFunc::kAvg ? 2 : 1; }

Row InitAggState(const std::vector<AggSpec>& specs) {
  Row state;
  for (const AggSpec& s : specs) {
    switch (s.func) {
      case AggFunc::kCount:
      case AggFunc::kCountAll:
        state.push_back(Value::Int64(0));
        break;
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        state.push_back(Value::Null());
        break;
      case AggFunc::kAvg:
        state.push_back(Value::Null());   // running sum
        state.push_back(Value::Int64(0));  // running count
        break;
    }
  }
  return state;
}

namespace {

// sum accumulation preserving int64 sums for int-typed inputs.
Value AddToSum(const Value& sum, const Value& v) {
  if (sum.is_null()) {
    // Normalize timestamps to int64 so sums have a consistent type.
    if (v.type() == TypeId::kTimestamp) return Value::Int64(v.int64_value());
    return v;
  }
  if (sum.type() == TypeId::kFloat64 || v.type() == TypeId::kFloat64) {
    return Value::Float64(sum.AsDouble() + v.AsDouble());
  }
  return Value::Int64(sum.int64_value() + v.int64_value());
}

}  // namespace

void UpdateAggState(const std::vector<AggSpec>& specs, const Row& args,
                    Row* state) {
  size_t slot = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const AggSpec& s = specs[i];
    const Value& v = args[i];
    switch (s.func) {
      case AggFunc::kCountAll:
        (*state)[slot] = Value::Int64((*state)[slot].int64_value() + 1);
        break;
      case AggFunc::kCount:
        if (!v.is_null()) {
          (*state)[slot] = Value::Int64((*state)[slot].int64_value() + 1);
        }
        break;
      case AggFunc::kSum:
        if (!v.is_null()) (*state)[slot] = AddToSum((*state)[slot], v);
        break;
      case AggFunc::kMin:
        if (!v.is_null() &&
            ((*state)[slot].is_null() || v.Compare((*state)[slot]) < 0)) {
          (*state)[slot] = v;
        }
        break;
      case AggFunc::kMax:
        if (!v.is_null() &&
            ((*state)[slot].is_null() || v.Compare((*state)[slot]) > 0)) {
          (*state)[slot] = v;
        }
        break;
      case AggFunc::kAvg:
        if (!v.is_null()) {
          (*state)[slot] = AddToSum((*state)[slot], v);
          (*state)[slot + 1] =
              Value::Int64((*state)[slot + 1].int64_value() + 1);
        }
        break;
    }
    slot += static_cast<size_t>(AggStateArity(s.func));
  }
}

void MergeAggState(const std::vector<AggSpec>& specs, const Row& other,
                   Row* state) {
  size_t slot = 0;
  for (const AggSpec& s : specs) {
    switch (s.func) {
      case AggFunc::kCount:
      case AggFunc::kCountAll:
        (*state)[slot] = Value::Int64((*state)[slot].int64_value() +
                                      other[slot].int64_value());
        break;
      case AggFunc::kSum:
        if (!other[slot].is_null()) {
          (*state)[slot] = AddToSum((*state)[slot], other[slot]);
        }
        break;
      case AggFunc::kMin:
        if (!other[slot].is_null() &&
            ((*state)[slot].is_null() ||
             other[slot].Compare((*state)[slot]) < 0)) {
          (*state)[slot] = other[slot];
        }
        break;
      case AggFunc::kMax:
        if (!other[slot].is_null() &&
            ((*state)[slot].is_null() ||
             other[slot].Compare((*state)[slot]) > 0)) {
          (*state)[slot] = other[slot];
        }
        break;
      case AggFunc::kAvg:
        if (!other[slot].is_null()) {
          (*state)[slot] = AddToSum((*state)[slot], other[slot]);
        }
        (*state)[slot + 1] = Value::Int64((*state)[slot + 1].int64_value() +
                                          other[slot + 1].int64_value());
        break;
    }
    slot += static_cast<size_t>(AggStateArity(s.func));
  }
}

Row FinalizeAggState(const std::vector<AggSpec>& specs, const Row& state) {
  Row out;
  out.reserve(specs.size());
  size_t slot = 0;
  for (const AggSpec& s : specs) {
    switch (s.func) {
      case AggFunc::kCount:
      case AggFunc::kCountAll:
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        out.push_back(state[slot]);
        break;
      case AggFunc::kAvg: {
        int64_t count = state[slot + 1].int64_value();
        if (count == 0 || state[slot].is_null()) {
          out.push_back(Value::Null());
        } else {
          out.push_back(Value::Float64(state[slot].AsDouble() /
                                       static_cast<double>(count)));
        }
        break;
      }
    }
    slot += static_cast<size_t>(AggStateArity(s.func));
  }
  return out;
}

}  // namespace sstreaming

#ifndef SSTREAMING_WAL_WRITE_AHEAD_LOG_H_
#define SSTREAMING_WAL_WRITE_AHEAD_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace sstreaming {

class MetricsRegistry;

/// The offset range one epoch consumes from one source (per partition,
/// half-open [start, end)).
struct SourceOffsets {
  std::string source_name;
  std::vector<int64_t> start;
  std::vector<int64_t> end;

  bool operator==(const SourceOffsets& other) const {
    return source_name == other.source_name && start == other.start &&
           end == other.end;
  }
};

/// One entry of the offset log: everything the master decided about an epoch
/// *before* executing it (paper §6.1 step 1). Also carries the event-time
/// watermark in force during the epoch so it survives restart.
struct EpochPlan {
  int64_t epoch = 0;
  int64_t watermark_micros = INT64_MIN;  // INT64_MIN = no watermark yet
  std::vector<SourceOffsets> sources;

  Json ToJson() const;
  static Result<EpochPlan> FromJson(const Json& json);

  bool operator==(const EpochPlan& other) const {
    return epoch == other.epoch &&
           watermark_micros == other.watermark_micros &&
           sources == other.sources;
  }
};

/// The write-ahead log: a directory of one human-readable JSON file per
/// epoch (paper §7.2 stores the log as JSON precisely so administrators can
/// inspect it and roll the application back by hand). Files are written
/// atomically; the log is append-ordered by epoch number.
///
/// Layout under `dir`:
///   offsets/<epoch>.json   - EpochPlan, written before the epoch runs
///   commits/<epoch>.json   - present iff the epoch's output was committed
class WriteAheadLog {
 public:
  /// Opens (creating directories if needed).
  static Result<WriteAheadLog> Open(const std::string& dir);

  /// Records the plan for `plan.epoch`. Must be called before executing the
  /// epoch. Overwrites any existing entry (recovery rewrites the last epoch).
  Status WritePlan(const EpochPlan& plan);

  Result<EpochPlan> ReadPlan(int64_t epoch) const;

  /// Marks `epoch` as committed to the sink, recording the event-time
  /// watermark as advanced by that epoch's data (so a clean restart does
  /// not lose watermark progress).
  Status WriteCommit(int64_t epoch, int64_t watermark_micros = INT64_MIN);

  /// The watermark recorded at commit time (INT64_MIN if none/absent).
  Result<int64_t> ReadCommitWatermark(int64_t epoch) const;

  bool IsCommitted(int64_t epoch) const;

  /// Highest epoch with a plan entry, or nullopt if the log is empty.
  Result<std::optional<int64_t>> LatestPlannedEpoch() const;

  /// Highest epoch with a commit entry, or nullopt.
  Result<std::optional<int64_t>> LatestCommittedEpoch() const;

  /// All planned epochs in ascending order.
  Result<std::vector<int64_t>> ListPlannedEpochs() const;

  /// Manual rollback (paper §7.2): removes plans and commits for every epoch
  /// strictly greater than `epoch`, so the application restarts from there
  /// and recomputes. Pass -1 to clear the whole log.
  Status TruncateAfter(int64_t epoch);

  /// Retention: removes plans and commits for epochs strictly below `keep`
  /// (rollbacks remain possible back to `keep`).
  Status PurgeBefore(int64_t keep);

  /// Crash repair: if the newest plan or commit entry is torn (partial or
  /// corrupt JSON — a crash while the entry was being made durable), removes
  /// it so the log ends at the last intact entry, and repeats until the tail
  /// is clean. Corruption *behind* an intact tail is never touched (that is
  /// real damage, not a torn tail) and still fails reads. Returns the number
  /// of entries removed. Recovery calls this before replay.
  Result<int> RepairTornTail();

  const std::string& dir() const { return dir_; }

  /// Optional instrumentation: when set, WritePlan/WriteCommit record the
  /// atomic-write+fsync latency (`sstreaming_wal_sync_nanos`), bytes
  /// (`sstreaming_wal_bytes_total`), and write count
  /// (`sstreaming_wal_writes_total`).
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  explicit WriteAheadLog(std::string dir) : dir_(std::move(dir)) {}

  Status WriteEntryTimed(const std::string& path, const std::string& body);

  std::string offsets_dir() const { return dir_ + "/offsets"; }
  std::string commits_dir() const { return dir_ + "/commits"; }

  std::string dir_;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sstreaming

#endif  // SSTREAMING_WAL_WRITE_AHEAD_LOG_H_

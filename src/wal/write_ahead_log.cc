#include "wal/write_ahead_log.h"

#include <algorithm>
#include <cstdio>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "storage/fs.h"
#include "testing/failpoints.h"

namespace sstreaming {

namespace {

// Epoch filenames are zero-padded so lexicographic order == numeric order
// (convenient for administrators listing the directory).
std::string EpochFileName(int64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012lld.json",
                static_cast<long long>(epoch));
  return buf;
}

Result<int64_t> ParseEpochFileName(const std::string& name) {
  if (name.size() < 6 || name.substr(name.size() - 5) != ".json") {
    return Status::InvalidArgument("not an epoch file: " + name);
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(name.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '.') {
    return Status::InvalidArgument("bad epoch file name: " + name);
  }
  return static_cast<int64_t>(v);
}

Result<std::vector<int64_t>> ListEpochFiles(const std::string& dir) {
  SS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir));
  std::vector<int64_t> epochs;
  for (const std::string& name : names) {
    auto e = ParseEpochFileName(name);
    if (e.ok()) epochs.push_back(*e);  // skip temp/stray files
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

}  // namespace

Json EpochPlan::ToJson() const {
  Json obj = Json::Object();
  obj.Set("epoch", Json::Int(epoch));
  if (watermark_micros != INT64_MIN) {
    obj.Set("watermarkMicros", Json::Int(watermark_micros));
  }
  Json srcs = Json::Array();
  for (const SourceOffsets& s : sources) {
    Json src = Json::Object();
    src.Set("source", Json::Str(s.source_name));
    Json start = Json::Array();
    for (int64_t v : s.start) start.Append(Json::Int(v));
    Json end = Json::Array();
    for (int64_t v : s.end) end.Append(Json::Int(v));
    src.Set("startOffsets", std::move(start));
    src.Set("endOffsets", std::move(end));
    srcs.Append(std::move(src));
  }
  obj.Set("sources", std::move(srcs));
  return obj;
}

Result<EpochPlan> EpochPlan::FromJson(const Json& json) {
  if (!json.is_object() || !json.Has("epoch") || !json.Has("sources")) {
    return Status::InvalidArgument("malformed epoch plan JSON");
  }
  EpochPlan plan;
  plan.epoch = json.Get("epoch").int_value();
  plan.watermark_micros = json.Has("watermarkMicros")
                              ? json.Get("watermarkMicros").int_value()
                              : INT64_MIN;
  for (const Json& src : json.Get("sources").array_items()) {
    SourceOffsets s;
    s.source_name = src.Get("source").string_value();
    for (const Json& v : src.Get("startOffsets").array_items()) {
      s.start.push_back(v.int_value());
    }
    for (const Json& v : src.Get("endOffsets").array_items()) {
      s.end.push_back(v.int_value());
    }
    if (s.start.size() != s.end.size()) {
      return Status::InvalidArgument("epoch plan: ragged offsets for " +
                                     s.source_name);
    }
    plan.sources.push_back(std::move(s));
  }
  return plan;
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& dir) {
  WriteAheadLog log(dir);
  SS_RETURN_IF_ERROR(EnsureDir(log.offsets_dir()));
  SS_RETURN_IF_ERROR(EnsureDir(log.commits_dir()));
  return log;
}

Status WriteAheadLog::WriteEntryTimed(const std::string& path,
                                      const std::string& body) {
  if (metrics_ == nullptr) return WriteFileAtomic(path, body);
  int64_t t0 = MonotonicNanos();
  Status s = WriteFileAtomic(path, body);
  metrics_->GetHistogram("sstreaming_wal_sync_nanos")
      ->Record(MonotonicNanos() - t0);
  if (s.ok()) {
    metrics_->GetCounter("sstreaming_wal_bytes_total")
        ->Increment(static_cast<int64_t>(body.size()));
    metrics_->GetCounter("sstreaming_wal_writes_total")->Increment();
  }
  return s;
}

Status WriteAheadLog::WritePlan(const EpochPlan& plan) {
  SS_FAILPOINT("wal.plan.before_write");
  SS_RETURN_IF_ERROR(
      WriteEntryTimed(offsets_dir() + "/" + EpochFileName(plan.epoch),
                      plan.ToJson().DumpPretty()));
  // Crash window between making the plan durable and acting on it.
  SS_FAILPOINT("wal.plan.after_write");
  return Status::OK();
}

Result<EpochPlan> WriteAheadLog::ReadPlan(int64_t epoch) const {
  SS_FAILPOINT("wal.replay.read_plan");
  std::string path = offsets_dir() + "/" + EpochFileName(epoch);
  if (!FileExists(path)) {
    return Status::NotFound("no plan for epoch " + std::to_string(epoch));
  }
  SS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  SS_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return EpochPlan::FromJson(json);
}

Status WriteAheadLog::WriteCommit(int64_t epoch, int64_t watermark_micros) {
  SS_FAILPOINT("wal.commit.before_write");
  Json obj = Json::Object();
  obj.Set("epoch", Json::Int(epoch));
  if (watermark_micros != INT64_MIN) {
    obj.Set("watermarkMicros", Json::Int(watermark_micros));
  }
  SS_RETURN_IF_ERROR(WriteEntryTimed(
      commits_dir() + "/" + EpochFileName(epoch), obj.DumpPretty()));
  SS_FAILPOINT("wal.commit.after_write");
  return Status::OK();
}

Result<int64_t> WriteAheadLog::ReadCommitWatermark(int64_t epoch) const {
  std::string path = commits_dir() + "/" + EpochFileName(epoch);
  if (!FileExists(path)) {
    return Status::NotFound("no commit for epoch " + std::to_string(epoch));
  }
  SS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  SS_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return json.Has("watermarkMicros") ? json.Get("watermarkMicros").int_value()
                                     : INT64_MIN;
}

bool WriteAheadLog::IsCommitted(int64_t epoch) const {
  return FileExists(commits_dir() + "/" + EpochFileName(epoch));
}

Result<std::optional<int64_t>> WriteAheadLog::LatestPlannedEpoch() const {
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> epochs,
                      ListEpochFiles(offsets_dir()));
  if (epochs.empty()) return std::optional<int64_t>();
  return std::optional<int64_t>(epochs.back());
}

Result<std::optional<int64_t>> WriteAheadLog::LatestCommittedEpoch() const {
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> epochs,
                      ListEpochFiles(commits_dir()));
  if (epochs.empty()) return std::optional<int64_t>();
  return std::optional<int64_t>(epochs.back());
}

Result<std::vector<int64_t>> WriteAheadLog::ListPlannedEpochs() const {
  return ListEpochFiles(offsets_dir());
}

Status WriteAheadLog::PurgeBefore(int64_t keep) {
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> planned,
                      ListEpochFiles(offsets_dir()));
  for (int64_t e : planned) {
    if (e < keep) {
      SS_RETURN_IF_ERROR(RemoveFile(offsets_dir() + "/" + EpochFileName(e)));
    }
  }
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> committed,
                      ListEpochFiles(commits_dir()));
  for (int64_t e : committed) {
    if (e < keep) {
      SS_RETURN_IF_ERROR(RemoveFile(commits_dir() + "/" + EpochFileName(e)));
    }
  }
  return Status::OK();
}

Status WriteAheadLog::TruncateAfter(int64_t epoch) {
  SS_FAILPOINT("wal.truncate");
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> planned,
                      ListEpochFiles(offsets_dir()));
  for (int64_t e : planned) {
    if (e > epoch) {
      SS_RETURN_IF_ERROR(RemoveFile(offsets_dir() + "/" + EpochFileName(e)));
    }
  }
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> committed,
                      ListEpochFiles(commits_dir()));
  for (int64_t e : committed) {
    if (e > epoch) {
      SS_RETURN_IF_ERROR(RemoveFile(commits_dir() + "/" + EpochFileName(e)));
    }
  }
  return Status::OK();
}

Result<int> WriteAheadLog::RepairTornTail() {
  // A crash while an entry was being made durable can leave a partial file
  // under the final name (on filesystems weaker than our temp+rename
  // idealization — modeled by the fs.write.torn failpoint). Only the tail
  // can legally be torn: entries are written in epoch order, so the newest
  // file is the only one that was in flight. Removing it merely undoes an
  // epoch that never took effect; replay recomputes it.
  int removed = 0;
  for (bool is_plan : {true, false}) {
    const std::string dir = is_plan ? offsets_dir() : commits_dir();
    while (true) {
      SS_ASSIGN_OR_RETURN(std::vector<int64_t> epochs, ListEpochFiles(dir));
      if (epochs.empty()) break;
      const std::string path = dir + "/" + EpochFileName(epochs.back());
      auto text = ReadFile(path);
      bool intact = false;
      if (text.ok()) {
        auto json = Json::Parse(*text);
        if (json.ok()) {
          intact = is_plan ? EpochPlan::FromJson(*json).ok()
                           : json->is_object() && json->Has("epoch");
        }
      } else {
        return text.status();  // cannot read at all: surface, don't delete
      }
      if (intact) break;
      SS_LOG(Warn) << "WAL: removing torn " << (is_plan ? "plan" : "commit")
                   << " entry for epoch " << epochs.back() << " (" << path
                   << "); it will be recomputed";
      SS_RETURN_IF_ERROR(RemoveFile(path));
      ++removed;
    }
  }
  return removed;
}

}  // namespace sstreaming

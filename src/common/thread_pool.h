#ifndef SSTREAMING_COMMON_THREAD_POOL_H_
#define SSTREAMING_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace sstreaming {

/// A fixed-size worker pool. Tasks are arbitrary closures; Wait() blocks
/// until every submitted task has finished (a simple fork/join barrier used
/// by the microbatch engine between stages).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_ SS_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;  // written once in the constructor
  int active_ SS_GUARDED_BY(mu_) = 0;
  bool shutdown_ SS_GUARDED_BY(mu_) = false;
};

}  // namespace sstreaming

#endif  // SSTREAMING_COMMON_THREAD_POOL_H_

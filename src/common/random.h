#ifndef SSTREAMING_COMMON_RANDOM_H_
#define SSTREAMING_COMMON_RANDOM_H_

#include <cstdint>

namespace sstreaming {

/// Deterministic, fast PRNG (xorshift128+). Used by workload generators and
/// fault/straggler injection so experiments are reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    s0_ = seed ^ 0x2545F4914F6CDD1DULL;
    s1_ = seed * 0x9E3779B97F4A7C15ULL + 1;
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool OneIn(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_COMMON_RANDOM_H_

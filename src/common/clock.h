#ifndef SSTREAMING_COMMON_CLOCK_H_
#define SSTREAMING_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace sstreaming {

/// Source of processing time for the engines. Production code uses
/// SystemClock; tests drive triggers and processing-time timeouts
/// deterministically with ManualClock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  int64_t NowMillis() const { return NowMicros() / 1000; }
};

/// Wall-clock time.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override;

  /// A process-wide instance (never destroyed; trivially usable at exit).
  static SystemClock* Default();
};

/// A clock advanced explicitly by tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override { return now_.load(); }

  void AdvanceMicros(int64_t delta) { now_.fetch_add(delta); }
  void AdvanceMillis(int64_t delta) { AdvanceMicros(delta * 1000); }
  void SetMicros(int64_t t) { now_.store(t); }

 private:
  std::atomic<int64_t> now_;
};

/// Monotonic nanosecond timestamp for latency measurement.
int64_t MonotonicNanos();

}  // namespace sstreaming

#endif  // SSTREAMING_COMMON_CLOCK_H_

#ifndef SSTREAMING_COMMON_ARENA_H_
#define SSTREAMING_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_annotations.h"

namespace sstreaming {

/// Bump allocator for per-epoch scratch buffers (selection vectors, filter
/// survivor indices, key-encoding scratch). Allocation is a pointer bump in
/// the current chunk; Reset() at an epoch boundary returns the epoch's
/// chunks to a free pool, so steady-state epochs allocate nothing.
///
/// Safety over raw speed at the boundary: every allocation carries a
/// shared_ptr keepalive to its chunk, so a buffer that (incorrectly)
/// outlives Reset() keeps its chunk alive instead of dangling — misuse
/// costs memory, never corruption. Thread-safe: per-partition operator
/// tasks allocate concurrently (one mutex acquisition per *batch*, not per
/// row, so contention is negligible).
class Arena {
 public:
  /// `chunk_bytes`: granularity of the backing chunks; allocations larger
  /// than this get a dedicated chunk.
  explicit Arena(size_t chunk_bytes = 1 << 20) : chunk_bytes_(chunk_bytes) {}

  struct Allocation {
    uint8_t* data = nullptr;
    /// Keeps the backing chunk alive independently of the arena.
    std::shared_ptr<const void> keepalive;
  };

  /// Allocates `bytes` with `align` alignment (power of two, <= 64).
  Allocation Alloc(size_t bytes, size_t align = 8);

  /// Typed convenience: `count` default-aligned T slots.
  template <typename T>
  std::pair<T*, std::shared_ptr<const void>> AllocSpan(size_t count) {
    Allocation a = Alloc(count * sizeof(T), alignof(T));
    return {reinterpret_cast<T*>(a.data), std::move(a.keepalive)};
  }

  /// Recycles the arena for the next epoch: every chunk with no live
  /// allocation keepalive moves to the free pool for reuse; the rest are
  /// released (freed once their last keepalive drops).
  void Reset();

  /// Total bytes handed out since construction (monotonic; feeds the
  /// sstreaming_arena_bytes_total counter).
  int64_t bytes_allocated() const;
  /// Bytes currently reserved in chunks the arena itself still references.
  int64_t bytes_reserved() const;

 private:
  using Chunk = std::vector<uint8_t>;

  size_t chunk_bytes_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Chunk>> chunks_ SS_GUARDED_BY(mu_);
  /// Recycled chunks awaiting reuse (uniquely owned by the arena).
  std::vector<std::shared_ptr<Chunk>> free_ SS_GUARDED_BY(mu_);
  size_t used_in_current_ SS_GUARDED_BY(mu_) = 0;
  int64_t bytes_allocated_ SS_GUARDED_BY(mu_) = 0;
};

}  // namespace sstreaming

#endif  // SSTREAMING_COMMON_ARENA_H_

#include "common/thread_pool.h"

namespace sstreaming {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sstreaming

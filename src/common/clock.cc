#include "common/clock.h"

#include <chrono>

namespace sstreaming {

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

SystemClock* SystemClock::Default() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sstreaming

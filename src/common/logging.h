#ifndef SSTREAMING_COMMON_LOGGING_H_
#define SSTREAMING_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace sstreaming {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level for log emission. Defaults to kWarn so tests and
/// benchmarks stay quiet; examples raise it to kInfo.
LogLevel& GlobalLogLevel();

/// Scoped log context: while an instance is alive, every SS_LOG message
/// emitted on this thread carries a "[query=<name> epoch=<N>]" prefix, so
/// interleaved logs from concurrent queries stay attributable. Nestable
/// (the innermost context wins); restores the previous context on exit.
class LogContext {
 public:
  LogContext(const std::string& query_id, int64_t epoch)
      : saved_(MutablePrefix()) {
    std::string prefix = "[";
    if (!query_id.empty()) prefix += "query=" + query_id + " ";
    prefix += "epoch=" + std::to_string(epoch) + "] ";
    MutablePrefix() = std::move(prefix);
  }
  ~LogContext() { MutablePrefix() = saved_; }

  LogContext(const LogContext&) = delete;
  LogContext& operator=(const LogContext&) = delete;

  /// The prefix in force on this thread ("" when no context is active).
  static const std::string& Current() { return MutablePrefix(); }

 private:
  static std::string& MutablePrefix() {
    static thread_local std::string prefix;
    return prefix;
  }

  std::string saved_;
};

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false)
      : level_(level), fatal_(fatal) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] " << LogContext::Current();
  }

  ~LogMessage() {
    if (fatal_ || level_ >= GlobalLogLevel()) {
      static std::mutex mu;
      std::lock_guard<std::mutex> lock(mu);
      std::cerr << stream_.str() << std::endl;
    }
    if (fatal_) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarn:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
      default:
        return "?";
    }
  }
  static const char* Basename(const char* file) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

// Turns an ostream expression into void so it can appear on the right side of
// the ternary in SS_CHECK (glog's "voidify" trick; avoids dangling-else).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define SS_LOG(level)                                                     \
  ::sstreaming::internal_logging::LogMessage(                             \
      ::sstreaming::LogLevel::k##level, __FILE__, __LINE__)               \
      .stream()

// Invariant checks: abort with a message on violation. For programmer errors
// only; user-facing failures must go through Status.
#define SS_CHECK(cond)                                                     \
  (cond) ? (void)0                                                         \
         : ::sstreaming::internal_logging::Voidify() &                     \
               ::sstreaming::internal_logging::LogMessage(                 \
                   ::sstreaming::LogLevel::kError, __FILE__, __LINE__,     \
                   /*fatal=*/true)                                         \
                   .stream()                                               \
                   << "Check failed: " #cond " "

#define SS_CHECK_OK(expr)                                                  \
  do {                                                                     \
    ::sstreaming::Status _st = (expr);                                     \
    SS_CHECK(_st.ok()) << _st.ToString();                                  \
  } while (0)

// Debug-only invariant check: compiled out (condition not evaluated) in
// NDEBUG builds.
#ifdef NDEBUG
#define SS_DCHECK(cond) \
  while (false) SS_CHECK(cond)
#else
#define SS_DCHECK(cond) SS_CHECK(cond)
#endif

}  // namespace sstreaming

#endif  // SSTREAMING_COMMON_LOGGING_H_

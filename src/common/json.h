#ifndef SSTREAMING_COMMON_JSON_H_
#define SSTREAMING_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sstreaming {

/// A small JSON document model. The write-ahead log is stored as
/// human-readable JSON (paper §7.2) so administrators can inspect and roll it
/// back; this module provides the writer/parser for it (and for the JSONL
/// file source).
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Int(int64_t v);
  static Json Double(double v);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const;
  double double_value() const;
  const std::string& string_value() const { return str_; }
  const std::vector<Json>& array_items() const { return arr_; }
  const std::map<std::string, Json>& object_items() const { return obj_; }

  /// Appends to an array value.
  void Append(Json v);
  /// Sets a key in an object value.
  void Set(const std::string& key, Json v);
  /// True if the object has `key`.
  bool Has(const std::string& key) const;
  /// Object lookup; returns a null Json if absent.
  const Json& Get(const std::string& key) const;

  /// Serializes to a compact JSON string.
  std::string Dump() const;
  /// Serializes with 2-space indentation (the WAL uses this form).
  std::string DumpPretty() const;

  /// Parses a JSON document. Rejects trailing garbage.
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_COMMON_JSON_H_

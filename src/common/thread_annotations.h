#ifndef SSTREAMING_COMMON_THREAD_ANNOTATIONS_H_
#define SSTREAMING_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (the abseil/LLVM convention, SS_-prefixed
/// to stay out of other libraries' macro namespaces). Annotating a member
///
///   std::map<...> queries_ SS_GUARDED_BY(mu_);
///
/// makes "every access holds mu_" a *compile-time* property under
/// `clang -Wthread-safety` (wired up automatically by the build when the
/// compiler is Clang; see CMakeLists.txt). Under GCC the macros expand to
/// nothing — the annotations still document the locking discipline, and a
/// Clang build of the same tree enforces it. Convention (see DESIGN.md):
/// every mutex-protected member is SS_GUARDED_BY its mutex, and private
/// helpers called with the lock held are SS_REQUIRES(mu) — named
/// `FooLocked()` by repo style.

#if defined(__clang__) && (!defined(SWIG))
#define SS_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define SS_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Data members: reads and writes require holding `x`.
#define SS_GUARDED_BY(x) SS_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer members: the *pointed-to* data requires holding `x`.
#define SS_PT_GUARDED_BY(x) SS_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Functions: the caller must hold (exclusively / shared) the listed
/// capabilities on entry, and still holds them on exit.
#define SS_REQUIRES(...) \
  SS_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define SS_REQUIRES_SHARED(...) \
  SS_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// Functions that acquire/release capabilities themselves (lock wrappers).
#define SS_ACQUIRE(...) \
  SS_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define SS_RELEASE(...) \
  SS_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The caller must NOT already hold the listed capabilities (deadlock
/// prevention for non-reentrant mutexes).
#define SS_EXCLUDES(...) \
  SS_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function body (e.g. a
/// destructor that touches guarded state after joining all threads).
#define SS_NO_THREAD_SAFETY_ANALYSIS \
  SS_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // SSTREAMING_COMMON_THREAD_ANNOTATIONS_H_

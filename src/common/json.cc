#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sstreaming {

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Recursive-descent JSON parser over a string.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWhitespace();
    SS_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  Result<Json> ParseValue() {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        SS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::Str(std::move(s));
      }
      case 't':
        if (Consume("true")) return Json::Bool(true);
        return Fail("invalid literal");
      case 'f':
        if (Consume("false")) return Json::Bool(false);
        return Fail("invalid literal");
      case 'n':
        if (Consume("null")) return Json::Null();
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') return Fail("expected object key");
      SS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipWhitespace();
      SS_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(key, std::move(value));
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      return Fail("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      SkipWhitespace();
      SS_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Append(std::move(value));
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      return Fail("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned int cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs are
            // passed through as two separate 3-byte sequences).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("invalid number");
    std::string token = text_.substr(start, pos_ - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') return Json::Int(v);
      is_double = true;  // overflowed int64; fall back to double
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0') return Fail("invalid number");
    return Json::Double(d);
  }

  bool Consume(const char* literal) {
    size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Fail(const std::string& msg) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = v;
  return j;
}

Json Json::Double(double v) {
  Json j;
  j.type_ = Type::kDouble;
  j.double_ = v;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

int64_t Json::int_value() const {
  if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
  return int_;
}

double Json::double_value() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return double_;
}

void Json::Append(Json v) { arr_.push_back(std::move(v)); }

void Json::Set(const std::string& key, Json v) { obj_[key] = std::move(v); }

bool Json::Has(const std::string& key) const {
  return obj_.find(key) != obj_.end();
}

const Json& Json::Get(const std::string& key) const {
  static const Json kNull;
  auto it = obj_.find(key);
  return it == obj_.end() ? kNull : it->second;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        *out += buf;
      } else {
        *out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::kString:
      EscapeString(str_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : obj_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        EscapeString(key, out);
        out->push_back(':');
        if (pretty) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    // int 3 == double 3.0 for convenience.
    if (is_number() && other.is_number()) {
      return double_value() == other.double_value();
    }
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      return double_ == other.double_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return arr_ == other.arr_;
    case Type::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

}  // namespace sstreaming

#include "common/arena.h"

#include <algorithm>

namespace sstreaming {

Arena::Allocation Arena::Alloc(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;  // distinct non-null pointers for empty spans
  std::lock_guard<std::mutex> lock(mu_);
  bytes_allocated_ += static_cast<int64_t>(bytes);
  // Oversized requests get a dedicated chunk and leave the current bump
  // chunk untouched.
  if (bytes > chunk_bytes_) {
    auto chunk = std::make_shared<Chunk>(bytes);
    Allocation a;
    a.data = chunk->data();
    a.keepalive = std::shared_ptr<const void>(chunk, chunk->data());
    // Not pushed onto chunks_: nothing else will fit in it, and the
    // caller's keepalive is its only owner.
    return a;
  }
  size_t offset = 0;
  if (!chunks_.empty()) {
    offset = (used_in_current_ + align - 1) & ~(align - 1);
  }
  if (chunks_.empty() || offset + bytes > chunk_bytes_) {
    if (!free_.empty()) {
      chunks_.push_back(std::move(free_.back()));
      free_.pop_back();
    } else {
      chunks_.push_back(std::make_shared<Chunk>(chunk_bytes_));
    }
    offset = 0;
  }
  std::shared_ptr<Chunk>& current = chunks_.back();
  used_in_current_ = offset + bytes;
  Allocation a;
  a.data = current->data() + offset;
  a.keepalive = std::shared_ptr<const void>(current, current->data());
  return a;
}

void Arena::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Recycle every chunk no allocation keepalive still aliases (use_count >
  // 1 means a buffer from the ending epoch is still live; reusing its chunk
  // would overwrite it — those die with their last keepalive instead). The
  // recycled pool makes steady-state epochs allocation-free whatever their
  // per-epoch chunk demand.
  for (auto& chunk : chunks_) {
    if (chunk.use_count() == 1) free_.push_back(std::move(chunk));
  }
  chunks_.clear();
  used_in_current_ = 0;
}

int64_t Arena::bytes_allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_allocated_;
}

int64_t Arena::bytes_reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& chunk : chunks_) {
    total += static_cast<int64_t>(chunk->size());
  }
  for (const auto& chunk : free_) {
    total += static_cast<int64_t>(chunk->size());
  }
  return total;
}

}  // namespace sstreaming

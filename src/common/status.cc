#include "common/status.h"

namespace sstreaming {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kAnalysisError:
      return "Analysis error";
    case StatusCode::kUnsupportedOperation:
      return "Unsupported operation";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace sstreaming

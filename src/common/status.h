#ifndef SSTREAMING_COMMON_STATUS_H_
#define SSTREAMING_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace sstreaming {

/// Error codes used across the library. Modeled on the RocksDB/Arrow Status
/// idiom: fallible public APIs never throw; they return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kAborted,
  kCancelled,
  kOutOfRange,
  kAnalysisError,   // query failed analysis (unresolved name, type error, ...)
  kUnsupportedOperation,  // query is valid SQL but not incrementalizable
};

/// Human-readable name of a StatusCode ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy when OK (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status UnsupportedOperation(std::string msg) {
    return Status(StatusCode::kUnsupportedOperation, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAnalysisError() const { return code_ == StatusCode::kAnalysisError; }
  bool IsUnsupportedOperation() const {
    return code_ == StatusCode::kUnsupportedOperation;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Never both.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Moves the value out. Precondition: ok().
  T TakeValue() { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate a non-OK Status from an expression of type Status.
#define SS_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::sstreaming::Status _st = (expr);           \
    if (!_st.ok()) return _st;                   \
  } while (0)

// Evaluate an expression of type Result<T>; on error propagate the Status,
// otherwise bind the value to `lhs`.
#define SS_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                             \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).TakeValue();

#define SS_CONCAT_IMPL(x, y) x##y
#define SS_CONCAT(x, y) SS_CONCAT_IMPL(x, y)

#define SS_ASSIGN_OR_RETURN(lhs, rexpr) \
  SS_ASSIGN_OR_RETURN_IMPL(SS_CONCAT(_res_, __LINE__), lhs, rexpr)

}  // namespace sstreaming

#endif  // SSTREAMING_COMMON_STATUS_H_

#include "common/logging.h"

namespace sstreaming {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

}  // namespace sstreaming

#ifndef SSTREAMING_RUNTIME_SCHEDULER_H_
#define SSTREAMING_RUNTIME_SCHEDULER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace sstreaming {

class MetricsRegistry;

/// Per-stage queue/backpressure accounting filled in by RunStage: how long
/// tasks sat between submit and start (queue wait — the backpressure signal
/// when partitions outnumber cores), how long they ran, and the per-task
/// maxima (skew). On SimClusterScheduler all of it is virtual time, so the
/// numbers describe the simulated cluster, not the host.
struct StageWait {
  int64_t tasks = 0;
  /// Sum over tasks of (start time - submit time). Tasks wait
  /// concurrently, so this can exceed the stage's wall time.
  int64_t queue_wait_nanos = 0;
  int64_t max_queue_wait_nanos = 0;
  /// Sum over tasks of execution time (excludes queue wait).
  int64_t run_nanos = 0;
  int64_t max_run_nanos = 0;
  /// Submit of the first task to completion of the last.
  int64_t stage_wall_nanos = 0;
};

/// Executes one stage of a microbatch job: a set of independent tasks, one
/// per partition (paper §6.2 — "each epoch executes as a traditional Spark
/// job composed of a DAG of independent tasks"). The engine is agnostic to
/// how tasks are placed, which is where the cluster substitutions live:
///
///  - InlineScheduler: serial, deterministic; used by tests and batch runs.
///  - PoolScheduler: a real thread pool on this machine.
///  - SimClusterScheduler: the paper's EC2 clusters are simulated in virtual
///    time — every task still executes for real (results are exact), but its
///    measured duration is charged to the earliest-available core of an
///    N-node simulated cluster, with task-launch overhead, stragglers,
///    speculative backup copies, and task-retry-on-failure modeled. This is
///    how the scaling experiments (paper §9.2) run on a single machine.
class TaskScheduler {
 public:
  virtual ~TaskScheduler() = default;

  /// Runs all tasks to completion; fails if any task fails. When `wait` is
  /// non-null it receives the stage's queue/run accounting (see StageWait).
  /// Tasks inherit the submitting thread's profiler attribution word with
  /// the stage field set to `stage_name` (obs/profiler.h) — a no-op unless
  /// the profiler is armed.
  virtual Status RunStage(const std::string& stage_name,
                          std::vector<std::function<Status()>> tasks,
                          StageWait* wait) = 0;

  /// Convenience overload for callers that do not need the accounting.
  Status RunStage(const std::string& stage_name,
                  std::vector<std::function<Status()>> tasks) {
    return RunStage(stage_name, std::move(tasks), nullptr);
  }

  /// Degree of (possibly simulated) parallelism.
  virtual int parallelism() const = 0;

  /// Called from *inside* a running task to charge additional virtual time
  /// for work the in-process substitute makes artificially cheap (e.g. a
  /// message-bus append standing in for a real Kafka broker round trip).
  /// No-op on real schedulers, where wall-clock time is the truth.
  virtual void ChargeVirtualNanos(int64_t) {}

  /// Optional instrumentation: when set, RunStage implementations record
  /// per-task latency (`sstreaming_scheduler_task_nanos`), per-task queue
  /// wait (`sstreaming_scheduler_queue_wait_nanos`), per-stage wall time
  /// (`sstreaming_scheduler_stage_nanos`), task/stage counts, the live
  /// queue depth (`sstreaming_scheduler_queue_depth`), and the stage busy
  /// fraction (`sstreaming_scheduler_saturation_permille`). A scheduler
  /// shared between queries should be given a shared registry.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 protected:
  MetricsRegistry* metrics_ = nullptr;
};

/// Serial in-process execution.
class InlineScheduler : public TaskScheduler {
 public:
  using TaskScheduler::RunStage;
  Status RunStage(const std::string& stage_name,
                  std::vector<std::function<Status()>> tasks,
                  StageWait* wait) override;
  int parallelism() const override { return 1; }
};

/// Real threads on this machine.
class PoolScheduler : public TaskScheduler {
 public:
  explicit PoolScheduler(int num_threads);

  using TaskScheduler::RunStage;
  Status RunStage(const std::string& stage_name,
                  std::vector<std::function<Status()>> tasks,
                  StageWait* wait) override;
  int parallelism() const override { return pool_.num_threads(); }

 private:
  ThreadPool pool_;
};

/// Virtual-time cluster simulation (see class comment above).
class SimClusterScheduler : public TaskScheduler {
 public:
  struct Options {
    Options() {}
    int num_nodes = 1;
    int cores_per_node = 8;
    /// Fixed per-task scheduling/launch overhead charged in virtual time
    /// (the microbatch mode's latency floor, paper §6.2).
    int64_t task_launch_overhead_nanos = 200000;  // 0.2 ms
    /// Probability that a task straggles, and the slowdown factor applied.
    double straggler_probability = 0.0;
    double straggler_factor = 8.0;
    /// Launch a speculative backup copy once a straggler is detected
    /// (after ~2x the task's normal duration); the stage takes the earlier
    /// finisher (paper §6.2 "straggler mitigation").
    bool speculation = false;
    /// Probability a task's first attempt fails and is retried on another
    /// node (fine-grained fault recovery, §6.2).
    double task_failure_probability = 0.0;
    /// Replace measured task durations above `denoise_factor` x the stage
    /// median with the median before scheduling. The simulation host is a
    /// single shared core, so a task occasionally gets descheduled by the
    /// OS mid-measurement; without denoising, the expected maximum over N
    /// tasks grows with N and masquerades as poor scaling. This cleans
    /// *measurement* noise only — injected stragglers/failures are applied
    /// after it.
    bool denoise_outliers = false;
    double denoise_factor = 2.0;
    /// When > 0, charge every task this fixed simulated duration instead of
    /// its measured wall time. Tasks still execute for real (their outputs
    /// are exact); only the timeline becomes independent of host load —
    /// use for deterministic simulations and tests.
    int64_t fixed_task_duration_nanos = 0;
    uint64_t seed = 42;
  };

  explicit SimClusterScheduler(Options options);

  using TaskScheduler::RunStage;
  Status RunStage(const std::string& stage_name,
                  std::vector<std::function<Status()>> tasks,
                  StageWait* wait) override;
  int parallelism() const override {
    return options_.num_nodes * options_.cores_per_node;
  }

  /// Total simulated wall-clock time consumed by all stages so far.
  int64_t virtual_nanos() const { return virtual_nanos_; }
  void reset_virtual_time() {
    virtual_nanos_ = 0;
    stage_virtual_nanos_.clear();
  }

  /// Simulated time consumed by stages whose name starts with `prefix` —
  /// e.g. "StatefulAggregate" covers the operator's [eval]/[split]/fold
  /// sub-stages. The per-stage ledger behind the shard-scaling benchmark's
  /// stateful-stage throughput.
  int64_t StageVirtualNanos(const std::string& prefix) const;

  void ChargeVirtualNanos(int64_t nanos) override {
    // Tasks execute serially here, so a plain member is race-free.
    pending_charge_ += nanos;
  }

  /// Count of straggler / failure / speculative events (for reporting).
  int64_t stragglers_injected() const { return stragglers_; }
  int64_t failures_injected() const { return failures_; }
  int64_t speculative_wins() const { return speculative_wins_; }

 private:
  Options options_;
  Random rng_;
  int64_t virtual_nanos_ = 0;
  std::map<std::string, int64_t> stage_virtual_nanos_;
  int64_t pending_charge_ = 0;
  int64_t stragglers_ = 0;
  int64_t failures_ = 0;
  int64_t speculative_wins_ = 0;
};

}  // namespace sstreaming

#endif  // SSTREAMING_RUNTIME_SCHEDULER_H_

#include "runtime/scheduler.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "testing/failpoints.h"

namespace sstreaming {

namespace {

/// Shared instrumentation for the real schedulers: task latency histogram,
/// stage latency histogram, counts, a live queue-depth gauge, per-task
/// queue-wait histogram, and a stage saturation gauge.
struct StageMetrics {
  LogHistogram* task_nanos = nullptr;
  LogHistogram* stage_nanos = nullptr;
  LogHistogram* queue_wait_nanos = nullptr;
  Counter* tasks_total = nullptr;
  Gauge* queue_depth = nullptr;
  Gauge* saturation = nullptr;

  explicit StageMetrics(MetricsRegistry* registry) {
    if (registry == nullptr) return;
    task_nanos = registry->GetHistogram("sstreaming_scheduler_task_nanos");
    stage_nanos = registry->GetHistogram("sstreaming_scheduler_stage_nanos");
    queue_wait_nanos =
        registry->GetHistogram("sstreaming_scheduler_queue_wait_nanos");
    tasks_total = registry->GetCounter("sstreaming_scheduler_tasks_total");
    queue_depth = registry->GetGauge("sstreaming_scheduler_queue_depth");
    saturation =
        registry->GetGauge("sstreaming_scheduler_saturation_permille");
  }
  bool enabled() const { return task_nanos != nullptr; }

  /// Busy fraction of the stage in parts per thousand: total task run time
  /// over (stage wall x parallelism). ~1000 = every core busy the whole
  /// stage; sustained high values with queue wait = the pool is the
  /// bottleneck.
  void RecordStage(const StageWait& w, int parallelism) const {
    if (!enabled()) return;
    stage_nanos->Record(w.stage_wall_nanos);
    int64_t capacity = w.stage_wall_nanos * std::max(1, parallelism);
    if (capacity > 0) {
      saturation->Set(std::min<int64_t>(1000, w.run_nanos * 1000 / capacity));
    }
  }
};

/// Folds one task's timings into the stage accounting.
void AddTask(StageWait* w, int64_t wait_nanos, int64_t run_nanos) {
  ++w->tasks;
  w->queue_wait_nanos += wait_nanos;
  w->max_queue_wait_nanos = std::max(w->max_queue_wait_nanos, wait_nanos);
  w->run_nanos += run_nanos;
  w->max_run_nanos = std::max(w->max_run_nanos, run_nanos);
}

/// Injected task failure ("scheduler.task.run"): the task is charged as
/// failed before running, like an executor dying mid-task. The engine has
/// no per-task retry in the real schedulers (SimClusterScheduler models
/// that); an injected failure fails the stage and thus the epoch, which
/// recovery then replays.
Status MaybeInjectTaskFailure() {
  static FailpointSite site("scheduler.task.run");
  if (site.armed()) return Failpoints::Instance().Evaluate(&site);
  return Status::OK();
}

}  // namespace

Status InlineScheduler::RunStage(const std::string& stage_name,
                                 std::vector<std::function<Status()>> tasks,
                                 StageWait* wait) {
  StageMetrics m(metrics_);
  StageWait w;
  const uint64_t prof_word = Profiler::Instance().TaskWord(stage_name);
  int64_t stage_t0 = MonotonicNanos();
  if (m.enabled()) {
    m.queue_depth->Set(static_cast<int64_t>(tasks.size()));
  }
  for (auto& task : tasks) {
    // Serial execution: every task was "submitted" at stage start, so task
    // i's queue wait is the time tasks 0..i-1 spent running before it.
    int64_t t0 = MonotonicNanos();
    Status s;
    {
      ProfileTaskScope prof(prof_word);
      s = MaybeInjectTaskFailure();
      if (s.ok()) s = task();
    }
    int64_t t1 = MonotonicNanos();
    AddTask(&w, t0 - stage_t0, t1 - t0);
    if (m.enabled()) {
      m.task_nanos->Record(t1 - t0);
      m.queue_wait_nanos->Record(t0 - stage_t0);
      m.tasks_total->Increment();
      m.queue_depth->Add(-1);
    }
    SS_RETURN_IF_ERROR(s);
  }
  w.stage_wall_nanos = MonotonicNanos() - stage_t0;
  if (m.enabled()) {
    m.queue_depth->Set(0);
    m.RecordStage(w, parallelism());
  }
  if (wait != nullptr) *wait = w;
  return Status::OK();
}

PoolScheduler::PoolScheduler(int num_threads) : pool_(num_threads) {}

Status PoolScheduler::RunStage(const std::string& stage_name,
                               std::vector<std::function<Status()>> tasks,
                               StageWait* wait) {
  std::mutex mu;
  Status first_error;  // guarded by mu (locals cannot carry SS_GUARDED_BY)
  StageWait w;         // guarded by mu
  StageMetrics m(metrics_);
  const uint64_t prof_word = Profiler::Instance().TaskWord(stage_name);
  int64_t stage_t0 = MonotonicNanos();
  if (m.enabled()) {
    m.queue_depth->Set(static_cast<int64_t>(tasks.size()));
  }
  for (auto& task : tasks) {
    int64_t submit_t = MonotonicNanos();
    pool_.Submit([&mu, &first_error, &w, m, submit_t, prof_word,
                  task = std::move(task)] {
      int64_t t0 = MonotonicNanos();
      Status s;
      {
        ProfileTaskScope prof(prof_word);
        s = MaybeInjectTaskFailure();
        if (s.ok()) s = task();
      }
      int64_t t1 = MonotonicNanos();
      if (m.enabled()) {
        m.task_nanos->Record(t1 - t0);
        m.queue_wait_nanos->Record(t0 - submit_t);
        m.tasks_total->Increment();
        m.queue_depth->Add(-1);
      }
      std::lock_guard<std::mutex> lock(mu);
      AddTask(&w, t0 - submit_t, t1 - t0);
      if (!s.ok() && first_error.ok()) first_error = s;
    });
  }
  pool_.Wait();
  w.stage_wall_nanos = MonotonicNanos() - stage_t0;
  if (m.enabled()) {
    m.queue_depth->Set(0);
    m.RecordStage(w, parallelism());
  }
  if (wait != nullptr) *wait = w;
  return first_error;
}

SimClusterScheduler::SimClusterScheduler(Options options)
    : options_(options), rng_(options.seed) {}

int64_t SimClusterScheduler::StageVirtualNanos(
    const std::string& prefix) const {
  int64_t total = 0;
  for (const auto& [name, nanos] : stage_virtual_nanos_) {
    if (name.compare(0, prefix.size(), prefix) == 0) total += nanos;
  }
  return total;
}

Status SimClusterScheduler::RunStage(
    const std::string& stage_name,
    std::vector<std::function<Status()>> tasks, StageWait* wait) {
  const int cores = parallelism();
  StageMetrics m(metrics_);
  const uint64_t prof_word = Profiler::Instance().TaskWord(stage_name);
  // Tasks run for real (serially, on this machine) so their outputs are
  // exact; only their measured durations are placed on the simulated
  // timeline, by earliest-available-core list scheduling.
  std::vector<int64_t> durations;
  durations.reserve(tasks.size());
  for (auto& task : tasks) {
    pending_charge_ = 0;
    int64_t t0 = MonotonicNanos();
    Status s;
    {
      ProfileTaskScope prof(prof_word);
      s = MaybeInjectTaskFailure();
      if (s.ok()) s = task();
    }
    SS_RETURN_IF_ERROR(s);
    int64_t measured = options_.fixed_task_duration_nanos > 0
                           ? options_.fixed_task_duration_nanos
                           : MonotonicNanos() - t0 + pending_charge_;
    if (measured < 1000) measured = 1000;  // clamp timer noise
    durations.push_back(measured);
  }
  if (options_.denoise_outliers && durations.size() >= 4) {
    std::vector<int64_t> sorted = durations;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    int64_t median = sorted[sorted.size() / 2];
    int64_t cap = static_cast<int64_t>(static_cast<double>(median) *
                                       options_.denoise_factor);
    for (int64_t& d : durations) {
      if (d > cap) d = median;
    }
  }
  StageWait w;
  std::vector<int64_t> core_free_at(static_cast<size_t>(cores), 0);
  for (int64_t measured : durations) {
    int64_t attempt = measured;
    // Fault injection: the first attempt is lost and re-run elsewhere. The
    // real execution above already produced the (idempotent) output; only
    // the simulated cost reflects the retry (paper §6.2: "only its tasks
    // need to be rerun ... in parallel").
    if (options_.task_failure_probability > 0 &&
        rng_.OneIn(options_.task_failure_probability)) {
      ++failures_;
      // Failure detected partway through, then a full re-run.
      attempt = attempt / 2 + measured;
    }
    // Straggler injection with optional speculative backup.
    if (options_.straggler_probability > 0 &&
        rng_.OneIn(options_.straggler_probability)) {
      ++stragglers_;
      int64_t straggled = static_cast<int64_t>(
          static_cast<double>(attempt) * options_.straggler_factor);
      if (options_.speculation) {
        // Backup launched once the task runs ~2x its expected duration;
        // the backup completes in the normal duration. Stage sees the
        // earlier of (straggler, detection + backup).
        int64_t with_backup = 2 * measured + measured;
        if (with_backup < straggled) {
          ++speculative_wins_;
          attempt = with_backup;
        } else {
          attempt = straggled;
        }
      } else {
        attempt = straggled;
      }
    }
    attempt += options_.task_launch_overhead_nanos;
    if (m.enabled()) {
      // Record the *simulated* task latency — what the cluster would see.
      m.task_nanos->Record(attempt);
      m.tasks_total->Increment();
    }

    auto it = std::min_element(core_free_at.begin(), core_free_at.end());
    // All tasks are submitted at virtual stage start; the chosen core's
    // busy time is this task's simulated queue wait.
    AddTask(&w, *it, attempt);
    if (m.enabled()) m.queue_wait_nanos->Record(*it);
    *it += attempt;
  }
  int64_t stage_finish =
      *std::max_element(core_free_at.begin(), core_free_at.end());
  virtual_nanos_ += stage_finish;
  stage_virtual_nanos_[stage_name] += stage_finish;
  w.stage_wall_nanos = stage_finish;
  if (m.enabled()) m.RecordStage(w, cores);
  if (wait != nullptr) *wait = w;
  return Status::OK();
}

}  // namespace sstreaming

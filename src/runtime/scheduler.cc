#include "runtime/scheduler.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/clock.h"
#include "obs/metrics.h"
#include "testing/failpoints.h"

namespace sstreaming {

namespace {

/// Shared instrumentation for the real schedulers: task latency histogram,
/// stage latency histogram, counts, and a live queue-depth gauge.
struct StageMetrics {
  LogHistogram* task_nanos = nullptr;
  LogHistogram* stage_nanos = nullptr;
  Counter* tasks_total = nullptr;
  Gauge* queue_depth = nullptr;

  explicit StageMetrics(MetricsRegistry* registry) {
    if (registry == nullptr) return;
    task_nanos = registry->GetHistogram("sstreaming_scheduler_task_nanos");
    stage_nanos = registry->GetHistogram("sstreaming_scheduler_stage_nanos");
    tasks_total = registry->GetCounter("sstreaming_scheduler_tasks_total");
    queue_depth = registry->GetGauge("sstreaming_scheduler_queue_depth");
  }
  bool enabled() const { return task_nanos != nullptr; }
};

/// Injected task failure ("scheduler.task.run"): the task is charged as
/// failed before running, like an executor dying mid-task. The engine has
/// no per-task retry in the real schedulers (SimClusterScheduler models
/// that); an injected failure fails the stage and thus the epoch, which
/// recovery then replays.
Status MaybeInjectTaskFailure() {
  static FailpointSite site("scheduler.task.run");
  if (site.armed()) return Failpoints::Instance().Evaluate(&site);
  return Status::OK();
}

}  // namespace

Status InlineScheduler::RunStage(const std::string& /*stage_name*/,
                                 std::vector<std::function<Status()>> tasks) {
  StageMetrics m(metrics_);
  int64_t stage_t0 = m.enabled() ? MonotonicNanos() : 0;
  if (m.enabled()) {
    m.queue_depth->Set(static_cast<int64_t>(tasks.size()));
  }
  for (auto& task : tasks) {
    int64_t t0 = m.enabled() ? MonotonicNanos() : 0;
    Status s = MaybeInjectTaskFailure();
    if (s.ok()) s = task();
    if (m.enabled()) {
      m.task_nanos->Record(MonotonicNanos() - t0);
      m.tasks_total->Increment();
      m.queue_depth->Add(-1);
    }
    SS_RETURN_IF_ERROR(s);
  }
  if (m.enabled()) {
    m.queue_depth->Set(0);
    m.stage_nanos->Record(MonotonicNanos() - stage_t0);
  }
  return Status::OK();
}

PoolScheduler::PoolScheduler(int num_threads) : pool_(num_threads) {}

Status PoolScheduler::RunStage(const std::string& /*stage_name*/,
                               std::vector<std::function<Status()>> tasks) {
  std::mutex mu;
  Status first_error;  // guarded by mu (locals cannot carry SS_GUARDED_BY)
  StageMetrics m(metrics_);
  int64_t stage_t0 = m.enabled() ? MonotonicNanos() : 0;
  if (m.enabled()) {
    m.queue_depth->Set(static_cast<int64_t>(tasks.size()));
  }
  for (auto& task : tasks) {
    pool_.Submit([&mu, &first_error, m, task = std::move(task)] {
      int64_t t0 = m.enabled() ? MonotonicNanos() : 0;
      Status s = MaybeInjectTaskFailure();
      if (s.ok()) s = task();
      if (m.enabled()) {
        m.task_nanos->Record(MonotonicNanos() - t0);
        m.tasks_total->Increment();
        m.queue_depth->Add(-1);
      }
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = s;
      }
    });
  }
  pool_.Wait();
  if (m.enabled()) {
    m.queue_depth->Set(0);
    m.stage_nanos->Record(MonotonicNanos() - stage_t0);
  }
  return first_error;
}

SimClusterScheduler::SimClusterScheduler(Options options)
    : options_(options), rng_(options.seed) {}

int64_t SimClusterScheduler::StageVirtualNanos(
    const std::string& prefix) const {
  int64_t total = 0;
  for (const auto& [name, nanos] : stage_virtual_nanos_) {
    if (name.compare(0, prefix.size(), prefix) == 0) total += nanos;
  }
  return total;
}

Status SimClusterScheduler::RunStage(
    const std::string& stage_name,
    std::vector<std::function<Status()>> tasks) {
  const int cores = parallelism();
  StageMetrics m(metrics_);
  // Tasks run for real (serially, on this machine) so their outputs are
  // exact; only their measured durations are placed on the simulated
  // timeline, by earliest-available-core list scheduling.
  std::vector<int64_t> durations;
  durations.reserve(tasks.size());
  for (auto& task : tasks) {
    pending_charge_ = 0;
    int64_t t0 = MonotonicNanos();
    Status s = MaybeInjectTaskFailure();
    if (s.ok()) s = task();
    SS_RETURN_IF_ERROR(s);
    int64_t measured = options_.fixed_task_duration_nanos > 0
                           ? options_.fixed_task_duration_nanos
                           : MonotonicNanos() - t0 + pending_charge_;
    if (measured < 1000) measured = 1000;  // clamp timer noise
    durations.push_back(measured);
  }
  if (options_.denoise_outliers && durations.size() >= 4) {
    std::vector<int64_t> sorted = durations;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    int64_t median = sorted[sorted.size() / 2];
    int64_t cap = static_cast<int64_t>(static_cast<double>(median) *
                                       options_.denoise_factor);
    for (int64_t& d : durations) {
      if (d > cap) d = median;
    }
  }
  std::vector<int64_t> core_free_at(static_cast<size_t>(cores), 0);
  for (int64_t measured : durations) {
    int64_t attempt = measured;
    // Fault injection: the first attempt is lost and re-run elsewhere. The
    // real execution above already produced the (idempotent) output; only
    // the simulated cost reflects the retry (paper §6.2: "only its tasks
    // need to be rerun ... in parallel").
    if (options_.task_failure_probability > 0 &&
        rng_.OneIn(options_.task_failure_probability)) {
      ++failures_;
      // Failure detected partway through, then a full re-run.
      attempt = attempt / 2 + measured;
    }
    // Straggler injection with optional speculative backup.
    if (options_.straggler_probability > 0 &&
        rng_.OneIn(options_.straggler_probability)) {
      ++stragglers_;
      int64_t straggled = static_cast<int64_t>(
          static_cast<double>(attempt) * options_.straggler_factor);
      if (options_.speculation) {
        // Backup launched once the task runs ~2x its expected duration;
        // the backup completes in the normal duration. Stage sees the
        // earlier of (straggler, detection + backup).
        int64_t with_backup = 2 * measured + measured;
        if (with_backup < straggled) {
          ++speculative_wins_;
          attempt = with_backup;
        } else {
          attempt = straggled;
        }
      } else {
        attempt = straggled;
      }
    }
    attempt += options_.task_launch_overhead_nanos;
    if (m.enabled()) {
      // Record the *simulated* task latency — what the cluster would see.
      m.task_nanos->Record(attempt);
      m.tasks_total->Increment();
    }

    auto it = std::min_element(core_free_at.begin(), core_free_at.end());
    *it += attempt;
  }
  int64_t stage_finish =
      *std::max_element(core_free_at.begin(), core_free_at.end());
  virtual_nanos_ += stage_finish;
  stage_virtual_nanos_[stage_name] += stage_finish;
  if (m.enabled()) m.stage_nanos->Record(stage_finish);
  return Status::OK();
}

}  // namespace sstreaming

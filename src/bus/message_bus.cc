#include "bus/message_bus.h"

namespace sstreaming {

Status MessageBus::CreateTopic(const std::string& topic, int num_partitions) {
  if (num_partitions < 1) {
    return Status::InvalidArgument("topic needs >= 1 partition");
  }
  std::lock_guard<std::mutex> lock(topics_mu_);
  if (topics_.find(topic) != topics_.end()) {
    return Status::AlreadyExists("topic " + topic + " already exists");
  }
  Topic& t = topics_[topic];
  t.partitions.reserve(static_cast<size_t>(num_partitions));
  for (int i = 0; i < num_partitions; ++i) {
    t.partitions.push_back(std::make_unique<Partition>());
  }
  return Status::OK();
}

bool MessageBus::HasTopic(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(topics_mu_);
  return topics_.find(topic) != topics_.end();
}

Result<const MessageBus::Topic*> MessageBus::FindTopic(
    const std::string& topic) const {
  std::lock_guard<std::mutex> lock(topics_mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return Status::NotFound("unknown topic " + topic);
  }
  // Topics are never removed, so the pointer stays valid after unlocking.
  return const_cast<const Topic*>(&it->second);
}

Result<int> MessageBus::NumPartitions(const std::string& topic) const {
  SS_ASSIGN_OR_RETURN(const Topic* t, FindTopic(topic));
  return static_cast<int>(t->partitions.size());
}

Result<int64_t> MessageBus::Append(const std::string& topic, int partition,
                                   Row row) {
  SS_ASSIGN_OR_RETURN(const Topic* t, FindTopic(topic));
  if (partition < 0 || partition >= static_cast<int>(t->partitions.size())) {
    return Status::OutOfRange("partition out of range");
  }
  Partition& p = *t->partitions[static_cast<size_t>(partition)];
  int64_t now = ingest_clock_ ? ingest_clock_->NowMicros() : 0;
  std::lock_guard<std::mutex> lock(p.mu);
  p.log.push_back(std::move(row));
  p.ingest.push_back(now);
  return static_cast<int64_t>(p.log.size()) - 1;
}

Result<int64_t> MessageBus::AppendBatch(const std::string& topic,
                                        int partition,
                                        std::vector<Row> rows) {
  SS_ASSIGN_OR_RETURN(const Topic* t, FindTopic(topic));
  if (partition < 0 || partition >= static_cast<int>(t->partitions.size())) {
    return Status::OutOfRange("partition out of range");
  }
  Partition& p = *t->partitions[static_cast<size_t>(partition)];
  int64_t now = ingest_clock_ ? ingest_clock_->NowMicros() : 0;
  std::lock_guard<std::mutex> lock(p.mu);
  int64_t first = static_cast<int64_t>(p.log.size());
  for (Row& r : rows) p.log.push_back(std::move(r));
  p.ingest.resize(p.log.size(), now);
  return first;
}

Result<std::vector<Row>> MessageBus::Read(const std::string& topic,
                                          int partition, int64_t start,
                                          int64_t end) const {
  SS_ASSIGN_OR_RETURN(const Topic* t, FindTopic(topic));
  if (partition < 0 || partition >= static_cast<int>(t->partitions.size())) {
    return Status::OutOfRange("partition out of range");
  }
  const Partition& p = *t->partitions[static_cast<size_t>(partition)];
  std::lock_guard<std::mutex> lock(p.mu);
  int64_t log_end = static_cast<int64_t>(p.log.size());
  if (start < 0 || start > log_end) {
    return Status::OutOfRange("start offset " + std::to_string(start) +
                              " outside log [0, " + std::to_string(log_end) +
                              "]");
  }
  if (end > log_end) end = log_end;
  std::vector<Row> out;
  if (end > start) {
    out.assign(p.log.begin() + start, p.log.begin() + end);
  }
  return out;
}

Result<RecordBatchPtr> MessageBus::ReadBatch(
    const std::string& topic, int partition, int64_t start, int64_t end,
    const SchemaPtr& schema, const std::vector<int>* projection) const {
  SS_ASSIGN_OR_RETURN(const Topic* t, FindTopic(topic));
  if (partition < 0 || partition >= static_cast<int>(t->partitions.size())) {
    return Status::OutOfRange("partition out of range");
  }
  const Partition& p = *t->partitions[static_cast<size_t>(partition)];
  std::lock_guard<std::mutex> lock(p.mu);
  int64_t log_end = static_cast<int64_t>(p.log.size());
  if (start < 0 || start > log_end) {
    return Status::OutOfRange("start offset outside log");
  }
  if (end > log_end) end = log_end;
  const int num_fields = schema->num_fields();
  std::vector<ColumnPtr> columns;
  columns.reserve(static_cast<size_t>(num_fields));
  for (const Field& f : schema->fields()) {
    ColumnPtr col = Column::Make(f.type);
    col->Reserve(end > start ? end - start : 0);
    columns.push_back(std::move(col));
  }
  for (int64_t i = start; i < end; ++i) {
    const Row& row = p.log[static_cast<size_t>(i)];
    for (int c = 0; c < num_fields; ++c) {
      size_t src = projection == nullptr
                       ? static_cast<size_t>(c)
                       : static_cast<size_t>((*projection)[
                             static_cast<size_t>(c)]);
      if (src >= row.size()) {
        return Status::InvalidArgument("record arity does not match schema");
      }
      columns[static_cast<size_t>(c)]->AppendValue(row[src]);
    }
  }
  return RecordBatch::Make(schema, std::move(columns));
}

Result<int64_t> MessageBus::OldestIngestMicros(const std::string& topic,
                                               int partition, int64_t start,
                                               int64_t end) const {
  SS_ASSIGN_OR_RETURN(const Topic* t, FindTopic(topic));
  if (partition < 0 || partition >= static_cast<int>(t->partitions.size())) {
    return Status::OutOfRange("partition out of range");
  }
  const Partition& p = *t->partitions[static_cast<size_t>(partition)];
  std::lock_guard<std::mutex> lock(p.mu);
  if (start < 0) start = 0;
  if (end > static_cast<int64_t>(p.ingest.size())) {
    end = static_cast<int64_t>(p.ingest.size());
  }
  // Undated records (stamp 0) don't pull the minimum to zero.
  int64_t oldest = 0;
  for (int64_t i = start; i < end; ++i) {
    int64_t s = p.ingest[static_cast<size_t>(i)];
    if (s > 0 && (oldest == 0 || s < oldest)) oldest = s;
  }
  return oldest;
}

Result<int64_t> MessageBus::EndOffset(const std::string& topic,
                                      int partition) const {
  SS_ASSIGN_OR_RETURN(const Topic* t, FindTopic(topic));
  if (partition < 0 || partition >= static_cast<int>(t->partitions.size())) {
    return Status::OutOfRange("partition out of range");
  }
  const Partition& p = *t->partitions[static_cast<size_t>(partition)];
  std::lock_guard<std::mutex> lock(p.mu);
  return static_cast<int64_t>(p.log.size());
}

Result<std::vector<int64_t>> MessageBus::EndOffsets(
    const std::string& topic) const {
  SS_ASSIGN_OR_RETURN(const Topic* t, FindTopic(topic));
  std::vector<int64_t> out;
  out.reserve(t->partitions.size());
  for (const auto& p : t->partitions) {
    std::lock_guard<std::mutex> lock(p->mu);
    out.push_back(static_cast<int64_t>(p->log.size()));
  }
  return out;
}

Result<int64_t> MessageBus::TotalRecords(const std::string& topic) const {
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> ends, EndOffsets(topic));
  int64_t total = 0;
  for (int64_t e : ends) total += e;
  return total;
}

}  // namespace sstreaming

#ifndef SSTREAMING_BUS_MESSAGE_BUS_H_
#define SSTREAMING_BUS_MESSAGE_BUS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "types/record_batch.h"
#include "types/row.h"

namespace sstreaming {

/// An in-process, Kafka-like replayable message bus: topics divided into
/// partitions, each an append-only log addressed by offset. This is the only
/// property the engine requires of its sources (paper §3: "input sources must
/// be replayable") and stands in for Kafka/Kinesis. Records are Rows (the
/// real Kafka stores bytes; both the engine and the baselines would pay the
/// same codec cost, so we elide it equally for all of them).
///
/// Thread safety: all operations are safe under concurrent producers and
/// consumers; each partition has its own lock.
class MessageBus {
 public:
  MessageBus() = default;
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// When set, every appended record is stamped with clock->NowMicros()
  /// (broker arrival time, like Kafka's LogAppendTime) so consumers can
  /// measure end-to-end latency and backlog age; records appended without a
  /// clock read as undated (ingest 0). Set before producing — the bus does
  /// not take ownership and the clock must outlive it.
  void set_ingest_clock(const Clock* clock) { ingest_clock_ = clock; }

  Status CreateTopic(const std::string& topic, int num_partitions);
  bool HasTopic(const std::string& topic) const;
  Result<int> NumPartitions(const std::string& topic) const;

  /// Appends one record; returns its offset within the partition.
  Result<int64_t> Append(const std::string& topic, int partition, Row row);

  /// Appends many records (single lock acquisition — the batched-producer
  /// path). Returns the offset of the first appended record.
  Result<int64_t> AppendBatch(const std::string& topic, int partition,
                              std::vector<Row> rows);

  /// Reads records [start, end) from a partition. `end` beyond the log end
  /// is clamped.
  Result<std::vector<Row>> Read(const std::string& topic, int partition,
                                int64_t start, int64_t end) const;

  /// Reads records [start, end) directly into a columnar batch (single
  /// pass, no intermediate row vector) — the batched-consumer path used by
  /// the engine's source.
  /// `projection`: indices into the stored record to materialize (schema
  /// must describe exactly those fields, in order); null = all fields.
  Result<RecordBatchPtr> ReadBatch(const std::string& topic, int partition,
                                   int64_t start, int64_t end,
                                   const SchemaPtr& schema,
                                   const std::vector<int>* projection =
                                       nullptr) const;

  /// Arrival stamp (clock micros) of the oldest record in [start, end) of a
  /// partition, or 0 when no record in the range is dated. Errors only on
  /// unknown topic/partition.
  Result<int64_t> OldestIngestMicros(const std::string& topic, int partition,
                                     int64_t start, int64_t end) const;

  /// One past the last offset in a partition.
  Result<int64_t> EndOffset(const std::string& topic, int partition) const;

  /// End offsets for all partitions of a topic.
  Result<std::vector<int64_t>> EndOffsets(const std::string& topic) const;

  /// Total record count across partitions (monitoring convenience).
  Result<int64_t> TotalRecords(const std::string& topic) const;

 private:
  struct Partition {
    mutable std::mutex mu;
    std::vector<Row> log SS_GUARDED_BY(mu);
    // Parallel to log: arrival stamp per record (0 = undated).
    std::vector<int64_t> ingest SS_GUARDED_BY(mu);
  };
  struct Topic {
    // The vector is append-never after CreateTopic; partitions synchronize
    // themselves.
    std::vector<std::unique_ptr<Partition>> partitions;
  };

  Result<const Topic*> FindTopic(const std::string& topic) const
      SS_EXCLUDES(topics_mu_);

  const Clock* ingest_clock_ = nullptr;
  mutable std::mutex topics_mu_;
  std::map<std::string, Topic> topics_ SS_GUARDED_BY(topics_mu_);
};

}  // namespace sstreaming

#endif  // SSTREAMING_BUS_MESSAGE_BUS_H_

#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/plan_analyzer.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "expr/aggregate.h"

namespace sstreaming {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind;
  std::string text;   // uppercased for idents/symbols
  std::string raw;    // original spelling
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  Status Fail(const std::string& msg) const {
    return Status::InvalidArgument("SQL parse error at position " +
                                   std::to_string(current_.pos) + " ('" +
                                   current_.raw + "'): " + msg);
  }

 private:
  void Advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_.pos = pos_;
    if (pos_ >= text_.size()) {
      current_ = Token{TokKind::kEnd, "", "", pos_};
      return;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      std::string raw = text_.substr(start, pos_ - start);
      std::string upper = raw;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      current_ = Token{TokKind::kIdent, upper, raw, start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_;
      bool is_float = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        if (text_[pos_] == '.') is_float = true;
        ++pos_;
      }
      std::string raw = text_.substr(start, pos_ - start);
      current_ = Token{TokKind::kNumber, is_float ? "F" : "I", raw, start};
      return;
    }
    if (c == '\'') {
      size_t start = pos_++;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '\'') {
        value.push_back(text_[pos_++]);
      }
      if (pos_ < text_.size()) ++pos_;  // closing quote
      current_ = Token{TokKind::kString, value, value, start};
      return;
    }
    // Multi-char symbols first.
    static const char* kTwo[] = {"<=", ">=", "!=", "<>"};
    for (const char* sym : kTwo) {
      if (text_.compare(pos_, 2, sym) == 0) {
        current_ = Token{TokKind::kSymbol, sym, sym, pos_};
        pos_ += 2;
        return;
      }
    }
    current_ = Token{TokKind::kSymbol, std::string(1, c),
                     std::string(1, c), pos_};
    ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
  Token current_{TokKind::kEnd, "", "", 0};
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;                      // scalar item
  std::optional<AggSpec> aggregate;  // aggregate item
  std::string alias;
  bool is_star = false;
};

class Parser {
 public:
  Parser(const std::string& text,
         const std::map<std::string, DataFrame>& tables)
      : lex_(text), tables_(tables) {}

  Result<DataFrame> ParseSelect() {
    SS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    bool distinct = AcceptKeyword("DISTINCT");

    std::vector<SelectItem> items;
    while (true) {
      SS_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }

    SS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SS_ASSIGN_OR_RETURN(DataFrame df, ParseTableRef());

    // Joins.
    while (true) {
      JoinType type = JoinType::kInner;
      if (AcceptKeyword("LEFT")) {
        AcceptKeyword("OUTER");
        type = JoinType::kLeftOuter;
      } else if (AcceptKeyword("RIGHT")) {
        AcceptKeyword("OUTER");
        type = JoinType::kRightOuter;
      } else if (AcceptKeyword("INNER")) {
        // fallthrough to JOIN
      } else if (lex_.peek().text != "JOIN") {
        break;
      }
      SS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      SS_ASSIGN_OR_RETURN(DataFrame right, ParseTableRef());
      if (AcceptKeyword("USING")) {
        SS_RETURN_IF_ERROR(ExpectSymbol("("));
        std::vector<std::string> cols;
        while (true) {
          SS_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
          cols.push_back(std::move(name));
          if (!AcceptSymbol(",")) break;
        }
        SS_RETURN_IF_ERROR(ExpectSymbol(")"));
        df = df.Join(right, cols, type);
      } else {
        SS_RETURN_IF_ERROR(ExpectKeyword("ON"));
        std::vector<ExprPtr> left_keys;
        std::vector<ExprPtr> right_keys;
        while (true) {
          SS_ASSIGN_OR_RETURN(std::string l, ExpectIdent());
          SS_RETURN_IF_ERROR(ExpectSymbol("="));
          SS_ASSIGN_OR_RETURN(std::string r, ExpectIdent());
          left_keys.push_back(Col(l));
          right_keys.push_back(Col(r));
          if (!AcceptKeyword("AND")) break;
        }
        df = df.Join(right, std::move(left_keys), std::move(right_keys),
                     type);
      }
    }

    if (AcceptKeyword("WHERE")) {
      SS_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      df = df.Where(std::move(pred));
    }

    // GROUP BY / aggregation handling.
    bool has_aggregates = false;
    for (const SelectItem& item : items) {
      if (item.aggregate.has_value()) has_aggregates = true;
    }
    if (AcceptKeyword("GROUP")) {
      SS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      std::vector<ExprPtr> group_exprs;
      while (true) {
        SS_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        group_exprs.push_back(std::move(g));
        if (!AcceptSymbol(",")) break;
      }
      SS_ASSIGN_OR_RETURN(df,
                          BuildAggregate(df, std::move(group_exprs), items));
    } else if (has_aggregates) {
      // Global aggregation (no keys).
      SS_ASSIGN_OR_RETURN(df, BuildAggregate(df, {}, items));
    } else {
      SS_ASSIGN_OR_RETURN(df, BuildProjection(df, items));
    }

    if (AcceptKeyword("HAVING")) {
      SS_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      df = df.Where(std::move(pred));
    }
    if (distinct) df = df.Distinct();
    if (AcceptKeyword("ORDER")) {
      SS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      std::vector<SortKey> keys;
      while (true) {
        SS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        bool ascending = true;
        if (AcceptKeyword("DESC")) {
          ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        keys.push_back(SortKey{std::move(e), ascending});
        if (!AcceptSymbol(",")) break;
      }
      df = df.OrderBy(std::move(keys));
    }
    if (AcceptKeyword("LIMIT")) {
      const Token& t = lex_.peek();
      if (t.kind != TokKind::kNumber || t.text != "I") {
        return lex_.Fail("expected integer after LIMIT");
      }
      df = df.Limit(std::stoll(lex_.Take().raw));
    }
    AcceptSymbol(";");
    if (lex_.peek().kind != TokKind::kEnd) {
      return lex_.Fail("unexpected trailing input");
    }
    return df;
  }

 private:
  // --- clause builders ---

  Result<DataFrame> BuildProjection(DataFrame df,
                                    const std::vector<SelectItem>& items) {
    if (items.size() == 1 && items[0].is_star) return df;
    std::vector<NamedExpr> exprs;
    for (const SelectItem& item : items) {
      if (item.is_star) {
        return Status::InvalidArgument(
            "SELECT *: '*' cannot be combined with other select items");
      }
      if (item.aggregate.has_value()) {
        return Status::Internal("aggregate outside aggregation");
      }
      exprs.push_back(NamedExpr{item.expr, item.alias});
    }
    return df.Select(std::move(exprs));
  }

  Result<DataFrame> BuildAggregate(DataFrame df,
                                   std::vector<ExprPtr> group_exprs,
                                   const std::vector<SelectItem>& items) {
    // SELECT items must be either aggregates or group expressions; group
    // keys get their output name from a matching select alias when present.
    std::vector<NamedExpr> groups;
    for (const ExprPtr& g : group_exprs) {
      std::string name;
      for (const SelectItem& item : items) {
        if (!item.aggregate.has_value() && !item.is_star &&
            item.expr->ToString() == g->ToString() && !item.alias.empty()) {
          name = item.alias;
        }
      }
      groups.push_back(NamedExpr{g, std::move(name)});
    }
    std::vector<AggSpec> aggs;
    int unnamed = 0;
    for (const SelectItem& item : items) {
      if (item.is_star) {
        return Status::InvalidArgument("SELECT * with GROUP BY");
      }
      if (item.aggregate.has_value()) {
        AggSpec spec = *item.aggregate;
        if (!item.alias.empty()) {
          spec.name = item.alias;
        } else if (spec.name.empty()) {
          spec.name = "agg" + std::to_string(unnamed++);
        }
        aggs.push_back(std::move(spec));
        continue;
      }
      // Non-aggregate select item: must match a group expression.
      bool matches = false;
      for (const ExprPtr& g : group_exprs) {
        if (item.expr->ToString() == g->ToString()) matches = true;
      }
      if (!matches) {
        return Status::InvalidArgument(
            "select item '" + item.expr->ToString() +
            "' is neither an aggregate nor a GROUP BY expression");
      }
    }
    if (aggs.empty()) {
      return Status::InvalidArgument(
          "GROUP BY requires at least one aggregate in the SELECT list");
    }
    return df.GroupBy(std::move(groups)).Agg(std::move(aggs));
  }

  Result<DataFrame> ParseTableRef() {
    if (lex_.peek().kind != TokKind::kIdent) {
      return lex_.Fail("expected table name");
    }
    Token tok = lex_.Take();
    auto it = tables_.find(tok.text);  // table names are case-insensitive
    if (it == tables_.end()) {
      return Status::NotFound("unknown table '" + tok.raw + "'");
    }
    return it->second;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (lex_.peek().kind == TokKind::kSymbol && lex_.peek().text == "*") {
      lex_.Take();
      item.is_star = true;
      return item;
    }
    // Aggregate function?
    const Token& t = lex_.peek();
    if (t.kind == TokKind::kIdent &&
        (t.text == "COUNT" || t.text == "SUM" || t.text == "AVG" ||
         t.text == "MIN" || t.text == "MAX")) {
      std::string func = lex_.Take().text;
      SS_RETURN_IF_ERROR(ExpectSymbol("("));
      if (func == "COUNT" && lex_.peek().text == "*") {
        lex_.Take();
        SS_RETURN_IF_ERROR(ExpectSymbol(")"));
        item.aggregate = CountAll("");
      } else {
        SS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        SS_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (func == "COUNT") {
          item.aggregate = CountOf(std::move(arg), "");
        } else if (func == "SUM") {
          item.aggregate = SumOf(std::move(arg), "");
        } else if (func == "AVG") {
          item.aggregate = AvgOf(std::move(arg), "");
        } else if (func == "MIN") {
          item.aggregate = MinOf(std::move(arg), "");
        } else {
          item.aggregate = MaxOf(std::move(arg), "");
        }
      }
    } else {
      SS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (AcceptKeyword("AS")) {
      SS_ASSIGN_OR_RETURN(item.alias, ExpectIdentRaw());
    } else if (lex_.peek().kind == TokKind::kIdent &&
               !IsKeyword(lex_.peek().text)) {
      item.alias = lex_.Take().raw;  // bare alias
    }
    if (item.aggregate.has_value() && item.alias.empty()) {
      item.aggregate->name = "";
    }
    return item;
  }

  // --- expression grammar: OR > AND > NOT > cmp > add > mul > unary ---

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SS_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("OR")) {
      SS_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    SS_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (AcceptKeyword("AND")) {
      SS_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      SS_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return Not(std::move(child));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SS_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      SS_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return negated ? IsNotNull(std::move(left)) : IsNull(std::move(left));
    }
    const Token& t = lex_.peek();
    if (t.kind == TokKind::kSymbol) {
      BinaryOp op;
      bool matched = true;
      if (t.text == "=") {
        op = BinaryOp::kEq;
      } else if (t.text == "!=" || t.text == "<>") {
        op = BinaryOp::kNe;
      } else if (t.text == "<") {
        op = BinaryOp::kLt;
      } else if (t.text == "<=") {
        op = BinaryOp::kLe;
      } else if (t.text == ">") {
        op = BinaryOp::kGt;
      } else if (t.text == ">=") {
        op = BinaryOp::kGe;
      } else {
        matched = false;
        op = BinaryOp::kEq;
      }
      if (matched) {
        lex_.Take();
        SS_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return ExprPtr(std::make_shared<BinaryExpr>(op, std::move(left),
                                                    std::move(right)));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    SS_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      const Token& t = lex_.peek();
      if (t.kind != TokKind::kSymbol || (t.text != "+" && t.text != "-")) {
        return left;
      }
      bool plus = lex_.Take().text == "+";
      SS_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = plus ? Add(std::move(left), std::move(right))
                  : Sub(std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    SS_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      const Token& t = lex_.peek();
      if (t.kind != TokKind::kSymbol ||
          (t.text != "*" && t.text != "/" && t.text != "%")) {
        return left;
      }
      std::string op = lex_.Take().text;
      SS_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      if (op == "*") {
        left = Mul(std::move(left), std::move(right));
      } else if (op == "/") {
        left = Div(std::move(left), std::move(right));
      } else {
        left = Mod(std::move(left), std::move(right));
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (lex_.peek().kind == TokKind::kSymbol && lex_.peek().text == "-") {
      lex_.Take();
      SS_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      return Neg(std::move(child));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = lex_.peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        Token tok = lex_.Take();
        if (tok.text == "F") return Lit(std::stod(tok.raw));
        return Lit(static_cast<int64_t>(std::stoll(tok.raw)));
      }
      case TokKind::kString:
        return Lit(lex_.Take().raw);
      case TokKind::kSymbol:
        if (t.text == "(") {
          lex_.Take();
          SS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          SS_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        return lex_.Fail("expected expression");
      case TokKind::kIdent: {
        if (t.text == "TRUE") {
          lex_.Take();
          return Lit(true);
        }
        if (t.text == "FALSE") {
          lex_.Take();
          return Lit(false);
        }
        if (t.text == "NULL") {
          lex_.Take();
          return Lit(Value::Null());
        }
        if (t.text == "CAST") {
          lex_.Take();
          SS_RETURN_IF_ERROR(ExpectSymbol("("));
          SS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
          SS_RETURN_IF_ERROR(ExpectKeyword("AS"));
          SS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
          SS_RETURN_IF_ERROR(ExpectSymbol(")"));
          TypeId type;
          if (type_name == "INT" || type_name == "BIGINT" ||
              type_name == "INT64" || type_name == "INTEGER" ||
              type_name == "LONG") {
            type = TypeId::kInt64;
          } else if (type_name == "DOUBLE" || type_name == "FLOAT" ||
                     type_name == "FLOAT64") {
            type = TypeId::kFloat64;
          } else if (type_name == "STRING" || type_name == "VARCHAR" ||
                     type_name == "TEXT") {
            type = TypeId::kString;
          } else if (type_name == "TIMESTAMP") {
            type = TypeId::kTimestamp;
          } else if (type_name == "BOOLEAN" || type_name == "BOOL") {
            type = TypeId::kBool;
          } else {
            return lex_.Fail("unknown type in CAST: " + type_name);
          }
          return Cast(std::move(child), type);
        }
        if (t.text == "WINDOW") {
          lex_.Take();
          SS_RETURN_IF_ERROR(ExpectSymbol("("));
          SS_ASSIGN_OR_RETURN(ExprPtr time, ParseExpr());
          SS_RETURN_IF_ERROR(ExpectSymbol(","));
          if (lex_.peek().kind != TokKind::kString) {
            return lex_.Fail("window() expects an interval string");
          }
          SS_ASSIGN_OR_RETURN(int64_t size,
                              ParseIntervalMicros(lex_.Take().raw));
          int64_t slide = size;
          if (AcceptSymbol(",")) {
            if (lex_.peek().kind != TokKind::kString) {
              return lex_.Fail("window() slide must be an interval string");
            }
            SS_ASSIGN_OR_RETURN(slide,
                                ParseIntervalMicros(lex_.Take().raw));
          }
          SS_RETURN_IF_ERROR(ExpectSymbol(")"));
          return Window(std::move(time), size, slide);
        }
        // Plain column reference (original spelling preserved).
        return Col(lex_.Take().raw);
      }
      case TokKind::kEnd:
        return lex_.Fail("unexpected end of query");
    }
    return lex_.Fail("expected expression");
  }

  // --- token helpers ---

  static bool IsKeyword(const std::string& upper) {
    static const char* kKeywords[] = {
        "SELECT", "FROM", "WHERE", "GROUP", "BY",     "HAVING", "ORDER",
        "LIMIT",  "JOIN", "LEFT",  "RIGHT", "INNER",  "OUTER",  "ON",
        "USING",  "AND",  "OR",    "NOT",   "AS",     "IS",     "NULL",
        "ASC",    "DESC", "DISTINCT"};
    for (const char* k : kKeywords) {
      if (upper == k) return true;
    }
    return false;
  }

  bool AcceptKeyword(const std::string& kw) {
    if (lex_.peek().kind == TokKind::kIdent && lex_.peek().text == kw) {
      lex_.Take();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return lex_.Fail("expected " + kw);
    return Status::OK();
  }

  bool AcceptSymbol(const std::string& sym) {
    if (lex_.peek().kind == TokKind::kSymbol && lex_.peek().text == sym) {
      lex_.Take();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) return lex_.Fail("expected '" + sym + "'");
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (lex_.peek().kind != TokKind::kIdent) {
      return lex_.Fail("expected identifier");
    }
    return lex_.Take().raw;
  }

  Result<std::string> ExpectIdentRaw() { return ExpectIdent(); }

  Lexer lex_;
  const std::map<std::string, DataFrame>& tables_;
};

}  // namespace

Result<int64_t> ParseIntervalMicros(const std::string& text) {
  size_t pos = 0;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  size_t start = pos;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '.')) {
    ++pos;
  }
  if (pos == start) {
    return Status::InvalidArgument("bad interval '" + text + "'");
  }
  double amount = std::stod(text.substr(start, pos - start));
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  std::string unit = text.substr(pos);
  std::transform(unit.begin(), unit.end(), unit.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (!unit.empty() && unit.back() == 's') unit.pop_back();
  double micros;
  if (unit == "microsecond" || unit == "micro" || unit == "us") {
    micros = 1;
  } else if (unit == "millisecond" || unit == "milli" || unit == "m" ||
             unit == "ms") {
    micros = 1000;
  } else if (unit == "second" || unit == "sec") {
    micros = 1000000;
  } else if (unit == "minute" || unit == "min") {
    micros = 60.0 * 1000000;
  } else if (unit == "hour" || unit == "hr") {
    micros = 3600.0 * 1000000;
  } else if (unit == "day") {
    micros = 86400.0 * 1000000;
  } else {
    return Status::InvalidArgument("bad interval unit in '" + text + "'");
  }
  return static_cast<int64_t>(amount * micros);
}

void SqlContext::RegisterTable(const std::string& name, DataFrame df) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  tables_.insert_or_assign(upper, std::move(df));
}

bool SqlContext::HasTable(const std::string& name) const {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return tables_.find(upper) != tables_.end();
}

Result<DataFrame> SqlContext::Sql(const std::string& query) const {
  // Table lookups are case-insensitive (names were uppercased on
  // registration and the parser uppercases identifiers it resolves).
  std::map<std::string, DataFrame> upper_tables = tables_;
  Parser parser(query, upper_tables);
  return parser.ParseSelect();
}

Result<std::string> SqlContext::ExplainSql(const std::string& query,
                                           OutputMode mode) const {
  SS_ASSIGN_OR_RETURN(DataFrame df, Sql(query));
  SS_ASSIGN_OR_RETURN(PlanPtr analyzed, Analyzer::Analyze(df.plan()));
  std::string out = analyzed->TreeString();
  if (analyzed->IsStreaming()) {
    out += PlanAnalyzer::Analyze(analyzed, mode).Explain();
    // Canonical fingerprint (QueryOptions-default partitions/shards): the
    // same identity the checkpoint manifest gate and `ssctl lint-checkpoint`
    // compare against, so operators can see it before starting a query.
    QueryOptions defaults;
    out += ComputePlanFingerprint(analyzed, mode, defaults.num_partitions,
                                  defaults.num_state_shards)
               .Render();
  } else {
    out += "plan analysis: batch plan; streaming diagnostics skipped\n";
  }
  return out;
}

Result<std::string> SqlContext::ExplainAnalyzeSql(const std::string& query,
                                                  OutputMode mode) const {
  SS_ASSIGN_OR_RETURN(DataFrame df, Sql(query));
  SS_ASSIGN_OR_RETURN(PlanPtr analyzed, Analyzer::Analyze(df.plan()));
  if (!analyzed->IsStreaming()) {
    SS_ASSIGN_OR_RETURN(std::string explain, ExplainSql(query, mode));
    return "== EXPLAIN ANALYZE ==\nbatch plan; no epochs to profile — "
           "showing EXPLAIN\n" +
           explain;
  }
  QueryOptions options;
  options.mode = mode;
  options.trigger = Trigger::Once();
  options.query_name = "explain-analyze";
  options.enable_tracing = false;
  auto sink = std::make_shared<MemorySink>();
  SS_ASSIGN_OR_RETURN(std::unique_ptr<StreamingQuery> run,
                      StreamingQuery::Start(df, sink, std::move(options)));
  SS_RETURN_IF_ERROR(run->ProcessAllAvailable());
  return run->ExplainAnalyze();
}

}  // namespace sstreaming

#ifndef SSTREAMING_SQL_PARSER_H_
#define SSTREAMING_SQL_PARSER_H_

#include <map>
#include <string>

#include "logical/dataframe.h"
#include "logical/output_mode.h"

namespace sstreaming {

/// The SQL front end (paper §4.1: "Alternatively, users can write SQL
/// directly. All APIs produce a relational query plan."). A registered
/// table can be static or streaming; the parsed query is just a DataFrame,
/// so it runs through the same analyzer / optimizer / incrementalizer as
/// the programmatic API and can be executed by RunBatch or StreamingQuery.
///
/// Supported grammar (one SELECT statement):
///
///   SELECT [DISTINCT] item [, item]*
///   FROM table
///   [JOIN table ON col = col [AND col = col]* | JOIN table USING (col,...)]
///   [LEFT JOIN ... | RIGHT JOIN ...]
///   [WHERE predicate]
///   [GROUP BY expr [, expr]*]
///   [HAVING predicate]
///   [ORDER BY expr [ASC|DESC] [, ...]]
///   [LIMIT n]
///
/// Expressions: column refs, integer/float/string literals, TRUE/FALSE/NULL,
/// + - * / %, comparisons (= != <> < <= > >=), AND/OR/NOT, IS [NOT] NULL,
/// CAST(e AS type), aggregate functions COUNT(*)/COUNT/SUM/AVG/MIN/MAX, and
/// WINDOW(time_col, '10 seconds' [, '5 seconds']) as a GROUP BY key.
/// Interval literals: '<n> second(s)|minute(s)|hour(s)|day(s)|millisecond(s)'.
class SqlContext {
 public:
  /// Registers a table name (static or streaming DataFrame).
  void RegisterTable(const std::string& name, DataFrame df);
  bool HasTable(const std::string& name) const;

  /// Parses one SELECT statement into a DataFrame plan. Returns
  /// InvalidArgument with a position-annotated message on syntax errors and
  /// NotFound for unknown tables. (Name/type errors surface later, at
  /// analysis, exactly as with the DataFrame API.)
  Result<DataFrame> Sql(const std::string& query) const;

  /// The SQL spelling of EXPLAIN: parses and analyzes `query`, then renders
  /// the resolved plan tree followed by the static plan-analysis report for
  /// `mode` (every SSxxxx error and warning with provenance; see
  /// docs/PLAN_DIAGNOSTICS.md). Batch queries render their plan with the
  /// streaming diagnostics skipped. Parse and name/type errors return the
  /// usual Status.
  Result<std::string> ExplainSql(const std::string& query,
                                 OutputMode mode) const;

  /// EXPLAIN ANALYZE (§7.4): parses `query`, runs it as an ephemeral
  /// streaming query against an in-memory sink until all currently-available
  /// input is consumed, and renders the physical plan annotated with actual
  /// per-operator rows/batches/CPU/state sizes (PlanProfile). The run is
  /// side-effect free: nothing is checkpointed and the sink is discarded.
  /// Batch plans return EXPLAIN output plus a note (there are no epochs to
  /// profile). Execution errors return the failing Status.
  Result<std::string> ExplainAnalyzeSql(const std::string& query,
                                        OutputMode mode) const;

 private:
  std::map<std::string, DataFrame> tables_;
};

/// Parses an interval literal like "10 seconds" to microseconds (exposed
/// for reuse and tests).
Result<int64_t> ParseIntervalMicros(const std::string& text);

}  // namespace sstreaming

#endif  // SSTREAMING_SQL_PARSER_H_

#ifndef SSTREAMING_TYPES_RECORD_BATCH_H_
#define SSTREAMING_TYPES_RECORD_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/column.h"
#include "types/row.h"
#include "types/schema.h"
#include "types/selection_vector.h"

namespace sstreaming {

class RecordBatch;
using RecordBatchPtr = std::shared_ptr<RecordBatch>;

/// A horizontal slice of a table: a schema plus one Column per field, all of
/// equal length. Batches are immutable after construction and shared by
/// pointer between operators.
///
/// A batch may carry a selection vector (docs/VECTORIZED_EXEC.md): the
/// columns then hold physical_rows() rows of which only the selected
/// num_rows() are logically present, in selection order. All row-level
/// accessors (RowAt, Filter, Slice, Gather, Concat, ToRows, ToString) see
/// the logical view; Column-level accessors (column(i)->Int64At etc.) see
/// physical storage and must be indexed through selection() — or the batch
/// materialized first. Vectorized expression evaluation (Expr::EvalBatch)
/// requires a batch WITHOUT a selection.
class RecordBatch {
 public:
  RecordBatch(SchemaPtr schema, std::vector<ColumnPtr> columns);

  static std::shared_ptr<RecordBatch> Make(SchemaPtr schema,
                                           std::vector<ColumnPtr> columns) {
    return std::make_shared<RecordBatch>(std::move(schema),
                                         std::move(columns));
  }

  /// An empty batch with the given schema.
  static std::shared_ptr<RecordBatch> Empty(SchemaPtr schema);

  /// Builds a batch by boxing rows (test/constructor convenience).
  static Result<std::shared_ptr<RecordBatch>> FromRows(
      SchemaPtr schema, const std::vector<Row>& rows);

  const SchemaPtr& schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }
  const ColumnPtr& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<ColumnPtr>& columns() const { return columns_; }

  /// Boxes row i. Not for inner loops.
  Row RowAt(int64_t i) const;
  /// Boxes all rows.
  std::vector<Row> ToRows() const;

  /// Keeps rows where mask[i] != 0. `mask` must have num_rows entries.
  std::shared_ptr<RecordBatch> Filter(const std::vector<uint8_t>& mask) const;

  /// Projects the given column indices (with the matching schema).
  std::shared_ptr<RecordBatch> SelectColumns(
      const std::vector<int>& indices) const;

  /// Rows [start, start+length).
  std::shared_ptr<RecordBatch> Slice(int64_t start, int64_t length) const;

  /// Rows at the given indices, in order (typed gather, no boxing).
  std::shared_ptr<RecordBatch> Gather(
      const std::vector<int32_t>& indices) const;

  /// Concatenates batches sharing a schema. Empty input yields Empty(schema).
  static std::shared_ptr<RecordBatch> Concat(
      SchemaPtr schema,
      const std::vector<std::shared_ptr<RecordBatch>>& batches);

  // --- Selection vectors (docs/VECTORIZED_EXEC.md) ---

  /// Zero-copy restriction of `base` to the physical row indices in
  /// `selection` (logical order). Shares `base`'s column storage. If `base`
  /// itself carries a selection, the indices are interpreted as *logical*
  /// rows of `base` and composed, so the result always indexes physical
  /// storage directly.
  static RecordBatchPtr MakeView(const RecordBatchPtr& base,
                                 SelectionVector selection);

  /// Compacts a selection view into a plain batch (one typed gather per
  /// column). Returns `batch` unchanged — no copy — when it carries no
  /// selection. Preserves ingest_micros.
  static RecordBatchPtr Materialize(const RecordBatchPtr& batch);

  bool has_selection() const { return has_selection_; }
  const SelectionVector& selection() const { return selection_; }
  /// Rows physically present in the columns (== num_rows() when there is no
  /// selection).
  int64_t physical_rows() const {
    return columns_.empty() ? 0 : columns_[0]->size();
  }
  /// Physical storage index of logical row i.
  int64_t PhysIndex(int64_t i) const {
    return has_selection_ ? selection_.data[i] : i;
  }

  /// Approximate in-memory footprint in bytes (sum of the columns' payload
  /// sizes; O(num_columns)). Feeds the per-operator output-bytes actuals and
  /// the memory-accounting gauges.
  int64_t ApproxBytes() const;

  /// Ingest timestamp (clock micros) of the oldest source record that
  /// contributed to this batch, or 0 when unknown. Stamped once by the
  /// source scan and carried through row-shape transformations (filter,
  /// project, slice, gather, concat); operators that materialize entirely
  /// new batches (aggregation, state flush) drop the stamp and the epoch's
  /// minimum is used as a fallback for sink-side latency measurement.
  int64_t ingest_micros() const { return ingest_micros_; }
  void set_ingest_micros(int64_t micros) { ingest_micros_ = micros; }

  /// Debug table rendering (header + all rows).
  std::string ToString() const;

 private:
  SchemaPtr schema_;
  std::vector<ColumnPtr> columns_;
  /// Logical row count: selection size when a selection is engaged,
  /// otherwise the columns' physical length.
  int64_t num_rows_;
  bool has_selection_ = false;
  SelectionVector selection_;
  /// Latency provenance, not data: excluded from equality/rendering. The one
  /// mutable-after-construction field, set only before a batch is shared.
  int64_t ingest_micros_ = 0;
};

}  // namespace sstreaming

#endif  // SSTREAMING_TYPES_RECORD_BATCH_H_

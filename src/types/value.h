#ifndef SSTREAMING_TYPES_VALUE_H_
#define SSTREAMING_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"
#include "types/data_type.h"

namespace sstreaming {

/// A boxed scalar. Used at row granularity (record-at-a-time baselines,
/// state serialization, test assertions); the vectorized execution path works
/// on typed Columns and never boxes per value in inner loops.
class Value {
 public:
  /// The null value (untyped null; compatible with every column type).
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int64(int64_t v);
  static Value Float64(double v);
  static Value Str(std::string v);
  static Value Timestamp(int64_t micros);

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  /// Typed accessors. Preconditions: matching type (timestamp shares the
  /// int64 accessor), not null.
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double float64_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }

  /// Numeric value as double (int64/timestamp are widened). Precondition:
  /// IsNumeric(type()).
  double AsDouble() const;

  /// Total-order comparison: null sorts first; numerics compare by value
  /// across int64/float64/timestamp; strings lexicographically; bools
  /// false<true. Comparing string against numeric is an ordering by TypeId
  /// (stable, but queries should not rely on it).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash (used for shuffle partitioning and hash aggregation).
  uint64_t Hash() const;

  std::string ToString() const;

  /// Binary serialization (state store format): 1 type byte + payload.
  void EncodeTo(std::string* out) const;
  /// Decodes a value from data[*pos...]; advances *pos.
  static Result<Value> DecodeFrom(const std::string& data, size_t* pos);

 private:
  TypeId type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// FNV-1a style mix used by Value::Hash and the columnar hash kernels; kept
/// here so row and column hashing agree (required: both sides of a shuffle
/// must agree on partitioning).
uint64_t HashMix(uint64_t h, uint64_t v);
uint64_t HashBytes(const void* data, size_t n, uint64_t seed);

}  // namespace sstreaming

#endif  // SSTREAMING_TYPES_VALUE_H_

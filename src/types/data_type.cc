#include "types/data_type.h"

namespace sstreaming {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return "null";
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kString:
      return "string";
    case TypeId::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

bool TypeFromName(const std::string& name, TypeId* out) {
  if (name == "null") {
    *out = TypeId::kNull;
  } else if (name == "bool") {
    *out = TypeId::kBool;
  } else if (name == "int64") {
    *out = TypeId::kInt64;
  } else if (name == "float64") {
    *out = TypeId::kFloat64;
  } else if (name == "string") {
    *out = TypeId::kString;
  } else if (name == "timestamp") {
    *out = TypeId::kTimestamp;
  } else {
    return false;
  }
  return true;
}

bool IsNumeric(TypeId type) {
  return type == TypeId::kInt64 || type == TypeId::kFloat64 ||
         type == TypeId::kTimestamp;
}

TypeId CommonNumericType(TypeId a, TypeId b) {
  if (a == TypeId::kFloat64 || b == TypeId::kFloat64) return TypeId::kFloat64;
  return TypeId::kInt64;
}

PhysicalKind PhysicalKindOf(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return PhysicalKind::kNone;
    case TypeId::kBool:
      return PhysicalKind::kBool;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return PhysicalKind::kInt64;
    case TypeId::kFloat64:
      return PhysicalKind::kFloat64;
    case TypeId::kString:
      return PhysicalKind::kString;
  }
  return PhysicalKind::kNone;
}

}  // namespace sstreaming

#include "types/record_batch.h"

#include "common/logging.h"

namespace sstreaming {

RecordBatch::RecordBatch(SchemaPtr schema, std::vector<ColumnPtr> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  SS_CHECK(schema_ != nullptr);
  SS_CHECK(static_cast<int>(columns_.size()) == schema_->num_fields())
      << "batch has " << columns_.size() << " columns but schema has "
      << schema_->num_fields();
  num_rows_ = columns_.empty() ? 0 : columns_[0]->size();
  for (const ColumnPtr& c : columns_) {
    SS_CHECK(c->size() == num_rows_) << "ragged batch";
  }
}

std::shared_ptr<RecordBatch> RecordBatch::Empty(SchemaPtr schema) {
  std::vector<ColumnPtr> columns;
  columns.reserve(static_cast<size_t>(schema->num_fields()));
  for (const Field& f : schema->fields()) {
    columns.push_back(Column::Make(f.type));
  }
  return Make(std::move(schema), std::move(columns));
}

Result<std::shared_ptr<RecordBatch>> RecordBatch::FromRows(
    SchemaPtr schema, const std::vector<Row>& rows) {
  std::vector<ColumnPtr> columns;
  columns.reserve(static_cast<size_t>(schema->num_fields()));
  for (const Field& f : schema->fields()) {
    ColumnPtr c = Column::Make(f.type);
    c->Reserve(static_cast<int64_t>(rows.size()));
    columns.push_back(std::move(c));
  }
  for (const Row& row : rows) {
    if (static_cast<int>(row.size()) != schema->num_fields()) {
      return Status::InvalidArgument(
          "row arity " + std::to_string(row.size()) +
          " does not match schema arity " +
          std::to_string(schema->num_fields()));
    }
    for (int i = 0; i < schema->num_fields(); ++i) {
      const Value& v = row[static_cast<size_t>(i)];
      if (!v.is_null()) {
        TypeId expect = schema->field(i).type;
        TypeId got = v.type();
        bool compatible =
            got == expect ||
            (expect == TypeId::kFloat64 && IsNumeric(got)) ||
            (PhysicalKindOf(expect) == PhysicalKind::kInt64 &&
             PhysicalKindOf(got) == PhysicalKind::kInt64);
        if (!compatible) {
          return Status::InvalidArgument(
              std::string("value of type ") + TypeName(got) +
              " does not fit column '" + schema->field(i).name + "' of type " +
              TypeName(expect));
        }
      }
      columns[static_cast<size_t>(i)]->AppendValue(v);
    }
  }
  return Make(std::move(schema), std::move(columns));
}

RecordBatchPtr RecordBatch::MakeView(const RecordBatchPtr& base,
                                     SelectionVector selection) {
  SS_CHECK(base != nullptr);
  if (base->has_selection_) {
    // Compose: incoming indices are logical rows of `base`; rebase them
    // onto physical storage so views never chain.
    std::vector<int32_t> composed(static_cast<size_t>(selection.size));
    for (int64_t i = 0; i < selection.size; ++i) {
      composed[static_cast<size_t>(i)] =
          base->selection_.data[selection.data[i]];
    }
    selection = SelectionVector::FromVector(std::move(composed));
  }
  auto view = std::make_shared<RecordBatch>(base->schema_, base->columns_);
  view->num_rows_ = selection.size;
  view->has_selection_ = true;
  view->selection_ = std::move(selection);
  view->ingest_micros_ = base->ingest_micros_;
  return view;
}

RecordBatchPtr RecordBatch::Materialize(const RecordBatchPtr& batch) {
  if (batch == nullptr || !batch->has_selection_) return batch;
  std::vector<ColumnPtr> out_columns;
  out_columns.reserve(batch->columns_.size());
  for (const ColumnPtr& in : batch->columns_) {
    ColumnPtr out = Column::Make(in->type());
    out->Reserve(batch->num_rows_);
    for (int64_t i = 0; i < batch->num_rows_; ++i) {
      out->AppendFrom(*in, batch->selection_.data[i]);
    }
    out_columns.push_back(std::move(out));
  }
  auto compact = Make(batch->schema_, std::move(out_columns));
  compact->set_ingest_micros(batch->ingest_micros_);
  return compact;
}

Row RecordBatch::RowAt(int64_t i) const {
  Row row;
  row.reserve(columns_.size());
  const int64_t p = PhysIndex(i);
  for (const ColumnPtr& c : columns_) row.push_back(c->ValueAt(p));
  return row;
}

std::vector<Row> RecordBatch::ToRows() const {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(num_rows_));
  for (int64_t i = 0; i < num_rows_; ++i) rows.push_back(RowAt(i));
  return rows;
}

std::shared_ptr<RecordBatch> RecordBatch::Filter(
    const std::vector<uint8_t>& mask) const {
  SS_CHECK(static_cast<int64_t>(mask.size()) == num_rows_);
  std::vector<ColumnPtr> out_columns;
  out_columns.reserve(columns_.size());
  for (size_t ci = 0; ci < columns_.size(); ++ci) {
    const Column& in = *columns_[ci];
    ColumnPtr out = Column::Make(in.type());
    for (int64_t li = 0; li < num_rows_; ++li) {
      if (!mask[static_cast<size_t>(li)]) continue;
      const int64_t i = PhysIndex(li);
      if (in.IsNull(i)) {
        out->AppendNull();
        continue;
      }
      switch (PhysicalKindOf(in.type())) {
        case PhysicalKind::kBool:
          out->AppendBool(in.BoolAt(i));
          break;
        case PhysicalKind::kInt64:
          out->AppendInt64(in.Int64At(i));
          break;
        case PhysicalKind::kFloat64:
          out->AppendFloat64(in.Float64At(i));
          break;
        case PhysicalKind::kString:
          out->AppendString(in.StringAt(i));
          break;
        case PhysicalKind::kNone:
          out->AppendNull();
          break;
      }
    }
    out_columns.push_back(std::move(out));
  }
  auto out = Make(schema_, std::move(out_columns));
  out->set_ingest_micros(ingest_micros_);
  return out;
}

std::shared_ptr<RecordBatch> RecordBatch::SelectColumns(
    const std::vector<int>& indices) const {
  std::vector<Field> fields;
  std::vector<ColumnPtr> cols;
  fields.reserve(indices.size());
  cols.reserve(indices.size());
  for (int idx : indices) {
    SS_CHECK(idx >= 0 && idx < num_columns());
    fields.push_back(schema_->field(idx));
    cols.push_back(columns_[static_cast<size_t>(idx)]);
  }
  auto out = Make(Schema::Make(std::move(fields)), std::move(cols));
  if (has_selection_) {
    // Column sharing keeps the physical storage; the selection rides along.
    out->num_rows_ = num_rows_;
    out->has_selection_ = true;
    out->selection_ = selection_;
  }
  out->set_ingest_micros(ingest_micros_);
  return out;
}

std::shared_ptr<RecordBatch> RecordBatch::Slice(int64_t start,
                                                int64_t length) const {
  SS_CHECK(start >= 0 && start + length <= num_rows_);
  std::vector<uint8_t> mask(static_cast<size_t>(num_rows_), 0);
  for (int64_t i = start; i < start + length; ++i) {
    mask[static_cast<size_t>(i)] = 1;
  }
  return Filter(mask);
}

std::shared_ptr<RecordBatch> RecordBatch::Gather(
    const std::vector<int32_t>& indices) const {
  std::vector<ColumnPtr> out_columns;
  out_columns.reserve(columns_.size());
  for (const ColumnPtr& in : columns_) {
    ColumnPtr out = Column::Make(in->type());
    out->Reserve(static_cast<int64_t>(indices.size()));
    // Gather indices address logical rows; map through any selection.
    for (int32_t i : indices) out->AppendFrom(*in, PhysIndex(i));
    out_columns.push_back(std::move(out));
  }
  auto gathered = Make(schema_, std::move(out_columns));
  gathered->set_ingest_micros(ingest_micros_);
  return gathered;
}

std::shared_ptr<RecordBatch> RecordBatch::Concat(
    SchemaPtr schema,
    const std::vector<std::shared_ptr<RecordBatch>>& batches) {
  if (batches.size() == 1) return batches[0];
  std::vector<ColumnPtr> columns;
  for (int ci = 0; ci < schema->num_fields(); ++ci) {
    ColumnPtr out = Column::Make(schema->field(ci).type);
    for (const auto& batch : batches) {
      const Column& in = *batch->column(ci);
      for (int64_t li = 0; li < batch->num_rows(); ++li) {
        const int64_t i = batch->PhysIndex(li);
        if (in.IsNull(i)) {
          out->AppendNull();
          continue;
        }
        switch (PhysicalKindOf(in.type())) {
          case PhysicalKind::kBool:
            out->AppendBool(in.BoolAt(i));
            break;
          case PhysicalKind::kInt64:
            out->AppendInt64(in.Int64At(i));
            break;
          case PhysicalKind::kFloat64:
            out->AppendFloat64(in.Float64At(i));
            break;
          case PhysicalKind::kString:
            out->AppendString(in.StringAt(i));
            break;
          case PhysicalKind::kNone:
            out->AppendNull();
            break;
        }
      }
    }
    columns.push_back(std::move(out));
  }
  auto merged = Make(std::move(schema), std::move(columns));
  // Oldest contributing record wins: latency must not shrink by merging.
  int64_t oldest = 0;
  for (const auto& batch : batches) {
    int64_t m = batch->ingest_micros();
    if (m > 0 && (oldest == 0 || m < oldest)) oldest = m;
  }
  merged->set_ingest_micros(oldest);
  return merged;
}

int64_t RecordBatch::ApproxBytes() const {
  int64_t total = 0;
  for (const ColumnPtr& col : columns_) total += col->ApproxBytes();
  return total;
}

std::string RecordBatch::ToString() const {
  std::string out = schema_->ToString();
  out += "\n";
  for (int64_t i = 0; i < num_rows_; ++i) {
    out += RowToString(RowAt(i));
    out += "\n";
  }
  return out;
}

}  // namespace sstreaming

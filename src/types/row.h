#ifndef SSTREAMING_TYPES_ROW_H_
#define SSTREAMING_TYPES_ROW_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace sstreaming {

/// A boxed row: one Value per schema field. The record-at-a-time baselines
/// and the state store operate on Rows; the vectorized engine uses
/// RecordBatch.
using Row = std::vector<Value>;

inline uint64_t HashRow(const Row& row) {
  uint64_t h = 0x811C9DC5ULL;
  for (const Value& v : row) h = HashMix(h, v.Hash());
  return h;
}

inline std::string RowToString(const Row& row) {
  std::string out = "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += "]";
  return out;
}

/// Binary row codec used by the state store.
inline void EncodeRow(const Row& row, std::string* out) {
  out->push_back(static_cast<char>(row.size()));
  for (const Value& v : row) v.EncodeTo(out);
}

inline Result<Row> DecodeRow(const std::string& data, size_t* pos) {
  if (*pos >= data.size()) {
    return Status::InvalidArgument("row decode: truncated arity byte");
  }
  size_t n = static_cast<unsigned char>(data[(*pos)++]);
  Row row;
  row.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SS_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(data, pos));
    row.push_back(std::move(v));
  }
  return row;
}

inline Result<Row> DecodeRow(const std::string& data) {
  size_t pos = 0;
  return DecodeRow(data, &pos);
}

/// Lexicographic row ordering via Value::Compare.
inline int CompareRows(const Row& a, const Row& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) < 0;
  }
};

struct RowHash {
  size_t operator()(const Row& r) const {
    return static_cast<size_t>(HashRow(r));
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) == 0;
  }
};

}  // namespace sstreaming

#endif  // SSTREAMING_TYPES_ROW_H_

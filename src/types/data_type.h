#ifndef SSTREAMING_TYPES_DATA_TYPE_H_
#define SSTREAMING_TYPES_DATA_TYPE_H_

#include <string>

namespace sstreaming {

/// Scalar type system for the relational layer. Timestamps are event/
/// processing times stored as microseconds since the Unix epoch (int64).
enum class TypeId {
  kNull = 0,
  kBool,
  kInt64,
  kFloat64,
  kString,
  kTimestamp,
};

/// "null", "bool", "int64", "float64", "string", "timestamp".
const char* TypeName(TypeId type);

/// Parses a TypeName back to a TypeId; returns false on unknown names.
bool TypeFromName(const std::string& name, TypeId* out);

/// Int64, Float64 and Timestamp (which is int64-backed) are numeric.
bool IsNumeric(TypeId type);

/// The promoted type of a binary arithmetic op: float64 if either side is
/// float64, otherwise int64.
TypeId CommonNumericType(TypeId a, TypeId b);

/// The physical storage class of a type (timestamp is int64-backed,
/// null has no storage).
enum class PhysicalKind { kNone, kBool, kInt64, kFloat64, kString };
PhysicalKind PhysicalKindOf(TypeId type);

}  // namespace sstreaming

#endif  // SSTREAMING_TYPES_DATA_TYPE_H_

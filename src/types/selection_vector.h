#ifndef SSTREAMING_TYPES_SELECTION_VECTOR_H_
#define SSTREAMING_TYPES_SELECTION_VECTOR_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace sstreaming {

/// A selection vector (MonetDB/X100 style): the physical row indices of a
/// RecordBatch that are logically present, in logical order. Batches carry
/// one instead of copying filter survivors — a filter that keeps 1% of a
/// 6-column batch writes 1% × one int32 array instead of 1% × six typed
/// columns (docs/VECTORIZED_EXEC.md).
///
/// Storage is owned via `owner` so the index array may live on the heap or
/// in a per-epoch Arena chunk; either way the SelectionVector (and any
/// RecordBatch view holding it) keeps the storage alive by itself.
struct SelectionVector {
  const int32_t* data = nullptr;
  int64_t size = 0;
  /// Keepalive for `data` (heap vector or arena chunk). May be null only
  /// when `data` is null.
  std::shared_ptr<const void> owner;

  bool empty() const { return size == 0; }
  int32_t operator[](int64_t i) const { return data[i]; }

  /// Wraps a heap-allocated index vector (takes ownership).
  static SelectionVector FromVector(std::vector<int32_t> indices) {
    auto owned = std::make_shared<std::vector<int32_t>>(std::move(indices));
    SelectionVector sel;
    sel.data = owned->data();
    sel.size = static_cast<int64_t>(owned->size());
    sel.owner = std::shared_ptr<const void>(owned, owned->data());
    return sel;
  }

  /// Wraps externally owned storage (e.g. an Arena allocation); `keepalive`
  /// must keep `data` valid for the selection's lifetime.
  static SelectionVector FromOwned(const int32_t* data, int64_t size,
                                   std::shared_ptr<const void> keepalive) {
    SelectionVector sel;
    sel.data = data;
    sel.size = size;
    sel.owner = std::move(keepalive);
    return sel;
  }
};

}  // namespace sstreaming

#endif  // SSTREAMING_TYPES_SELECTION_VECTOR_H_

#include "types/schema.h"

namespace sstreaming {

std::string Field::ToString() const {
  std::string out = name;
  out += ": ";
  out += TypeName(type);
  if (nullable) out += "?";
  return out;
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::Resolve(const std::string& name) const {
  int idx = IndexOf(name);
  if (idx >= 0) return idx;
  std::string candidates;
  for (const Field& f : fields_) {
    if (!candidates.empty()) candidates += ", ";
    candidates += f.name;
  }
  return Status::AnalysisError("cannot resolve column '" + name +
                               "'; available: [" + candidates + "]");
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

Json Schema::ToJson() const {
  Json arr = Json::Array();
  for (const Field& f : fields_) {
    Json obj = Json::Object();
    obj.Set("name", Json::Str(f.name));
    obj.Set("type", Json::Str(TypeName(f.type)));
    obj.Set("nullable", Json::Bool(f.nullable));
    arr.Append(std::move(obj));
  }
  return arr;
}

Result<Schema> Schema::FromJson(const Json& json) {
  if (!json.is_array()) {
    return Status::InvalidArgument("schema JSON must be an array");
  }
  std::vector<Field> fields;
  for (const Json& item : json.array_items()) {
    if (!item.is_object()) {
      return Status::InvalidArgument("schema field must be an object");
    }
    Field f;
    f.name = item.Get("name").string_value();
    if (!TypeFromName(item.Get("type").string_value(), &f.type)) {
      return Status::InvalidArgument("unknown type name in schema: " +
                                     item.Get("type").string_value());
    }
    f.nullable = item.Has("nullable") ? item.Get("nullable").bool_value()
                                      : true;
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

}  // namespace sstreaming

#include "types/value.h"

#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace sstreaming {

Value Value::Bool(bool v) {
  Value out;
  out.type_ = TypeId::kBool;
  out.data_ = v;
  return out;
}

Value Value::Int64(int64_t v) {
  Value out;
  out.type_ = TypeId::kInt64;
  out.data_ = v;
  return out;
}

Value Value::Float64(double v) {
  Value out;
  out.type_ = TypeId::kFloat64;
  out.data_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.type_ = TypeId::kString;
  out.data_ = std::move(v);
  return out;
}

Value Value::Timestamp(int64_t micros) {
  Value out;
  out.type_ = TypeId::kTimestamp;
  out.data_ = micros;
  return out;
}

double Value::AsDouble() const {
  SS_DCHECK(IsNumeric(type_));
  if (type_ == TypeId::kFloat64) return float64_value();
  return static_cast<double>(int64_value());
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  const bool lhs_num = IsNumeric(type_);
  const bool rhs_num = IsNumeric(other.type_);
  if (lhs_num && rhs_num) {
    if (type_ == TypeId::kFloat64 || other.type_ == TypeId::kFloat64) {
      double a = AsDouble();
      double b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    int64_t a = int64_value();
    int64_t b = other.int64_value();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case TypeId::kBool: {
      int a = bool_value() ? 1 : 0;
      int b = other.bool_value() ? 1 : 0;
      return a - b;
    }
    case TypeId::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashBytes(const void* data, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0x5D1F00D5ULL;
    case TypeId::kBool:
      return HashMix(1, bool_value() ? 1 : 0);
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return HashMix(2, static_cast<uint64_t>(int64_value()));
    case TypeId::kFloat64: {
      double d = float64_value();
      // Hash integral doubles like the equal int64 so 3.0 and 3 agree
      // (Compare treats them as equal, so Hash must too).
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return HashMix(2, static_cast<uint64_t>(as_int));
      }
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashMix(2, bits);
    }
    case TypeId::kString:
      return HashBytes(string_value().data(), string_value().size(), 4);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "null";
    case TypeId::kBool:
      return bool_value() ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(int64_value());
    case TypeId::kTimestamp:
      return std::to_string(int64_value()) + "us";
    case TypeId::kFloat64: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", float64_value());
      return buf;
    }
    case TypeId::kString:
      return string_value();
  }
  return "?";
}

namespace {

void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetFixed64(const std::string& data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

void Value::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type_));
  switch (type_) {
    case TypeId::kNull:
      break;
    case TypeId::kBool:
      out->push_back(bool_value() ? 1 : 0);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      PutFixed64(out, static_cast<uint64_t>(int64_value()));
      break;
    case TypeId::kFloat64: {
      uint64_t bits;
      double d = float64_value();
      std::memcpy(&bits, &d, 8);
      PutFixed64(out, bits);
      break;
    }
    case TypeId::kString:
      PutFixed64(out, string_value().size());
      out->append(string_value());
      break;
  }
}

Result<Value> Value::DecodeFrom(const std::string& data, size_t* pos) {
  if (*pos >= data.size()) {
    return Status::InvalidArgument("value decode: truncated type byte");
  }
  TypeId type = static_cast<TypeId>(data[(*pos)++]);
  switch (type) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool: {
      if (*pos >= data.size()) {
        return Status::InvalidArgument("value decode: truncated bool");
      }
      return Value::Bool(data[(*pos)++] != 0);
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      uint64_t v;
      if (!GetFixed64(data, pos, &v)) {
        return Status::InvalidArgument("value decode: truncated int64");
      }
      int64_t s = static_cast<int64_t>(v);
      return type == TypeId::kInt64 ? Value::Int64(s) : Value::Timestamp(s);
    }
    case TypeId::kFloat64: {
      uint64_t bits;
      if (!GetFixed64(data, pos, &bits)) {
        return Status::InvalidArgument("value decode: truncated float64");
      }
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Float64(d);
    }
    case TypeId::kString: {
      uint64_t n;
      if (!GetFixed64(data, pos, &n)) {
        return Status::InvalidArgument("value decode: truncated string size");
      }
      if (*pos + n > data.size()) {
        return Status::InvalidArgument("value decode: truncated string body");
      }
      Value v = Value::Str(data.substr(*pos, n));
      *pos += n;
      return v;
    }
    default:
      return Status::InvalidArgument("value decode: bad type byte");
  }
}

}  // namespace sstreaming

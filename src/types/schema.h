#ifndef SSTREAMING_TYPES_SCHEMA_H_
#define SSTREAMING_TYPES_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "types/data_type.h"

namespace sstreaming {

/// A named, typed column descriptor.
struct Field {
  std::string name;
  TypeId type = TypeId::kNull;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }

  std::string ToString() const;
};

/// An ordered list of fields. Immutable once constructed; shared between
/// batches via shared_ptr.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static std::shared_ptr<Schema> Make(std::vector<Field> fields) {
    return std::make_shared<Schema>(std::move(fields));
  }

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// Like IndexOf but returns an analysis error naming candidates.
  Result<int> Resolve(const std::string& name) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// "(name: type, name: type?)" — '?' marks nullable.
  std::string ToString() const;

  Json ToJson() const;
  static Result<Schema> FromJson(const Json& json);

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace sstreaming

#endif  // SSTREAMING_TYPES_SCHEMA_H_

#include "types/column.h"

#include <cstring>

namespace sstreaming {

Value Column::ValueAt(int64_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case TypeId::kNull:
      return Value::Null();
    case TypeId::kBool:
      return Value::Bool(BoolAt(i));
    case TypeId::kInt64:
      return Value::Int64(Int64At(i));
    case TypeId::kTimestamp:
      return Value::Timestamp(Int64At(i));
    case TypeId::kFloat64:
      return Value::Float64(Float64At(i));
    case TypeId::kString:
      return Value::Str(StringAt(i));
  }
  return Value::Null();
}

void Column::AppendNull() {
  validity_.push_back(0);
  ++null_count_;
  switch (PhysicalKindOf(type_)) {
    case PhysicalKind::kBool:
      bools_.push_back(0);
      break;
    case PhysicalKind::kInt64:
      ints_.push_back(0);
      break;
    case PhysicalKind::kFloat64:
      doubles_.push_back(0);
      break;
    case PhysicalKind::kString:
      strings_.emplace_back();
      break;
    case PhysicalKind::kNone:
      break;
  }
}

void Column::AppendBool(bool v) {
  SS_DCHECK(type_ == TypeId::kBool);
  validity_.push_back(1);
  bools_.push_back(v ? 1 : 0);
}

void Column::AppendInt64(int64_t v) {
  SS_DCHECK(PhysicalKindOf(type_) == PhysicalKind::kInt64);
  validity_.push_back(1);
  ints_.push_back(v);
}

void Column::AppendFloat64(double v) {
  SS_DCHECK(type_ == TypeId::kFloat64);
  validity_.push_back(1);
  doubles_.push_back(v);
}

void Column::AppendString(std::string v) {
  SS_DCHECK(type_ == TypeId::kString);
  validity_.push_back(1);
  string_bytes_ += static_cast<int64_t>(v.size());
  strings_.push_back(std::move(v));
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case TypeId::kBool:
      AppendBool(v.bool_value());
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      AppendInt64(v.int64_value());
      break;
    case TypeId::kFloat64:
      if (v.type() == TypeId::kFloat64) {
        AppendFloat64(v.float64_value());
      } else {
        AppendFloat64(v.AsDouble());
      }
      break;
    case TypeId::kString:
      AppendString(v.string_value());
      break;
    case TypeId::kNull:
      AppendNull();
      break;
  }
}

void Column::Reserve(int64_t n) {
  size_t cap = static_cast<size_t>(n);
  validity_.reserve(cap);
  switch (PhysicalKindOf(type_)) {
    case PhysicalKind::kBool:
      bools_.reserve(cap);
      break;
    case PhysicalKind::kInt64:
      ints_.reserve(cap);
      break;
    case PhysicalKind::kFloat64:
      doubles_.reserve(cap);
      break;
    case PhysicalKind::kString:
      strings_.reserve(cap);
      break;
    case PhysicalKind::kNone:
      break;
  }
}

void Column::AppendFrom(const Column& src, int64_t i) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (PhysicalKindOf(src.type())) {
    case PhysicalKind::kBool:
      AppendBool(src.BoolAt(i));
      break;
    case PhysicalKind::kInt64:
      AppendInt64(src.Int64At(i));
      break;
    case PhysicalKind::kFloat64:
      AppendFloat64(src.Float64At(i));
      break;
    case PhysicalKind::kString:
      AppendString(src.StringAt(i));
      break;
    case PhysicalKind::kNone:
      AppendNull();
      break;
  }
}

void Column::EncodeValueTo(int64_t i, std::string* out) const {
  if (IsNull(i)) {
    out->push_back(static_cast<char>(TypeId::kNull));
    return;
  }
  out->push_back(static_cast<char>(type_));
  char buf[8];
  switch (PhysicalKindOf(type_)) {
    case PhysicalKind::kBool:
      out->push_back(BoolAt(i) ? 1 : 0);
      break;
    case PhysicalKind::kInt64: {
      int64_t v = Int64At(i);
      std::memcpy(buf, &v, 8);
      out->append(buf, 8);
      break;
    }
    case PhysicalKind::kFloat64: {
      double d = Float64At(i);
      std::memcpy(buf, &d, 8);
      out->append(buf, 8);
      break;
    }
    case PhysicalKind::kString: {
      const std::string& s = StringAt(i);
      uint64_t n = s.size();
      std::memcpy(buf, &n, 8);
      out->append(buf, 8);
      out->append(s);
      break;
    }
    case PhysicalKind::kNone:
      break;
  }
}

void Column::HashInto(std::vector<uint64_t>* hashes) const {
  SS_DCHECK(static_cast<int64_t>(hashes->size()) == size());
  const int64_t n = size();
  uint64_t* h = hashes->data();
  // Typed fast paths (must agree with Value::Hash; shuffle partitioning on
  // both sides of an exchange depends on it).
  if (PhysicalKindOf(type_) == PhysicalKind::kInt64 && !has_nulls()) {
    const int64_t* v = ints_.data();
    for (int64_t i = 0; i < n; ++i) {
      h[i] = HashMix(h[i], HashMix(2, static_cast<uint64_t>(v[i])));
    }
    return;
  }
  if (type_ == TypeId::kString && !has_nulls()) {
    for (int64_t i = 0; i < n; ++i) {
      const std::string& s = strings_[static_cast<size_t>(i)];
      h[i] = HashMix(h[i], HashBytes(s.data(), s.size(), 4));
    }
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    h[i] = HashMix(h[i], ValueAt(i).Hash());
  }
}

}  // namespace sstreaming

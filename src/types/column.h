#ifndef SSTREAMING_TYPES_COLUMN_H_
#define SSTREAMING_TYPES_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "types/data_type.h"
#include "types/value.h"

namespace sstreaming {

/// A typed, nullable column of values — the unit of vectorized execution.
/// Values are stored unboxed in contiguous arrays (the C++ analogue of
/// Spark's Tungsten binary format): int64/timestamp share an int64 array,
/// float64 a double array, and so on. Validity is a parallel byte vector
/// (1 = present).
class Column {
 public:
  explicit Column(TypeId type) : type_(type) {}

  static std::shared_ptr<Column> Make(TypeId type) {
    return std::make_shared<Column>(type);
  }

  TypeId type() const { return type_; }
  int64_t size() const { return static_cast<int64_t>(validity_.size()); }
  bool IsNull(int64_t i) const { return validity_[static_cast<size_t>(i)] == 0; }
  bool has_nulls() const { return null_count_ > 0; }
  int64_t null_count() const { return null_count_; }

  // --- Unboxed accessors (precondition: !IsNull(i), matching type) ---
  bool BoolAt(int64_t i) const { return bools_[static_cast<size_t>(i)] != 0; }
  int64_t Int64At(int64_t i) const { return ints_[static_cast<size_t>(i)]; }
  double Float64At(int64_t i) const { return doubles_[static_cast<size_t>(i)]; }
  const std::string& StringAt(int64_t i) const {
    return strings_[static_cast<size_t>(i)];
  }

  /// Numeric value widened to double. Precondition: numeric type, non-null.
  double NumericAt(int64_t i) const {
    return type_ == TypeId::kFloat64 ? Float64At(i)
                                     : static_cast<double>(Int64At(i));
  }

  /// Boxes the value at i (null-aware). Not for inner loops.
  Value ValueAt(int64_t i) const;

  // --- Builders ---
  void AppendNull();
  void AppendBool(bool v);
  void AppendInt64(int64_t v);
  void AppendFloat64(double v);
  void AppendString(std::string v);
  /// Appends a boxed value; the value's type must match (or be null).
  void AppendValue(const Value& v);
  void Reserve(int64_t n);

  /// Stable per-row hash, mixed into `hashes` (callers pre-size `hashes`
  /// and chain calls across key columns). Must agree with Value::Hash.
  void HashInto(std::vector<uint64_t>* hashes) const;

  /// Appends value i of `src` to this column with matching physical type
  /// (no boxing) — the gather kernel used by shuffle and joins.
  void AppendFrom(const Column& src, int64_t i);

  /// Serializes value i exactly as Value::EncodeTo would (byte-identical),
  /// without boxing — used to build state-store keys from columns.
  void EncodeValueTo(int64_t i, std::string* out) const;

  /// Approximate in-memory footprint of the column's payload in bytes.
  /// O(1): string character counts are maintained incrementally on append,
  /// so memory accounting never re-walks the data (§7.4 monitoring).
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(validity_.size() + bools_.size() +
                                ints_.size() * sizeof(int64_t) +
                                doubles_.size() * sizeof(double) +
                                strings_.size() * sizeof(std::string)) +
           string_bytes_;
  }

  /// Raw storage access for fused kernels.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<uint8_t>& validity() const { return validity_; }

 private:
  TypeId type_;
  int64_t null_count_ = 0;
  int64_t string_bytes_ = 0;  // sum of strings_[i].size()
  std::vector<uint8_t> validity_;
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

using ColumnPtr = std::shared_ptr<Column>;

}  // namespace sstreaming

#endif  // SSTREAMING_TYPES_COLUMN_H_

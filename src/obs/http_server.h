#ifndef SSTREAMING_OBS_HTTP_SERVER_H_
#define SSTREAMING_OBS_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace sstreaming {

class MetricsRegistry;
class QueryManager;
class StreamingQuery;

/// A parsed HTTP/1.1 request. The observability API is read-only, so only
/// the request line matters; headers and bodies are read and discarded.
struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/queries/etl/plan" (query string stripped)
  std::string query;   // raw text after '?', empty if none
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal dependency-free HTTP/1.1 server over POSIX sockets: one blocking
/// accept loop on its own thread, binding 127.0.0.1 only (this is a local
/// introspection port, not a public service). Requests are served one at a
/// time on the accept thread — concurrent scrapers queue in the listen
/// backlog — and every response closes the connection (Connection: close),
/// which keeps the server a few hundred lines and stateless. Pass port 0 to
/// bind an ephemeral port and read the kernel's choice back via port().
///
/// The handler runs on the server thread while the application mutates
/// whatever it reports on, so it must only touch thread-safe state
/// (ObservabilityServer below is built exclusively from such accessors).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  Status Start(int port);
  /// Stops the accept loop, joins the thread, closes the socket. Idempotent.
  void Stop();

  /// The bound port (the kernel's pick when Start was given 0).
  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

/// The engine's live-introspection endpoint (paper §7.4): mounts a
/// QueryManager (every active query, tracked as they start and stop) and/or
/// individual queries, and serves:
///
///   GET /healthz              liveness probe ("ok")
///   GET /metrics              Prometheus text across every mounted
///                             registry (deduplicated; stable sort order)
///   GET /queries              JSON list of queries + last QueryProgress
///   GET /queries/<id>         JSON ring buffer of recent QueryProgress
///   GET /queries/<id>/plan    live EXPLAIN ANALYZE (JSON tree + rendering)
///   GET /queries/<id>/fingerprint  canonical plan fingerprint (JSON;
///                             byte-stable for the life of the query)
///   GET /queries/<id>/trace   Chrome trace_event JSON for chrome://tracing
///   GET /queries/<id>/doctor  ranked bottleneck verdicts over the recent
///                             progress window (obs/doctor.h)
///   GET /profile?seconds=N&hz=H  arm the sampling profiler for N seconds
///                             (blocking; see obs/profiler.h) and return
///                             the collected per-(query, op) profile
///
/// Handlers use only the queries' thread-safe snapshot accessors, and
/// manager-owned queries are resolved under the manager lock
/// (QueryManager::WithQuery), so a concurrent StopQuery cannot free a query
/// mid-request. Directly mounted queries/registries must outlive the server
/// (the caller owns them).
class ObservabilityServer {
 public:
  ObservabilityServer() = default;
  ~ObservabilityServer() { Stop(); }

  ObservabilityServer(const ObservabilityServer&) = delete;
  ObservabilityServer& operator=(const ObservabilityServer&) = delete;

  /// Serves every query the manager holds, now or later. The manager must
  /// outlive the server (QueryManager::ServeHttp guarantees this).
  void MountQueryManager(QueryManager* manager);
  /// Serves one caller-owned query under `name`. When a manager query has
  /// the same name, the direct mount wins.
  void MountQuery(const std::string& name, const StreamingQuery* query);
  /// Adds a registry to /metrics beyond the mounted queries' own (e.g. an
  /// application-level registry). Duplicates are rendered once.
  void AddRegistry(std::shared_ptr<MetricsRegistry> registry);

  /// Starts serving on 127.0.0.1:`port` (0 = ephemeral).
  Status Start(int port);
  void Stop();
  int port() const { return server_ != nullptr ? server_->port() : 0; }

  /// The route dispatcher — public so tests can exercise routing without a
  /// socket. Thread-safe.
  HttpResponse Handle(const HttpRequest& request) const;

 private:
  bool WithNamedQuery(const std::string& name,
                      const std::function<void(const StreamingQuery&)>& fn)
      const;
  std::vector<std::string> QueryNames() const;

  HttpResponse HandleMetrics() const;
  HttpResponse HandleQueries() const;
  HttpResponse HandleQueryDetail(const std::string& name) const;
  HttpResponse HandlePlan(const std::string& name) const;
  HttpResponse HandleFingerprint(const std::string& name) const;
  HttpResponse HandleTrace(const std::string& name) const;
  HttpResponse HandleHistory(const std::string& name) const;
  HttpResponse HandleDoctor(const std::string& name) const;
  HttpResponse HandleProfile(const std::string& query_string) const;

  mutable std::mutex mu_;
  QueryManager* manager_ SS_GUARDED_BY(mu_) = nullptr;
  std::map<std::string, const StreamingQuery*> mounted_ SS_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<MetricsRegistry>> registries_
      SS_GUARDED_BY(mu_);
  // Start/Stop are control-plane calls from one thread; handlers never
  // touch server_.
  std::unique_ptr<HttpServer> server_;
};

/// Minimal blocking HTTP GET against 127.0.0.1:`port` — the client half the
/// tests and the smoke script use. Follows no redirects, speaks just enough
/// HTTP/1.1 for this server.
Result<HttpResponse> HttpGet(int port, const std::string& path,
                             int timeout_ms = 5000);

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_HTTP_SERVER_H_

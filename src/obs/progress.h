#ifndef SSTREAMING_OBS_PROGRESS_H_
#define SSTREAMING_OBS_PROGRESS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "obs/histogram.h"

namespace sstreaming {

/// A serializable snapshot of one LogHistogram of latency samples: headline
/// quantiles plus the sparse bucket counts, so per-epoch summaries can be
/// merged back into a histogram without losing bucket-level precision.
/// Merging every epoch's summary reproduces the query-lifetime
/// `sstreaming_e2e_latency_micros` series exactly (same buckets, same
/// quantile estimates — tested).
struct LatencySummary {
  int64_t count = 0;
  int64_t sum_micros = 0;
  int64_t max_micros = 0;
  int64_t p50_micros = 0;
  int64_t p95_micros = 0;
  int64_t p99_micros = 0;
  /// (LogHistogram bucket index, count), ascending by index, zero counts
  /// omitted.
  std::vector<std::pair<int, int64_t>> buckets;

  bool empty() const { return count == 0; }

  /// Snapshot of `h` (headline stats + sparse buckets).
  static LatencySummary FromHistogram(const LogHistogram& h);
  /// Adds this summary's samples into `h` at bucket granularity (exact sum
  /// and max are restored too).
  void MergeInto(LogHistogram* h) const;

  Json ToJson() const;
  static Result<LatencySummary> FromJson(const Json& json);
};

/// Per-operator summary for one epoch (rows through the operator, batches
/// produced, and self CPU-ish wall time — the operator's inclusive time
/// minus its children's).
struct OperatorProgress {
  int op_id = 0;
  std::string name;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  int64_t batches = 0;
  int64_t cpu_nanos = 0;
  /// Approximate bytes of the operator's output batches this epoch.
  int64_t output_bytes = 0;
  /// Live state-store size after the epoch (0 for stateless operators).
  int64_t state_rows = 0;
  int64_t state_bytes = 0;
  /// Scheduler accounting for the stages this operator submitted this
  /// epoch: task count, summed submit->start queue wait (the backpressure
  /// signal), summed task run time, and the run-time of the slowest task
  /// (skew — e.g. a hot state shard's fold task). All zero (and omitted
  /// from the JSON) for operators that ran no scheduler stage.
  int64_t tasks = 0;
  int64_t queue_wait_nanos = 0;
  int64_t task_run_nanos = 0;
  int64_t max_task_run_nanos = 0;
  /// Per-shard breakdown of (state_rows, state_bytes), indexed by shard.
  /// Empty for stateless operators (and omitted from the JSON then).
  std::vector<std::pair<int64_t, int64_t>> shard_state;

  Json ToJson() const;
  static Result<OperatorProgress> FromJson(const Json& json);
};

/// Per-source input summary for one epoch.
struct SourceProgress {
  std::string name;
  int64_t rows = 0;
  /// Input rate over the epoch's processing duration.
  double rows_per_sec = 0;
  /// Records available at plan time but deferred to later epochs (>0 only
  /// when max_records_per_epoch caps the batch).
  int64_t backlog_rows = 0;
  /// Age of the oldest deferred record at plan time (now minus its ingest
  /// stamp). 0 when there is no backlog or the source cannot date it.
  int64_t backlog_age_micros = 0;

  Json ToJson() const;
  static Result<SourceProgress> FromJson(const Json& json);
};

/// Per-epoch progress information (paper §7.4 monitoring).
///
/// `duration_nanos` is defined as the sum of the per-stage durations
/// (plan + source read + exec + state checkpoint + sink commit + other), so
/// stage breakdowns always account for the whole epoch; debug builds assert
/// this invariant. `trigger_wait_nanos` is idle time before the trigger
/// fired and is deliberately *not* part of the processing duration.
struct QueryProgress {
  int64_t epoch = 0;
  int64_t rows_read = 0;
  int64_t rows_written = 0;
  int64_t watermark_micros = INT64_MIN;
  int64_t state_entries = 0;
  /// Approximate live state bytes across all operators (memory accounting).
  int64_t state_bytes = 0;
  int64_t duration_nanos = 0;

  // Stage breakdown (sums to duration_nanos).
  int64_t plan_nanos = 0;         // offset planning + WAL plan write
  int64_t source_read_nanos = 0;  // time inside source scan operators
  int64_t exec_nanos = 0;         // operator DAG execution minus source read
  int64_t checkpoint_nanos = 0;   // state store CommitAll
  int64_t commit_nanos = 0;       // sink commit + WAL commit + retention
  int64_t other_nanos = 0;        // watermark/progress bookkeeping remainder

  /// Time inside Sink::CommitEpoch alone — the sink-bound signal. A subset
  /// of commit_nanos (which also covers the WAL commit and retention), so
  /// deliberately NOT part of the StageSumNanos invariant.
  int64_t sink_commit_nanos = 0;

  /// Sum of per-operator scheduler queue wait this epoch (see
  /// OperatorProgress::queue_wait_nanos). Tasks wait concurrently, so this
  /// can exceed duration_nanos; divide by the scheduler's parallelism for
  /// a wall-clock-comparable figure.
  int64_t queue_wait_nanos = 0;

  /// Idle time between the previous trigger finishing and this one firing
  /// (0 for the first trigger and for recovery replay).
  int64_t trigger_wait_nanos = 0;

  /// How late this epoch started relative to its scheduled trigger time
  /// (actual minus scheduled; 0 for unscheduled triggers and recovery
  /// replay). Sustained growth means the trigger interval is shorter than
  /// the epochs it schedules.
  int64_t trigger_drift_nanos = 0;

  /// Wall-clock minus watermark at the end of the epoch — how far event-time
  /// completeness trails real time. Only meaningful (and only serialized)
  /// when a watermark exists.
  int64_t watermark_lag_micros = 0;

  /// End-to-end latency (sink commit time minus source ingest time) of the
  /// rows written this epoch, row-weighted. Empty when the epoch wrote
  /// nothing.
  LatencySummary e2e_latency;

  std::vector<SourceProgress> sources;
  std::vector<OperatorProgress> operators;

  /// The invariant total of the per-stage durations.
  int64_t StageSumNanos() const {
    return plan_nanos + source_read_nanos + exec_nanos + checkpoint_nanos +
           commit_nanos + other_nanos;
  }

  /// One JSON object per epoch — the schema of the JSONL metrics event log.
  Json ToJson() const;

  /// Parses ToJson() output back. Round-trip is lossless: FromJson(ToJson())
  /// re-serializes byte-identically (tested), so the JSONL event log can be
  /// re-ingested without drift.
  static Result<QueryProgress> FromJson(const Json& json);
};

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_PROGRESS_H_

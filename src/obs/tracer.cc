#include "obs/tracer.h"

#include <functional>
#include <thread>

#include "common/clock.h"
#include "storage/fs.h"

namespace sstreaming {

namespace {

uint64_t CurrentTid() {
  // Chrome renders tid as an integer lane; a hashed thread id keeps lanes
  // stable per thread without exposing raw handles.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 1000000;
}

}  // namespace

void EpochTracer::AddSpan(std::string name, std::string cat,
                          int64_t start_nanos, int64_t dur_nanos,
                          int64_t epoch) {
  TraceSpan span;
  span.name = std::move(name);
  span.cat = std::move(cat);
  span.start_nanos = start_nanos;
  span.dur_nanos = dur_nanos;
  span.epoch = epoch;
  span.tid = CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> EpochTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t EpochTracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

int64_t EpochTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void EpochTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

Json EpochTracer::ToChromeTrace() const {
  std::vector<TraceSpan> spans = Snapshot();
  Json events = Json::Array();
  for (const TraceSpan& span : spans) {
    Json e = Json::Object();
    e.Set("name", Json::Str(span.name));
    e.Set("cat", Json::Str(span.cat));
    e.Set("ph", Json::Str("X"));  // complete event: ts + dur
    e.Set("ts", Json::Double(static_cast<double>(span.start_nanos) / 1000.0));
    e.Set("dur", Json::Double(static_cast<double>(span.dur_nanos) / 1000.0));
    e.Set("pid", Json::Int(1));
    e.Set("tid", Json::Int(static_cast<int64_t>(span.tid)));
    Json args = Json::Object();
    args.Set("epoch", Json::Int(span.epoch));
    e.Set("args", std::move(args));
    events.Append(std::move(e));
  }
  Json out = Json::Object();
  out.Set("traceEvents", std::move(events));
  return out;
}

std::string EpochTracer::ToChromeTraceJson() const {
  return ToChromeTrace().Dump();
}

Status EpochTracer::WriteChromeTrace(const std::string& path) const {
  return WriteFileAtomic(path, ToChromeTraceJson());
}

ScopedSpan::ScopedSpan(EpochTracer* tracer, std::string name, std::string cat,
                       int64_t epoch)
    : tracer_(tracer),
      name_(std::move(name)),
      cat_(std::move(cat)),
      epoch_(epoch),
      start_nanos_(MonotonicNanos()) {}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  tracer_->AddSpan(std::move(name_), std::move(cat_), start_nanos_,
                   MonotonicNanos() - start_nanos_, epoch_);
}

}  // namespace sstreaming

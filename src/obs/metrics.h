#ifndef SSTREAMING_OBS_METRICS_H_
#define SSTREAMING_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"
#include "obs/histogram.h"

namespace sstreaming {

/// Ordered (key, value) label pairs attached to an instrument, e.g.
/// {{"op", "Filter"}, {"op_id", "3"}}. Labels are part of the instrument's
/// identity: the same name with different labels is a different time series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing counter. Updates are lock-free.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A value that can go up and down (queue depth, state entries, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A thread-safe registry of named instruments (paper §7.4: the runtime
/// metrics operators feed into their monitoring stacks). Instruments are
/// created on first use and live as long as the registry; the returned
/// pointers are stable, so hot paths look an instrument up once and then
/// update it lock-free. Dumps render as Prometheus text exposition format
/// (histograms as summaries with p50/p95/p99 quantiles) or as JSON.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the instrument. Never fails; never returns null.
  /// Registering the same (name, labels) with a different instrument kind
  /// is a programmer error and aborts.
  Counter* GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {});
  LogHistogram* GetHistogram(const std::string& name,
                             MetricLabels labels = {});

  /// Prometheus text exposition format (counters, gauges, and histograms as
  /// summary families with quantile labels plus _sum/_count/_max samples).
  /// Output is stable: exactly one `# TYPE` line per family and series
  /// sorted by (name, labels), so two scrapes of an unchanged registry are
  /// byte-identical regardless of instrument creation order.
  std::string ToPrometheusText() const;

  /// Renders several registries onto one Prometheus page (the /metrics
  /// endpoint of an ObservabilityServer aggregating per-query registries).
  /// Duplicate and null pointers are rendered once/skipped; series keep the
  /// same global (name, labels) sort and one-TYPE-per-family guarantee.
  /// Identical series from *different* registries both appear — give
  /// queries distinct labels or one shared registry (docs/OBSERVABILITY.md).
  static std::string RenderPrometheusText(
      std::vector<const MetricsRegistry*> registries);

  /// JSON form: {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// keyed by "name{label=\"value\",...}".
  Json ToJson() const;

  /// Number of registered time series (for tests).
  size_t num_instruments() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    std::string name;
    MetricLabels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };

  Instrument* FindOrCreate(const std::string& name, MetricLabels labels,
                           Kind kind);

  /// "name{k=\"v\",...}" — sorts families together in the output map.
  static std::string InstrumentKey(const std::string& name,
                                   const MetricLabels& labels);

  mutable std::mutex mu_;
  // The map is guarded; the pointed-to instruments are deliberately not:
  // they are lock-free atomics updated concurrently by design.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_
      SS_GUARDED_BY(mu_);
};

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string EscapeLabelValue(const std::string& value);

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_METRICS_H_

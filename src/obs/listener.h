#ifndef SSTREAMING_OBS_LISTENER_H_
#define SSTREAMING_OBS_LISTENER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/progress.h"

namespace sstreaming {

struct QueryStartedEvent {
  std::string name;
  int64_t timestamp_micros = 0;
  /// Static plan-analysis warnings (SS2xxx) the query started with —
  /// unbounded-state and watermark advisories from PlanAnalyzer. Errors
  /// never appear here: they fail StreamingQuery::Start instead.
  std::vector<Diagnostic> plan_warnings;
};

struct QueryProgressEvent {
  std::string name;
  QueryProgress progress;
};

struct QueryTerminatedEvent {
  std::string name;
  /// OK for a clean Stop(); the failing epoch's error otherwise.
  Status error;
  int64_t last_epoch = 0;
};

/// The public monitoring interface (paper §7.4, mirroring Spark's
/// StreamingQueryListener): register one on QueryManager to observe every
/// query's lifecycle. Per query the callback order is
///   OnQueryStarted → OnQueryProgress × N → OnQueryTerminated
/// with OnQueryTerminated fired exactly once — on Stop(), on unregistration,
/// or as soon as an epoch fails. Callbacks run on the thread that drove the
/// trigger (the query's background thread or the caller of
/// ProcessAllAvailable); implementations must be thread-safe across queries
/// and must not block for long — they are on the trigger path.
class StreamingQueryListener {
 public:
  virtual ~StreamingQueryListener() = default;

  virtual void OnQueryStarted(const QueryStartedEvent& event) { (void)event; }
  virtual void OnQueryProgress(const QueryProgressEvent& event) {
    (void)event;
  }
  virtual void OnQueryTerminated(const QueryTerminatedEvent& event) {
    (void)event;
  }
};

/// Thread-safe fan-out of listener callbacks (used by QueryManager; usable
/// standalone when driving StreamingQuery directly).
class ListenerBus {
 public:
  void Add(std::shared_ptr<StreamingQueryListener> listener);
  /// Removes a previously added listener (no-op if absent).
  void Remove(const StreamingQueryListener* listener);
  size_t size() const;

  void NotifyStarted(const QueryStartedEvent& event) const;
  void NotifyProgress(const QueryProgressEvent& event) const;
  void NotifyTerminated(const QueryTerminatedEvent& event) const;

 private:
  std::vector<std::shared_ptr<StreamingQueryListener>> SnapshotListeners()
      const;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<StreamingQueryListener>> listeners_
      SS_GUARDED_BY(mu_);
};

/// A listener that collects events in memory — handy for tests and for
/// polling dashboards.
class CollectingListener : public StreamingQueryListener {
 public:
  void OnQueryStarted(const QueryStartedEvent& event) override;
  void OnQueryProgress(const QueryProgressEvent& event) override;
  void OnQueryTerminated(const QueryTerminatedEvent& event) override;

  std::vector<QueryStartedEvent> started() const;
  std::vector<QueryProgressEvent> progress() const;
  std::vector<QueryTerminatedEvent> terminated() const;
  /// Event-kind sequence for one query, e.g. "started,progress,terminated".
  std::string Timeline(const std::string& query_name) const;

 private:
  mutable std::mutex mu_;
  std::vector<QueryStartedEvent> started_ SS_GUARDED_BY(mu_);
  std::vector<QueryProgressEvent> progress_ SS_GUARDED_BY(mu_);
  std::vector<QueryTerminatedEvent> terminated_ SS_GUARDED_BY(mu_);
  // (query, kind)
  std::vector<std::pair<std::string, std::string>> timeline_
      SS_GUARDED_BY(mu_);
};

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_LISTENER_H_

#ifndef SSTREAMING_OBS_QUERY_HISTORY_H_
#define SSTREAMING_OBS_QUERY_HISTORY_H_

#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/plan_profile.h"
#include "obs/progress.h"

namespace sstreaming {

/// Durable per-checkpoint query history: a JSONL event log at
/// `<checkpoint_dir>/_history/events.jsonl` recording the query's lifecycle
/// across restarts — one object per line, each with an "event" kind:
///
///   started    {query, timestampMicros, recovered, planWarnings: [...]}
///   progress   {query, timestampMicros, progress: <QueryProgress JSON>}
///   doctor     {query, timestampMicros, report: <DoctorReport JSON>}
///   terminated {query, timestampMicros, lastEpoch, error, planProfile}
///
/// Unlike the WAL, history is telemetry: append failures go sticky in
/// status() and are logged, but never fail an epoch — losing a telemetry
/// line must not cost exactly-once output. Crash safety mirrors the WAL's
/// torn-tail discipline at line granularity: Open() truncates any partial
/// line left by a crash (everything after the last '\n'), so a restart
/// always appends to a well-formed log and replayed epochs simply append
/// their lines again. Readers tolerate duplicate epochs (recovery replay)
/// the same way they tolerate re-committed sink epochs.
class QueryHistoryLog {
 public:
  /// Creates `<checkpoint_dir>/_history/` if needed, repairs a torn tail,
  /// and opens the log for appending. `clock` stamps events (sim-time safe);
  /// must outlive the log.
  static Result<std::unique_ptr<QueryHistoryLog>> Open(
      const std::string& checkpoint_dir, const Clock* clock);

  /// `recovered`: true when the query resumed an existing checkpoint.
  Status AppendStarted(const std::string& query_name, bool recovered,
                       const std::vector<Diagnostic>& plan_warnings);
  Status AppendProgress(const std::string& query_name,
                        const QueryProgress& progress);
  /// `report`: a DoctorReport::ToJson() payload — the bottleneck diagnosis
  /// appended just before termination so post-mortems ship with the log.
  Status AppendDoctor(const std::string& query_name, Json report);
  Status AppendTerminated(const std::string& query_name, const Status& error,
                          int64_t last_epoch, const PlanProfile& profile);

  /// Sticky first append error (OK while the log is healthy).
  Status status() const;

  const std::string& path() const { return path_; }

  /// The log path a checkpoint dir implies (shared with offline readers).
  static std::string HistoryPath(const std::string& checkpoint_dir);

  /// Parses every event line of a checkpoint's history (offline: works on a
  /// dir no query is using; a trailing torn line is skipped, interior
  /// corruption is an error). NotFound when the dir has no history.
  static Result<std::vector<Json>> ReadAll(const std::string& checkpoint_dir);

 private:
  QueryHistoryLog(std::string path, const Clock* clock)
      : path_(std::move(path)), clock_(clock) {}

  /// Writes one line, flushes, and verifies stream health before reporting
  /// success; failures go sticky in status_.
  Status AppendLine(Json event, const char* kind, const std::string& query);

  std::string path_;
  const Clock* clock_;
  mutable std::mutex mu_;
  std::ofstream out_ SS_GUARDED_BY(mu_);
  Status status_ SS_GUARDED_BY(mu_);
};

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_QUERY_HISTORY_H_

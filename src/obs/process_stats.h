#ifndef SSTREAMING_OBS_PROCESS_STATS_H_
#define SSTREAMING_OBS_PROCESS_STATS_H_

#include <cstdint>
#include <string>

namespace sstreaming {

/// Process-level stats for the /metrics endpoint. Sampled on demand (each
/// scrape), not cached: a scrape is rare and the reads are one procfs file.
struct ProcessStats {
  /// Seconds since the process (static) initializer ran.
  double uptime_seconds = 0;
  /// Resident set size in bytes (0 where /proc is unavailable, e.g. macOS —
  /// the gauge is then omitted from the rendering).
  int64_t rss_bytes = 0;
};

ProcessStats SampleProcessStats();

/// `sstreaming_process_uptime_seconds` / `sstreaming_process_rss_bytes` in
/// Prometheus text format (appended to the /metrics payload after the
/// registry dump).
std::string RenderProcessStatsPrometheus();

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_PROCESS_STATS_H_

#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/clock.h"

namespace sstreaming {

std::atomic<bool> Profiler::active_flag_{false};

namespace {

constexpr const char* kOverflowLabel = "<label-overflow>";

}  // namespace

Profiler& Profiler::Instance() {
  static Profiler* instance = new Profiler();  // leaked: usable at exit
  return *instance;
}

uint32_t Profiler::Intern(const std::string& label) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  if (labels_.empty()) labels_.push_back("");  // id 0 = unattributed
  auto it = label_ids_.find(label);
  if (it != label_ids_.end()) return it->second;
  if (labels_.size() >= 0xffff) {
    // Label space exhausted: everything else shares the overflow bucket.
    auto overflow = label_ids_.find(kOverflowLabel);
    if (overflow != label_ids_.end()) return overflow->second;
    labels_.push_back(kOverflowLabel);
    uint32_t id = static_cast<uint32_t>(labels_.size() - 1);
    label_ids_[kOverflowLabel] = id;
    return id;
  }
  labels_.push_back(label);
  uint32_t id = static_cast<uint32_t>(labels_.size() - 1);
  label_ids_[label] = id;
  return id;
}

std::string Profiler::LabelName(uint32_t id) const {
  std::lock_guard<std::mutex> lock(intern_mu_);
  if (id >= labels_.size()) return "";
  return labels_[id];
}

Profiler::ThreadSlot* Profiler::Slot() {
  // Registers this thread's slot on first use and unregisters it when the
  // thread exits. The shared_ptr keeps the slot alive for any sampler tick
  // racing the unregister (the registry drops its reference under the lock).
  struct SlotHolder {
    std::shared_ptr<ThreadSlot> slot;
    ~SlotHolder() {
      if (slot != nullptr) Instance().UnregisterSlot(slot.get());
    }
  };
  thread_local SlotHolder holder;
  if (holder.slot == nullptr) {
    holder.slot = std::make_shared<ThreadSlot>();
    Instance().RegisterSlot(holder.slot);
  }
  return holder.slot.get();
}

void Profiler::RegisterSlot(const std::shared_ptr<ThreadSlot>& slot) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(slot);
}

void Profiler::UnregisterSlot(const ThreadSlot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    if (it->get() == slot) {
      slots_.erase(it);
      return;
    }
  }
}

int Profiler::registered_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(slots_.size());
}

void Profiler::Arm(double hz) {
  std::lock_guard<std::mutex> lock(control_mu_);
  if (armed_count_++ > 0) return;  // already running; join at current rate
  hz_ = std::min(1000.0, std::max(1.0, hz));
  stop_.store(false, std::memory_order_relaxed);
  active_flag_.store(true, std::memory_order_relaxed);
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void Profiler::Disarm() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (armed_count_ == 0) return;
    if (--armed_count_ > 0) return;
    active_flag_.store(false, std::memory_order_relaxed);
    stop_.store(true, std::memory_order_relaxed);
    to_join = std::move(sampler_);
  }
  if (to_join.joinable()) to_join.join();
}

void Profiler::SamplerLoop() {
  double hz;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    hz = hz_;
  }
  const auto period =
      std::chrono::nanoseconds(static_cast<int64_t>(1e9 / hz));
  while (!stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(period);
    std::lock_guard<std::mutex> lock(mu_);
    ++ticks_;
    for (const std::shared_ptr<ThreadSlot>& slot : slots_) {
      uint64_t word = slot->word.load(std::memory_order_relaxed);
      if (word != 0) ++counts_[word];
    }
  }
}

void Profiler::CountsSnapshot(std::map<uint64_t, int64_t>* counts,
                              int64_t* ticks) const {
  std::lock_guard<std::mutex> lock(mu_);
  *counts = counts_;
  *ticks = ticks_;
}

ProfileSnapshot Profiler::BuildSnapshot(
    const std::map<uint64_t, int64_t>& counts, int64_t ticks) const {
  ProfileSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    snap.hz = hz_;
  }
  snap.ticks = ticks;
  int64_t period_nanos =
      snap.hz > 0 ? static_cast<int64_t>(1e9 / snap.hz) : 0;
  for (const auto& [word, samples] : counts) {
    ProfileEntry e;
    e.query = LabelName(
        static_cast<uint32_t>((word >> kQueryShift) & 0xffff));
    e.stage = LabelName(
        static_cast<uint32_t>((word >> kStageShift) & 0xffff));
    e.op = LabelName(
        static_cast<uint32_t>((word >> kOpLabelShift) & 0xffff));
    e.op_id = static_cast<int>(word & 0xffff);
    e.samples = samples;
    e.self_nanos = samples * period_nanos;
    snap.total_samples += samples;
    snap.entries.push_back(std::move(e));
  }
  std::stable_sort(snap.entries.begin(), snap.entries.end(),
                   [](const ProfileEntry& a, const ProfileEntry& b) {
                     return a.samples > b.samples;
                   });
  return snap;
}

ProfileSnapshot Profiler::Snapshot() const {
  std::map<uint64_t, int64_t> counts;
  int64_t ticks = 0;
  CountsSnapshot(&counts, &ticks);
  return BuildSnapshot(counts, ticks);
}

ProfileSnapshot Profiler::Collect(int64_t duration_millis, double hz) {
  Arm(hz);
  std::map<uint64_t, int64_t> before;
  int64_t ticks_before = 0;
  CountsSnapshot(&before, &ticks_before);
  int64_t t0 = MonotonicNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_millis));
  std::map<uint64_t, int64_t> after;
  int64_t ticks_after = 0;
  CountsSnapshot(&after, &ticks_after);
  int64_t duration = MonotonicNanos() - t0;
  Disarm();
  std::map<uint64_t, int64_t> delta;
  for (const auto& [word, samples] : after) {
    auto it = before.find(word);
    int64_t d = samples - (it == before.end() ? 0 : it->second);
    if (d > 0) delta[word] = d;
  }
  ProfileSnapshot snap = BuildSnapshot(delta, ticks_after - ticks_before);
  snap.duration_nanos = duration;
  return snap;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
  ticks_ = 0;
}

uint64_t Profiler::CurrentWord() {
  return Slot()->word.load(std::memory_order_relaxed);
}

uint64_t Profiler::TaskWord(const std::string& stage_name) {
  if (!active()) return 0;
  return WithField(CurrentWord(), kStageShift, Intern(stage_name));
}

void ProfileScopeBase::Engage(uint64_t word) {
  Profiler::ThreadSlot* slot = Profiler::Slot();
  slot_ = slot;
  saved_ = slot->word.load(std::memory_order_relaxed);
  slot->word.store(word, std::memory_order_relaxed);
}

uint64_t ProfileScopeBase::PeekWord() { return Profiler::CurrentWord(); }

Json ProfileSnapshot::ToJson() const {
  Json obj = Json::Object();
  obj.Set("hz", Json::Double(hz));
  obj.Set("ticks", Json::Int(ticks));
  obj.Set("totalSamples", Json::Int(total_samples));
  obj.Set("durationNanos", Json::Int(duration_nanos));
  Json rows = Json::Array();
  Json collapsed = Json::Array();
  for (const ProfileEntry& e : entries) {
    Json row = Json::Object();
    row.Set("query", Json::Str(e.query));
    row.Set("stage", Json::Str(e.stage));
    row.Set("op", Json::Str(e.op));
    row.Set("opId", Json::Int(e.op_id));
    row.Set("samples", Json::Int(e.samples));
    row.Set("selfNanos", Json::Int(e.self_nanos));
    rows.Append(std::move(row));
    std::string frame = e.query.empty() ? "<untracked>" : e.query;
    frame += ";";
    frame += e.stage.empty() ? "<no-stage>" : e.stage;
    if (!e.op.empty()) {
      frame += ";";
      frame += e.op;
    }
    frame += ' ';
    frame += std::to_string(e.samples);
    collapsed.Append(Json::Str(frame));
  }
  obj.Set("entries", std::move(rows));
  obj.Set("collapsed", std::move(collapsed));
  return obj;
}

std::string ProfileSnapshot::Collapsed() const {
  std::string out;
  for (const ProfileEntry& e : entries) {
    out += e.query.empty() ? "<untracked>" : e.query;
    out += ";";
    out += e.stage.empty() ? "<no-stage>" : e.stage;
    if (!e.op.empty()) {
      out += ";";
      out += e.op;
    }
    out += ' ';
    out += std::to_string(e.samples);
    out += '\n';
  }
  return out;
}

}  // namespace sstreaming

#include "obs/doctor.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "obs/query_history.h"

namespace sstreaming {

namespace {

// Rule thresholds. Each rule fires only past its threshold AND past an
// absolute floor, so microsecond-scale test queries don't produce noise
// verdicts; docs/OBSERVABILITY.md documents every number here.
constexpr size_t kWindow = 32;           // epochs examined per diagnosis
constexpr double kSinkBoundFraction = 0.35;
constexpr double kIdleFraction = 0.6;
constexpr double kQueueRatio = 0.4;
constexpr int64_t kQueueFloorNanos = 2'000'000;   // 2ms each of wait and run
constexpr double kSkewImbalance = 2.5;
constexpr int64_t kSkewRowFloor = 64;
constexpr int64_t kWatermarkLagFloorMicros = 5'000'000;  // 5s
constexpr size_t kTrendMinEpochs = 4;    // watermark-lag / state-growth
constexpr double kStateGrowthFactor = 2.0;
constexpr int64_t kStateGrowthRowFloor = 1024;

std::string Fmt(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

// --- individual rules; each appends at most one finding -------------------

void CheckSinkBound(const std::vector<const QueryProgress*>& win,
                    std::vector<DoctorFinding>* out) {
  int64_t sink = 0;
  int64_t dur = 0;
  for (const QueryProgress* p : win) {
    sink += p->sink_commit_nanos;
    dur += p->duration_nanos;
  }
  if (dur <= 0) return;
  double frac = static_cast<double>(sink) / static_cast<double>(dur);
  if (frac <= kSinkBoundFraction) return;
  DoctorFinding f;
  f.verdict = "sink-bound";
  f.score = std::min(1.0, frac);
  f.summary = Fmt("sink commit consumed %.0f%% of processing time over %zu "
                  "epochs (%.1f ms of %.1f ms)",
                  frac * 100, win.size(), sink / 1e6, dur / 1e6);
  f.suggestion =
      "the sink is the bottleneck: batch writes, raise the sink's commit "
      "concurrency, or switch to a faster sink; widening the trigger "
      "interval amortizes per-commit overhead";
  f.evidence.Set("sinkCommitNanos", Json::Int(sink));
  f.evidence.Set("durationNanos", Json::Int(dur));
  f.evidence.Set("fraction", Json::Double(frac));
  out->push_back(std::move(f));
}

void CheckSourceStarved(const std::vector<const QueryProgress*>& win,
                        std::vector<DoctorFinding>* out) {
  int64_t wait = 0;
  int64_t dur = 0;
  for (const QueryProgress* p : win) {
    wait += p->trigger_wait_nanos;
    dur += p->duration_nanos;
  }
  if (wait + dur <= 0) return;
  double idle = static_cast<double>(wait) / static_cast<double>(wait + dur);
  int64_t backlog = 0;
  for (const SourceProgress& s : win.back()->sources) backlog += s.backlog_rows;
  // High idle time with a backlog is a trigger-interval problem, not
  // starvation; only a drained backlog means the input truly ran dry.
  if (idle <= kIdleFraction || backlog != 0) return;
  DoctorFinding f;
  f.verdict = "source-starved";
  f.score = std::min(1.0, idle);
  f.summary = Fmt("the query sat idle %.0f%% of the time waiting for input "
                  "and ended the window with zero backlog",
                  idle * 100);
  f.suggestion =
      "processing keeps up with arrivals: the pipeline is healthy but "
      "over-provisioned; widen the trigger interval or shrink the scheduler "
      "pool to reclaim cores";
  f.evidence.Set("triggerWaitNanos", Json::Int(wait));
  f.evidence.Set("durationNanos", Json::Int(dur));
  f.evidence.Set("idleFraction", Json::Double(idle));
  f.evidence.Set("lastBacklogRows", Json::Int(backlog));
  out->push_back(std::move(f));
}

void CheckSchedulerSaturated(const std::vector<const QueryProgress*>& win,
                             int parallelism,
                             std::vector<DoctorFinding>* out) {
  int64_t queued = 0;
  int64_t ran = 0;
  for (const QueryProgress* p : win) {
    for (const OperatorProgress& op : p->operators) {
      queued += op.queue_wait_nanos;
      ran += op.task_run_nanos;
    }
  }
  if (queued < kQueueFloorNanos || ran < kQueueFloorNanos) return;
  double ratio = static_cast<double>(queued) / static_cast<double>(queued + ran);
  if (ratio <= kQueueRatio) return;
  DoctorFinding f;
  f.verdict = "scheduler-saturated";
  f.score = std::min(1.0, ratio);
  f.summary = Fmt("tasks spent %.0f%% of their scheduler time queued behind "
                  "other tasks (%.1f ms queued vs %.1f ms running)",
                  ratio * 100, queued / 1e6, ran / 1e6);
  f.suggestion =
      parallelism > 0
          ? Fmt("the task pool is oversubscribed: raise scheduler "
                "parallelism (currently %d) or enable fuse_pipelines to "
                "shrink the per-epoch task count",
                parallelism)
          : "the task pool is oversubscribed: raise scheduler parallelism "
            "or enable fuse_pipelines to shrink the per-epoch task count";
  f.evidence.Set("queueWaitNanos", Json::Int(queued));
  f.evidence.Set("taskRunNanos", Json::Int(ran));
  f.evidence.Set("queuedFraction", Json::Double(ratio));
  if (parallelism > 0) {
    f.evidence.Set("schedulerParallelism", Json::Int(parallelism));
  }
  out->push_back(std::move(f));
}

void CheckShardSkew(const std::vector<const QueryProgress*>& win,
                    int num_state_shards, std::vector<DoctorFinding>* out) {
  // Skew is a property of the live state layout, so only the newest epoch's
  // shard breakdown matters.
  const QueryProgress& last = *win.back();
  const OperatorProgress* worst_op = nullptr;
  double worst_imbalance = 0;
  int64_t worst_max_rows = 0;
  int64_t worst_total = 0;
  for (const OperatorProgress& op : last.operators) {
    size_t shards = op.shard_state.size();
    if (shards < 2) continue;
    int64_t total = 0;
    int64_t max_rows = 0;
    for (const auto& [rows, bytes] : op.shard_state) {
      total += rows;
      max_rows = std::max(max_rows, rows);
    }
    if (total < kSkewRowFloor) continue;
    double avg = static_cast<double>(total) / static_cast<double>(shards);
    double imbalance = static_cast<double>(max_rows) / avg;
    if (imbalance >= kSkewImbalance && imbalance > worst_imbalance) {
      worst_op = &op;
      worst_imbalance = imbalance;
      worst_max_rows = max_rows;
      worst_total = total;
    }
  }
  if (worst_op == nullptr) return;
  size_t shards = worst_op->shard_state.size();
  DoctorFinding f;
  f.verdict = "stateful-shard-skew";
  // 1.0 when one shard holds everything; ~0 when perfectly balanced.
  f.score = std::min(1.0, (worst_imbalance - 1.0) /
                              static_cast<double>(shards - 1));
  f.summary = Fmt("operator '%s' keeps %lld of its %lld state rows on one of "
                  "%zu shards (%.1fx the balanced share)",
                  worst_op->name.c_str(),
                  static_cast<long long>(worst_max_rows),
                  static_cast<long long>(worst_total), shards,
                  worst_imbalance);
  f.suggestion =
      num_state_shards > 0
          ? Fmt("grouping keys hash unevenly: raise num_state_shards "
                "(currently %d) or pre-aggregate the hot key upstream",
                num_state_shards)
          : "grouping keys hash unevenly: raise num_state_shards or "
            "pre-aggregate the hot key upstream";
  f.evidence.Set("opId", Json::Int(worst_op->op_id));
  f.evidence.Set("operator", Json::Str(worst_op->name));
  f.evidence.Set("shards", Json::Int(static_cast<int64_t>(shards)));
  f.evidence.Set("maxShardRows", Json::Int(worst_max_rows));
  f.evidence.Set("totalStateRows", Json::Int(worst_total));
  f.evidence.Set("imbalance", Json::Double(worst_imbalance));
  out->push_back(std::move(f));
}

void CheckWatermarkLagging(const std::vector<const QueryProgress*>& win,
                           std::vector<DoctorFinding>* out) {
  std::vector<int64_t> lags;
  for (const QueryProgress* p : win) {
    if (p->watermark_micros != INT64_MIN) lags.push_back(p->watermark_lag_micros);
  }
  if (lags.size() < kTrendMinEpochs) return;
  int64_t first = lags.front();
  int64_t lag = lags.back();
  // Fire only on a lag that is both large in absolute terms and still
  // growing — a big constant lag is just the configured watermark delay.
  if (lag <= kWatermarkLagFloorMicros || lag <= first) return;
  DoctorFinding f;
  f.verdict = "watermark-lagging";
  f.score = std::min(1.0, static_cast<double>(lag) / 60e6);
  f.summary = Fmt("watermark lag grew from %.1f s to %.1f s across %zu "
                  "watermarked epochs",
                  first / 1e6, lag / 1e6, lags.size());
  f.suggestion =
      "event time is falling behind wall clock: the pipeline cannot keep up "
      "with event arrival — scale processing, shrink the watermark delay, or "
      "check for a stalled source partition holding the watermark back";
  f.evidence.Set("lagFirstMicros", Json::Int(first));
  f.evidence.Set("lagLastMicros", Json::Int(lag));
  f.evidence.Set("watermarkedEpochs",
                 Json::Int(static_cast<int64_t>(lags.size())));
  out->push_back(std::move(f));
}

void CheckStateGrowth(const std::vector<const QueryProgress*>& win,
                      std::vector<DoctorFinding>* out) {
  if (win.size() < kTrendMinEpochs) return;
  int64_t first = std::max<int64_t>(1, win.front()->state_entries);
  int64_t last = win.back()->state_entries;
  double growth = static_cast<double>(last) / static_cast<double>(first);
  if (last < kStateGrowthRowFloor || growth < kStateGrowthFactor) return;
  DoctorFinding f;
  f.verdict = "state-growth";
  f.score = std::min(1.0, growth / 4.0);
  f.summary = Fmt("state grew %.1fx over the window (%lld -> %lld rows) with "
                  "no sign of plateau",
                  growth, static_cast<long long>(win.front()->state_entries),
                  static_cast<long long>(last));
  f.suggestion =
      "state is growing without bound: configure watermark-based eviction "
      "for aggregations/joins, or check the grouping key cardinality — an "
      "unbounded key space grows state forever";
  f.evidence.Set("firstStateEntries", Json::Int(win.front()->state_entries));
  f.evidence.Set("lastStateEntries", Json::Int(last));
  f.evidence.Set("growthFactor", Json::Double(growth));
  out->push_back(std::move(f));
}

}  // namespace

Json DoctorFinding::ToJson() const {
  Json obj = Json::Object();
  obj.Set("verdict", Json::Str(verdict));
  obj.Set("score", Json::Double(score));
  obj.Set("summary", Json::Str(summary));
  obj.Set("suggestion", Json::Str(suggestion));
  obj.Set("evidence", evidence);
  return obj;
}

Json DoctorReport::ToJson() const {
  Json obj = Json::Object();
  obj.Set("query", Json::Str(query));
  obj.Set("epochsExamined", Json::Int(epochs_examined));
  obj.Set("firstEpoch", Json::Int(first_epoch));
  obj.Set("lastEpoch", Json::Int(last_epoch));
  obj.Set("topVerdict", Json::Str(top_verdict()));
  Json arr = Json::Array();
  for (const DoctorFinding& f : findings) arr.Append(f.ToJson());
  obj.Set("findings", std::move(arr));
  return obj;
}

std::string DoctorReport::Render() const {
  std::string out = "== doctor: " + (query.empty() ? "<unnamed-query>" : query) +
                    " (epochs " + std::to_string(first_epoch) + ".." +
                    std::to_string(last_epoch) + ", " +
                    std::to_string(epochs_examined) + " examined) ==\n";
  if (findings.empty()) {
    out += "healthy: no bottleneck crossed a reporting threshold\n";
    return out;
  }
  int rank = 1;
  for (const DoctorFinding& f : findings) {
    out += Fmt("%d. [%s] score=%.2f\n", rank++, f.verdict.c_str(), f.score);
    out += "   " + f.summary + "\n";
    out += "   -> " + f.suggestion + "\n";
  }
  return out;
}

DoctorReport Diagnose(const DoctorInput& input) {
  DoctorReport report;
  report.query = input.query_name;
  std::vector<const QueryProgress*> win;
  size_t start =
      input.window.size() > kWindow ? input.window.size() - kWindow : 0;
  for (size_t i = start; i < input.window.size(); ++i) {
    win.push_back(&input.window[i]);
  }
  if (win.empty()) return report;
  report.epochs_examined = static_cast<int64_t>(win.size());
  report.first_epoch = win.front()->epoch;
  report.last_epoch = win.back()->epoch;
  CheckSinkBound(win, &report.findings);
  CheckSourceStarved(win, &report.findings);
  CheckSchedulerSaturated(win, input.scheduler_parallelism, &report.findings);
  CheckShardSkew(win, input.num_state_shards, &report.findings);
  CheckWatermarkLagging(win, &report.findings);
  CheckStateGrowth(win, &report.findings);
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const DoctorFinding& a, const DoctorFinding& b) {
                     return a.score > b.score;
                   });
  return report;
}

Result<DoctorReport> DiagnoseHistory(const std::string& checkpoint_dir) {
  SS_ASSIGN_OR_RETURN(std::vector<Json> events,
                      QueryHistoryLog::ReadAll(checkpoint_dir));
  DoctorInput input;
  for (const Json& event : events) {
    const Json& query = event.Get("query");
    if (input.query_name.empty() && query.is_string()) {
      input.query_name = query.string_value();
    }
    const Json& kind = event.Get("event");
    if (!kind.is_string() || kind.string_value() != "progress") continue;
    SS_ASSIGN_OR_RETURN(QueryProgress p,
                        QueryProgress::FromJson(event.Get("progress")));
    input.window.push_back(std::move(p));
  }
  return Diagnose(input);
}

}  // namespace sstreaming

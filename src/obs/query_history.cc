#include "obs/query_history.h"

#include <filesystem>
#include <string_view>

#include "common/logging.h"
#include "storage/fs.h"

namespace sstreaming {

std::string QueryHistoryLog::HistoryPath(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/_history/events.jsonl";
}

Result<std::unique_ptr<QueryHistoryLog>> QueryHistoryLog::Open(
    const std::string& checkpoint_dir, const Clock* clock) {
  if (checkpoint_dir.empty()) {
    return Status::InvalidArgument("history log needs a checkpoint dir");
  }
  SS_RETURN_IF_ERROR(EnsureDir(checkpoint_dir + "/_history"));
  std::string path = HistoryPath(checkpoint_dir);
  // Torn-tail repair: a crash mid-append can leave a partial last line.
  // Truncate to the last newline so the appender continues a well-formed
  // log (the lost line's epoch is replayed and re-appended anyway).
  if (FileExists(path)) {
    SS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
    size_t keep = text.rfind('\n');
    keep = keep == std::string::npos ? 0 : keep + 1;
    if (keep < text.size()) {
      SS_LOG(Warn) << "history: truncating torn tail line of " << path << " ("
                   << text.size() - keep << " bytes)";
      std::error_code ec;
      std::filesystem::resize_file(path, keep, ec);
      if (ec) {
        return Status::IOError("cannot repair history log " + path + ": " +
                               ec.message());
      }
    }
  }
  std::unique_ptr<QueryHistoryLog> log(
      new QueryHistoryLog(std::move(path), clock));
  log->out_.open(log->path_, std::ios::app);
  if (!log->out_.good()) {
    return Status::IOError("cannot open history log " + log->path_);
  }
  return log;
}

Status QueryHistoryLog::AppendLine(Json event, const char* kind,
                                   const std::string& query) {
  event.Set("event", Json::Str(kind));
  event.Set("query", Json::Str(query));
  event.Set("timestampMicros", Json::Int(clock_->NowMicros()));
  std::lock_guard<std::mutex> lock(mu_);
  if (!status_.ok()) return status_;
  out_ << event.Dump() << "\n";
  out_.flush();
  if (!out_.good()) {
    // Sticky: one bad write (full disk, revoked permission) poisons the log
    // rather than silently dropping an unknown subset of events.
    status_ = Status::IOError("history log write failed: " + path_);
    SS_LOG(Error) << status_.ToString();
    return status_;
  }
  return Status::OK();
}

Status QueryHistoryLog::AppendStarted(
    const std::string& query_name, bool recovered,
    const std::vector<Diagnostic>& plan_warnings) {
  Json event = Json::Object();
  event.Set("recovered", Json::Bool(recovered));
  Json warnings = Json::Array();
  for (const Diagnostic& w : plan_warnings) {
    Json entry = Json::Object();
    entry.Set("code", Json::Str(DiagCodeString(w.code)));
    entry.Set("message", Json::Str(w.message));
    warnings.Append(std::move(entry));
  }
  event.Set("planWarnings", std::move(warnings));
  return AppendLine(std::move(event), "started", query_name);
}

Status QueryHistoryLog::AppendProgress(const std::string& query_name,
                                       const QueryProgress& progress) {
  Json event = Json::Object();
  event.Set("progress", progress.ToJson());
  return AppendLine(std::move(event), "progress", query_name);
}

Status QueryHistoryLog::AppendDoctor(const std::string& query_name,
                                     Json report) {
  Json event = Json::Object();
  event.Set("report", std::move(report));
  return AppendLine(std::move(event), "doctor", query_name);
}

Status QueryHistoryLog::AppendTerminated(const std::string& query_name,
                                         const Status& error,
                                         int64_t last_epoch,
                                         const PlanProfile& profile) {
  Json event = Json::Object();
  event.Set("lastEpoch", Json::Int(last_epoch));
  event.Set("error", Json::Str(error.ok() ? "" : error.ToString()));
  event.Set("planProfile", profile.ToJson());
  return AppendLine(std::move(event), "terminated", query_name);
}

Status QueryHistoryLog::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

Result<std::vector<Json>> QueryHistoryLog::ReadAll(
    const std::string& checkpoint_dir) {
  std::string path = HistoryPath(checkpoint_dir);
  if (!FileExists(path)) {
    return Status::NotFound("no query history under " + checkpoint_dir);
  }
  SS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  std::vector<Json> events;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line(text.data() + pos,
                          (nl == std::string::npos ? text.size() : nl) - pos);
    bool is_tail = nl == std::string::npos;
    pos = is_tail ? text.size() : nl + 1;
    if (line.empty()) continue;
    auto json = Json::Parse(std::string(line));
    if (!json.ok()) {
      // A torn final line is the crash the append discipline anticipates;
      // mid-file corruption is not and must surface.
      if (is_tail) break;
      return Status::IOError("corrupt history line in " + path + ": " +
                             json.status().ToString());
    }
    events.push_back(std::move(*json));
  }
  return events;
}

}  // namespace sstreaming

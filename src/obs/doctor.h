#ifndef SSTREAMING_OBS_DOCTOR_H_
#define SSTREAMING_OBS_DOCTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "obs/progress.h"

namespace sstreaming {

/// One ranked verdict from the bottleneck doctor: what is limiting the
/// query, the numeric evidence, and a concrete next step.
struct DoctorFinding {
  /// Stable verdict id: "sink-bound", "source-starved",
  /// "scheduler-saturated", "stateful-shard-skew", "watermark-lagging",
  /// or "state-growth" (docs/OBSERVABILITY.md catalogues each with its
  /// evidence fields and thresholds).
  std::string verdict;
  /// Severity/confidence in [0, 1]; findings are ranked by it.
  double score = 0;
  /// One sentence with the numbers ("sink commit is 82% of processing
  /// time").
  std::string summary;
  /// A concrete action ("raise num_state_shards", "widen the trigger
  /// interval", ...).
  std::string suggestion;
  /// The numeric inputs the rule fired on (verdict-specific keys).
  Json evidence = Json::Object();

  Json ToJson() const;
};

/// The doctor's diagnosis for one query over a window of recent epochs.
struct DoctorReport {
  std::string query;
  int64_t epochs_examined = 0;
  int64_t first_epoch = 0;
  int64_t last_epoch = 0;
  /// Ranked, highest score first. Empty = nothing crossed a threshold.
  std::vector<DoctorFinding> findings;

  /// The headline: the top finding's verdict, or "healthy".
  std::string top_verdict() const {
    return findings.empty() ? "healthy" : findings.front().verdict;
  }

  /// {"query", "epochsExamined", "firstEpoch", "lastEpoch", "topVerdict",
  ///  "findings": [...]} — the /queries/<id>/doctor payload and the
  /// "doctor" history event body.
  Json ToJson() const;
  /// Multi-line human rendering (ssctl doctor).
  std::string Render() const;
};

/// Everything the rule engine looks at. Online (the HTTP endpoint, the
/// termination event) and offline (`ssctl doctor` over a checkpoint's
/// _history) both reduce to this struct, and the rules consume only the
/// progress window — so the two paths produce identical verdicts from the
/// same epochs (tested).
struct DoctorInput {
  std::string query_name;
  /// Recent per-epoch progress, chronological. The rules examine the last
  /// 32 entries.
  std::vector<QueryProgress> window;
  /// Scheduler parallelism, for the saturation suggestion (0 = unknown).
  int scheduler_parallelism = 0;
  /// Configured shard count, for the skew suggestion (0 = unknown).
  int num_state_shards = 0;
};

/// Runs every rule over `input` and returns the ranked report.
DoctorReport Diagnose(const DoctorInput& input);

/// Offline doctor: rebuilds the progress window from a checkpoint's durable
/// history (`<dir>/_history/events.jsonl`) and diagnoses it — the engine
/// behind `ssctl doctor <checkpoint_dir>`. NotFound when the dir has no
/// history.
Result<DoctorReport> DiagnoseHistory(const std::string& checkpoint_dir);

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_DOCTOR_H_

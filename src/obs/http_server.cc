#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/json.h"
#include "exec/query_manager.h"
#include "obs/doctor.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/profiler.h"
#include "obs/query_history.h"
#include "obs/tracer.h"

namespace sstreaming {

namespace {

constexpr size_t kMaxRequestBytes = size_t{1} << 16;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

std::string ErrnoString() { return std::string(std::strerror(errno)); }

/// Sends the whole buffer, tolerating short writes. MSG_NOSIGNAL: a client
/// that hung up must surface as EPIPE, not kill the process.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& resp) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     ReasonPhrase(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (SendAll(fd, head)) SendAll(fd, resp.body);
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  return resp;
}

HttpResponse JsonResponse(const Json& json) {
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = json.Dump();
  resp.body += "\n";
  return resp;
}

HttpResponse JsonError(int status, const std::string& message) {
  Json obj = Json::Object();
  obj.Set("error", Json::Str(message));
  HttpResponse resp = JsonResponse(obj);
  resp.status = status;
  return resp;
}

/// Pulls an integer parameter out of a raw query string ("seconds=3&hz=50").
/// Returns `fallback` when the key is absent or non-numeric.
int64_t QueryParamInt(const std::string& query_string, const std::string& key,
                      int64_t fallback) {
  size_t pos = 0;
  while (pos < query_string.size()) {
    size_t amp = query_string.find('&', pos);
    std::string pair = query_string.substr(
        pos, (amp == std::string::npos ? query_string.size() : amp) - pos);
    pos = amp == std::string::npos ? query_string.size() : amp + 1;
    size_t eq = pair.find('=');
    if (eq == std::string::npos || pair.substr(0, eq) != key) continue;
    char* end = nullptr;
    long long v = std::strtoll(pair.c_str() + eq + 1, &end, 10);
    if (end == pair.c_str() + eq + 1) return fallback;
    return v;
  }
  return fallback;
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Status HttpServer::Start(int port) {
  if (running_.load()) {
    return Status::FailedPrecondition("HTTP server is already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed: " + ErrnoString());
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("bind(127.0.0.1:" + std::to_string(port) +
                               ") failed: " + ErrnoString());
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    Status s = Status::IOError("listen() failed: " + ErrnoString());
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = Status::IOError("getsockname() failed: " + ErrnoString());
    ::close(fd);
    return s;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.load() && !thread_.joinable()) return;
  stop_requested_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void HttpServer::ServeLoop() {
  // Poll with a short timeout instead of blocking in accept() so Stop() can
  // interrupt the loop without closing the socket out from under it.
  while (!stop_requested_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int n = ::poll(&pfd, 1, 100);
    if (n <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetSocketTimeouts(fd, 2000);
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string buf;
  char tmp[4096];
  while (buf.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) return;  // timeout, hangup, or error: drop silently
    buf.append(tmp, static_cast<size_t>(n));
    if (buf.size() > kMaxRequestBytes) {
      WriteResponse(fd, TextResponse(400, "request too large\n"));
      return;
    }
  }
  // Request line: METHOD SP request-target SP HTTP-version.
  std::string line = buf.substr(0, buf.find("\r\n"));
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    WriteResponse(fd, TextResponse(400, "malformed request line\n"));
    return;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t q = target.find('?');
  req.path = q == std::string::npos ? target : target.substr(0, q);
  if (q != std::string::npos) req.query = target.substr(q + 1);
  WriteResponse(fd, handler_ ? handler_(req)
                             : TextResponse(404, "no handler mounted\n"));
}

void ObservabilityServer::MountQueryManager(QueryManager* manager) {
  std::lock_guard<std::mutex> lock(mu_);
  manager_ = manager;
}

void ObservabilityServer::MountQuery(const std::string& name,
                                     const StreamingQuery* query) {
  std::lock_guard<std::mutex> lock(mu_);
  mounted_[name] = query;
}

void ObservabilityServer::AddRegistry(
    std::shared_ptr<MetricsRegistry> registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registries_.push_back(std::move(registry));
}

Status ObservabilityServer::Start(int port) {
  if (server_ != nullptr) {
    return Status::FailedPrecondition("observability server already started");
  }
  auto server = std::make_unique<HttpServer>(
      [this](const HttpRequest& req) { return Handle(req); });
  SS_RETURN_IF_ERROR(server->Start(port));
  server_ = std::move(server);
  return Status::OK();
}

void ObservabilityServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

bool ObservabilityServer::WithNamedQuery(
    const std::string& name,
    const std::function<void(const StreamingQuery&)>& fn) const {
  QueryManager* manager;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = mounted_.find(name);
    if (it != mounted_.end()) {
      fn(*it->second);
      return true;
    }
    manager = manager_;
  }
  // Resolved under the manager lock so StopQuery cannot free the query while
  // fn reads its snapshots.
  return manager != nullptr && manager->WithQuery(name, fn);
}

std::vector<std::string> ObservabilityServer::QueryNames() const {
  std::vector<std::string> names;
  QueryManager* manager;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, query] : mounted_) names.push_back(name);
    manager = manager_;
  }
  if (manager != nullptr) {
    for (std::string& name : manager->ActiveQueryNames()) {
      bool dup = false;
      for (const std::string& have : names) dup = dup || have == name;
      if (!dup) names.push_back(std::move(name));
    }
  }
  return names;
}

HttpResponse ObservabilityServer::Handle(const HttpRequest& req) const {
  if (req.method != "GET") {
    return JsonError(405, "only GET is supported");
  }
  if (req.path == "/healthz") return TextResponse(200, "ok\n");
  if (req.path == "/metrics") return HandleMetrics();
  if (req.path == "/profile") return HandleProfile(req.query);
  if (req.path == "/queries" || req.path == "/queries/") {
    return HandleQueries();
  }
  const std::string prefix = "/queries/";
  if (req.path.rfind(prefix, 0) == 0) {
    std::string rest = req.path.substr(prefix.size());
    size_t slash = rest.find('/');
    std::string name = rest.substr(0, slash);
    std::string sub =
        slash == std::string::npos ? "" : rest.substr(slash + 1);
    if (sub.empty()) return HandleQueryDetail(name);
    if (sub == "plan") return HandlePlan(name);
    if (sub == "fingerprint") return HandleFingerprint(name);
    if (sub == "trace") return HandleTrace(name);
    if (sub == "history") return HandleHistory(name);
    if (sub == "doctor") return HandleDoctor(name);
    return JsonError(404, "unknown query endpoint '" + sub + "'");
  }
  if (req.path == "/") {
    return TextResponse(
        200,
        "sstreaming observability server\n"
        "  /healthz              liveness\n"
        "  /metrics              Prometheus text\n"
        "  /queries              queries + last progress (JSON)\n"
        "  /queries/<id>         recent progress ring buffer (JSON)\n"
        "  /queries/<id>/plan    live EXPLAIN ANALYZE (JSON)\n"
        "  /queries/<id>/fingerprint canonical plan fingerprint (JSON)\n"
        "  /queries/<id>/trace   Chrome trace JSON\n"
        "  /queries/<id>/history durable event log (JSON)\n"
        "  /queries/<id>/doctor  ranked bottleneck verdicts (JSON)\n"
        "  /profile?seconds=N    sampling profile over N seconds (JSON)\n");
  }
  return JsonError(404, "no route for '" + req.path + "'");
}

HttpResponse ObservabilityServer::HandleMetrics() const {
  // Hold shared_ptrs for the duration of the render so a query stopping
  // mid-scrape cannot free its registry under us.
  std::vector<std::shared_ptr<MetricsRegistry>> keep;
  {
    std::lock_guard<std::mutex> lock(mu_);
    keep = registries_;
  }
  for (const std::string& name : QueryNames()) {
    WithNamedQuery(name, [&keep](const StreamingQuery& query) {
      keep.push_back(query.metrics());
    });
  }
  std::vector<const MetricsRegistry*> registries;
  registries.reserve(keep.size());
  for (const auto& reg : keep) registries.push_back(reg.get());
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = MetricsRegistry::RenderPrometheusText(registries);
  resp.body += RenderProcessStatsPrometheus();
  return resp;
}

HttpResponse ObservabilityServer::HandleQueries() const {
  Json arr = Json::Array();
  for (const std::string& name : QueryNames()) {
    WithNamedQuery(name, [&arr, &name](const StreamingQuery& query) {
      Json obj = Json::Object();
      obj.Set("name", Json::Str(name));
      obj.Set("active", Json::Bool(query.IsActive()));
      Status error = query.GetError();
      obj.Set("error", Json::Str(error.ok() ? "" : error.ToString()));
      QueryProgress last;
      if (query.GetLastProgress(&last)) {
        obj.Set("lastEpoch", Json::Int(last.epoch));
        obj.Set("lastProgress", last.ToJson());
      } else {
        obj.Set("lastEpoch", Json::Int(0));
      }
      arr.Append(std::move(obj));
    });
  }
  return JsonResponse(arr);
}

HttpResponse ObservabilityServer::HandleQueryDetail(
    const std::string& name) const {
  Json obj = Json::Object();
  bool found = WithNamedQuery(name, [&obj, &name](const StreamingQuery& query) {
    obj.Set("name", Json::Str(name));
    obj.Set("active", Json::Bool(query.IsActive()));
    Json progress = Json::Array();
    for (const QueryProgress& p : query.GetProgressSnapshot()) {
      progress.Append(p.ToJson());
    }
    obj.Set("progress", std::move(progress));
  });
  if (!found) return JsonError(404, "no query '" + name + "'");
  return JsonResponse(obj);
}

HttpResponse ObservabilityServer::HandlePlan(const std::string& name) const {
  Json obj;
  bool found = WithNamedQuery(name, [&obj, &name](const StreamingQuery& query) {
    obj = query.plan_profile().ToJson();
    obj.Set("name", Json::Str(name));
    obj.Set("explain", Json::Str(query.ExplainAnalyze()));
  });
  if (!found) return JsonError(404, "no query '" + name + "'");
  return JsonResponse(obj);
}

HttpResponse ObservabilityServer::HandleFingerprint(
    const std::string& name) const {
  // The fingerprint is immutable after Start, so two scrapes of a running
  // query return byte-identical bodies (Json objects are map-ordered) —
  // the smoke script asserts exactly that.
  Json obj;
  bool found = WithNamedQuery(name, [&obj, &name](const StreamingQuery& query) {
    obj = query.plan_fingerprint().ToJson();
    obj.Set("name", Json::Str(name));
  });
  if (!found) return JsonError(404, "no query '" + name + "'");
  return JsonResponse(obj);
}

HttpResponse ObservabilityServer::HandleTrace(const std::string& name) const {
  std::string body;
  bool have_tracer = false;
  bool found = WithNamedQuery(
      name, [&body, &have_tracer](const StreamingQuery& query) {
        if (query.tracer() != nullptr) {
          have_tracer = true;
          body = query.tracer()->ToChromeTraceJson();
        }
      });
  if (!found) return JsonError(404, "no query '" + name + "'");
  if (!have_tracer) {
    return JsonError(404, "tracing is disabled for query '" + name + "'");
  }
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

HttpResponse ObservabilityServer::HandleHistory(
    const std::string& name) const {
  // Resolve the checkpoint dir under the query lock, read the file outside
  // it: appends are line-atomic (flushed whole lines), so a concurrent read
  // sees at worst a torn tail, which ReadAll skips.
  std::string checkpoint_dir;
  bool found = WithNamedQuery(
      name, [&checkpoint_dir](const StreamingQuery& query) {
        checkpoint_dir = query.checkpoint_dir();
      });
  if (!found) return JsonError(404, "no query '" + name + "'");
  if (checkpoint_dir.empty()) {
    return JsonError(404, "query '" + name +
                              "' is ephemeral (no checkpoint, no history)");
  }
  auto events = QueryHistoryLog::ReadAll(checkpoint_dir);
  if (!events.ok()) {
    return JsonError(events.status().IsNotFound() ? 404 : 500,
                     events.status().ToString());
  }
  Json obj = Json::Object();
  obj.Set("name", Json::Str(name));
  Json arr = Json::Array();
  for (Json& event : *events) arr.Append(std::move(event));
  obj.Set("events", std::move(arr));
  return JsonResponse(obj);
}

HttpResponse ObservabilityServer::HandleDoctor(const std::string& name) const {
  // Copy the inputs under the query lock, diagnose outside it: the rule
  // engine is pure computation over the snapshot.
  DoctorInput input;
  bool found = WithNamedQuery(name, [&input, &name](const StreamingQuery& query) {
    input.query_name = name;
    input.window = query.GetProgressSnapshot();
    input.scheduler_parallelism = query.scheduler_parallelism();
    input.num_state_shards = query.num_state_shards();
  });
  if (!found) return JsonError(404, "no query '" + name + "'");
  return JsonResponse(Diagnose(input).ToJson());
}

HttpResponse ObservabilityServer::HandleProfile(
    const std::string& query_string) const {
  // Blocking by design: the profiler is armed for the requested window and
  // the delta profile is returned. Requests serialize on the accept thread,
  // so concurrent scrapers queue rather than fight over arming (the
  // refcounted Arm also makes overlap from other threads safe). The window
  // is clamped so a stray request cannot occupy the server for minutes.
  int64_t seconds = QueryParamInt(query_string, "seconds", 1);
  seconds = std::max<int64_t>(1, std::min<int64_t>(30, seconds));
  int64_t hz = QueryParamInt(
      query_string, "hz", static_cast<int64_t>(Profiler::kDefaultHz));
  ProfileSnapshot snap =
      Profiler::Instance().Collect(seconds * 1000, static_cast<double>(hz));
  return JsonResponse(snap.ToJson());
}

Result<HttpResponse> HttpGet(int port, const std::string& path,
                             int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed: " + ErrnoString());
  SetSocketTimeouts(fd, timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("connect(127.0.0.1:" + std::to_string(port) +
                               ") failed: " + ErrnoString());
    ::close(fd);
    return s;
  }
  std::string request = "GET " + path +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status::IOError("send() failed: " + ErrnoString());
  }
  std::string raw;
  char tmp[4096];
  for (;;) {
    ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n < 0) {
      ::close(fd);
      return Status::IOError("recv() failed: " + ErrnoString());
    }
    if (n == 0) break;
    raw.append(tmp, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.1 200 OK\r\nheaders\r\n\r\nbody"
  size_t header_end = raw.find("\r\n\r\n");
  if (raw.size() < 12 || raw.rfind("HTTP/", 0) != 0 ||
      header_end == std::string::npos) {
    return Status::IOError("malformed HTTP response");
  }
  HttpResponse resp;
  resp.status = std::atoi(raw.c_str() + raw.find(' ') + 1);
  std::string headers = raw.substr(0, header_end);
  size_t ct = headers.find("Content-Type: ");
  if (ct != std::string::npos) {
    size_t eol = headers.find("\r\n", ct);
    resp.content_type = headers.substr(ct + 14, eol - ct - 14);
  }
  resp.body = raw.substr(header_end + 4);
  return resp;
}

}  // namespace sstreaming

#include "obs/plan_profile.h"

#include <algorithm>
#include <cstdio>

namespace sstreaming {

void PlanProfile::AddNode(int op_id, std::string name, bool is_source,
                          std::vector<int> children) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.count(op_id)) return;
  Node node;
  node.op_id = op_id;
  node.name = std::move(name);
  node.is_source = is_source;
  node.children = std::move(children);
  index_[op_id] = nodes_.size();
  nodes_.push_back(std::move(node));
}

void PlanProfile::RecordEpoch(const QueryProgress& progress) {
  std::lock_guard<std::mutex> lock(mu_);
  ++epochs_;
  for (const OperatorProgress& op : progress.operators) {
    auto it = index_.find(op.op_id);
    if (it == index_.end()) continue;
    Node& node = nodes_[it->second];
    node.rows_in += op.rows_in;
    node.rows_out += op.rows_out;
    node.batches += op.batches;
    node.cpu_nanos += op.cpu_nanos;
    node.output_bytes += op.output_bytes;
    node.tasks += op.tasks;
    node.queue_wait_nanos += op.queue_wait_nanos;
    node.max_task_run_nanos =
        std::max(node.max_task_run_nanos, op.max_task_run_nanos);
    node.state_rows = op.state_rows;
    node.state_bytes = op.state_bytes;
    node.shard_state = op.shard_state;
    node.peak_state_rows = std::max(node.peak_state_rows, op.state_rows);
    node.peak_state_bytes = std::max(node.peak_state_bytes, op.state_bytes);
  }
}

int64_t PlanProfile::epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_;
}

std::vector<PlanProfile::Node> PlanProfile::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_;
}

const PlanProfile::Node* PlanProfile::FindLocked(int op_id) const {
  auto it = index_.find(op_id);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

void PlanProfile::RenderNodeLocked(const Node& node, int depth,
                                   std::string* out) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                " [op %d]  rows_in=%lld rows_out=%lld batches=%lld "
                "self_cpu_ms=%.3f queue_ms=%.3f output_bytes=%lld",
                node.op_id, static_cast<long long>(node.rows_in),
                static_cast<long long>(node.rows_out),
                static_cast<long long>(node.batches),
                static_cast<double>(node.cpu_nanos) / 1e6,
                static_cast<double>(node.queue_wait_nanos) / 1e6,
                static_cast<long long>(node.output_bytes));
  *out += buf;
  if (node.peak_state_rows > 0 || node.peak_state_bytes > 0) {
    std::snprintf(buf, sizeof(buf),
                  " state_rows=%lld state_bytes=%lld (peak %lld/%lld)",
                  static_cast<long long>(node.state_rows),
                  static_cast<long long>(node.state_bytes),
                  static_cast<long long>(node.peak_state_rows),
                  static_cast<long long>(node.peak_state_bytes));
    *out += buf;
    if (!node.shard_state.empty()) {
      *out += " shards=[";
      for (size_t s = 0; s < node.shard_state.size(); ++s) {
        if (s > 0) *out += " ";
        std::snprintf(buf, sizeof(buf), "%lld/%lld",
                      static_cast<long long>(node.shard_state[s].first),
                      static_cast<long long>(node.shard_state[s].second));
        *out += buf;
      }
      *out += "]";
    }
  }
  *out += "\n";
  for (int child_id : node.children) {
    const Node* child = FindLocked(child_id);
    if (child != nullptr) RenderNodeLocked(*child, depth + 1, out);
  }
}

std::string PlanProfile::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "== EXPLAIN ANALYZE (epochs=" + std::to_string(epochs_) +
                    ") ==\n";
  if (!nodes_.empty()) RenderNodeLocked(nodes_.front(), 0, &out);
  return out;
}

Json PlanProfile::NodeJsonLocked(const Node& node) const {
  Json obj = Json::Object();
  obj.Set("opId", Json::Int(node.op_id));
  obj.Set("name", Json::Str(node.name));
  obj.Set("isSource", Json::Bool(node.is_source));
  obj.Set("rowsIn", Json::Int(node.rows_in));
  obj.Set("rowsOut", Json::Int(node.rows_out));
  obj.Set("batches", Json::Int(node.batches));
  obj.Set("cpuNanos", Json::Int(node.cpu_nanos));
  obj.Set("queueWaitNanos", Json::Int(node.queue_wait_nanos));
  obj.Set("tasks", Json::Int(node.tasks));
  obj.Set("maxTaskRunNanos", Json::Int(node.max_task_run_nanos));
  obj.Set("outputBytes", Json::Int(node.output_bytes));
  obj.Set("stateRows", Json::Int(node.state_rows));
  obj.Set("stateBytes", Json::Int(node.state_bytes));
  obj.Set("peakStateRows", Json::Int(node.peak_state_rows));
  obj.Set("peakStateBytes", Json::Int(node.peak_state_bytes));
  if (!node.shard_state.empty()) {
    Json shards = Json::Array();
    for (const auto& [rows, bytes] : node.shard_state) {
      Json pair = Json::Array();
      pair.Append(Json::Int(rows));
      pair.Append(Json::Int(bytes));
      shards.Append(std::move(pair));
    }
    obj.Set("shardState", std::move(shards));
  }
  Json children = Json::Array();
  for (int child_id : node.children) {
    const Node* child = FindLocked(child_id);
    if (child != nullptr) children.Append(NodeJsonLocked(*child));
  }
  obj.Set("children", std::move(children));
  return obj;
}

Json PlanProfile::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json obj = Json::Object();
  obj.Set("epochs", Json::Int(epochs_));
  if (!nodes_.empty()) obj.Set("root", NodeJsonLocked(nodes_.front()));
  return obj;
}

}  // namespace sstreaming

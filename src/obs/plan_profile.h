#ifndef SSTREAMING_OBS_PLAN_PROFILE_H_
#define SSTREAMING_OBS_PLAN_PROFILE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"
#include "obs/progress.h"

namespace sstreaming {

/// EXPLAIN ANALYZE for a running query: the physical plan tree annotated
/// with cumulative per-operator actuals (rows in/out, batches, self CPU,
/// output bytes, live/peak state size). The skeleton is registered once at
/// query start (AddNode, root first, plan pre-order); every completed epoch
/// folds its OperatorProgress in via RecordEpoch. Thread-safe: the epoch
/// loop records while HTTP scrape threads render, so all node state is
/// mutex-guarded and Render()/ToJson() work from a consistent snapshot.
///
/// The cumulative rows_in/rows_out per node are fed from the same
/// OperatorProgress values as the `sstreaming_operator_rows_{in,out}_total`
/// counters, so a profile and a metrics scrape taken while the query is
/// quiescent agree exactly (tested).
class PlanProfile {
 public:
  struct Node {
    int op_id = 0;
    std::string name;
    bool is_source = false;
    std::vector<int> children;  // child op_ids, plan order

    // Cumulative actuals across recorded epochs.
    int64_t rows_in = 0;
    int64_t rows_out = 0;
    int64_t batches = 0;
    int64_t cpu_nanos = 0;  // self time (inclusive minus children)
    int64_t output_bytes = 0;
    // Scheduler accounting for the stages this operator submitted:
    // cumulative task count, submit->start queue wait (backpressure), and
    // the slowest single task seen (skew).
    int64_t tasks = 0;
    int64_t queue_wait_nanos = 0;
    int64_t max_task_run_nanos = 0;

    // Live state size after the most recent epoch, and the peak across all
    // recorded epochs (0 for stateless operators).
    int64_t state_rows = 0;
    int64_t state_bytes = 0;
    int64_t peak_state_rows = 0;
    int64_t peak_state_bytes = 0;
    // Per-shard (rows, bytes) breakdown of the live state, indexed by
    // shard. Empty for stateless operators.
    std::vector<std::pair<int64_t, int64_t>> shard_state;
  };

  PlanProfile() = default;
  PlanProfile(const PlanProfile&) = delete;
  PlanProfile& operator=(const PlanProfile&) = delete;

  /// Registers one plan node. Call in plan pre-order (root first) before the
  /// first RecordEpoch; nodes registered twice (shared subtrees) are kept
  /// once.
  void AddNode(int op_id, std::string name, bool is_source,
               std::vector<int> children);

  /// Folds one completed epoch's per-operator summaries into the totals.
  void RecordEpoch(const QueryProgress& progress);

  int64_t epochs() const;
  std::vector<Node> Snapshot() const;

  /// Multi-line EXPLAIN ANALYZE rendering: the plan tree, one node per line,
  /// annotated with cumulative actuals.
  std::string Render() const;

  /// {"epochs": N, "root": {"opId", "name", "rowsIn", ..., "children": [...]}}
  /// — the payload of the /queries/<id>/plan endpoint.
  Json ToJson() const;

 private:
  const Node* FindLocked(int op_id) const SS_REQUIRES(mu_);
  void RenderNodeLocked(const Node& node, int depth, std::string* out) const
      SS_REQUIRES(mu_);
  Json NodeJsonLocked(const Node& node) const SS_REQUIRES(mu_);

  mutable std::mutex mu_;
  std::vector<Node> nodes_ SS_GUARDED_BY(mu_);  // pre-order, root first
  std::map<int, size_t> index_ SS_GUARDED_BY(mu_);
  int64_t epochs_ SS_GUARDED_BY(mu_) = 0;
};

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_PLAN_PROFILE_H_

#ifndef SSTREAMING_OBS_TRACER_H_
#define SSTREAMING_OBS_TRACER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sstreaming {

/// One completed timed span on the engine's timeline.
struct TraceSpan {
  std::string name;        // "execute", "Filter ...", "epoch-12", ...
  std::string cat;         // "epoch" | "stage" | "operator" | "task"
  int64_t start_nanos = 0; // MonotonicNanos() at span start
  int64_t dur_nanos = 0;
  int64_t epoch = 0;
  uint64_t tid = 0;        // hashed thread id
};

/// Records plan→execute→checkpoint→commit spans per epoch (plus nested
/// per-operator spans) and exports them as Chrome trace_event JSON for
/// offline timeline inspection in chrome://tracing / Perfetto. Thread-safe;
/// recording is one mutex-guarded vector push. Capacity-bounded: spans past
/// `max_spans` are counted as dropped rather than growing without bound.
class EpochTracer {
 public:
  explicit EpochTracer(size_t max_spans = size_t{1} << 18)
      : max_spans_(max_spans) {}
  EpochTracer(const EpochTracer&) = delete;
  EpochTracer& operator=(const EpochTracer&) = delete;

  void AddSpan(std::string name, std::string cat, int64_t start_nanos,
               int64_t dur_nanos, int64_t epoch);

  std::vector<TraceSpan> Snapshot() const;
  size_t span_count() const;
  int64_t dropped() const;
  void Clear();

  /// {"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid", "tid",
  /// "args": {"epoch"}}]} — timestamps/durations in microseconds as Chrome
  /// expects.
  Json ToChromeTrace() const;
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() atomically to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_ SS_GUARDED_BY(mu_);
  size_t max_spans_;  // immutable after construction
  int64_t dropped_ SS_GUARDED_BY(mu_) = 0;
};

/// RAII helper: times a scope and records it on destruction. A null tracer
/// disables recording (zero-cost apart from one clock read).
class ScopedSpan {
 public:
  ScopedSpan(EpochTracer* tracer, std::string name, std::string cat,
             int64_t epoch);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  int64_t start_nanos() const { return start_nanos_; }

 private:
  EpochTracer* tracer_;
  std::string name_;
  std::string cat_;
  int64_t epoch_;
  int64_t start_nanos_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_TRACER_H_

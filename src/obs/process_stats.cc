#include "obs/process_stats.h"

#include <chrono>
#include <fstream>
#include <sstream>

namespace sstreaming {

namespace {

// Process start approximated by static-init time: uptime is used to judge
// "has this server been up long enough to trust its rates", where a few
// milliseconds of init skew are irrelevant.
const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

int64_t ReadRssBytes() {
  // VmRSS from /proc/self/status (Linux). Other platforms: 0 = unknown.
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    int64_t kb = 0;
    fields >> kb;
    return kb * 1024;
  }
  return 0;
}

}  // namespace

ProcessStats SampleProcessStats() {
  ProcessStats stats;
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    kProcessStart)
          .count();
  stats.rss_bytes = ReadRssBytes();
  return stats;
}

std::string RenderProcessStatsPrometheus() {
  ProcessStats stats = SampleProcessStats();
  std::ostringstream out;
  out << "# TYPE sstreaming_process_uptime_seconds gauge\n"
      << "sstreaming_process_uptime_seconds " << stats.uptime_seconds << "\n";
  if (stats.rss_bytes > 0) {
    out << "# TYPE sstreaming_process_rss_bytes gauge\n"
        << "sstreaming_process_rss_bytes " << stats.rss_bytes << "\n";
  }
  return out.str();
}

}  // namespace sstreaming

#include "obs/listener.h"

#include <algorithm>

namespace sstreaming {

void ListenerBus::Add(std::shared_ptr<StreamingQueryListener> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.push_back(std::move(listener));
}

void ListenerBus::Remove(const StreamingQueryListener* listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [listener](const auto& l) { return l.get() == listener; }),
      listeners_.end());
}

size_t ListenerBus::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return listeners_.size();
}

std::vector<std::shared_ptr<StreamingQueryListener>>
ListenerBus::SnapshotListeners() const {
  std::lock_guard<std::mutex> lock(mu_);
  return listeners_;
}

void ListenerBus::NotifyStarted(const QueryStartedEvent& event) const {
  for (const auto& l : SnapshotListeners()) l->OnQueryStarted(event);
}

void ListenerBus::NotifyProgress(const QueryProgressEvent& event) const {
  for (const auto& l : SnapshotListeners()) l->OnQueryProgress(event);
}

void ListenerBus::NotifyTerminated(const QueryTerminatedEvent& event) const {
  for (const auto& l : SnapshotListeners()) l->OnQueryTerminated(event);
}

void CollectingListener::OnQueryStarted(const QueryStartedEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  started_.push_back(event);
  timeline_.emplace_back(event.name, "started");
}

void CollectingListener::OnQueryProgress(const QueryProgressEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  progress_.push_back(event);
  timeline_.emplace_back(event.name, "progress");
}

void CollectingListener::OnQueryTerminated(const QueryTerminatedEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  terminated_.push_back(event);
  timeline_.emplace_back(event.name, "terminated");
}

std::vector<QueryStartedEvent> CollectingListener::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_;
}

std::vector<QueryProgressEvent> CollectingListener::progress() const {
  std::lock_guard<std::mutex> lock(mu_);
  return progress_;
}

std::vector<QueryTerminatedEvent> CollectingListener::terminated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return terminated_;
}

std::string CollectingListener::Timeline(const std::string& query_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, kind] : timeline_) {
    if (name != query_name) continue;
    if (!out.empty()) out += ",";
    out += kind;
  }
  return out;
}

}  // namespace sstreaming

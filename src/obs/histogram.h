#ifndef SSTREAMING_OBS_HISTOGRAM_H_
#define SSTREAMING_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

namespace sstreaming {

/// A lock-free log-bucketed latency histogram (HdrHistogram-style). Values
/// are bucketed by their power of two with 2^kSubBucketBits linear
/// sub-buckets per power, so quantile estimates carry at most ~6% relative
/// error while the whole histogram is a fixed 8 KiB of atomic counters.
/// Record() is wait-free (relaxed atomics plus one CAS loop for the max);
/// readers see a consistent-enough snapshot for monitoring purposes.
class LogHistogram {
 public:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per power of two
  static constexpr int kSubBucketCount = 1 << kSubBucketBits;
  static constexpr int kNumBuckets = 64 << kSubBucketBits;

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Records one observation. Negative values are clamped to zero.
  void Record(int64_t value);

  /// Records `n` identical observations in O(1) (used for batch-granular
  /// latency samples weighted by row count). No-op when n <= 0.
  void RecordN(int64_t value, int64_t n);

  /// Adds another histogram's buckets/count/sum/max into this one. The merge
  /// is exact at bucket granularity: quantiles of the merged histogram equal
  /// quantiles of recording both value streams into one histogram. Not
  /// linearizable against concurrent Record() on `other`.
  void MergeFrom(const LogHistogram& other);

  /// Raw count of bucket `index` (for serialization and merge tests).
  int64_t bucket_count(int index) const {
    return counts_[index].load(std::memory_order_relaxed);
  }

  /// Adds `n` observations directly into bucket `index` (counts only — the
  /// deserialization path for sparse bucket dumps, see LatencySummary).
  /// `sum` and `max`, which bucket counts alone cannot reconstruct, are
  /// restored separately via RestoreSumMax.
  void AddToBucket(int index, int64_t n);
  /// Folds the exact sum/max that bucket quantization loses back in
  /// (deserialization companion to AddToBucket): sum accumulates, max takes
  /// the larger value.
  void RestoreSumMax(int64_t sum, int64_t max);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Exact maximum recorded value (0 when empty).
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Mean of recorded values (0 when empty).
  double mean() const;

  /// Estimated value at quantile `q` in [0, 1] (upper bound of the bucket
  /// holding that rank; 0 when empty). The estimate is within one
  /// sub-bucket width of the exact order statistic.
  int64_t ValueAtQuantile(double q) const;

  /// A coherent one-shot read of the headline statistics.
  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;
    int64_t p50 = 0;
    int64_t p95 = 0;
    int64_t p99 = 0;
  };
  Snapshot GetSnapshot() const;

  /// Resets all counters to zero. Not linearizable against concurrent
  /// Record() calls; meant for tests and between benchmark runs.
  void Reset();

  /// Bucket index for a value (exposed for tests).
  static int BucketIndex(int64_t value);
  /// Largest value mapping to `index` (inverse of BucketIndex; for tests).
  static int64_t BucketUpperBound(int index);

 private:
  std::atomic<int64_t> counts_[kNumBuckets]{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_HISTOGRAM_H_

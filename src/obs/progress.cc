#include "obs/progress.h"

namespace sstreaming {

Json OperatorProgress::ToJson() const {
  Json obj = Json::Object();
  obj.Set("opId", Json::Int(op_id));
  obj.Set("name", Json::Str(name));
  obj.Set("rowsIn", Json::Int(rows_in));
  obj.Set("rowsOut", Json::Int(rows_out));
  obj.Set("batches", Json::Int(batches));
  obj.Set("cpuNanos", Json::Int(cpu_nanos));
  return obj;
}

Json SourceProgress::ToJson() const {
  Json obj = Json::Object();
  obj.Set("name", Json::Str(name));
  obj.Set("rows", Json::Int(rows));
  obj.Set("rowsPerSec", Json::Double(rows_per_sec));
  obj.Set("backlogRows", Json::Int(backlog_rows));
  return obj;
}

Json QueryProgress::ToJson() const {
  Json obj = Json::Object();
  obj.Set("epoch", Json::Int(epoch));
  obj.Set("rowsRead", Json::Int(rows_read));
  obj.Set("rowsWritten", Json::Int(rows_written));
  if (watermark_micros != INT64_MIN) {
    obj.Set("watermarkMicros", Json::Int(watermark_micros));
  }
  obj.Set("stateEntries", Json::Int(state_entries));
  obj.Set("durationNanos", Json::Int(duration_nanos));
  obj.Set("triggerWaitNanos", Json::Int(trigger_wait_nanos));
  Json durations = Json::Object();
  durations.Set("planNanos", Json::Int(plan_nanos));
  durations.Set("sourceReadNanos", Json::Int(source_read_nanos));
  durations.Set("execNanos", Json::Int(exec_nanos));
  durations.Set("checkpointNanos", Json::Int(checkpoint_nanos));
  durations.Set("commitNanos", Json::Int(commit_nanos));
  durations.Set("otherNanos", Json::Int(other_nanos));
  obj.Set("durations", std::move(durations));
  Json srcs = Json::Array();
  for (const SourceProgress& s : sources) srcs.Append(s.ToJson());
  obj.Set("sources", std::move(srcs));
  Json ops = Json::Array();
  for (const OperatorProgress& o : operators) ops.Append(o.ToJson());
  obj.Set("operators", std::move(ops));
  return obj;
}

}  // namespace sstreaming

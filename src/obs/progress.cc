#include "obs/progress.h"

namespace sstreaming {

namespace {

// FromJson helpers: absent keys read as 0 / empty so the parsers accept
// event-log lines written by older builds (fields only ever get added).
int64_t GetInt(const Json& obj, const char* key) {
  const Json& v = obj.Get(key);
  return v.is_number() ? v.int_value() : 0;
}

double GetDouble(const Json& obj, const char* key) {
  const Json& v = obj.Get(key);
  return v.is_number() ? v.double_value() : 0;
}

std::string GetStr(const Json& obj, const char* key) {
  const Json& v = obj.Get(key);
  return v.is_string() ? v.string_value() : std::string();
}

}  // namespace

LatencySummary LatencySummary::FromHistogram(const LogHistogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.sum_micros = h.sum();
  s.max_micros = h.max();
  s.p50_micros = h.ValueAtQuantile(0.50);
  s.p95_micros = h.ValueAtQuantile(0.95);
  s.p99_micros = h.ValueAtQuantile(0.99);
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    int64_t n = h.bucket_count(i);
    if (n != 0) s.buckets.emplace_back(i, n);
  }
  return s;
}

void LatencySummary::MergeInto(LogHistogram* h) const {
  for (const auto& [index, n] : buckets) h->AddToBucket(index, n);
  h->RestoreSumMax(sum_micros, max_micros);
}

Json LatencySummary::ToJson() const {
  Json obj = Json::Object();
  obj.Set("count", Json::Int(count));
  obj.Set("sumMicros", Json::Int(sum_micros));
  obj.Set("maxMicros", Json::Int(max_micros));
  obj.Set("p50Micros", Json::Int(p50_micros));
  obj.Set("p95Micros", Json::Int(p95_micros));
  obj.Set("p99Micros", Json::Int(p99_micros));
  Json bs = Json::Array();
  for (const auto& [index, n] : buckets) {
    Json pair = Json::Array();
    pair.Append(Json::Int(index));
    pair.Append(Json::Int(n));
    bs.Append(std::move(pair));
  }
  obj.Set("buckets", std::move(bs));
  return obj;
}

Result<LatencySummary> LatencySummary::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("latency summary must be an object");
  }
  LatencySummary s;
  s.count = GetInt(json, "count");
  s.sum_micros = GetInt(json, "sumMicros");
  s.max_micros = GetInt(json, "maxMicros");
  s.p50_micros = GetInt(json, "p50Micros");
  s.p95_micros = GetInt(json, "p95Micros");
  s.p99_micros = GetInt(json, "p99Micros");
  const Json& bs = json.Get("buckets");
  if (bs.is_array()) {
    for (const Json& pair : bs.array_items()) {
      if (!pair.is_array() || pair.array_items().size() != 2) {
        return Status::InvalidArgument(
            "latency summary bucket must be an [index, count] pair");
      }
      s.buckets.emplace_back(
          static_cast<int>(pair.array_items()[0].int_value()),
          pair.array_items()[1].int_value());
    }
  }
  return s;
}

Json OperatorProgress::ToJson() const {
  Json obj = Json::Object();
  obj.Set("opId", Json::Int(op_id));
  obj.Set("name", Json::Str(name));
  obj.Set("rowsIn", Json::Int(rows_in));
  obj.Set("rowsOut", Json::Int(rows_out));
  obj.Set("batches", Json::Int(batches));
  obj.Set("cpuNanos", Json::Int(cpu_nanos));
  obj.Set("outputBytes", Json::Int(output_bytes));
  obj.Set("stateRows", Json::Int(state_rows));
  obj.Set("stateBytes", Json::Int(state_bytes));
  if (tasks != 0) {
    obj.Set("tasks", Json::Int(tasks));
    obj.Set("queueWaitNanos", Json::Int(queue_wait_nanos));
    obj.Set("taskRunNanos", Json::Int(task_run_nanos));
    obj.Set("maxTaskRunNanos", Json::Int(max_task_run_nanos));
  }
  if (!shard_state.empty()) {
    Json shards = Json::Array();
    for (const auto& [rows, bytes] : shard_state) {
      Json pair = Json::Array();
      pair.Append(Json::Int(rows));
      pair.Append(Json::Int(bytes));
      shards.Append(std::move(pair));
    }
    obj.Set("shardState", std::move(shards));
  }
  return obj;
}

Result<OperatorProgress> OperatorProgress::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("operator progress must be an object");
  }
  OperatorProgress op;
  op.op_id = static_cast<int>(GetInt(json, "opId"));
  op.name = GetStr(json, "name");
  op.rows_in = GetInt(json, "rowsIn");
  op.rows_out = GetInt(json, "rowsOut");
  op.batches = GetInt(json, "batches");
  op.cpu_nanos = GetInt(json, "cpuNanos");
  op.output_bytes = GetInt(json, "outputBytes");
  op.state_rows = GetInt(json, "stateRows");
  op.state_bytes = GetInt(json, "stateBytes");
  op.tasks = GetInt(json, "tasks");
  op.queue_wait_nanos = GetInt(json, "queueWaitNanos");
  op.task_run_nanos = GetInt(json, "taskRunNanos");
  op.max_task_run_nanos = GetInt(json, "maxTaskRunNanos");
  const Json& shards = json.Get("shardState");
  if (shards.is_array()) {
    for (const Json& pair : shards.array_items()) {
      if (!pair.is_array() || pair.array_items().size() != 2) {
        return Status::InvalidArgument(
            "operator shardState must hold [rows, bytes] pairs");
      }
      op.shard_state.emplace_back(pair.array_items()[0].int_value(),
                                  pair.array_items()[1].int_value());
    }
  }
  return op;
}

Json SourceProgress::ToJson() const {
  Json obj = Json::Object();
  obj.Set("name", Json::Str(name));
  obj.Set("rows", Json::Int(rows));
  obj.Set("rowsPerSec", Json::Double(rows_per_sec));
  obj.Set("backlogRows", Json::Int(backlog_rows));
  obj.Set("backlogAgeMicros", Json::Int(backlog_age_micros));
  return obj;
}

Result<SourceProgress> SourceProgress::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("source progress must be an object");
  }
  SourceProgress sp;
  sp.name = GetStr(json, "name");
  sp.rows = GetInt(json, "rows");
  sp.rows_per_sec = GetDouble(json, "rowsPerSec");
  sp.backlog_rows = GetInt(json, "backlogRows");
  sp.backlog_age_micros = GetInt(json, "backlogAgeMicros");
  return sp;
}

Json QueryProgress::ToJson() const {
  Json obj = Json::Object();
  obj.Set("epoch", Json::Int(epoch));
  obj.Set("rowsRead", Json::Int(rows_read));
  obj.Set("rowsWritten", Json::Int(rows_written));
  if (watermark_micros != INT64_MIN) {
    obj.Set("watermarkMicros", Json::Int(watermark_micros));
    obj.Set("watermarkLagMicros", Json::Int(watermark_lag_micros));
  }
  obj.Set("stateEntries", Json::Int(state_entries));
  obj.Set("stateBytes", Json::Int(state_bytes));
  obj.Set("durationNanos", Json::Int(duration_nanos));
  obj.Set("sinkCommitNanos", Json::Int(sink_commit_nanos));
  obj.Set("queueWaitNanos", Json::Int(queue_wait_nanos));
  obj.Set("triggerWaitNanos", Json::Int(trigger_wait_nanos));
  obj.Set("triggerDriftNanos", Json::Int(trigger_drift_nanos));
  obj.Set("e2eLatency", e2e_latency.ToJson());
  Json durations = Json::Object();
  durations.Set("planNanos", Json::Int(plan_nanos));
  durations.Set("sourceReadNanos", Json::Int(source_read_nanos));
  durations.Set("execNanos", Json::Int(exec_nanos));
  durations.Set("checkpointNanos", Json::Int(checkpoint_nanos));
  durations.Set("commitNanos", Json::Int(commit_nanos));
  durations.Set("otherNanos", Json::Int(other_nanos));
  obj.Set("durations", std::move(durations));
  Json srcs = Json::Array();
  for (const SourceProgress& s : sources) srcs.Append(s.ToJson());
  obj.Set("sources", std::move(srcs));
  Json ops = Json::Array();
  for (const OperatorProgress& o : operators) ops.Append(o.ToJson());
  obj.Set("operators", std::move(ops));
  return obj;
}

Result<QueryProgress> QueryProgress::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("query progress must be an object");
  }
  QueryProgress p;
  p.epoch = GetInt(json, "epoch");
  p.rows_read = GetInt(json, "rowsRead");
  p.rows_written = GetInt(json, "rowsWritten");
  p.watermark_micros =
      json.Has("watermarkMicros") ? GetInt(json, "watermarkMicros")
                                  : INT64_MIN;
  p.state_entries = GetInt(json, "stateEntries");
  p.state_bytes = GetInt(json, "stateBytes");
  p.duration_nanos = GetInt(json, "durationNanos");
  p.sink_commit_nanos = GetInt(json, "sinkCommitNanos");
  p.queue_wait_nanos = GetInt(json, "queueWaitNanos");
  p.trigger_wait_nanos = GetInt(json, "triggerWaitNanos");
  p.trigger_drift_nanos = GetInt(json, "triggerDriftNanos");
  p.watermark_lag_micros = GetInt(json, "watermarkLagMicros");
  if (json.Has("e2eLatency")) {
    SS_ASSIGN_OR_RETURN(p.e2e_latency,
                        LatencySummary::FromJson(json.Get("e2eLatency")));
  }
  const Json& durations = json.Get("durations");
  p.plan_nanos = GetInt(durations, "planNanos");
  p.source_read_nanos = GetInt(durations, "sourceReadNanos");
  p.exec_nanos = GetInt(durations, "execNanos");
  p.checkpoint_nanos = GetInt(durations, "checkpointNanos");
  p.commit_nanos = GetInt(durations, "commitNanos");
  p.other_nanos = GetInt(durations, "otherNanos");
  const Json& srcs = json.Get("sources");
  if (srcs.is_array()) {
    for (const Json& s : srcs.array_items()) {
      SS_ASSIGN_OR_RETURN(SourceProgress sp, SourceProgress::FromJson(s));
      p.sources.push_back(std::move(sp));
    }
  }
  const Json& ops = json.Get("operators");
  if (ops.is_array()) {
    for (const Json& o : ops.array_items()) {
      SS_ASSIGN_OR_RETURN(OperatorProgress op, OperatorProgress::FromJson(o));
      p.operators.push_back(std::move(op));
    }
  }
  return p;
}

}  // namespace sstreaming

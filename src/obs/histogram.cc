#include "obs/histogram.h"

#include <bit>
#include <cmath>

namespace sstreaming {

int LogHistogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBucketCount) {
    // Small values get one bucket each (exact).
    return static_cast<int>(v);
  }
  int msb = 63 - std::countl_zero(v);  // position of the highest set bit
  int shift = msb - kSubBucketBits;
  int sub = static_cast<int>((v >> shift) & (kSubBucketCount - 1));
  return ((msb - kSubBucketBits + 1) << kSubBucketBits) + sub;
}

int64_t LogHistogram::BucketUpperBound(int index) {
  if (index < kSubBucketCount) return index;
  int msb = (index >> kSubBucketBits) + kSubBucketBits - 1;
  int sub = index & (kSubBucketCount - 1);
  int shift = msb - kSubBucketBits;
  int64_t lower = (int64_t{1} << msb) + (static_cast<int64_t>(sub) << shift);
  return lower + (int64_t{1} << shift) - 1;
}

void LogHistogram::Record(int64_t value) {
  if (value < 0) value = 0;
  counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value,
                                     std::memory_order_relaxed)) {
  }
}

void LogHistogram::RecordN(int64_t value, int64_t n) {
  if (n <= 0) return;
  if (value < 0) value = 0;
  counts_[BucketIndex(value)].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(value * n, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value,
                                     std::memory_order_relaxed)) {
  }
}

void LogHistogram::MergeFrom(const LogHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t n = other.counts_[i].load(std::memory_order_relaxed);
    if (n != 0) counts_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  RestoreSumMax(other.sum(), other.max());
}

void LogHistogram::AddToBucket(int index, int64_t n) {
  if (n <= 0 || index < 0 || index >= kNumBuckets) return;
  counts_[index].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
}

void LogHistogram::RestoreSumMax(int64_t sum, int64_t max) {
  sum_.fetch_add(sum, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (max > prev &&
         !max_.compare_exchange_weak(prev, max, std::memory_order_relaxed)) {
  }
}

double LogHistogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t LogHistogram::ValueAtQuantile(double q) const {
  int64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  auto target = static_cast<int64_t>(std::ceil(q * static_cast<double>(n)));
  if (target < 1) target = 1;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Never report beyond the true maximum (tightens the top bucket).
      int64_t upper = BucketUpperBound(i);
      int64_t m = max();
      return m > 0 && m < upper ? m : upper;
    }
  }
  return max();
}

LogHistogram::Snapshot LogHistogram::GetSnapshot() const {
  Snapshot snap;
  snap.count = count();
  snap.sum = sum();
  snap.max = max();
  snap.p50 = ValueAtQuantile(0.50);
  snap.p95 = ValueAtQuantile(0.95);
  snap.p99 = ValueAtQuantile(0.99);
  return snap;
}

void LogHistogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace sstreaming

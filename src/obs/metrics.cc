#include "obs/metrics.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"

namespace sstreaming {

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

std::string RenderLabels(const MetricLabels& labels,
                         const std::string& extra_key = "",
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string MetricsRegistry::InstrumentKey(const std::string& name,
                                           const MetricLabels& labels) {
  return name + RenderLabels(labels);
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    const std::string& name, MetricLabels labels, Kind kind) {
  std::string key = InstrumentKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    SS_CHECK(it->second->kind == kind)
        << "metric '" << key << "' re-registered with a different kind";
    return it->second.get();
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = name;
  inst->labels = std::move(labels);
  inst->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      inst->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      inst->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      inst->histogram = std::make_unique<LogHistogram>();
      break;
  }
  Instrument* raw = inst.get();
  instruments_[key] = std::move(inst);
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), Kind::kGauge)->gauge.get();
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                            MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), Kind::kHistogram)
      ->histogram.get();
}

size_t MetricsRegistry::num_instruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

namespace {

/// One instrument's fully-rendered exposition lines, keyed for sorting.
/// The map key "name{labels}" cannot be the sort key: '_' < '{' in ASCII,
/// so "foo_sum" would sort between "foo{a}" and "foo{b}" and interleave
/// families — sorting on (name, labels) keeps every family contiguous.
struct PromSeries {
  std::string name;
  std::string labels;
  const char* type;
  std::string lines;
};

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  return RenderPrometheusText({this});
}

std::string MetricsRegistry::RenderPrometheusText(
    std::vector<const MetricsRegistry*> registries) {
  // Several queries may share one registry: render each at most once.
  std::sort(registries.begin(), registries.end());
  registries.erase(std::unique(registries.begin(), registries.end()),
                   registries.end());
  std::vector<PromSeries> series;
  for (const MetricsRegistry* reg : registries) {
    if (reg == nullptr) continue;
    std::lock_guard<std::mutex> lock(reg->mu_);
    for (const auto& [key, inst] : reg->instruments_) {
      (void)key;
      PromSeries row;
      row.name = inst->name;
      row.labels = RenderLabels(inst->labels);
      switch (inst->kind) {
        case Kind::kCounter:
          row.type = "counter";
          row.lines = inst->name + row.labels + " " +
                      std::to_string(inst->counter->value()) + "\n";
          break;
        case Kind::kGauge:
          row.type = "gauge";
          row.lines = inst->name + row.labels + " " +
                      std::to_string(inst->gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          row.type = "summary";
          LogHistogram::Snapshot snap = inst->histogram->GetSnapshot();
          row.lines =
              inst->name + RenderLabels(inst->labels, "quantile", "0.5") +
              " " + std::to_string(snap.p50) + "\n" + inst->name +
              RenderLabels(inst->labels, "quantile", "0.95") + " " +
              std::to_string(snap.p95) + "\n" + inst->name +
              RenderLabels(inst->labels, "quantile", "0.99") + " " +
              std::to_string(snap.p99) + "\n" + inst->name + "_sum" +
              row.labels + " " + std::to_string(snap.sum) + "\n" +
              inst->name + "_count" + row.labels + " " +
              std::to_string(snap.count) + "\n" + inst->name + "_max" +
              row.labels + " " + std::to_string(snap.max) + "\n";
          break;
        }
      }
      series.push_back(std::move(row));
    }
  }
  std::stable_sort(series.begin(), series.end(),
                   [](const PromSeries& a, const PromSeries& b) {
                     return std::tie(a.name, a.labels) <
                            std::tie(b.name, b.labels);
                   });
  std::string out;
  const std::string* last_family = nullptr;
  for (const PromSeries& row : series) {
    if (last_family == nullptr || row.name != *last_family) {
      out += "# TYPE " + row.name + " " + std::string(row.type) + "\n";
      last_family = &row.name;
    }
    out += row.lines;
  }
  return out;
}

Json MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::Object();
  Json gauges = Json::Object();
  Json histograms = Json::Object();
  for (const auto& [key, inst] : instruments_) {
    switch (inst->kind) {
      case Kind::kCounter:
        counters.Set(key, Json::Int(inst->counter->value()));
        break;
      case Kind::kGauge:
        gauges.Set(key, Json::Int(inst->gauge->value()));
        break;
      case Kind::kHistogram: {
        LogHistogram::Snapshot snap = inst->histogram->GetSnapshot();
        Json h = Json::Object();
        h.Set("count", Json::Int(snap.count));
        h.Set("sum", Json::Int(snap.sum));
        h.Set("max", Json::Int(snap.max));
        h.Set("p50", Json::Int(snap.p50));
        h.Set("p95", Json::Int(snap.p95));
        h.Set("p99", Json::Int(snap.p99));
        histograms.Set(key, std::move(h));
        break;
      }
    }
  }
  Json out = Json::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

}  // namespace sstreaming

#ifndef SSTREAMING_OBS_PROFILER_H_
#define SSTREAMING_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sstreaming {

/// One aggregated profile row: samples observed with a given
/// (query, stage, operator) attribution context.
struct ProfileEntry {
  std::string query;
  std::string stage;
  std::string op;
  int op_id = 0;
  int64_t samples = 0;
  /// samples x sampling period — estimated self time in this context.
  int64_t self_nanos = 0;
};

/// An aggregated profile: what the sampler saw over some window (or since
/// process start, for the cumulative snapshot).
struct ProfileSnapshot {
  /// Sampling rate the profiler was armed at when these samples were taken.
  double hz = 0;
  /// Sampler wake-ups covered by this snapshot.
  int64_t ticks = 0;
  /// Samples attributed to some context (one per registered busy thread per
  /// tick; registered-but-idle threads are not counted).
  int64_t total_samples = 0;
  /// Wall-clock span of the collection window (Collect only; 0 for the
  /// cumulative snapshot).
  int64_t duration_nanos = 0;
  /// Rows, sorted by samples descending.
  std::vector<ProfileEntry> entries;

  /// {"hz":..,"ticks":..,"totalSamples":..,"durationNanos":..,
  ///  "entries":[{query,stage,op,opId,samples,selfNanos}...],
  ///  "collapsed":["query;stage;op N", ...]}  — the collapsed lines are
  /// flamegraph.pl / speedscope "collapsed stack" format.
  Json ToJson() const;
  /// The collapsed-stack lines alone ("query;stage;op N\n"...).
  std::string Collapsed() const;
};

/// Process-wide continuous sampling profiler (dependency-free; no signals,
/// no unwinder). Worker threads publish a packed *attribution word* —
/// query / stage / operator label ids plus the operator id — into a
/// registered thread-local slot via RAII scopes (below); a timer thread
/// wakes at the armed rate and charges one sample per busy thread to its
/// current word. Aggregation is per distinct word, so the output is a
/// per-(query, stage, op) self-time profile, exportable as collapsed
/// stacks.
///
/// Off by default: when disarmed there is no sampler thread and every scope
/// constructor is a single relaxed atomic load. Arming is refcounted —
/// `GET /profile?seconds=N` collectors and `QueryOptions::profile_hz`
/// queries can overlap freely. The first armer picks the rate. At the
/// default 99 Hz a sample costs one word-load per registered thread every
/// ~10 ms, keeping the measured overhead well under the 2% budget
/// (docs/OBSERVABILITY.md; proven by the A/B point in the bench ledger).
class Profiler {
 public:
  static constexpr double kDefaultHz = 99.0;

  /// The process-wide instance (never destroyed).
  static Profiler& Instance();

  /// True while at least one armer holds the profiler on. Scope fast path.
  static bool active() {
    return active_flag_.load(std::memory_order_relaxed);
  }

  /// Interns `label`, returning a dense id in [1, 65535]. Idempotent.
  /// Returns the overflow bucket id if the label space is exhausted.
  uint32_t Intern(const std::string& label);

  /// Starts sampling (refcounted). The first armer starts the timer thread
  /// at `hz` (clamped to [1, 1000]); later armers join at the current rate.
  void Arm(double hz = kDefaultHz);
  /// Drops one armer; the last one out stops the timer thread.
  void Disarm();

  /// Arms, sleeps `duration_millis`, disarms, and returns the samples taken
  /// in that window (a before/after delta — concurrent collectors see their
  /// own windows). Blocks the calling thread.
  ProfileSnapshot Collect(int64_t duration_millis, double hz = kDefaultHz);

  /// Everything sampled since process start (or Reset).
  ProfileSnapshot Snapshot() const;

  /// Clears accumulated samples (tests).
  void Reset();

  /// Number of currently registered worker threads (tests/telemetry).
  int registered_threads() const;

  // --- attribution word plumbing (scopes + schedulers; rarely direct) ---

  /// The calling thread's current attribution word (0 = unattributed).
  static uint64_t CurrentWord();

  /// The word a scheduler task should run under: the *submitting* thread's
  /// word with the stage field replaced by `stage_label`. Returns 0 when
  /// the profiler is off (callers skip propagation entirely then).
  uint64_t TaskWord(const std::string& stage_name);

  // Packing: query(16) | stage(16) | op_label(16) | op_id(16).
  static constexpr int kQueryShift = 48;
  static constexpr int kStageShift = 32;
  static constexpr int kOpLabelShift = 16;
  static uint64_t WithField(uint64_t word, int shift, uint32_t value) {
    uint64_t mask = ~(static_cast<uint64_t>(0xffff) << shift);
    return (word & mask) |
           (static_cast<uint64_t>(value & 0xffff) << shift);
  }

 private:
  friend class ProfileScopeBase;

  struct ThreadSlot {
    std::atomic<uint64_t> word{0};
  };

  Profiler() = default;

  /// The calling thread's slot, registering it on first use.
  static ThreadSlot* Slot();
  void RegisterSlot(const std::shared_ptr<ThreadSlot>& slot);
  void UnregisterSlot(const ThreadSlot* slot);

  void SamplerLoop();
  /// Copies the aggregated counts (word -> samples) and tick count.
  void CountsSnapshot(std::map<uint64_t, int64_t>* counts,
                      int64_t* ticks) const;
  ProfileSnapshot BuildSnapshot(const std::map<uint64_t, int64_t>& counts,
                                int64_t ticks) const;
  std::string LabelName(uint32_t id) const;

  static std::atomic<bool> active_flag_;

  mutable std::mutex intern_mu_;
  std::map<std::string, uint32_t> label_ids_ SS_GUARDED_BY(intern_mu_);
  std::vector<std::string> labels_ SS_GUARDED_BY(intern_mu_);

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadSlot>> slots_ SS_GUARDED_BY(mu_);
  std::map<uint64_t, int64_t> counts_ SS_GUARDED_BY(mu_);
  int64_t ticks_ SS_GUARDED_BY(mu_) = 0;

  mutable std::mutex control_mu_;
  int armed_count_ SS_GUARDED_BY(control_mu_) = 0;
  double hz_ SS_GUARDED_BY(control_mu_) = kDefaultHz;
  std::thread sampler_ SS_GUARDED_BY(control_mu_);
  std::atomic<bool> stop_{false};
};

/// Base for the RAII attribution scopes: when the profiler is active at
/// construction, swaps the calling thread's word and restores it on
/// destruction; a no-op (one relaxed load) otherwise.
class ProfileScopeBase {
 public:
  ProfileScopeBase(const ProfileScopeBase&) = delete;
  ProfileScopeBase& operator=(const ProfileScopeBase&) = delete;

 protected:
  ProfileScopeBase() = default;
  ~ProfileScopeBase() {
    if (slot_ != nullptr) {
      slot_->word.store(saved_, std::memory_order_relaxed);
    }
  }

  /// Publishes `word` for this thread (registering it) and remembers the
  /// previous word for restore.
  void Engage(uint64_t word);
  /// Current word if active, else 0 (without engaging).
  static uint64_t PeekWord();

 private:
  Profiler::ThreadSlot* slot_ = nullptr;
  uint64_t saved_ = 0;
};

/// Attributes the enclosed work to a query (the trigger/epoch driver).
class ProfileQueryScope : public ProfileScopeBase {
 public:
  explicit ProfileQueryScope(uint32_t query_label) {
    if (!Profiler::active() || query_label == 0) return;
    Engage(Profiler::WithField(PeekWord(), Profiler::kQueryShift,
                               query_label));
  }
};

/// Attributes the enclosed work to a named engine stage ("execute",
/// "checkpoint", ...), keeping the surrounding query/op context.
class ProfileStageScope : public ProfileScopeBase {
 public:
  explicit ProfileStageScope(uint32_t stage_label) {
    if (!Profiler::active() || stage_label == 0) return;
    Engage(Profiler::WithField(PeekWord(), Profiler::kStageShift,
                               stage_label));
  }
};

/// Attributes the enclosed work to an operator (set by PhysOp::Execute).
class ProfileOpScope : public ProfileScopeBase {
 public:
  ProfileOpScope(uint32_t op_label, int op_id) {
    if (!Profiler::active() || op_label == 0) return;
    uint64_t word = Profiler::WithField(PeekWord(), Profiler::kOpLabelShift,
                                        op_label);
    Engage(Profiler::WithField(word, 0,
                               static_cast<uint32_t>(op_id & 0xffff)));
  }
};

/// Installs a whole inherited word on a scheduler worker thread (the
/// submitting thread's context with the stage field replaced — see
/// Profiler::TaskWord). No-op when `word` is 0.
class ProfileTaskScope : public ProfileScopeBase {
 public:
  explicit ProfileTaskScope(uint64_t word) {
    if (word == 0 || !Profiler::active()) return;
    Engage(word);
  }
};

}  // namespace sstreaming

#endif  // SSTREAMING_OBS_PROFILER_H_

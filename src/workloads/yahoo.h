#ifndef SSTREAMING_WORKLOADS_YAHOO_H_
#define SSTREAMING_WORKLOADS_YAHOO_H_

#include <map>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "logical/dataframe.h"

namespace sstreaming {

/// The Yahoo! Streaming Benchmark (paper §9.1): ad click events are
/// filtered to views, joined against a static campaign table by ad id, and
/// counted per campaign on 10-second event-time windows. The paper's setup
/// replaced the original Redis campaign store with an in-memory table in
/// each system; we generate the same relational shape.
struct YahooConfig {
  YahooConfig() {}
  int num_partitions = 8;
  int64_t num_events = 1000000;
  int num_campaigns = 100;
  int ads_per_campaign = 10;
  /// Events are spread uniformly over this many seconds of event time.
  int64_t event_time_span_seconds = 100;
  uint64_t seed = 42;
};

/// Event schema: (user_id, page_id, ad_id, ad_type, event_type, event_time).
SchemaPtr YahooEventSchema();

/// Campaign table schema: (ad_id, campaign_id).
SchemaPtr YahooCampaignSchema();

/// Creates `topic` on the bus and fills it with `config.num_events` events
/// round-robin across partitions. Returns the campaign table rows.
Result<std::vector<Row>> GenerateYahooData(MessageBus* bus,
                                           const std::string& topic,
                                           const YahooConfig& config);

/// The benchmark query as a Structured Streaming DataFrame: filter views,
/// project, join campaigns, 10s windowed counts by campaign.
DataFrame YahooQuery(SourcePtr events, const std::vector<Row>& campaigns);

/// Reference result computation (single-threaded, trusted) for validating
/// all three engines: (campaign_id, window_start_sec) -> count of views.
std::map<std::pair<int64_t, int64_t>, int64_t> YahooReferenceCounts(
    const std::vector<Row>& events, const std::vector<Row>& campaigns);

}  // namespace sstreaming

#endif  // SSTREAMING_WORKLOADS_YAHOO_H_

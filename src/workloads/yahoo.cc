#include "workloads/yahoo.h"

#include "common/logging.h"
#include "common/random.h"

namespace sstreaming {

namespace {
constexpr int64_t kSec = 1000000;
const char* kEventTypes[] = {"view", "click", "purchase"};
const char* kAdTypes[] = {"banner", "modal", "sponsored"};
}  // namespace

SchemaPtr YahooEventSchema() {
  return Schema::Make({{"user_id", TypeId::kInt64, false},
                       {"page_id", TypeId::kInt64, false},
                       {"ad_id", TypeId::kInt64, false},
                       {"ad_type", TypeId::kString, false},
                       {"event_type", TypeId::kString, false},
                       {"event_time", TypeId::kTimestamp, false}});
}

SchemaPtr YahooCampaignSchema() {
  return Schema::Make({{"ad_id", TypeId::kInt64, false},
                       {"campaign_id", TypeId::kInt64, false}});
}

Result<std::vector<Row>> GenerateYahooData(MessageBus* bus,
                                           const std::string& topic,
                                           const YahooConfig& config) {
  SS_RETURN_IF_ERROR(bus->CreateTopic(topic, config.num_partitions));
  Random rng(config.seed);
  const int64_t num_ads =
      static_cast<int64_t>(config.num_campaigns) * config.ads_per_campaign;

  // Campaign table: ad i belongs to campaign i / ads_per_campaign.
  std::vector<Row> campaigns;
  campaigns.reserve(static_cast<size_t>(num_ads));
  for (int64_t ad = 0; ad < num_ads; ++ad) {
    campaigns.push_back(
        {Value::Int64(ad), Value::Int64(ad / config.ads_per_campaign)});
  }

  // Events, appended in per-partition batches for producer efficiency.
  std::vector<std::vector<Row>> per_partition(
      static_cast<size_t>(config.num_partitions));
  const int64_t span_micros = config.event_time_span_seconds * kSec;
  for (int64_t i = 0; i < config.num_events; ++i) {
    Row event = {
        Value::Int64(static_cast<int64_t>(rng.Uniform(100000))),
        Value::Int64(static_cast<int64_t>(rng.Uniform(1000))),
        Value::Int64(static_cast<int64_t>(rng.Uniform(
            static_cast<uint64_t>(num_ads)))),
        Value::Str(kAdTypes[rng.Uniform(3)]),
        Value::Str(kEventTypes[rng.Uniform(3)]),
        Value::Timestamp(i * span_micros / config.num_events),
    };
    per_partition[static_cast<size_t>(i % config.num_partitions)].push_back(
        std::move(event));
  }
  for (int p = 0; p < config.num_partitions; ++p) {
    SS_RETURN_IF_ERROR(
        bus->AppendBatch(topic, p,
                         std::move(per_partition[static_cast<size_t>(p)]))
            .status());
  }
  return campaigns;
}

DataFrame YahooQuery(SourcePtr events, const std::vector<Row>& campaigns) {
  DataFrame campaign_df =
      DataFrame::FromRows(YahooCampaignSchema(), campaigns).TakeValue();
  return DataFrame::ReadStream(std::move(events))
      .Where(Eq(Col("event_type"), Lit("view")))
      .SelectColumns({"ad_id", "event_time"})
      .Join(campaign_df, {"ad_id"})
      .GroupBy({As(TumblingWindow(Col("event_time"), 10 * kSec), "window"),
                NamedExpr{Col("campaign_id"), "campaign_id"}})
      .Count();
}

std::map<std::pair<int64_t, int64_t>, int64_t> YahooReferenceCounts(
    const std::vector<Row>& events, const std::vector<Row>& campaigns) {
  std::map<int64_t, int64_t> ad_to_campaign;
  for (const Row& c : campaigns) {
    ad_to_campaign[c[0].int64_value()] = c[1].int64_value();
  }
  std::map<std::pair<int64_t, int64_t>, int64_t> counts;
  for (const Row& e : events) {
    if (e[4].string_value() != "view") continue;
    auto it = ad_to_campaign.find(e[2].int64_value());
    if (it == ad_to_campaign.end()) continue;
    int64_t window_start_sec = e[5].int64_value() / (10 * kSec) * 10;
    ++counts[{it->second, window_start_sec}];
  }
  return counts;
}

}  // namespace sstreaming

#include "logical/dataframe.h"

namespace sstreaming {

DataFrame DataFrame::FromBatch(RecordBatchPtr batch) {
  SchemaPtr schema = batch->schema();
  return DataFrame(std::make_shared<ScanNode>(
      std::move(schema), std::vector<RecordBatchPtr>{std::move(batch)}));
}

Result<DataFrame> DataFrame::FromRows(SchemaPtr schema,
                                      std::vector<Row> rows) {
  SS_ASSIGN_OR_RETURN(RecordBatchPtr batch,
                      RecordBatch::FromRows(schema, rows));
  return FromBatch(std::move(batch));
}

DataFrame DataFrame::FromBatches(SchemaPtr schema,
                                 std::vector<RecordBatchPtr> batches) {
  return DataFrame(
      std::make_shared<ScanNode>(std::move(schema), std::move(batches)));
}

DataFrame DataFrame::ReadStream(SourcePtr source) {
  return DataFrame(std::make_shared<StreamScanNode>(std::move(source)));
}

DataFrame DataFrame::Where(ExprPtr predicate) const {
  return DataFrame(std::make_shared<FilterNode>(plan_, std::move(predicate)));
}

DataFrame DataFrame::Select(std::vector<NamedExpr> exprs) const {
  return DataFrame(std::make_shared<ProjectNode>(plan_, std::move(exprs)));
}

DataFrame DataFrame::SelectColumns(
    const std::vector<std::string>& names) const {
  std::vector<NamedExpr> exprs;
  exprs.reserve(names.size());
  for (const std::string& name : names) {
    exprs.push_back(NamedExpr{Col(name), name});
  }
  return Select(std::move(exprs));
}

DataFrame DataFrame::WithColumn(const std::string& name, ExprPtr expr) const {
  return DataFrame(std::make_shared<ProjectNode>(
      plan_, std::vector<NamedExpr>{NamedExpr{std::move(expr), name}},
      /*include_star=*/true));
}

DataFrame DataFrame::WithWatermark(const std::string& column,
                                   int64_t delay_micros) const {
  return DataFrame(
      std::make_shared<WithWatermarkNode>(plan_, column, delay_micros));
}

GroupedData DataFrame::GroupBy(std::vector<NamedExpr> group_exprs) const {
  return GroupedData(plan_, std::move(group_exprs));
}

GroupedData DataFrame::GroupBy(const std::vector<std::string>& names) const {
  std::vector<NamedExpr> exprs;
  exprs.reserve(names.size());
  for (const std::string& name : names) {
    exprs.push_back(NamedExpr{Col(name), name});
  }
  return GroupBy(std::move(exprs));
}

KeyedData DataFrame::GroupByKey(std::vector<NamedExpr> key_exprs) const {
  return KeyedData(plan_, std::move(key_exprs));
}

DataFrame DataFrame::Join(const DataFrame& right,
                          const std::vector<std::string>& on,
                          JoinType type) const {
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
  for (const std::string& name : on) {
    left_keys.push_back(Col(name));
    right_keys.push_back(Col(name));
  }
  return Join(right, std::move(left_keys), std::move(right_keys), type);
}

DataFrame DataFrame::Join(const DataFrame& right,
                          std::vector<ExprPtr> left_keys,
                          std::vector<ExprPtr> right_keys,
                          JoinType type) const {
  return DataFrame(std::make_shared<JoinNode>(plan_, right.plan(), type,
                                              std::move(left_keys),
                                              std::move(right_keys)));
}

DataFrame DataFrame::Distinct() const {
  return DataFrame(std::make_shared<DistinctNode>(plan_));
}

DataFrame DataFrame::OrderBy(std::vector<SortKey> keys) const {
  return DataFrame(std::make_shared<SortNode>(plan_, std::move(keys)));
}

DataFrame DataFrame::Limit(int64_t n) const {
  return DataFrame(std::make_shared<LimitNode>(plan_, n));
}

DataFrame GroupedData::Agg(std::vector<AggSpec> aggregates) const {
  return DataFrame(std::make_shared<AggregateNode>(child_, group_exprs_,
                                                   std::move(aggregates)));
}

DataFrame KeyedData::MapGroupsWithState(GroupUpdateFn update_fn,
                                        SchemaPtr output_schema,
                                        GroupStateTimeout timeout) const {
  return DataFrame(std::make_shared<FlatMapGroupsWithStateNode>(
      child_, key_exprs_, std::move(update_fn), std::move(output_schema),
      timeout, /*require_single_output=*/true));
}

DataFrame KeyedData::FlatMapGroupsWithState(GroupUpdateFn update_fn,
                                            SchemaPtr output_schema,
                                            GroupStateTimeout timeout) const {
  return DataFrame(std::make_shared<FlatMapGroupsWithStateNode>(
      child_, key_exprs_, std::move(update_fn), std::move(output_schema),
      timeout, /*require_single_output=*/false));
}

}  // namespace sstreaming

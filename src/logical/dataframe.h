#ifndef SSTREAMING_LOGICAL_DATAFRAME_H_
#define SSTREAMING_LOGICAL_DATAFRAME_H_

#include <string>
#include <vector>

#include "logical/plan.h"

namespace sstreaming {

class GroupedData;
class KeyedData;

/// The user-facing query builder, modeled on Spark's DataFrame (paper §4.1):
/// a table-valued view defined by a relational plan. The same DataFrame can
/// be executed as a batch job (BatchExecutor) or incrementalized into a
/// streaming query (StreamingQuery) — the API is agnostic to execution
/// strategy, which is what enables both microbatch and continuous modes
/// (paper §6.3).
///
/// DataFrames are immutable values; every transformation returns a new one.
class DataFrame {
 public:
  explicit DataFrame(PlanPtr plan) : plan_(std::move(plan)) {}

  /// A static (batch) table from materialized data.
  static DataFrame FromBatch(RecordBatchPtr batch);
  static Result<DataFrame> FromRows(SchemaPtr schema, std::vector<Row> rows);
  static DataFrame FromBatches(SchemaPtr schema,
                               std::vector<RecordBatchPtr> batches);

  /// A streaming table over a replayable source (readStream in the paper).
  static DataFrame ReadStream(SourcePtr source);

  const PlanPtr& plan() const { return plan_; }
  bool IsStreaming() const { return plan_->IsStreaming(); }

  /// Row filter; where() and filter() are synonyms as in Spark.
  DataFrame Where(ExprPtr predicate) const;
  DataFrame Filter(ExprPtr predicate) const { return Where(std::move(predicate)); }

  /// Projection.
  DataFrame Select(std::vector<NamedExpr> exprs) const;
  /// Projection by column name.
  DataFrame SelectColumns(const std::vector<std::string>& names) const;
  /// Adds (or replaces) one column, keeping the rest.
  DataFrame WithColumn(const std::string& name, ExprPtr expr) const;

  /// Declares an event-time column with a lateness bound (paper §4.3.1).
  DataFrame WithWatermark(const std::string& column,
                          int64_t delay_micros) const;

  /// Starts an aggregation: groupBy(...).agg/count/...
  GroupedData GroupBy(std::vector<NamedExpr> group_exprs) const;
  GroupedData GroupBy(const std::vector<std::string>& names) const;

  /// Starts a stateful-operator pipeline: groupByKey(...).mapGroupsWithState.
  KeyedData GroupByKey(std::vector<NamedExpr> key_exprs) const;

  /// Equi-join on same-named columns.
  DataFrame Join(const DataFrame& right, const std::vector<std::string>& on,
                 JoinType type = JoinType::kInner) const;
  /// Equi-join on explicit key expressions.
  DataFrame Join(const DataFrame& right, std::vector<ExprPtr> left_keys,
                 std::vector<ExprPtr> right_keys,
                 JoinType type = JoinType::kInner) const;

  DataFrame Distinct() const;
  DataFrame OrderBy(std::vector<SortKey> keys) const;
  DataFrame Limit(int64_t n) const;

  std::string TreeString() const { return plan_->TreeString(); }

 private:
  PlanPtr plan_;
};

/// Result of groupBy(); terminates in an aggregation.
class GroupedData {
 public:
  GroupedData(PlanPtr child, std::vector<NamedExpr> group_exprs)
      : child_(std::move(child)), group_exprs_(std::move(group_exprs)) {}

  DataFrame Agg(std::vector<AggSpec> aggregates) const;
  DataFrame Count() const { return Agg({CountAll("count")}); }
  DataFrame Avg(const std::string& column, std::string name = "avg") const {
    return Agg({AvgOf(Col(column), std::move(name))});
  }
  DataFrame Sum(const std::string& column, std::string name = "sum") const {
    return Agg({SumOf(Col(column), std::move(name))});
  }

 private:
  PlanPtr child_;
  std::vector<NamedExpr> group_exprs_;
};

/// Result of groupByKey(); terminates in a stateful operator (paper §4.3.2).
class KeyedData {
 public:
  KeyedData(PlanPtr child, std::vector<NamedExpr> key_exprs)
      : child_(std::move(child)), key_exprs_(std::move(key_exprs)) {}

  /// The update function must return exactly one row per invocation.
  DataFrame MapGroupsWithState(
      GroupUpdateFn update_fn, SchemaPtr output_schema,
      GroupStateTimeout timeout = GroupStateTimeout::kNone) const;

  /// The update function may return zero or more rows per invocation.
  DataFrame FlatMapGroupsWithState(
      GroupUpdateFn update_fn, SchemaPtr output_schema,
      GroupStateTimeout timeout = GroupStateTimeout::kNone) const;

 private:
  PlanPtr child_;
  std::vector<NamedExpr> key_exprs_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_LOGICAL_DATAFRAME_H_

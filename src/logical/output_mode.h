#ifndef SSTREAMING_LOGICAL_OUTPUT_MODE_H_
#define SSTREAMING_LOGICAL_OUTPUT_MODE_H_

namespace sstreaming {

/// How the result table is written to the sink (paper §4.2):
///  - Append: only new rows are ever written; a written row is final.
///  - Update: rows whose value changed are (re)written, keyed by the
///    query's grouping key.
///  - Complete: the whole result table is rewritten on every trigger.
enum class OutputMode { kAppend, kUpdate, kComplete };

inline const char* OutputModeName(OutputMode mode) {
  switch (mode) {
    case OutputMode::kAppend:
      return "append";
    case OutputMode::kUpdate:
      return "update";
    case OutputMode::kComplete:
      return "complete";
  }
  return "?";
}

}  // namespace sstreaming

#endif  // SSTREAMING_LOGICAL_OUTPUT_MODE_H_

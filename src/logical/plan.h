#ifndef SSTREAMING_LOGICAL_PLAN_H_
#define SSTREAMING_LOGICAL_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "connectors/source.h"
#include "expr/aggregate.h"
#include "expr/expression.h"
#include "types/record_batch.h"
#include "types/schema.h"

namespace sstreaming {

class LogicalPlan;
using PlanPtr = std::shared_ptr<const LogicalPlan>;

enum class JoinType { kInner, kLeftOuter, kRightOuter };
const char* JoinTypeName(JoinType type);

/// Timeout semantics for stateful operators (paper §4.3.2).
enum class GroupStateTimeout { kNone, kProcessingTime, kEventTime };

/// Per-key mutable state handle passed to a stateful operator's update
/// function. Mirrors Spark's GroupState[S]: get/update/remove plus timeout
/// control. State values are Rows of a user-chosen shape.
class GroupState {
 public:
  GroupState(std::optional<Row> value, int64_t watermark_micros,
             int64_t processing_time_micros, bool timed_out)
      : value_(std::move(value)),
        watermark_micros_(watermark_micros),
        processing_time_micros_(processing_time_micros),
        timed_out_(timed_out) {}

  bool exists() const { return value_.has_value(); }
  /// Precondition: exists().
  const Row& get() const { return *value_; }
  void update(Row value) {
    value_ = std::move(value);
    updated_ = true;
    removed_ = false;
  }
  void remove() {
    value_.reset();
    removed_ = true;
    updated_ = false;
    timeout_at_micros_ = INT64_MAX;
  }

  /// Arms a processing-time timeout `duration` from now, or an event-time
  /// timeout at `timestamp` (must exceed the current watermark). Which clock
  /// applies is fixed per operator by its GroupStateTimeout configuration.
  void SetTimeoutDuration(int64_t duration_micros) {
    timeout_at_micros_ = processing_time_micros_ + duration_micros;
  }
  void SetTimeoutTimestamp(int64_t timestamp_micros) {
    timeout_at_micros_ = timestamp_micros;
  }

  /// True when this invocation is due to a timeout, not new data.
  bool HasTimedOut() const { return timed_out_; }

  /// The current event-time watermark (INT64_MIN before any watermark).
  int64_t watermark_micros() const { return watermark_micros_; }
  int64_t processing_time_micros() const { return processing_time_micros_; }

  // --- engine-side accessors ---
  bool updated() const { return updated_; }
  bool removed() const { return removed_; }
  int64_t timeout_at_micros() const { return timeout_at_micros_; }

 private:
  std::optional<Row> value_;
  int64_t watermark_micros_;
  int64_t processing_time_micros_;
  bool timed_out_;
  bool updated_ = false;
  bool removed_ = false;
  int64_t timeout_at_micros_ = INT64_MAX;
};

/// User update function for (flat)mapGroupsWithState: receives the group
/// key, the new values for that key this trigger (empty on timeout), and the
/// state handle; returns zero or more output rows (paper Figure 3).
using GroupUpdateFn = std::function<Result<std::vector<Row>>(
    const Row& key, const std::vector<Row>& values, GroupState* state)>;

/// An unresolved relational query tree. Built by the DataFrame API, then
/// analyzed (name/type resolution + streaming validation), optimized, and
/// incrementalized into physical operators. Nodes are immutable and shared.
class LogicalPlan {
 public:
  enum class Kind {
    kScan,          // static, fully materialized data
    kStreamScan,    // a replayable streaming source
    kFilter,
    kProject,
    kAggregate,
    kJoin,
    kDistinct,
    kSort,
    kLimit,
    kWithWatermark,
    kFlatMapGroupsWithState,
  };

  virtual ~LogicalPlan() = default;

  Kind kind() const { return kind_; }
  const std::vector<PlanPtr>& children() const { return children_; }

  /// Output schema; only set on analyzed plans.
  const SchemaPtr& schema() const { return schema_; }
  bool analyzed() const { return schema_ != nullptr; }

  /// True if any descendant reads a streaming source.
  bool IsStreaming() const;

  /// One-line description of this node (children not included).
  virtual std::string ToString() const = 0;

  /// Multi-line indented rendering of the whole tree.
  std::string TreeString() const;

 protected:
  LogicalPlan(Kind kind, std::vector<PlanPtr> children)
      : kind_(kind), children_(std::move(children)) {}

  friend class Analyzer;

  Kind kind_;
  std::vector<PlanPtr> children_;
  SchemaPtr schema_;
};

/// Static data (a fully materialized table).
class ScanNode : public LogicalPlan {
 public:
  ScanNode(SchemaPtr schema, std::vector<RecordBatchPtr> batches);

  const SchemaPtr& data_schema() const { return data_schema_; }
  const std::vector<RecordBatchPtr>& batches() const { return batches_; }

  std::string ToString() const override;

 private:
  SchemaPtr data_schema_;
  std::vector<RecordBatchPtr> batches_;
};

/// A streaming source scan.
class StreamScanNode : public LogicalPlan {
 public:
  explicit StreamScanNode(SourcePtr source);

  const SourcePtr& source() const { return source_; }

  std::string ToString() const override;

 private:
  SourcePtr source_;
};

class FilterNode : public LogicalPlan {
 public:
  FilterNode(PlanPtr child, ExprPtr predicate);

  const ExprPtr& predicate() const { return predicate_; }

  std::string ToString() const override;

 private:
  ExprPtr predicate_;
};

class ProjectNode : public LogicalPlan {
 public:
  /// With include_star, all child columns are implicitly projected first and
  /// `exprs` appended/overridden by name (the withColumn form). The analyzer
  /// expands the star.
  ProjectNode(PlanPtr child, std::vector<NamedExpr> exprs,
              bool include_star = false);

  const std::vector<NamedExpr>& exprs() const { return exprs_; }
  bool include_star() const { return include_star_; }

  std::string ToString() const override;

 private:
  std::vector<NamedExpr> exprs_;
  bool include_star_;
};

/// groupBy(...).agg(...). Group keys that are window() expressions produce
/// two output columns, `<name>_start` and `<name>_end`.
class AggregateNode : public LogicalPlan {
 public:
  AggregateNode(PlanPtr child, std::vector<NamedExpr> group_exprs,
                std::vector<AggSpec> aggregates);

  const std::vector<NamedExpr>& group_exprs() const { return group_exprs_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }

  std::string ToString() const override;

 private:
  std::vector<NamedExpr> group_exprs_;
  std::vector<AggSpec> aggregates_;
};

/// Equi-join. left_keys[i] pairs with right_keys[i].
class JoinNode : public LogicalPlan {
 public:
  JoinNode(PlanPtr left, PlanPtr right, JoinType join_type,
           std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys);

  JoinType join_type() const { return join_type_; }
  const std::vector<ExprPtr>& left_keys() const { return left_keys_; }
  const std::vector<ExprPtr>& right_keys() const { return right_keys_; }

  std::string ToString() const override;

 private:
  JoinType join_type_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
};

class DistinctNode : public LogicalPlan {
 public:
  explicit DistinctNode(PlanPtr child);
  std::string ToString() const override;
};

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

class SortNode : public LogicalPlan {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys);

  const std::vector<SortKey>& keys() const { return keys_; }

  std::string ToString() const override;

 private:
  std::vector<SortKey> keys_;
};

class LimitNode : public LogicalPlan {
 public:
  LimitNode(PlanPtr child, int64_t n);

  int64_t n() const { return n_; }

  std::string ToString() const override;

 private:
  int64_t n_;
};

/// withWatermark(column, delay): declares `column` as event time with a
/// lateness bound (paper §4.3.1). Watermark = max(column) - delay.
class WithWatermarkNode : public LogicalPlan {
 public:
  WithWatermarkNode(PlanPtr child, std::string column, int64_t delay_micros);

  const std::string& column() const { return column_; }
  int64_t delay_micros() const { return delay_micros_; }

  std::string ToString() const override;

 private:
  std::string column_;
  int64_t delay_micros_;
};

/// groupByKey(...).flatMapGroupsWithState(...) (paper §4.3.2).
class FlatMapGroupsWithStateNode : public LogicalPlan {
 public:
  FlatMapGroupsWithStateNode(PlanPtr child, std::vector<NamedExpr> key_exprs,
                             GroupUpdateFn update_fn, SchemaPtr output_schema,
                             GroupStateTimeout timeout,
                             bool require_single_output);

  const std::vector<NamedExpr>& key_exprs() const { return key_exprs_; }
  const GroupUpdateFn& update_fn() const { return update_fn_; }
  const SchemaPtr& output_schema() const { return output_schema_; }
  GroupStateTimeout timeout() const { return timeout_; }
  /// True for mapGroupsWithState (exactly one output row per invocation).
  bool require_single_output() const { return require_single_output_; }

  std::string ToString() const override;

 private:
  std::vector<NamedExpr> key_exprs_;
  GroupUpdateFn update_fn_;
  SchemaPtr output_schema_;
  GroupStateTimeout timeout_;
  bool require_single_output_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_LOGICAL_PLAN_H_

#include "logical/plan.h"

#include "common/logging.h"

namespace sstreaming {

const char* JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeftOuter:
      return "left_outer";
    case JoinType::kRightOuter:
      return "right_outer";
  }
  return "?";
}

bool LogicalPlan::IsStreaming() const {
  if (kind_ == Kind::kStreamScan) return true;
  for (const PlanPtr& child : children_) {
    if (child->IsStreaming()) return true;
  }
  return false;
}

namespace {
void TreeStringRec(const LogicalPlan& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.ToString();
  *out += "\n";
  for (const PlanPtr& child : node.children()) {
    TreeStringRec(*child, depth + 1, out);
  }
}
}  // namespace

std::string LogicalPlan::TreeString() const {
  std::string out;
  TreeStringRec(*this, 0, &out);
  return out;
}

ScanNode::ScanNode(SchemaPtr schema, std::vector<RecordBatchPtr> batches)
    : LogicalPlan(Kind::kScan, {}),
      data_schema_(std::move(schema)),
      batches_(std::move(batches)) {
  for (const RecordBatchPtr& b : batches_) {
    SS_CHECK(b->schema()->Equals(*data_schema_)) << "scan batch schema drift";
  }
}

std::string ScanNode::ToString() const {
  int64_t rows = 0;
  for (const RecordBatchPtr& b : batches_) rows += b->num_rows();
  return "Scan" + data_schema_->ToString() + " rows=" + std::to_string(rows);
}

StreamScanNode::StreamScanNode(SourcePtr source)
    : LogicalPlan(Kind::kStreamScan, {}), source_(std::move(source)) {
  SS_CHECK(source_ != nullptr);
}

std::string StreamScanNode::ToString() const {
  return "StreamScan[" + source_->name() + "]" +
         source_->schema()->ToString();
}

FilterNode::FilterNode(PlanPtr child, ExprPtr predicate)
    : LogicalPlan(Kind::kFilter, {std::move(child)}),
      predicate_(std::move(predicate)) {}

std::string FilterNode::ToString() const {
  return "Filter " + predicate_->ToString();
}

ProjectNode::ProjectNode(PlanPtr child, std::vector<NamedExpr> exprs,
                         bool include_star)
    : LogicalPlan(Kind::kProject, {std::move(child)}),
      exprs_(std::move(exprs)),
      include_star_(include_star) {}

std::string ProjectNode::ToString() const {
  std::string out = include_star_ ? "Project [*, " : "Project [";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i].expr->ToString();
    out += " AS " + exprs_[i].OutputName();
  }
  out += "]";
  return out;
}

AggregateNode::AggregateNode(PlanPtr child, std::vector<NamedExpr> group_exprs,
                             std::vector<AggSpec> aggregates)
    : LogicalPlan(Kind::kAggregate, {std::move(child)}),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)) {}

std::string AggregateNode::ToString() const {
  std::string out = "Aggregate keys=[";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i].expr->ToString();
  }
  out += "] aggs=[";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggregates_[i].ToString();
  }
  out += "]";
  return out;
}

JoinNode::JoinNode(PlanPtr left, PlanPtr right, JoinType join_type,
                   std::vector<ExprPtr> left_keys,
                   std::vector<ExprPtr> right_keys)
    : LogicalPlan(Kind::kJoin, {std::move(left), std::move(right)}),
      join_type_(join_type),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)) {
  SS_CHECK(left_keys_.size() == right_keys_.size());
}

std::string JoinNode::ToString() const {
  std::string out = std::string("Join ") + JoinTypeName(join_type_) + " on [";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
  }
  out += "]";
  return out;
}

DistinctNode::DistinctNode(PlanPtr child)
    : LogicalPlan(Kind::kDistinct, {std::move(child)}) {}

std::string DistinctNode::ToString() const { return "Distinct"; }

SortNode::SortNode(PlanPtr child, std::vector<SortKey> keys)
    : LogicalPlan(Kind::kSort, {std::move(child)}), keys_(std::move(keys)) {}

std::string SortNode::ToString() const {
  std::string out = "Sort [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    out += keys_[i].ascending ? " ASC" : " DESC";
  }
  out += "]";
  return out;
}

LimitNode::LimitNode(PlanPtr child, int64_t n)
    : LogicalPlan(Kind::kLimit, {std::move(child)}), n_(n) {}

std::string LimitNode::ToString() const {
  return "Limit " + std::to_string(n_);
}

WithWatermarkNode::WithWatermarkNode(PlanPtr child, std::string column,
                                     int64_t delay_micros)
    : LogicalPlan(Kind::kWithWatermark, {std::move(child)}),
      column_(std::move(column)),
      delay_micros_(delay_micros) {}

std::string WithWatermarkNode::ToString() const {
  return "WithWatermark " + column_ + " delay=" +
         std::to_string(delay_micros_) + "us";
}

FlatMapGroupsWithStateNode::FlatMapGroupsWithStateNode(
    PlanPtr child, std::vector<NamedExpr> key_exprs, GroupUpdateFn update_fn,
    SchemaPtr output_schema, GroupStateTimeout timeout,
    bool require_single_output)
    : LogicalPlan(Kind::kFlatMapGroupsWithState, {std::move(child)}),
      key_exprs_(std::move(key_exprs)),
      update_fn_(std::move(update_fn)),
      output_schema_(std::move(output_schema)),
      timeout_(timeout),
      require_single_output_(require_single_output) {}

std::string FlatMapGroupsWithStateNode::ToString() const {
  std::string out = require_single_output_ ? "MapGroupsWithState"
                                           : "FlatMapGroupsWithState";
  out += " keys=[";
  for (size_t i = 0; i < key_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += key_exprs_[i].expr->ToString();
  }
  out += "]";
  return out;
}

}  // namespace sstreaming

#ifndef SSTREAMING_BASELINES_FLINKSIM_H_
#define SSTREAMING_BASELINES_FLINKSIM_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "expr/expression.h"
#include "types/row.h"
#include "types/schema.h"

namespace sstreaming {
namespace flinksim {

/// A record-at-a-time dataflow engine in the style of Flink's DataStream
/// API (paper §10: "various functional operators ... essentially a physical
/// execution plan"). Operators form a chain; each record flows through
/// virtual Process() calls with boxed row values. This reproduces the
/// architectural property the paper credits for the 2x throughput gap
/// against Structured Streaming: per-record interpretation instead of
/// vectorized batch execution — NOT an artificially slowed implementation.
class Operator {
 public:
  virtual ~Operator() = default;

  void SetNext(Operator* next) { next_ = next; }

  /// Consumes one record.
  virtual void Process(Row row) = 0;

  /// End-of-stream (propagates down the chain).
  virtual void Finish() {
    if (next_ != nullptr) next_->Finish();
  }

 protected:
  void Emit(Row row) {
    if (next_ != nullptr) next_->Process(std::move(row));
  }

  Operator* next_ = nullptr;
};

/// Keeps rows where the (resolved) predicate evaluates to true.
class FilterOperator : public Operator {
 public:
  explicit FilterOperator(ExprPtr predicate)
      : predicate_(std::move(predicate)) {}

  void Process(Row row) override;

 private:
  ExprPtr predicate_;
};

/// Emits one row of evaluated (resolved) expressions per input row.
class MapOperator : public Operator {
 public:
  explicit MapOperator(std::vector<ExprPtr> exprs)
      : exprs_(std::move(exprs)) {}

  void Process(Row row) override;

 private:
  std::vector<ExprPtr> exprs_;
};

/// Hash join against a broadcast static table: appends the matching build
/// row's selected columns; drops probe rows with no match (inner join).
class StaticHashJoinOperator : public Operator {
 public:
  StaticHashJoinOperator(const std::vector<Row>& build_rows,
                         int build_key_index,
                         std::vector<int> build_output_indices,
                         int probe_key_index);

  void Process(Row row) override;

 private:
  std::unordered_map<int64_t, const Row*> table_;  // int64-keyed (benchmark)
  std::vector<Row> build_rows_;
  std::vector<int> build_output_indices_;
  int probe_key_index_;
};

/// Counts records per (key column, tumbling event-time window). Emits
/// nothing downstream; results are read via counts() after Finish() (the
/// benchmark's final operator).
class WindowCountOperator : public Operator {
 public:
  WindowCountOperator(int key_index, int time_index, int64_t window_micros)
      : key_index_(key_index),
        time_index_(time_index),
        window_micros_(window_micros) {}

  void Process(Row row) override;

  /// (key, window_start_micros) -> count.
  const std::unordered_map<Row, int64_t, RowHash, RowEq>& counts() const {
    return counts_;
  }

 private:
  int key_index_;
  int time_index_;
  int64_t window_micros_;
  std::unordered_map<Row, int64_t, RowHash, RowEq> counts_;
};

/// The keyBy() exchange boundary: real Flink serializes every record that
/// crosses between the (chained) map operators and the keyed window
/// operator in another task slot, then deserializes it on the other side.
/// This operator performs that real serialization work in-process.
class KeyByExchangeOperator : public Operator {
 public:
  KeyByExchangeOperator() = default;

  void Process(Row row) override;
};

/// Collects rows into a vector (test sink).
class CollectOperator : public Operator {
 public:
  explicit CollectOperator(std::vector<Row>* out) : out_(out) {}

  void Process(Row row) override { out_->push_back(std::move(row)); }

 private:
  std::vector<Row>* out_;
};

/// An operator chain owning its operators; records are pushed into the
/// first operator (one Pipeline per partition, like a Flink subtask).
class Pipeline {
 public:
  /// Chains the operators in order.
  explicit Pipeline(std::vector<std::unique_ptr<Operator>> ops);

  void Process(Row row) { first_->Process(std::move(row)); }
  void ProcessAll(const std::vector<Row>& rows) {
    for (const Row& r : rows) first_->Process(r);
  }
  void Finish() { first_->Finish(); }

  Operator* last() { return ops_.back().get(); }

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
  Operator* first_;
};

/// Builds the Yahoo benchmark pipeline for one partition:
/// filter(view) -> project(ad_id, event_time) -> join(campaigns) ->
/// window count by campaign. The returned pipeline's last operator is a
/// WindowCountOperator.
/// Expressions are resolved against YahooEventSchema internally.
Result<std::unique_ptr<Pipeline>> BuildYahooPipeline(
    const std::vector<Row>& campaigns);

/// Merges per-partition window counts into (campaign, window_start_sec).
void MergeYahooCounts(const WindowCountOperator& op,
                      std::map<std::pair<int64_t, int64_t>, int64_t>* out);

}  // namespace flinksim
}  // namespace sstreaming

#endif  // SSTREAMING_BASELINES_FLINKSIM_H_

#include "baselines/flinksim.h"

#include "common/logging.h"
#include "workloads/yahoo.h"

namespace sstreaming {
namespace flinksim {

void FilterOperator::Process(Row row) {
  auto v = predicate_->EvalRow(row);
  if (!v.ok()) return;  // record-level failure drops the record
  if (!v->is_null() && v->bool_value()) Emit(std::move(row));
}

void MapOperator::Process(Row row) {
  Row out;
  out.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    auto v = e->EvalRow(row);
    if (!v.ok()) return;
    out.push_back(std::move(*v));
  }
  Emit(std::move(out));
}

StaticHashJoinOperator::StaticHashJoinOperator(
    const std::vector<Row>& build_rows, int build_key_index,
    std::vector<int> build_output_indices, int probe_key_index)
    : build_rows_(build_rows),
      build_output_indices_(std::move(build_output_indices)),
      probe_key_index_(probe_key_index) {
  for (const Row& row : build_rows_) {
    table_[row[static_cast<size_t>(build_key_index)].int64_value()] = &row;
  }
}

void StaticHashJoinOperator::Process(Row row) {
  const Value& key = row[static_cast<size_t>(probe_key_index_)];
  if (key.is_null()) return;
  auto it = table_.find(key.int64_value());
  if (it == table_.end()) return;  // inner join
  for (int idx : build_output_indices_) {
    row.push_back((*it->second)[static_cast<size_t>(idx)]);
  }
  Emit(std::move(row));
}

void WindowCountOperator::Process(Row row) {
  const Value& time = row[static_cast<size_t>(time_index_)];
  if (time.is_null()) return;
  int64_t window_start =
      time.int64_value() / window_micros_ * window_micros_;
  Row key = {row[static_cast<size_t>(key_index_)],
             Value::Timestamp(window_start)};
  ++counts_[std::move(key)];
}

void KeyByExchangeOperator::Process(Row row) {
  // Serialize across the operator boundary and deserialize on the "other
  // side" (same process here; the bytes work is what real Flink pays).
  std::string wire;
  EncodeRow(row, &wire);
  auto decoded = DecodeRow(wire);
  if (!decoded.ok()) return;
  Emit(std::move(*decoded));
}

Pipeline::Pipeline(std::vector<std::unique_ptr<Operator>> ops)
    : ops_(std::move(ops)) {
  SS_CHECK(!ops_.empty());
  for (size_t i = 0; i + 1 < ops_.size(); ++i) {
    ops_[i]->SetNext(ops_[i + 1].get());
  }
  first_ = ops_.front().get();
}

Result<std::unique_ptr<Pipeline>> BuildYahooPipeline(
    const std::vector<Row>& campaigns) {
  constexpr int64_t kSec = 1000000;
  SchemaPtr event_schema = YahooEventSchema();
  SS_ASSIGN_OR_RETURN(ExprPtr is_view,
                      Eq(Col("event_type"), Lit("view"))
                          ->Resolve(*event_schema));
  SS_ASSIGN_OR_RETURN(ExprPtr ad_id, Col("ad_id")->Resolve(*event_schema));
  SS_ASSIGN_OR_RETURN(ExprPtr event_time,
                      Col("event_time")->Resolve(*event_schema));

  std::vector<std::unique_ptr<Operator>> ops;
  ops.push_back(std::make_unique<FilterOperator>(is_view));
  ops.push_back(std::make_unique<MapOperator>(
      std::vector<ExprPtr>{ad_id, event_time}));
  // After the map: (ad_id, event_time); join appends campaign_id.
  ops.push_back(std::make_unique<StaticHashJoinOperator>(
      campaigns, /*build_key_index=*/0,
      /*build_output_indices=*/std::vector<int>{1}, /*probe_key_index=*/0));
  // After the join: (ad_id, event_time, campaign_id). The windowed count
  // is a keyed operator: records cross a keyBy() exchange to reach it.
  ops.push_back(std::make_unique<KeyByExchangeOperator>());
  ops.push_back(std::make_unique<WindowCountOperator>(
      /*key_index=*/2, /*time_index=*/1, /*window_micros=*/10 * kSec));
  return std::make_unique<Pipeline>(std::move(ops));
}

void MergeYahooCounts(const WindowCountOperator& op,
                      std::map<std::pair<int64_t, int64_t>, int64_t>* out) {
  for (const auto& [key, count] : op.counts()) {
    (*out)[{key[0].int64_value(), key[1].int64_value() / 1000000}] += count;
  }
}

}  // namespace flinksim
}  // namespace sstreaming

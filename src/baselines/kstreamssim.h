#ifndef SSTREAMING_BASELINES_KSTREAMSSIM_H_
#define SSTREAMING_BASELINES_KSTREAMSSIM_H_

#include <map>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "runtime/scheduler.h"
#include "types/row.h"

namespace sstreaming {
namespace kstreamssim {

/// A Kafka-Streams-style execution of the Yahoo benchmark: "a simple
/// message-passing model through the Kafka message bus" (paper §9.1). The
/// topology has two stages connected by a repartition topic on the bus:
///
///   stage 1: events topic -> filter(view) -> project -> join KTable
///            -> serialize -> produce to repartition topic (keyed by
///               campaign hash), ONE RECORD AT A TIME
///   stage 2: repartition topic -> deserialize -> windowed count
///
/// Every intermediate record pays serialization, a broker append under the
/// partition lock, a broker read, and deserialization — the through-the-bus
/// cost that produces the paper's ~90x gap. Nothing is artificially slowed:
/// these are the real costs of the architecture.
/// Modeled broker costs, charged as virtual time on simulated clusters:
/// an unbatched per-record produce and per-record consumer poll through a
/// real Kafka broker each cost on the order of 0.1 ms (network round trip +
/// broker request handling); our in-process bus append costs ~0.1 us, so
/// the difference must be charged explicitly for the comparison against
/// the paper's numbers to be meaningful.
struct BrokerCosts {
  BrokerCosts() {}
  int64_t produce_nanos = 20000;  // per intermediate record produced
  int64_t consume_nanos = 30000;  // per intermediate record consumed
};

struct YahooRunResult {
  std::map<std::pair<int64_t, int64_t>, int64_t> counts;
  int64_t intermediate_records = 0;
};

/// Runs the benchmark over events already in `events_topic` ([0, end) of
/// every partition), scheduling per-partition stage tasks on `scheduler`.
/// `repartition_topic` is created on the bus.
Result<YahooRunResult> RunYahoo(MessageBus* bus,
                                const std::string& events_topic,
                                const std::string& repartition_topic,
                                const std::vector<Row>& campaigns,
                                TaskScheduler* scheduler,
                                BrokerCosts broker = BrokerCosts());

}  // namespace kstreamssim
}  // namespace sstreaming

#endif  // SSTREAMING_BASELINES_KSTREAMSSIM_H_

#include "baselines/kstreamssim.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"

namespace sstreaming {
namespace kstreamssim {

namespace {
constexpr int64_t kSec = 1000000;
constexpr int64_t kWindowMicros = 10 * kSec;
}  // namespace

Result<YahooRunResult> RunYahoo(MessageBus* bus,
                                const std::string& events_topic,
                                const std::string& repartition_topic,
                                const std::vector<Row>& campaigns,
                                TaskScheduler* scheduler,
                                BrokerCosts broker) {
  SS_ASSIGN_OR_RETURN(int num_partitions, bus->NumPartitions(events_topic));
  if (!bus->HasTopic(repartition_topic)) {
    SS_RETURN_IF_ERROR(bus->CreateTopic(repartition_topic, num_partitions));
  }

  // The KTable: ad_id -> campaign_id, broadcast to every stage-1 task
  // (the paper's modified setup holds the campaign table in memory).
  std::unordered_map<int64_t, int64_t> ktable;
  for (const Row& c : campaigns) {
    ktable[c[0].int64_value()] = c[1].int64_value();
  }

  SS_ASSIGN_OR_RETURN(std::vector<int64_t> ends,
                      bus->EndOffsets(events_topic));

  // --- Stage 1: per input partition, produce to the repartition topic. ---
  std::vector<std::function<Status()>> stage1;
  std::atomic<int64_t> intermediate{0};
  for (int p = 0; p < num_partitions; ++p) {
    stage1.push_back([=, &ktable, &intermediate]() -> Status {
      SS_ASSIGN_OR_RETURN(
          std::vector<Row> records,
          bus->Read(events_topic, p, 0, ends[static_cast<size_t>(p)]));
      for (const Row& event : records) {
        // filter: views only
        if (event[4].string_value() != "view") continue;
        // project + join the KTable
        int64_t ad_id = event[2].int64_value();
        auto it = ktable.find(ad_id);
        if (it == ktable.end()) continue;
        int64_t campaign_id = it->second;
        int64_t event_time = event[5].int64_value();
        // Serialize the intermediate record — through Kafka it is bytes.
        Row intermediate_row = {Value::Int64(campaign_id),
                                Value::Timestamp(event_time)};
        std::string payload;
        EncodeRow(intermediate_row, &payload);
        int out_p = static_cast<int>(
            Value::Int64(campaign_id).Hash() %
            static_cast<uint64_t>(num_partitions));
        // One broker append per record (partition lock inside).
        SS_RETURN_IF_ERROR(
            bus->Append(repartition_topic, out_p,
                        Row{Value::Str(std::move(payload))})
                .status());
        scheduler->ChargeVirtualNanos(broker.produce_nanos);
        intermediate.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(scheduler->RunStage("kstreams/stage1",
                                         std::move(stage1)));

  // --- Stage 2: per repartition partition, windowed counts. ---
  std::vector<std::map<std::pair<int64_t, int64_t>, int64_t>> partials(
      static_cast<size_t>(num_partitions));
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> mid_ends,
                      bus->EndOffsets(repartition_topic));
  std::vector<std::function<Status()>> stage2;
  for (int p = 0; p < num_partitions; ++p) {
    stage2.push_back([=, &partials]() -> Status {
      auto& local = partials[static_cast<size_t>(p)];
      // Consume one record at a time, as a Kafka consumer poll loop would.
      for (int64_t off = 0; off < mid_ends[static_cast<size_t>(p)]; ++off) {
        SS_ASSIGN_OR_RETURN(std::vector<Row> msgs,
                            bus->Read(repartition_topic, p, off, off + 1));
        if (msgs.empty()) break;
        scheduler->ChargeVirtualNanos(broker.consume_nanos);
        SS_ASSIGN_OR_RETURN(Row record,
                            DecodeRow(msgs[0][0].string_value()));
        int64_t campaign_id = record[0].int64_value();
        int64_t window_start_sec =
            record[1].int64_value() / kWindowMicros * 10;
        ++local[{campaign_id, window_start_sec}];
      }
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(scheduler->RunStage("kstreams/stage2",
                                         std::move(stage2)));

  YahooRunResult result;
  result.intermediate_records = intermediate.load();
  for (const auto& partial : partials) {
    for (const auto& [key, count] : partial) {
      result.counts[key] += count;
    }
  }
  return result;
}

}  // namespace kstreamssim
}  // namespace sstreaming

#ifndef SSTREAMING_OPTIMIZER_OPTIMIZER_H_
#define SSTREAMING_OPTIMIZER_OPTIMIZER_H_

#include "logical/plan.h"

namespace sstreaming {

/// Rule-based logical optimization (paper §5.3): predicate pushdown, filter
/// merging, constant folding, projection collapsing. Rules operate on the
/// *unresolved* plan (column references by name), so the result must be
/// re-analyzed before execution; this mirrors how the engine applies the
/// same optimizations to both batch and streaming plans.
class Optimizer {
 public:
  struct Stats {
    int predicates_pushed = 0;
    int filters_merged = 0;
    int constants_folded = 0;
    int projects_collapsed = 0;
    int trivial_filters_removed = 0;
    int scans_pruned = 0;
  };

  /// Applies all rules to a fixed point (bounded).
  static PlanPtr Optimize(const PlanPtr& plan, Stats* stats = nullptr);
};

/// Folds literal-only subtrees of an expression to literals (exposed for
/// tests). UDFs and column references are never folded.
ExprPtr FoldConstants(const ExprPtr& expr, int* folded);

}  // namespace sstreaming

#endif  // SSTREAMING_OPTIMIZER_OPTIMIZER_H_

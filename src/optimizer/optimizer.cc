#include "optimizer/optimizer.h"

#include <map>
#include <optional>
#include <set>

#include "common/logging.h"
#include "types/schema.h"

namespace sstreaming {

namespace {

// ---------------------------------------------------------------------------
// Expression utilities
// ---------------------------------------------------------------------------

bool HasColumnRefs(const ExprPtr& e) {
  std::vector<std::string> refs;
  e->CollectColumnRefs(&refs);
  return !refs.empty();
}

bool ContainsUdf(const ExprPtr& e) {
  switch (e->kind()) {
    case Expr::Kind::kUdf:
      return true;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*e);
      return ContainsUdf(b.left()) || ContainsUdf(b.right());
    }
    case Expr::Kind::kUnary:
      return ContainsUdf(static_cast<const UnaryExpr&>(*e).child());
    case Expr::Kind::kCast:
      return ContainsUdf(static_cast<const CastExpr&>(*e).child());
    case Expr::Kind::kWindow:
      return ContainsUdf(static_cast<const WindowExpr&>(*e).time());
    default:
      return false;
  }
}

// Rewrites column references through a name->expression substitution map.
// References not in the map are kept as-is.
ExprPtr Substitute(const ExprPtr& e,
                   const std::map<std::string, ExprPtr>& subst) {
  switch (e->kind()) {
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(*e);
      auto it = subst.find(ref.name());
      return it == subst.end() ? e : it->second;
    }
    case Expr::Kind::kLiteral:
      return e;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*e);
      return std::make_shared<BinaryExpr>(b.op(), Substitute(b.left(), subst),
                                          Substitute(b.right(), subst));
    }
    case Expr::Kind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(*e);
      return std::make_shared<UnaryExpr>(u.op(),
                                         Substitute(u.child(), subst));
    }
    case Expr::Kind::kCast: {
      const auto& c = static_cast<const CastExpr&>(*e);
      return std::make_shared<CastExpr>(Substitute(c.child(), subst),
                                        c.target());
    }
    case Expr::Kind::kWindow: {
      const auto& w = static_cast<const WindowExpr&>(*e);
      return std::make_shared<WindowExpr>(Substitute(w.time(), subst),
                                          w.size_micros(), w.slide_micros());
    }
    case Expr::Kind::kUdf:
      // UDF argument substitution is possible but we conservatively leave
      // UDFs in place (they block pushdown anyway).
      return e;
  }
  return e;
}

// ---------------------------------------------------------------------------
// Plan utilities
// ---------------------------------------------------------------------------

// Output column names when derivable without analysis; nullopt = unknown.
std::optional<std::vector<std::string>> OutputColumns(const PlanPtr& plan) {
  switch (plan->kind()) {
    case LogicalPlan::Kind::kScan: {
      const auto& s = static_cast<const ScanNode&>(*plan);
      std::vector<std::string> out;
      for (const Field& f : s.data_schema()->fields()) out.push_back(f.name);
      return out;
    }
    case LogicalPlan::Kind::kStreamScan: {
      const auto& s = static_cast<const StreamScanNode&>(*plan);
      std::vector<std::string> out;
      for (const Field& f : s.source()->schema()->fields()) {
        out.push_back(f.name);
      }
      return out;
    }
    case LogicalPlan::Kind::kFilter:
    case LogicalPlan::Kind::kDistinct:
    case LogicalPlan::Kind::kSort:
    case LogicalPlan::Kind::kLimit:
    case LogicalPlan::Kind::kWithWatermark:
      return OutputColumns(plan->children()[0]);
    case LogicalPlan::Kind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(*plan);
      if (p.include_star()) return std::nullopt;  // needs analysis to expand
      std::vector<std::string> out;
      for (const NamedExpr& e : p.exprs()) out.push_back(e.OutputName());
      return out;
    }
    default:
      return std::nullopt;
  }
}

bool AllRefsIn(const ExprPtr& pred, const std::vector<std::string>& cols) {
  std::vector<std::string> refs;
  pred->CollectColumnRefs(&refs);
  std::set<std::string> available(cols.begin(), cols.end());
  for (const std::string& r : refs) {
    if (!available.count(r)) return false;
  }
  return true;
}

bool AnyRefIn(const ExprPtr& pred, const std::vector<std::string>& cols) {
  std::vector<std::string> refs;
  pred->CollectColumnRefs(&refs);
  std::set<std::string> available(cols.begin(), cols.end());
  for (const std::string& r : refs) {
    if (available.count(r)) return true;
  }
  return false;
}

class RuleRunner {
 public:
  explicit RuleRunner(Optimizer::Stats* stats) : stats_(stats) {}

  PlanPtr Rewrite(const PlanPtr& plan) {
    // Rewrite children first.
    PlanPtr node = RebuildWithChildren(plan);
    // Then apply node-local rules until none fires.
    bool changed = true;
    while (changed) {
      changed = false;
      PlanPtr next = ApplyRules(node);
      if (next != node) {
        node = next;
        changed = true;
      }
    }
    return node;
  }

 private:
  PlanPtr RebuildWithChildren(const PlanPtr& plan) {
    std::vector<PlanPtr> new_children;
    bool any_changed = false;
    for (const PlanPtr& c : plan->children()) {
      PlanPtr nc = Rewrite(c);
      if (nc != c) any_changed = true;
      new_children.push_back(std::move(nc));
    }
    if (!any_changed) return plan;
    return CloneWith(plan, std::move(new_children));
  }

  static PlanPtr CloneWith(const PlanPtr& plan,
                           std::vector<PlanPtr> children) {
    switch (plan->kind()) {
      case LogicalPlan::Kind::kScan:
      case LogicalPlan::Kind::kStreamScan:
        return plan;
      case LogicalPlan::Kind::kFilter: {
        const auto& n = static_cast<const FilterNode&>(*plan);
        return std::make_shared<FilterNode>(children[0], n.predicate());
      }
      case LogicalPlan::Kind::kProject: {
        const auto& n = static_cast<const ProjectNode&>(*plan);
        return std::make_shared<ProjectNode>(children[0], n.exprs(),
                                             n.include_star());
      }
      case LogicalPlan::Kind::kAggregate: {
        const auto& n = static_cast<const AggregateNode&>(*plan);
        return std::make_shared<AggregateNode>(children[0], n.group_exprs(),
                                               n.aggregates());
      }
      case LogicalPlan::Kind::kJoin: {
        const auto& n = static_cast<const JoinNode&>(*plan);
        return std::make_shared<JoinNode>(children[0], children[1],
                                          n.join_type(), n.left_keys(),
                                          n.right_keys());
      }
      case LogicalPlan::Kind::kDistinct:
        return std::make_shared<DistinctNode>(children[0]);
      case LogicalPlan::Kind::kSort: {
        const auto& n = static_cast<const SortNode&>(*plan);
        return std::make_shared<SortNode>(children[0], n.keys());
      }
      case LogicalPlan::Kind::kLimit: {
        const auto& n = static_cast<const LimitNode&>(*plan);
        return std::make_shared<LimitNode>(children[0], n.n());
      }
      case LogicalPlan::Kind::kWithWatermark: {
        const auto& n = static_cast<const WithWatermarkNode&>(*plan);
        return std::make_shared<WithWatermarkNode>(children[0], n.column(),
                                                   n.delay_micros());
      }
      case LogicalPlan::Kind::kFlatMapGroupsWithState: {
        const auto& n =
            static_cast<const FlatMapGroupsWithStateNode&>(*plan);
        return std::make_shared<FlatMapGroupsWithStateNode>(
            children[0], n.key_exprs(), n.update_fn(), n.output_schema(),
            n.timeout(), n.require_single_output());
      }
    }
    return plan;
  }

  PlanPtr ApplyRules(const PlanPtr& plan) {
    if (plan->kind() == LogicalPlan::Kind::kFilter) {
      return ApplyFilterRules(plan);
    }
    if (plan->kind() == LogicalPlan::Kind::kProject) {
      return ApplyProjectRules(plan);
    }
    return plan;
  }

  PlanPtr ApplyFilterRules(const PlanPtr& plan) {
    const auto& filter = static_cast<const FilterNode&>(*plan);
    // Rule: constant folding in the predicate.
    int folded = 0;
    ExprPtr pred = FoldConstants(filter.predicate(), &folded);
    if (stats_) stats_->constants_folded += folded;
    // Rule: drop `WHERE true`.
    if (pred->kind() == Expr::Kind::kLiteral) {
      const auto& lit = static_cast<const LiteralExpr&>(*pred);
      if (lit.value().type() == TypeId::kBool && lit.value().bool_value()) {
        if (stats_) ++stats_->trivial_filters_removed;
        return filter.children()[0];
      }
    }
    const PlanPtr& child = filter.children()[0];
    switch (child->kind()) {
      case LogicalPlan::Kind::kFilter: {
        // Rule: merge adjacent filters.
        const auto& inner = static_cast<const FilterNode&>(*child);
        if (stats_) ++stats_->filters_merged;
        return std::make_shared<FilterNode>(
            inner.children()[0], And(inner.predicate(), pred));
      }
      case LogicalPlan::Kind::kProject: {
        // Rule: push the filter below a projection when every referenced
        // column is a pass-through (possibly renamed) or a UDF-free
        // expression we can substitute.
        const auto& proj = static_cast<const ProjectNode&>(*child);
        if (proj.include_star()) break;
        std::vector<std::string> refs;
        pred->CollectColumnRefs(&refs);
        std::map<std::string, ExprPtr> subst;
        bool pushable = true;
        for (const std::string& r : refs) {
          const NamedExpr* item = nullptr;
          for (const NamedExpr& e : proj.exprs()) {
            if (e.OutputName() == r) item = &e;
          }
          if (item == nullptr || ContainsUdf(item->expr)) {
            pushable = false;
            break;
          }
          subst[r] = item->expr;
        }
        if (!pushable) break;
        if (stats_) ++stats_->predicates_pushed;
        ExprPtr pushed = Substitute(pred, subst);
        auto new_filter = std::make_shared<FilterNode>(proj.children()[0],
                                                       std::move(pushed));
        return std::make_shared<ProjectNode>(PlanPtr(new_filter),
                                             proj.exprs(),
                                             proj.include_star());
      }
      case LogicalPlan::Kind::kWithWatermark: {
        // Rule: filters commute with watermark declarations.
        const auto& wm = static_cast<const WithWatermarkNode&>(*child);
        if (stats_) ++stats_->predicates_pushed;
        auto new_filter =
            std::make_shared<FilterNode>(wm.children()[0], pred);
        return std::make_shared<WithWatermarkNode>(PlanPtr(new_filter),
                                                   wm.column(),
                                                   wm.delay_micros());
      }
      case LogicalPlan::Kind::kJoin: {
        // Rule: push a filter to the join side that exclusively owns its
        // columns (unambiguous by name).
        const auto& join = static_cast<const JoinNode&>(*child);
        auto lcols = OutputColumns(join.children()[0]);
        auto rcols = OutputColumns(join.children()[1]);
        if (!lcols || !rcols) break;
        bool in_left = AnyRefIn(pred, *lcols);
        bool in_right = AnyRefIn(pred, *rcols);
        if (in_left && !in_right && AllRefsIn(pred, *lcols)) {
          if (stats_) ++stats_->predicates_pushed;
          auto pushed =
              std::make_shared<FilterNode>(join.children()[0], pred);
          return std::make_shared<JoinNode>(PlanPtr(pushed),
                                            join.children()[1],
                                            join.join_type(),
                                            join.left_keys(),
                                            join.right_keys());
        }
        if (in_right && !in_left && AllRefsIn(pred, *rcols) &&
            join.join_type() == JoinType::kInner) {
          if (stats_) ++stats_->predicates_pushed;
          auto pushed =
              std::make_shared<FilterNode>(join.children()[1], pred);
          return std::make_shared<JoinNode>(join.children()[0],
                                            PlanPtr(pushed),
                                            join.join_type(),
                                            join.left_keys(),
                                            join.right_keys());
        }
        break;
      }
      default:
        break;
    }
    if (pred != filter.predicate()) {
      return std::make_shared<FilterNode>(child, pred);
    }
    return plan;
  }

  PlanPtr ApplyProjectRules(const PlanPtr& plan) {
    const auto& proj = static_cast<const ProjectNode&>(*plan);
    // Rule: fold constants in projection items.
    int folded = 0;
    std::vector<NamedExpr> items;
    bool item_changed = false;
    for (const NamedExpr& e : proj.exprs()) {
      ExprPtr ne = FoldConstants(e.expr, &folded);
      if (ne != e.expr) item_changed = true;
      items.push_back(NamedExpr{std::move(ne), e.OutputName()});
    }
    if (stats_) stats_->constants_folded += folded;
    // Rule: collapse Project(Project(x)) by substituting inner expressions
    // into the outer items (when UDF-free).
    const PlanPtr& child = proj.children()[0];
    if (!proj.include_star() && child->kind() == LogicalPlan::Kind::kProject) {
      const auto& inner = static_cast<const ProjectNode&>(*child);
      if (!inner.include_star()) {
        std::map<std::string, ExprPtr> subst;
        bool collapsible = true;
        for (const NamedExpr& e : inner.exprs()) {
          if (ContainsUdf(e.expr)) {
            collapsible = false;
            break;
          }
          subst[e.OutputName()] = e.expr;
        }
        if (collapsible) {
          std::vector<NamedExpr> merged;
          for (const NamedExpr& e : items) {
            merged.push_back(
                NamedExpr{Substitute(e.expr, subst), e.OutputName()});
          }
          if (stats_) ++stats_->projects_collapsed;
          return std::make_shared<ProjectNode>(inner.children()[0],
                                               std::move(merged));
        }
      }
    }
    if (item_changed) {
      return std::make_shared<ProjectNode>(child, std::move(items),
                                           proj.include_star());
    }
    return plan;
  }

  Optimizer::Stats* stats_;
};

}  // namespace

ExprPtr FoldConstants(const ExprPtr& expr, int* folded) {
  // Fold children first.
  ExprPtr e = expr;
  switch (expr->kind()) {
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*expr);
      ExprPtr l = FoldConstants(b.left(), folded);
      ExprPtr r = FoldConstants(b.right(), folded);
      if (l != b.left() || r != b.right()) {
        e = std::make_shared<BinaryExpr>(b.op(), std::move(l), std::move(r));
      }
      break;
    }
    case Expr::Kind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(*expr);
      ExprPtr c = FoldConstants(u.child(), folded);
      if (c != u.child()) {
        e = std::make_shared<UnaryExpr>(u.op(), std::move(c));
      }
      break;
    }
    case Expr::Kind::kCast: {
      const auto& cast = static_cast<const CastExpr&>(*expr);
      ExprPtr c = FoldConstants(cast.child(), folded);
      if (c != cast.child()) {
        e = std::make_shared<CastExpr>(std::move(c), cast.target());
      }
      break;
    }
    default:
      break;
  }
  if (e->kind() == Expr::Kind::kLiteral ||
      e->kind() == Expr::Kind::kColumnRef) {
    return e;
  }
  if (HasColumnRefs(e) || ContainsUdf(e)) return e;
  // Literal-only subtree: evaluate it once against an empty row.
  auto resolved = e->Resolve(Schema(std::vector<Field>{}));
  if (!resolved.ok()) return e;
  auto value = (*resolved)->EvalRow({});
  if (!value.ok()) return e;
  if (folded) ++*folded;
  return Lit(*value);
}


namespace {

// ---------------------------------------------------------------------------
// Required-column pruning (projection pushdown toward the scans, paper
// Â§5.3). `required` is the set of column names the parent consumes;
// nullopt means "all". When a scan provides more columns than required, a
// pure projection is inserted directly above it, which the incrementalizer
// later fuses into the source read.
// ---------------------------------------------------------------------------

using Required = std::optional<std::set<std::string>>;

void AddRefs(const ExprPtr& e, std::set<std::string>* out) {
  std::vector<std::string> refs;
  e->CollectColumnRefs(&refs);
  out->insert(refs.begin(), refs.end());
}

PlanPtr PruneScanColumns(const PlanPtr& plan, const Required& required,
                         int* pruned) {
  switch (plan->kind()) {
    case LogicalPlan::Kind::kScan:
    case LogicalPlan::Kind::kStreamScan: {
      if (!required.has_value()) return plan;
      auto cols = OutputColumns(plan);
      if (!cols.has_value()) return plan;
      std::vector<NamedExpr> keep;
      for (const std::string& name : *cols) {
        if (required->count(name)) {
          keep.push_back(NamedExpr{Col(name), name});
        }
      }
      if (keep.empty()) {
        // Keep one column so the row count survives (e.g. bare count(*)).
        keep.push_back(NamedExpr{Col((*cols)[0]), (*cols)[0]});
      }
      if (keep.size() == cols->size()) return plan;
      if (pruned) ++*pruned;
      return std::make_shared<ProjectNode>(plan, std::move(keep));
    }
    case LogicalPlan::Kind::kFilter: {
      const auto& node = static_cast<const FilterNode&>(*plan);
      Required child_req = required;
      if (child_req.has_value()) AddRefs(node.predicate(), &*child_req);
      PlanPtr child = PruneScanColumns(node.children()[0], child_req, pruned);
      if (child == node.children()[0]) return plan;
      return std::make_shared<FilterNode>(child, node.predicate());
    }
    case LogicalPlan::Kind::kProject: {
      const auto& node = static_cast<const ProjectNode&>(*plan);
      if (node.include_star()) {
        PlanPtr child =
            PruneScanColumns(node.children()[0], std::nullopt, pruned);
        if (child == node.children()[0]) return plan;
        return std::make_shared<ProjectNode>(child, node.exprs(), true);
      }
      std::set<std::string> child_req;
      for (const NamedExpr& e : node.exprs()) AddRefs(e.expr, &child_req);
      PlanPtr child = PruneScanColumns(node.children()[0],
                                       Required(std::move(child_req)),
                                       pruned);
      if (child == node.children()[0]) return plan;
      return std::make_shared<ProjectNode>(child, node.exprs());
    }
    case LogicalPlan::Kind::kWithWatermark: {
      const auto& node = static_cast<const WithWatermarkNode&>(*plan);
      Required child_req = required;
      if (child_req.has_value()) child_req->insert(node.column());
      PlanPtr child = PruneScanColumns(node.children()[0], child_req, pruned);
      if (child == node.children()[0]) return plan;
      return std::make_shared<WithWatermarkNode>(child, node.column(),
                                                 node.delay_micros());
    }
    case LogicalPlan::Kind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(*plan);
      std::set<std::string> child_req;
      for (const NamedExpr& g : node.group_exprs()) {
        AddRefs(g.expr, &child_req);
      }
      for (const AggSpec& a : node.aggregates()) {
        if (a.arg != nullptr) AddRefs(a.arg, &child_req);
      }
      PlanPtr child = PruneScanColumns(node.children()[0],
                                       Required(std::move(child_req)),
                                       pruned);
      if (child == node.children()[0]) return plan;
      return std::make_shared<AggregateNode>(child, node.group_exprs(),
                                             node.aggregates());
    }
    case LogicalPlan::Kind::kJoin: {
      const auto& node = static_cast<const JoinNode&>(*plan);
      auto lcols = OutputColumns(node.children()[0]);
      auto rcols = OutputColumns(node.children()[1]);
      Required lreq;
      Required rreq;
      if (required.has_value() && lcols.has_value() && rcols.has_value()) {
        std::set<std::string> l(lcols->begin(), lcols->end());
        std::set<std::string> r(rcols->begin(), rcols->end());
        std::set<std::string> lwant;
        std::set<std::string> rwant;
        for (const std::string& name : *required) {
          if (l.count(name)) lwant.insert(name);
          if (r.count(name)) rwant.insert(name);
        }
        for (const ExprPtr& k : node.left_keys()) AddRefs(k, &lwant);
        for (const ExprPtr& k : node.right_keys()) AddRefs(k, &rwant);
        lreq = Required(std::move(lwant));
        rreq = Required(std::move(rwant));
      }
      PlanPtr left = PruneScanColumns(node.children()[0], lreq, pruned);
      PlanPtr right = PruneScanColumns(node.children()[1], rreq, pruned);
      if (left == node.children()[0] && right == node.children()[1]) {
        return plan;
      }
      return std::make_shared<JoinNode>(left, right, node.join_type(),
                                        node.left_keys(), node.right_keys());
    }
    case LogicalPlan::Kind::kSort: {
      const auto& node = static_cast<const SortNode&>(*plan);
      Required child_req = required;
      if (child_req.has_value()) {
        for (const SortKey& k : node.keys()) AddRefs(k.expr, &*child_req);
      }
      PlanPtr child = PruneScanColumns(node.children()[0], child_req, pruned);
      if (child == node.children()[0]) return plan;
      return std::make_shared<SortNode>(child, node.keys());
    }
    case LogicalPlan::Kind::kLimit: {
      const auto& node = static_cast<const LimitNode&>(*plan);
      PlanPtr child = PruneScanColumns(node.children()[0], required, pruned);
      if (child == node.children()[0]) return plan;
      return std::make_shared<LimitNode>(child, node.n());
    }
    case LogicalPlan::Kind::kDistinct:
    case LogicalPlan::Kind::kFlatMapGroupsWithState: {
      // Distinct compares whole rows; stateful update functions receive the
      // full child row - neither may lose columns.
      PlanPtr child =
          PruneScanColumns(plan->children()[0], std::nullopt, pruned);
      if (child == plan->children()[0]) return plan;
      if (plan->kind() == LogicalPlan::Kind::kDistinct) {
        return std::make_shared<DistinctNode>(child);
      }
      const auto& node =
          static_cast<const FlatMapGroupsWithStateNode&>(*plan);
      return std::make_shared<FlatMapGroupsWithStateNode>(
          child, node.key_exprs(), node.update_fn(), node.output_schema(),
          node.timeout(), node.require_single_output());
    }
  }
  return plan;
}

}  // namespace

PlanPtr Optimizer::Optimize(const PlanPtr& plan, Stats* stats) {
  RuleRunner runner(stats);
  PlanPtr current = plan;
  // The runner already iterates node-locally; a few global passes reach a
  // fixed point for rule interactions (e.g. merge-then-push).
  for (int pass = 0; pass < 4; ++pass) {
    PlanPtr next = runner.Rewrite(current);
    if (next == current) break;
    current = next;
  }
  int pruned = 0;
  current = PruneScanColumns(current, std::nullopt, &pruned);
  if (stats) stats->scans_pruned = pruned;
  return current;
}

}  // namespace sstreaming

#ifndef SSTREAMING_PHYSICAL_STATEFUL_OPS_H_
#define SSTREAMING_PHYSICAL_STATEFUL_OPS_H_

#include <optional>
#include <string>
#include <vector>

#include "expr/aggregate.h"
#include "expr/expression.h"
#include "logical/plan.h"
#include "physical/phys_op.h"

namespace sstreaming {

/// State-store-backed incremental aggregation (paper §5.2's
/// StatefulAggregate). Input must already be hash-partitioned by the group
/// key (ShuffleExec). Per-key aggregation state lives in the state store and
/// is updated in time proportional to the epoch's new rows. Emission depends
/// on the sink output mode:
///  - update:   finalized rows for keys changed this epoch;
///  - complete: all keys every epoch;
///  - append:   only groups whose event-time window has closed under the
///    watermark (emitted exactly once, then evicted).
/// With a watermark, rows for already-closed windows are dropped as late
/// data, and closed windows are evicted from state (paper §4.3.1).
class StatefulAggExec : public PhysOp {
 public:
  StatefulAggExec(int op_id, PhysOpPtr child, SchemaPtr out_schema,
                  std::vector<NamedExpr> group_exprs,
                  std::vector<AggSpec> aggregates);

  std::string name() const override { return "StatefulAggregate"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

  /// Number of leading key columns in the output (window keys count as 2:
  /// start and end) — what the sink needs for update-mode upserts.
  int num_output_key_columns() const;

 private:
  std::vector<NamedExpr> group_exprs_;
  std::vector<AggSpec> aggregates_;
  // Set when one group key is a window() expression.
  int window_key_index_ = -1;  // position within group_exprs_
  const WindowExpr* window_expr_ = nullptr;
};

/// Streaming SELECT DISTINCT: emits each row the first time it is seen,
/// remembering seen keys in the state store.
class DedupExec : public PhysOp {
 public:
  DedupExec(int op_id, PhysOpPtr child);

  std::string name() const override { return "Dedup"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;
};

/// Stream-static equi-join: the static side is fully materialized at query
/// start into a hash table and broadcast to every partition (paper §2.2's
/// "join a stream with static data"). Inner or stream-preserving outer.
class StreamStaticJoinExec : public PhysOp {
 public:
  /// `static_from_stream`: (static column index -> stream column index)
  /// pairs used to coalesce USING-join keys: when a preserved stream row has
  /// no static match, the dropped duplicate key column takes the stream's
  /// key value instead of NULL.
  StreamStaticJoinExec(int op_id, PhysOpPtr stream_child, SchemaPtr out_schema,
                       std::vector<ExprPtr> stream_keys,
                       SchemaPtr static_schema, std::vector<Row> static_rows,
                       std::vector<ExprPtr> static_keys,
                       std::vector<int> stream_output_indices,
                       std::vector<int> static_output_indices,
                       bool stream_first, bool preserve_stream,
                       std::vector<std::pair<int, int>> static_from_stream =
                           {});

  std::string name() const override { return "StreamStaticJoin"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

 private:
  Result<RecordBatchPtr> ExecutePartition(const RecordBatch& input);

  std::vector<ExprPtr> stream_keys_;
  SchemaPtr static_schema_;
  std::vector<int> stream_output_indices_;
  std::vector<int> static_output_indices_;
  bool stream_first_;
  bool preserve_stream_;
  std::vector<std::pair<int, int>> static_from_stream_;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> static_by_key_;
  // Fast path for the common single int64 join key (e.g. the benchmark's
  // ad_id): probe without boxing.
  bool int64_key_ = false;
  std::unordered_map<int64_t, std::vector<const Row*>> static_by_int64_;
};

/// Symmetric-hash stream-stream equi-join with state on both sides. Inputs
/// must be co-partitioned by key (two ShuffleExecs with equal partition
/// counts). With watermarked event-time columns, state older than the
/// watermark is evicted, and outer-join null-padded results are emitted once
/// the unmatched row can no longer find a partner (paper §5.2: outer joins
/// require a watermarked column).
class StreamStreamJoinExec : public PhysOp {
 public:
  /// `left_from_right`: (left column index -> right column index) pairs for
  /// coalescing USING-join keys when an unmatched right row is emitted
  /// null-padded in a right-outer join.
  StreamStreamJoinExec(int op_id, PhysOpPtr left, PhysOpPtr right,
                       SchemaPtr out_schema, std::vector<ExprPtr> left_keys,
                       std::vector<ExprPtr> right_keys, JoinType join_type,
                       std::vector<int> right_output_indices,
                       int left_time_index, int right_time_index,
                       std::vector<std::pair<int, int>> left_from_right = {});

  std::string name() const override { return "StreamStreamJoin"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

 private:
  Row JoinedRow(const Row* left, const Row* right) const;

  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  JoinType join_type_;
  std::vector<int> right_output_indices_;
  int left_arity_ = 0;
  // Event-time column index per side for watermark eviction; -1 = none.
  int left_time_index_;
  int right_time_index_;
  std::vector<std::pair<int, int>> left_from_right_;
};

/// (flat)mapGroupsWithState (paper §4.3.2): arbitrary per-key user state
/// with timeouts. Input must be hash-partitioned by key.
class FlatMapGroupsWithStateExec : public PhysOp {
 public:
  FlatMapGroupsWithStateExec(int op_id, PhysOpPtr child, SchemaPtr out_schema,
                             std::vector<NamedExpr> key_exprs,
                             GroupUpdateFn update_fn,
                             GroupStateTimeout timeout,
                             bool require_single_output);

  std::string name() const override { return "FlatMapGroupsWithState"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

 private:
  Result<RecordBatchPtr> ExecutePartition(ExecContext* ctx, int partition,
                                          const RecordBatch& input);

  std::vector<NamedExpr> key_exprs_;
  GroupUpdateFn update_fn_;
  GroupStateTimeout timeout_;
  bool require_single_output_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_PHYSICAL_STATEFUL_OPS_H_

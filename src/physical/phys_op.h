#ifndef SSTREAMING_PHYSICAL_PHYS_OP_H_
#define SSTREAMING_PHYSICAL_PHYS_OP_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "logical/output_mode.h"
#include "runtime/scheduler.h"
#include "state/sharded_state_store.h"
#include "types/record_batch.h"

namespace sstreaming {

class Arena;
class EpochTracer;
class MetricsRegistry;

/// Creates and caches one ShardedStateStore per (stateful operator,
/// partition), and commits them together at epoch boundaries (paper §6.1
/// step 2) — each store checkpointing its shards independently.
/// When `durable` is false (batch runs, tests without recovery), stores live
/// in a throwaway temp directory and commits are skipped.
class StateManager {
 public:
  /// `dir`: checkpoint state root. `version`: epoch whose state to restore
  /// (0 = fresh). Empty dir = ephemeral (non-durable) state.
  StateManager(std::string dir, int64_t version,
               ShardedStateStore::Options options);
  ~StateManager();

  Result<ShardedStateStore*> GetStore(int op_id, int partition);

  /// Shard count every store is opened with (existing on-disk layouts keep
  /// their own count; see ShardedStateStore::Open).
  int num_shards() const { return options_.num_shards; }

  /// Opens every store that already exists on disk (stores are otherwise
  /// opened lazily). Recovery calls this so MinLoadedVersion() reflects how
  /// far behind the durable state really is before any epoch runs.
  Status PreopenExisting();

  /// Commits every opened store at `epoch`. No-op when ephemeral.
  Status CommitAll(int64_t epoch);

  /// Optional instrumentation: when set, CommitAll records checkpoint bytes
  /// and per-commit latency, and entry counts, under `sstreaming_state_*`.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Removes durable state files older than needed to restore `keep`.
  Status PurgeBefore(int64_t keep);

  /// The oldest version any opened store actually restored; the engine must
  /// replay epochs after this (checkpoints may lag, §6.1 step 4).
  int64_t MinLoadedVersion() const;

  int64_t TotalEntries() const;
  int64_t TotalBytesWritten() const;

  /// Live state size for one operator, summed over its partitions.
  struct OpStateSize {
    int64_t rows = 0;
    int64_t bytes = 0;  // StateStore::ApproxBytes
  };
  /// Per-operator live state sizes across all opened stores — the memory
  /// accounting behind `sstreaming_state_rows{op_id=}` /
  /// `sstreaming_state_bytes{op_id=}` and the EXPLAIN ANALYZE state columns.
  std::map<int, OpStateSize> PerOpSizes() const;
  /// Per-operator, per-shard live state sizes (summed over partitions;
  /// indexed by shard) — behind the `shard=`-labelled gauges and the
  /// per-shard EXPLAIN ANALYZE columns.
  std::map<int, std::vector<OpStateSize>> PerOpShardSizes() const;
  /// Sum of ApproxBytes over all opened stores.
  int64_t TotalApproxBytes() const;
  bool durable() const { return durable_; }
  int num_open_stores() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(stores_.size());
  }

 private:
  std::string StoreDir(int op_id, int partition) const;

  std::string dir_;
  int64_t version_;
  ShardedStateStore::Options options_;
  bool durable_;
  std::string ephemeral_dir_;
  MetricsRegistry* metrics_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::pair<int, int>, std::unique_ptr<ShardedStateStore>> stores_
      SS_GUARDED_BY(mu_);
};

/// Per-operator counters accumulated over one epoch (§7.4 monitoring).
struct OpStats {
  int64_t rows_out = 0;
  int64_t batches = 0;
  /// Inclusive wall time of the operator's Execute (children included).
  int64_t wall_nanos = 0;
  int64_t invocations = 0;
  /// Approximate bytes of the operator's output batches (memory accounting
  /// for EXPLAIN ANALYZE; O(columns) per batch to compute).
  int64_t bytes_out = 0;

  // Scheduler-stage accounting for the stages this operator submitted
  // (filled by ExecContext::RunStage; see StageWait). queue_wait is the
  // operator's backpressure signal; max_task_run vs. run/tasks is its
  // task skew (e.g. an overloaded state shard's fold task).
  int64_t tasks = 0;
  int64_t queue_wait_nanos = 0;
  int64_t max_queue_wait_nanos = 0;
  int64_t task_run_nanos = 0;
  int64_t max_task_run_nanos = 0;
};

/// Per-epoch execution context threaded through the physical operators.
struct ExecContext {
  int64_t epoch = 0;
  /// Event-time watermark in force for this epoch (computed from data seen
  /// in *earlier* epochs; INT64_MIN before any watermark exists).
  int64_t watermark_micros = INT64_MIN;
  /// Sink output mode (drives what stateful operators emit).
  OutputMode mode = OutputMode::kAppend;
  /// True when running as a one-shot batch job (paper §7.3): stateful
  /// operators see all data at once and emit final results.
  bool is_batch = false;

  TaskScheduler* scheduler = nullptr;
  StateManager* state = nullptr;
  const Clock* clock = nullptr;
  /// Per-epoch scratch allocator (selection vectors, survivor indices).
  /// Reset by the engine at epoch boundaries; may be null (operators fall
  /// back to heap allocation).
  Arena* arena = nullptr;
  /// Optional epoch tracer; when set, PhysOp::Execute records one span per
  /// operator invocation.
  EpochTracer* tracer = nullptr;

  /// Offset ranges for this epoch, per source name: (start, end) per
  /// partition. Filled by the engine from the WAL plan.
  std::map<std::string, std::pair<std::vector<int64_t>, std::vector<int64_t>>>
      offsets;

  /// Per-watermark-operator candidate (max event time minus delay) observed
  /// this epoch. The engine combines candidates with the MIN-across-inputs
  /// policy: a query with several watermarked inputs only advances to a
  /// point safe for all of them.
  std::mutex observed_mu;
  std::map<int, int64_t> observed_watermarks SS_GUARDED_BY(observed_mu);

  void ObserveEventTime(int watermark_op_id, int64_t candidate) {
    std::lock_guard<std::mutex> lock(observed_mu);
    auto it = observed_watermarks.find(watermark_op_id);
    if (it == observed_watermarks.end() || candidate > it->second) {
      observed_watermarks[watermark_op_id] = candidate;
    }
  }

  /// Rows read from sources this epoch (metrics, §7.4), total and per
  /// source. `op_stats` is filled by PhysOp::Execute (one entry per
  /// operator). All three are guarded by `metrics_mu`.
  std::mutex metrics_mu;
  int64_t rows_read SS_GUARDED_BY(metrics_mu) = 0;
  std::map<std::string, int64_t> source_rows SS_GUARDED_BY(metrics_mu);
  std::map<int, OpStats> op_stats SS_GUARDED_BY(metrics_mu);
  void CountSourceRows(const std::string& source, int64_t n) {
    std::lock_guard<std::mutex> lock(metrics_mu);
    rows_read += n;
    source_rows[source] += n;
  }

  /// Oldest ingest stamp among all source records read this epoch (0 = no
  /// dated records). Recorded by source scans; the sink-side latency
  /// measurement falls back to it for output batches whose own stamp was
  /// dropped by a materializing operator (aggregation, state flush).
  int64_t min_ingest_micros SS_GUARDED_BY(metrics_mu) = 0;
  void ObserveIngest(int64_t micros) {
    if (micros <= 0) return;
    std::lock_guard<std::mutex> lock(metrics_mu);
    if (min_ingest_micros == 0 || micros < min_ingest_micros) {
      min_ingest_micros = micros;
    }
  }
  int64_t MinIngestMicros() {
    std::lock_guard<std::mutex> lock(metrics_mu);
    return min_ingest_micros;
  }

  /// Runs a stage on `scheduler`, merging its queue-wait/run accounting
  /// into `op_stats[op_id]` (the submitting operator). Operators call this
  /// instead of scheduler->RunStage so every stage's backpressure signal is
  /// attributed to the operator that submitted it.
  Status RunStage(int op_id, const std::string& stage_name,
                  std::vector<std::function<Status()>> tasks);
};

/// One row of the per-operator profile index: how an operator wants to
/// appear in EXPLAIN ANALYZE / the plan profile. Most operators contribute
/// exactly one node (themselves); FusedPipelineExec contributes one node for
/// the fused pipeline plus one per original stage so per-operator row
/// accounting still ties out after fusion.
struct OpProfileNode {
  int op_id = 0;
  std::string name;
  bool is_source = false;
  /// op_ids whose rows_out feed this node (its inputs).
  std::vector<int> child_ids;
};

/// A physical operator: executes one epoch across all partitions, returning
/// one output batch per partition. Operators parallelize internally by
/// submitting per-partition tasks to the scheduler (the paper's fine-grained
/// task model, §6.2). Incremental operators return only this epoch's *new*
/// contribution to the result (their intra-DAG output mode, §5.2).
class PhysOp {
 public:
  PhysOp(int op_id, SchemaPtr schema, std::vector<std::shared_ptr<PhysOp>>
                                          children)
      : op_id_(op_id), schema_(std::move(schema)),
        children_(std::move(children)) {}
  virtual ~PhysOp() = default;

  int op_id() const { return op_id_; }
  const SchemaPtr& schema() const { return schema_; }
  const std::vector<std::shared_ptr<PhysOp>>& children() const {
    return children_;
  }

  virtual std::string name() const = 0;

  /// Swaps a child subtree in place. For plan rewrites (pipeline fusion)
  /// only, before execution starts.
  void ReplaceChild(size_t i, std::shared_ptr<PhysOp> child) {
    children_[i] = std::move(child);
  }

  /// Instrumented entry point: runs ExecuteImpl, accumulating this
  /// operator's wall time, output rows, and batch count into
  /// `ctx->op_stats[op_id()]` and recording a tracer span when
  /// `ctx->tracer` is set. Operators recurse through this (via their
  /// children), so every node of the DAG is accounted per epoch.
  Result<std::vector<RecordBatchPtr>> Execute(ExecContext* ctx);

  /// True for leaf scans (their Execute time is the epoch's "source read"
  /// stage rather than compute).
  virtual bool is_source_scan() const { return false; }

  /// Multi-line tree rendering for explain().
  std::string TreeString() const;

  /// Appends this operator's profile node(s) — NOT recursive over children;
  /// the engine walks the tree. The default contributes a single node whose
  /// child ids are the direct children's op_ids. FusedPipelineExec overrides
  /// to also expose its interior stages.
  virtual void CollectProfileNodes(std::vector<OpProfileNode>* out) const;

 protected:
  /// The operator's actual logic; called only through Execute().
  virtual Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx)
      = 0;

  int op_id_;
  SchemaPtr schema_;
  std::vector<std::shared_ptr<PhysOp>> children_;

 private:
  /// Interned profiler label for name(), filled lazily on the first
  /// Execute with the profiler armed (0 = not yet interned).
  mutable std::atomic<uint32_t> profile_label_{0};
};

using PhysOpPtr = std::shared_ptr<PhysOp>;

}  // namespace sstreaming

#endif  // SSTREAMING_PHYSICAL_PHYS_OP_H_

#include "physical/fused_pipeline.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/arena.h"
#include "common/clock.h"
#include "common/logging.h"
#include "physical/operators.h"

namespace sstreaming {

namespace {

// Output schema of the chain: the topmost projection wins; a chain of pure
// filters/watermarks keeps the child's schema.
SchemaPtr ChainSchema(const PhysOpPtr& child,
                      const std::vector<FusedPipelineExec::Stage>& stages) {
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    if (it->kind == FusedPipelineExec::Stage::Kind::kProject) {
      return it->schema;
    }
  }
  return child->schema();
}

// Survivor indices of `mask_col` (logical length n) written through `idx`;
// returns the count. NULL predicate results drop the row (SQL semantics).
int64_t CollectSurvivors(const Column& mask_col, int64_t n, int32_t* idx) {
  int64_t kept = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (!mask_col.IsNull(i) && mask_col.BoolAt(i)) {
      idx[kept++] = static_cast<int32_t>(i);
    }
  }
  return kept;
}

}  // namespace

RecordBatchPtr GatherReferenced(const RecordBatchPtr& batch,
                                const std::vector<int>& referenced) {
  if (!batch->has_selection()) return batch;
  const int64_t k = batch->num_rows();
  std::vector<uint8_t> want(static_cast<size_t>(batch->num_columns()), 0);
  for (int c : referenced) want[static_cast<size_t>(c)] = 1;
  std::vector<ColumnPtr> cols;
  cols.reserve(static_cast<size_t>(batch->num_columns()));
  for (int c = 0; c < batch->num_columns(); ++c) {
    const ColumnPtr& in = batch->column(c);
    ColumnPtr out = Column::Make(in->type());
    if (want[static_cast<size_t>(c)]) {
      out->Reserve(k);
      for (int64_t i = 0; i < k; ++i) {
        out->AppendFrom(*in, batch->PhysIndex(i));
      }
    } else {
      // Unreferenced columns only pad the batch to length k so ordinals
      // keep their meaning; their values are never read.
      for (int64_t i = 0; i < k; ++i) out->AppendNull();
    }
    cols.push_back(std::move(out));
  }
  auto out = RecordBatch::Make(batch->schema(), std::move(cols));
  out->set_ingest_micros(batch->ingest_micros());
  return out;
}

FusedPipelineExec::FusedPipelineExec(int op_id, PhysOpPtr child,
                                     std::vector<Stage> stages,
                                     bool emit_selection)
    : PhysOp(op_id, ChainSchema(child, stages), {child}),
      stages_(std::move(stages)),
      emit_selection_(emit_selection) {
  SS_CHECK(stages_.size() >= 2) << "fusing a chain of fewer than 2 stages";
}

std::string FusedPipelineExec::name() const {
  std::string out = "FusedPipeline[";
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += stages_[i].name;
  }
  out += "]";
  return out;
}

void FusedPipelineExec::CollectProfileNodes(
    std::vector<OpProfileNode>* out) const {
  OpProfileNode fused;
  fused.op_id = op_id_;
  fused.name = name();
  fused.child_ids.push_back(stages_.back().op_id);
  out->push_back(std::move(fused));
  // Stages top to bottom, each fed by the stage below; the bottom stage is
  // fed by the fused node's actual child. This reproduces the unfused
  // chain's profile topology, so rows_in/rows_out still tie out per stage.
  for (size_t i = stages_.size(); i-- > 0;) {
    OpProfileNode node;
    node.op_id = stages_[i].op_id;
    node.name = stages_[i].name;
    node.child_ids.push_back(i > 0 ? stages_[i - 1].op_id
                                   : children_[0]->op_id());
    out->push_back(std::move(node));
  }
}

Result<std::vector<RecordBatchPtr>> FusedPipelineExec::ExecuteImpl(
    ExecContext* ctx) {
  const int64_t t_child0 = MonotonicNanos();
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  const int64_t child_nanos = MonotonicNanos() - t_child0;

  const size_t parts = in.size();
  const size_t n_stages = stages_.size();
  // Per-partition, per-stage accounting filled lock-free inside the tasks
  // and folded into ctx->op_stats afterwards.
  struct StageCell {
    int64_t rows = 0;
    int64_t bytes = 0;
    int64_t nanos = 0;
  };
  std::vector<std::vector<StageCell>> cells(
      parts, std::vector<StageCell>(n_stages));

  std::vector<RecordBatchPtr> out(parts);
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(parts);
  for (size_t p = 0; p < parts; ++p) {
    tasks.push_back([this, ctx, &in, &out, &cells, p]() -> Status {
      RecordBatchPtr cur = in[p];
      for (size_t s = 0; s < stages_.size(); ++s) {
        const Stage& stage = stages_[s];
        const int64_t t0 = MonotonicNanos();
        switch (stage.kind) {
          case Stage::Kind::kFilter: {
            const int64_t n = cur->num_rows();
            // Evaluate over the current logical rows only: a view's
            // referenced columns are gathered compactly first (EvalBatch
            // needs selection-free storage).
            RecordBatchPtr eval_in =
                GatherReferenced(cur, stage.referenced);
            SS_ASSIGN_OR_RETURN(ColumnPtr mask,
                                stage.predicate->EvalBatch(*eval_in));
            int32_t* idx = nullptr;
            std::shared_ptr<const void> keepalive;
            std::vector<int32_t> heap_idx;
            if (ctx->arena != nullptr) {
              auto span =
                  ctx->arena->AllocSpan<int32_t>(static_cast<size_t>(n));
              idx = span.first;
              keepalive = std::move(span.second);
            } else {
              heap_idx.resize(static_cast<size_t>(n));
              idx = heap_idx.data();
            }
            const int64_t kept = CollectSurvivors(*mask, n, idx);
            if (kept < n) {
              // Indices are logical rows of `cur`; MakeView composes them
              // with any selection already in force.
              SelectionVector sel =
                  keepalive != nullptr
                      ? SelectionVector::FromOwned(idx, kept,
                                                   std::move(keepalive))
                      : SelectionVector::FromVector(std::vector<int32_t>(
                            heap_idx.begin(), heap_idx.begin() + kept));
              cur = RecordBatch::MakeView(cur, std::move(sel));
            }
            break;
          }
          case Stage::Kind::kProject: {
            RecordBatchPtr eval_in = GatherReferenced(cur, stage.referenced);
            std::vector<ColumnPtr> columns;
            columns.reserve(stage.exprs.size());
            for (const NamedExpr& e : stage.exprs) {
              SS_ASSIGN_OR_RETURN(ColumnPtr col, e.expr->EvalBatch(*eval_in));
              columns.push_back(std::move(col));
            }
            auto projected =
                RecordBatch::Make(stage.schema, std::move(columns));
            projected->set_ingest_micros(cur->ingest_micros());
            cur = std::move(projected);
            break;
          }
          case Stage::Kind::kWatermark: {
            const Column& col = *cur->column(stage.column_index);
            int64_t max_ts = INT64_MIN;
            for (int64_t li = 0; li < cur->num_rows(); ++li) {
              const int64_t i = cur->PhysIndex(li);
              if (!col.IsNull(i) && col.Int64At(i) > max_ts) {
                max_ts = col.Int64At(i);
              }
            }
            if (max_ts != INT64_MIN) {
              ctx->ObserveEventTime(stage.op_id, max_ts - stage.delay_micros);
            }
            break;
          }
        }
        StageCell& cell = cells[p][s];
        cell.rows = cur->num_rows();
        cell.bytes = cur->ApproxBytes();
        cell.nanos = MonotonicNanos() - t0;
      }
      if (!emit_selection_) cur = RecordBatch::Materialize(cur);
      out[p] = std::move(cur);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->RunStage(op_id_, name(), std::move(tasks)));

  // Fold per-stage stats under the stages' ORIGINAL op_ids, mirroring what
  // each operator's own Execute would have recorded unfused. Walls are
  // inclusive: child time plus the cumulative stage time up to and
  // including this stage.
  {
    std::lock_guard<std::mutex> lock(ctx->metrics_mu);
    int64_t cumulative = 0;
    for (size_t s = 0; s < n_stages; ++s) {
      OpStats& stats = ctx->op_stats[stages_[s].op_id];
      for (size_t p = 0; p < parts; ++p) {
        const StageCell& cell = cells[p][s];
        stats.rows_out += cell.rows;
        stats.bytes_out += cell.bytes;
        ++stats.batches;
        cumulative += cell.nanos;
      }
      stats.wall_nanos += child_nanos + cumulative;
      ++stats.invocations;
    }
  }
  return out;
}

namespace {

bool IsFusable(const PhysOp* op) {
  return dynamic_cast<const FilterExec*>(op) != nullptr ||
         dynamic_cast<const ProjectExec*>(op) != nullptr ||
         dynamic_cast<const WatermarkExec*>(op) != nullptr;
}

FusedPipelineExec::Stage MakeStage(const PhysOpPtr& op) {
  FusedPipelineExec::Stage stage;
  stage.op_id = op->op_id();
  stage.name = op->name();
  if (auto* filter = dynamic_cast<const FilterExec*>(op.get())) {
    stage.kind = FusedPipelineExec::Stage::Kind::kFilter;
    stage.predicate = filter->predicate();
    stage.predicate->CollectColumnIndices(&stage.referenced);
  } else if (auto* project = dynamic_cast<const ProjectExec*>(op.get())) {
    stage.kind = FusedPipelineExec::Stage::Kind::kProject;
    stage.exprs = project->exprs();
    stage.schema = op->schema();
    for (const NamedExpr& e : stage.exprs) {
      e.expr->CollectColumnIndices(&stage.referenced);
    }
  } else {
    auto* wm = dynamic_cast<const WatermarkExec*>(op.get());
    SS_CHECK(wm != nullptr) << "unfusable op in chain: " << op->name();
    stage.kind = FusedPipelineExec::Stage::Kind::kWatermark;
    stage.column_index = wm->column_index();
    stage.delay_micros = wm->delay_micros();
    stage.referenced.push_back(wm->column_index());
  }
  return stage;
}

PhysOpPtr Rewrite(const PhysOpPtr& op, int* next_id, bool emit_selection,
                  std::map<const PhysOp*, PhysOpPtr>* memo) {
  auto it = memo->find(op.get());
  if (it != memo->end()) return it->second;

  // A fusable op whose only child is also fusable starts a maximal chain.
  if (IsFusable(op.get()) && op->children().size() == 1 &&
      IsFusable(op->children()[0].get())) {
    std::vector<PhysOpPtr> chain;  // top to bottom
    PhysOpPtr cursor = op;
    while (IsFusable(cursor.get())) {
      chain.push_back(cursor);
      cursor = cursor->children()[0];
    }
    PhysOpPtr below = Rewrite(cursor, next_id, emit_selection, memo);
    std::vector<FusedPipelineExec::Stage> stages;
    stages.reserve(chain.size());
    for (size_t i = chain.size(); i-- > 0;) {  // bottom to top
      stages.push_back(MakeStage(chain[i]));
    }
    auto fused = std::make_shared<FusedPipelineExec>(
        (*next_id)++, std::move(below), std::move(stages), emit_selection);
    (*memo)[op.get()] = fused;
    return fused;
  }

  for (size_t i = 0; i < op->children().size(); ++i) {
    PhysOpPtr rewritten =
        Rewrite(op->children()[i], next_id, emit_selection, memo);
    if (rewritten != op->children()[i]) {
      op->ReplaceChild(i, std::move(rewritten));
    }
  }
  (*memo)[op.get()] = op;
  return op;
}

}  // namespace

PhysOpPtr FusePipelines(const PhysOpPtr& root, int* next_id,
                        bool emit_selection) {
  std::map<const PhysOp*, PhysOpPtr> memo;
  return Rewrite(root, next_id, emit_selection, &memo);
}

}  // namespace sstreaming

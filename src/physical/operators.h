#ifndef SSTREAMING_PHYSICAL_OPERATORS_H_
#define SSTREAMING_PHYSICAL_OPERATORS_H_

#include <string>
#include <vector>

#include "connectors/source.h"
#include "expr/expression.h"
#include "physical/phys_op.h"

namespace sstreaming {

/// Reads this epoch's offset range from a streaming source, one task per
/// partition. When a projection is set (pushed down by the incrementalizer
/// from a pure column projection above the scan, §5.3), only those columns
/// are materialized.
class SourceExec : public PhysOp {
 public:
  SourceExec(int op_id, SourcePtr source);
  /// Projected read: `schema` describes `columns` of the source schema.
  SourceExec(int op_id, SourcePtr source, std::vector<int> columns,
             SchemaPtr schema);

  std::string name() const override { return "Source[" + source_->name() + "]"; }
  bool is_source_scan() const override { return true; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

  const SourcePtr& source() const { return source_; }
  bool projected() const { return !columns_.empty(); }

 private:
  SourcePtr source_;
  std::vector<int> columns_;  // empty = all
};

/// Emits a static dataset, split round-robin into `num_partitions` — used
/// when a batch plan runs through the streaming operator pipeline
/// (paper §7.3, batch/stream unification).
class StaticSourceExec : public PhysOp {
 public:
  StaticSourceExec(int op_id, SchemaPtr schema,
                   std::vector<RecordBatchPtr> batches, int num_partitions);

  std::string name() const override { return "StaticSource"; }
  bool is_source_scan() const override { return true; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

 private:
  std::vector<RecordBatchPtr> batches_;
  int num_partitions_;
};

/// Vectorized filter. With `emit_selection` (the default under
/// QueryOptions::selection_vectors), survivors are not copied: the output is
/// a zero-copy selection view over the input batch
/// (docs/VECTORIZED_EXEC.md). When every row survives, the input batch is
/// passed through untouched.
class FilterExec : public PhysOp {
 public:
  FilterExec(int op_id, PhysOpPtr child, ExprPtr predicate,
             bool emit_selection = true);

  std::string name() const override {
    return "Filter " + predicate_->ToString();
  }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

  const ExprPtr& predicate() const { return predicate_; }
  bool emit_selection() const { return emit_selection_; }

 private:
  ExprPtr predicate_;
  bool emit_selection_;
};

/// Vectorized projection.
class ProjectExec : public PhysOp {
 public:
  ProjectExec(int op_id, PhysOpPtr child, SchemaPtr schema,
              std::vector<NamedExpr> exprs);

  std::string name() const override { return "Project"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

  const std::vector<NamedExpr>& exprs() const { return exprs_; }

 private:
  std::vector<NamedExpr> exprs_;
};

/// Pass-through operator that records the max event time of a watermarked
/// column so the engine can advance the query watermark (paper §4.3.1).
class WatermarkExec : public PhysOp {
 public:
  WatermarkExec(int op_id, PhysOpPtr child, int column_index,
                int64_t delay_micros);

  std::string name() const override { return "Watermark"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

  int64_t delay_micros() const { return delay_micros_; }
  int column_index() const { return column_index_; }

 private:
  int column_index_;
  int64_t delay_micros_;
};

/// Hash repartitioning on key expressions: the "exchange" between map and
/// reduce stages of the microbatch job (paper §6.2).
class ShuffleExec : public PhysOp {
 public:
  ShuffleExec(int op_id, PhysOpPtr child, std::vector<ExprPtr> keys,
              int num_partitions);

  std::string name() const override {
    return "Shuffle p=" + std::to_string(num_partitions_);
  }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

  int num_partitions() const { return num_partitions_; }

 private:
  std::vector<ExprPtr> keys_;
  int num_partitions_;
};

/// Gathers all partitions into one and sorts (complete mode only).
class SortExec : public PhysOp {
 public:
  struct Key {
    ExprPtr expr;
    bool ascending;
  };

  SortExec(int op_id, PhysOpPtr child, std::vector<Key> keys);

  std::string name() const override { return "Sort"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

 private:
  std::vector<Key> keys_;
};

/// Keeps the first n rows of partition 0 (used after SortExec).
class LimitExec : public PhysOp {
 public:
  LimitExec(int op_id, PhysOpPtr child, int64_t n);

  std::string name() const override { return "Limit " + std::to_string(n_); }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;

 private:
  int64_t n_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_PHYSICAL_OPERATORS_H_

#include "physical/stateful_ops.h"

#include <algorithm>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace sstreaming {

namespace {

// Appends value i of src to dst with matching physical type (no boxing).
void AppendFromColumn(const Column& src, int64_t i, Column* dst) {
  if (src.IsNull(i)) {
    dst->AppendNull();
    return;
  }
  switch (PhysicalKindOf(src.type())) {
    case PhysicalKind::kBool:
      dst->AppendBool(src.BoolAt(i));
      break;
    case PhysicalKind::kInt64:
      dst->AppendInt64(src.Int64At(i));
      break;
    case PhysicalKind::kFloat64:
      dst->AppendFloat64(src.Float64At(i));
      break;
    case PhysicalKind::kString:
      dst->AppendString(src.StringAt(i));
      break;
    case PhysicalKind::kNone:
      dst->AppendNull();
      break;
  }
}

void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetFixed64(const std::string& data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

// ---------------------------------------------------------------------------
// Shard routing (docs/STATE_SHARDING.md)
//
// Stateful operators run in up to three scheduler stages per epoch:
//   [eval]  per partition: vectorized evaluation of key/argument columns;
//   [split] per (partition, chunk): encode each row's state key and route it
//           to a shard bucket by StableHashKey(key) % num_shards;
//   <name>  per (partition, shard): fold the bucketed rows into that shard's
//           state and emit output rows.
// Buckets preserve input order (chunks are contiguous row ranges, visited in
// chunk order by the fold), so everything an operator emits is a
// deterministic function of the input regardless of shard count; shard
// outputs are merged in shard-index order.
// ---------------------------------------------------------------------------

/// One (chunk, shard) bucket of pre-routed rows: parallel vectors of the
/// row's index in the partition batch, an operator-specific auxiliary value,
/// and the row's encoded state key (concatenated, delimited by key_len).
struct KeyedEntries {
  std::vector<int32_t> rows;
  std::vector<int64_t> aux;
  std::vector<uint32_t> key_len;
  std::string keys;

  void Add(int64_t row, int64_t aux_value, const std::string& key) {
    rows.push_back(static_cast<int32_t>(row));
    aux.push_back(aux_value);
    key_len.push_back(static_cast<uint32_t>(key.size()));
    keys.append(key);
  }
};

/// Calls fn(row_index, aux, key_view) for each bucketed entry, in order.
template <typename Fn>
Status ForEachEntry(const KeyedEntries& e, Fn&& fn) {
  size_t off = 0;
  for (size_t j = 0; j < e.rows.size(); ++j) {
    std::string_view key(e.keys.data() + off, e.key_len[j]);
    off += e.key_len[j];
    SS_RETURN_IF_ERROR(fn(e.rows[j], e.aux[j], key));
  }
  return Status::OK();
}

/// Heterogeneous-lookup hash so fold loops can probe string-keyed maps with
/// string_views into the bucket's key arena (no per-probe allocation).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Split-stage chunk count: enough chunks to split big partitions in
/// parallel without paying per-task overhead on small ones.
int SplitChunks(int64_t rows, int num_shards) {
  return rows >= 4096 ? num_shards : 1;
}

int ShardOfKey(const std::string& key, int num_shards) {
  return static_cast<int>(ShardedStateStore::StableHashKey(key) %
                          static_cast<uint64_t>(num_shards));
}

/// Packs fine-grained (partition, shard) tasks into at most `max_tasks`
/// scheduler tasks, round-robin. Sharding multiplies the stateful stages'
/// task count by the shard count; when partition parallelism alone already
/// covers the scheduler's cores, the extra tasks buy no parallelism and
/// only pay per-task launch overhead. Grouping is purely a scheduling
/// change: each inner task still owns its shard and output slot, so results
/// are byte-identical to the unpacked run.
std::vector<std::function<Status()>> CoalesceTasks(
    std::vector<std::function<Status()>> tasks, int max_tasks) {
  if (max_tasks <= 0 || tasks.size() <= static_cast<size_t>(max_tasks)) {
    return tasks;
  }
  std::vector<std::vector<std::function<Status()>>> groups(
      static_cast<size_t>(max_tasks));
  for (size_t i = 0; i < tasks.size(); ++i) {
    groups[i % static_cast<size_t>(max_tasks)].push_back(
        std::move(tasks[i]));
  }
  std::vector<std::function<Status()>> out;
  out.reserve(groups.size());
  for (auto& group : groups) {
    out.push_back([group = std::move(group)]() -> Status {
      for (const auto& task : group) SS_RETURN_IF_ERROR(task());
      return Status::OK();
    });
  }
  return out;
}

/// Task cap for a sharded stage over `num_partitions` partitions: never
/// fewer tasks than the unsharded operator had, never more than can run at
/// once.
int ShardStageTaskCap(ExecContext* ctx, size_t num_partitions) {
  return std::max(ctx->scheduler->parallelism(),
                  static_cast<int>(num_partitions));
}

}  // namespace

// ---------------------------------------------------------------------------
// StatefulAggExec
// ---------------------------------------------------------------------------

StatefulAggExec::StatefulAggExec(int op_id, PhysOpPtr child,
                                 SchemaPtr out_schema,
                                 std::vector<NamedExpr> group_exprs,
                                 std::vector<AggSpec> aggregates)
    : PhysOp(op_id, std::move(out_schema), {std::move(child)}),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)) {
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (group_exprs_[i].expr->kind() == Expr::Kind::kWindow) {
      window_key_index_ = static_cast<int>(i);
      window_expr_ = static_cast<const WindowExpr*>(group_exprs_[i].expr.get());
    }
  }
}

int StatefulAggExec::num_output_key_columns() const {
  int n = 0;
  for (const NamedExpr& g : group_exprs_) {
    n += g.expr->kind() == Expr::Kind::kWindow ? 2 : 1;
  }
  return n;
}

Result<std::vector<RecordBatchPtr>> StatefulAggExec::ExecuteImpl(
    ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  // Materialize-on-demand boundary: stateful operators evaluate
  // expressions and encode state keys over whole batches, so selection
  // views compact here (docs/VECTORIZED_EXEC.md).
  for (RecordBatchPtr& b : in) b = RecordBatch::Materialize(b);
  const size_t P = in.size();
  const bool windowed = window_expr_ != nullptr;
  const int64_t watermark = ctx->watermark_micros;
  const int64_t window_size = windowed ? window_expr_->size_micros() : 0;
  const bool needs_args = [&] {
    for (const AggSpec& a : aggregates_) {
      if (a.func != AggFunc::kCountAll) return true;
    }
    return false;
  }();

  // Stores open serially (lazy open does recovery I/O under the manager
  // lock); the shard tasks below then touch disjoint shards lock-free.
  std::vector<ShardedStateStore*> stores(P);
  for (size_t p = 0; p < P; ++p) {
    SS_ASSIGN_OR_RETURN(stores[p],
                        ctx->state->GetStore(op_id_, static_cast<int>(p)));
  }

  // Dictionary-encoded string key column (docs/VECTORIZED_EXEC.md): the
  // state-key encoding of each distinct value is precooked once, and the
  // per-row hot loops append the precooked bytes — byte-identical to
  // EncodeValueTo by construction, but one hash per row instead of one
  // length-prefixed byte append per row per occurrence.
  struct KeyDict {
    std::vector<std::string> encoded;  // per distinct value (incl. null)
    std::vector<int32_t> codes;        // per row -> index into `encoded`
  };

  struct PartitionWork {
    std::vector<ColumnPtr> key_cols;
    std::vector<ColumnPtr> arg_cols;
    /// One dict per string-typed scalar group key column, else null.
    std::vector<std::unique_ptr<KeyDict>> key_dicts;
    int chunks = 1;
    std::vector<KeyedEntries> buckets;         // chunks x shards
    std::vector<std::vector<Row>> shard_rows;  // per-shard output rows
  };
  std::vector<PartitionWork> work(P);

  // Stage 1 [eval]: vectorized evaluation of group keys and agg arguments.
  {
    std::vector<std::function<Status()>> tasks;
    for (size_t p = 0; p < P; ++p) {
      tasks.push_back([this, &in, &work, p]() -> Status {
        const RecordBatch& input = *in[p];
        PartitionWork& w = work[p];
        w.key_cols.resize(group_exprs_.size());
        for (size_t g = 0; g < group_exprs_.size(); ++g) {
          if (static_cast<int>(g) == window_key_index_) {
            SS_ASSIGN_OR_RETURN(w.key_cols[g],
                                window_expr_->time()->EvalBatch(input));
          } else {
            SS_ASSIGN_OR_RETURN(w.key_cols[g],
                                group_exprs_[g].expr->EvalBatch(input));
          }
        }
        w.arg_cols.resize(aggregates_.size());
        for (size_t a = 0; a < aggregates_.size(); ++a) {
          if (aggregates_[a].func == AggFunc::kCountAll) continue;
          SS_ASSIGN_OR_RETURN(w.arg_cols[a],
                              aggregates_[a].arg->EvalBatch(input));
        }
        // Dictionary-encode string key columns for the encode loops below.
        w.key_dicts.resize(group_exprs_.size());
        for (size_t g = 0; g < group_exprs_.size(); ++g) {
          if (static_cast<int>(g) == window_key_index_) continue;
          const Column& col = *w.key_cols[g];
          if (PhysicalKindOf(col.type()) != PhysicalKind::kString) continue;
          auto dict = std::make_unique<KeyDict>();
          const int64_t rows = col.size();
          dict->codes.resize(static_cast<size_t>(rows));
          std::unordered_map<std::string_view, int32_t> index;
          int32_t null_code = -1;
          for (int64_t i = 0; i < rows; ++i) {
            if (col.IsNull(i)) {
              if (null_code < 0) {
                null_code = static_cast<int32_t>(dict->encoded.size());
                dict->encoded.emplace_back();
                col.EncodeValueTo(i, &dict->encoded.back());
              }
              dict->codes[static_cast<size_t>(i)] = null_code;
              continue;
            }
            const std::string& v = col.StringAt(i);
            auto [it, inserted] = index.emplace(
                std::string_view(v),
                static_cast<int32_t>(dict->encoded.size()));
            if (inserted) {
              dict->encoded.emplace_back();
              col.EncodeValueTo(i, &dict->encoded.back());
            }
            dict->codes[static_cast<size_t>(i)] = it->second;
          }
          w.key_dicts[g] = std::move(dict);
        }
        return Status::OK();
      });
    }
    SS_RETURN_IF_ERROR(
        ctx->RunStage(op_id_, name() + "[eval]", std::move(tasks)));
  }

  // Finalizer shared by the shard tasks (pure: decode key, append window
  // end, finalize aggregates).
  auto finalize = [&](const std::string& enc_key,
                      const Row& state) -> Result<Row> {
    SS_ASSIGN_OR_RETURN(Row key, DecodeRow(enc_key));
    Row out_row;
    for (size_t g = 0; g < key.size(); ++g) {
      if (static_cast<int>(g) == window_key_index_) {
        out_row.push_back(key[g]);  // window_start
        out_row.push_back(Value::Timestamp(key[g].int64_value() +
                                           window_size));  // window_end
      } else {
        out_row.push_back(key[g]);
      }
    }
    Row finals = FinalizeAggState(aggregates_, state);
    out_row.insert(out_row.end(), finals.begin(), finals.end());
    return out_row;
  };

  // Keys touched this batch -> updated state, one map per shard. In both
  // execution paths below a shard's insertion order is the input-row order
  // restricted to that shard (the staged path iterates chunk buckets in
  // chunk order, and chunks are contiguous in-order row ranges), so with
  // the same map type and key sequence the iteration order — and therefore
  // update-mode emission order — is identical between the paths.
  using ChangedMap = std::unordered_map<std::string, Row,
                                        TransparentStringHash,
                                        std::equal_to<>>;

  // Flush + emit for one shard, shared by both paths: write back the
  // changed states, then emit per output mode (batch/complete: everything;
  // append: finals of windows closed by the watermark; update: changed
  // minus evicted), evicting closed windows along the way.
  auto apply_shard = [&](StateShardProtocol* shard, const ChangedMap& changed,
                         std::vector<Row>& out_rows) -> Status {
    for (const auto& [enc, state] : changed) {
      std::string buf;
      EncodeRow(state, &buf);
      shard->Put(enc, std::move(buf));
    }

    if (ctx->is_batch) {
      // One-shot batch run: emit everything, no eviction needed.
      Status iter_status;
      shard->ForEach([&](const std::string& k, const std::string& v) {
        auto state = DecodeRow(v);
        if (!state.ok()) {
          iter_status = state.status();
          return;
        }
        auto row = finalize(k, *state);
        if (!row.ok()) {
          iter_status = row.status();
          return;
        }
        out_rows.push_back(std::move(*row));
      });
      return iter_status;
    }

    // Eviction of closed windows (and append-mode emission of their
    // finals), shard-local.
    std::vector<std::string> evict;
    if (windowed && watermark != INT64_MIN) {
      Status iter_status;
      shard->ForEach([&](const std::string& k, const std::string& v) {
        auto key = DecodeRow(k);
        if (!key.ok()) {
          iter_status = key.status();
          return;
        }
        int64_t wstart =
            (*key)[static_cast<size_t>(window_key_index_)].int64_value();
        if (wstart + window_size <= watermark) {
          if (ctx->mode == OutputMode::kAppend) {
            auto state = DecodeRow(v);
            if (!state.ok()) {
              iter_status = state.status();
              return;
            }
            auto row = finalize(k, *state);
            if (!row.ok()) {
              iter_status = row.status();
              return;
            }
            out_rows.push_back(std::move(*row));
          }
          evict.push_back(k);
        }
      });
      SS_RETURN_IF_ERROR(iter_status);
      for (const std::string& k : evict) shard->Remove(k);
    }

    if (ctx->mode == OutputMode::kUpdate) {
      std::unordered_set<std::string> evicted(evict.begin(), evict.end());
      for (const auto& [enc, state] : changed) {
        if (evicted.count(enc)) continue;  // closed; never re-emit
        SS_ASSIGN_OR_RETURN(Row row, finalize(enc, state));
        out_rows.push_back(std::move(row));
      }
    } else if (ctx->mode == OutputMode::kComplete) {
      Status iter_status;
      shard->ForEach([&](const std::string& k, const std::string& v) {
        auto state = DecodeRow(v);
        if (!state.ok()) {
          iter_status = state.status();
          return;
        }
        auto row = finalize(k, *state);
        if (!row.ok()) {
          iter_status = row.status();
          return;
        }
        out_rows.push_back(std::move(*row));
      });
      SS_RETURN_IF_ERROR(iter_status);
    }
    return Status::OK();
  };

  // When partition parallelism alone saturates the scheduler, per-shard
  // tasks buy no extra concurrency and the staged split's key
  // materialization is an extra full pass over the data for nothing. Fuse
  // instead: one task per partition routes rows straight into per-shard
  // changed maps and applies each shard in index order — byte-identical to
  // the staged path (see the ChangedMap note above).
  const bool fused = ctx->scheduler->parallelism() <= static_cast<int>(P);
  if (fused) {
    std::vector<std::function<Status()>> tasks;
    for (size_t p = 0; p < P; ++p) {
      const int S = stores[p]->num_shards();
      const int64_t n = in[p]->num_rows();
      work[p].shard_rows.resize(static_cast<size_t>(S));
      tasks.push_back([this, &work, &stores, &apply_shard, p, S, n, windowed,
                       watermark, window_size, needs_args]() -> Status {
        PartitionWork& w = work[p];
        std::vector<ChangedMap> changed(static_cast<size_t>(S));
        Row args(aggregates_.size());  // all-null is correct for count(*)
        std::vector<int64_t> window_starts;
        std::string enc;
        for (int64_t i = 0; i < n; ++i) {
          window_starts.clear();
          if (windowed) {
            const Column& time_col =
                *w.key_cols[static_cast<size_t>(window_key_index_)];
            if (time_col.IsNull(i)) continue;  // no event time -> no window
            window_expr_->EnumerateWindowStarts(time_col.Int64At(i),
                                                &window_starts);
          } else {
            window_starts.push_back(0);  // one dummy iteration
          }
          if (needs_args) {
            for (size_t a = 0; a < aggregates_.size(); ++a) {
              if (aggregates_[a].func != AggFunc::kCountAll) {
                args[a] = w.arg_cols[a]->ValueAt(i);
              }
            }
          }
          for (int64_t wstart : window_starts) {
            if (windowed && watermark != INT64_MIN &&
                wstart + window_size <= watermark) {
              continue;  // late data for an already-closed window: dropped
            }
            enc.clear();
            enc.push_back(static_cast<char>(group_exprs_.size()));
            for (size_t g = 0; g < group_exprs_.size(); ++g) {
              if (static_cast<int>(g) == window_key_index_) {
                enc.push_back(static_cast<char>(TypeId::kTimestamp));
                char buf[8];
                std::memcpy(buf, &wstart, 8);
                enc.append(buf, 8);
              } else if (const KeyDict* dict = w.key_dicts[g].get()) {
                enc.append(
                    dict->encoded[static_cast<size_t>(
                        dict->codes[static_cast<size_t>(i)])]);
              } else {
                w.key_cols[g]->EncodeValueTo(i, &enc);
              }
            }
            const int s = ShardOfKey(enc, S);
            ChangedMap& cm = changed[static_cast<size_t>(s)];
            auto it = cm.find(enc);
            if (it == cm.end()) {
              Row state;
              std::optional<std::string> stored =
                  stores[p]->shard(s)->Get(enc);
              if (stored.has_value()) {
                SS_ASSIGN_OR_RETURN(state, DecodeRow(*stored));
              } else {
                state = InitAggState(aggregates_);
              }
              it = cm.emplace(enc, std::move(state)).first;
            }
            UpdateAggState(aggregates_, args, &it->second);
          }
        }
        for (int s = 0; s < S; ++s) {
          SS_RETURN_IF_ERROR(
              apply_shard(stores[p]->shard(s), changed[static_cast<size_t>(s)],
                          w.shard_rows[static_cast<size_t>(s)]));
        }
        return Status::OK();
      });
    }
    SS_RETURN_IF_ERROR(ctx->RunStage(op_id_, name(), std::move(tasks)));
  }

  // Stage 2 [split]: enumerate window starts, drop late rows, serialize
  // each row's group key (byte-identical to EncodeRow but without boxing),
  // and route it to a shard bucket by key hash. Chunked so one big
  // partition still splits in parallel. Skipped on the fused path.
  if (!fused) {
    std::vector<std::function<Status()>> tasks;
    for (size_t p = 0; p < P; ++p) {
      const int S = stores[p]->num_shards();
      const int64_t n = in[p]->num_rows();
      work[p].chunks = SplitChunks(n, S);
      work[p].buckets.resize(static_cast<size_t>(work[p].chunks) *
                             static_cast<size_t>(S));
      work[p].shard_rows.resize(static_cast<size_t>(S));
      const int C = work[p].chunks;
      const int64_t per = (n + C - 1) / C;
      for (int c = 0; c < C; ++c) {
        const int64_t lo = c * per;
        const int64_t hi = std::min(n, lo + per);
        tasks.push_back([this, &work, p, c, lo, hi, S, windowed, watermark,
                         window_size]() -> Status {
          PartitionWork& w = work[p];
          KeyedEntries* buckets =
              &w.buckets[static_cast<size_t>(c) * static_cast<size_t>(S)];
          std::vector<int64_t> window_starts;
          std::string enc;
          for (int64_t i = lo; i < hi; ++i) {
            window_starts.clear();
            if (windowed) {
              const Column& time_col =
                  *w.key_cols[static_cast<size_t>(window_key_index_)];
              if (time_col.IsNull(i)) continue;  // no event time -> no window
              window_expr_->EnumerateWindowStarts(time_col.Int64At(i),
                                                  &window_starts);
            } else {
              window_starts.push_back(0);  // one dummy iteration
            }
            for (int64_t wstart : window_starts) {
              if (windowed && watermark != INT64_MIN &&
                  wstart + window_size <= watermark) {
                continue;  // late data for an already-closed window: dropped
              }
              enc.clear();
              enc.push_back(static_cast<char>(group_exprs_.size()));
              for (size_t g = 0; g < group_exprs_.size(); ++g) {
                if (static_cast<int>(g) == window_key_index_) {
                  enc.push_back(static_cast<char>(TypeId::kTimestamp));
                  char buf[8];
                  std::memcpy(buf, &wstart, 8);
                  enc.append(buf, 8);
                } else if (const KeyDict* dict = w.key_dicts[g].get()) {
                  enc.append(
                      dict->encoded[static_cast<size_t>(
                          dict->codes[static_cast<size_t>(i)])]);
                } else {
                  w.key_cols[g]->EncodeValueTo(i, &enc);
                }
              }
              buckets[ShardOfKey(enc, S)].Add(i, wstart, enc);
            }
          }
          return Status::OK();
        });
      }
    }
    SS_RETURN_IF_ERROR(ctx->RunStage(op_id_,
        name() + "[split]",
        CoalesceTasks(std::move(tasks), ShardStageTaskCap(ctx, P))));
  }

  // Stage 3: fold each shard's bucketed rows into its state and emit. One
  // task per (partition, shard); a shard is only touched by its own task.
  // Skipped on the fused path.
  if (!fused) {
    std::vector<std::function<Status()>> tasks;
    for (size_t p = 0; p < P; ++p) {
      const int S = stores[p]->num_shards();
      for (int s = 0; s < S; ++s) {
        tasks.push_back([this, &work, &stores, &apply_shard, p, s, S,
                         needs_args]() -> Status {
          PartitionWork& w = work[p];
          StateShardProtocol* shard = stores[p]->shard(s);
          ChangedMap changed;
          Row args(aggregates_.size());  // all-null is correct for count(*)
          for (int c = 0; c < w.chunks; ++c) {
            const KeyedEntries& bucket =
                w.buckets[static_cast<size_t>(c) * static_cast<size_t>(S) +
                          static_cast<size_t>(s)];
            SS_RETURN_IF_ERROR(ForEachEntry(
                bucket,
                [&](int32_t i, int64_t, std::string_view enc) -> Status {
                  if (needs_args) {
                    for (size_t a = 0; a < aggregates_.size(); ++a) {
                      if (aggregates_[a].func != AggFunc::kCountAll) {
                        args[a] = w.arg_cols[a]->ValueAt(i);
                      }
                    }
                  }
                  auto it = changed.find(enc);
                  if (it == changed.end()) {
                    std::string key(enc);
                    Row state;
                    std::optional<std::string> stored = shard->Get(key);
                    if (stored.has_value()) {
                      SS_ASSIGN_OR_RETURN(state, DecodeRow(*stored));
                    } else {
                      state = InitAggState(aggregates_);
                    }
                    it = changed.emplace(std::move(key), std::move(state))
                             .first;
                  }
                  UpdateAggState(aggregates_, args, &it->second);
                  return Status::OK();
                }));
          }
          return apply_shard(shard, changed,
                             w.shard_rows[static_cast<size_t>(s)]);
        });
      }
    }
    SS_RETURN_IF_ERROR(ctx->RunStage(op_id_,
        name(), CoalesceTasks(std::move(tasks), ShardStageTaskCap(ctx, P))));
  }

  // Deterministic merge: shard outputs concatenated in shard-index order.
  std::vector<RecordBatchPtr> out(P);
  for (size_t p = 0; p < P; ++p) {
    std::vector<Row> merged;
    size_t total = 0;
    for (const auto& sr : work[p].shard_rows) total += sr.size();
    merged.reserve(total);
    for (auto& sr : work[p].shard_rows) {
      merged.insert(merged.end(), std::make_move_iterator(sr.begin()),
                    std::make_move_iterator(sr.end()));
    }
    SS_ASSIGN_OR_RETURN(out[p], RecordBatch::FromRows(schema_, merged));
  }
  return out;
}

// ---------------------------------------------------------------------------
// DedupExec
// ---------------------------------------------------------------------------

DedupExec::DedupExec(int op_id, PhysOpPtr child)
    : PhysOp(op_id, child->schema(), {child}) {}

Result<std::vector<RecordBatchPtr>> DedupExec::ExecuteImpl(ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  // Materialize-on-demand boundary: stateful operators evaluate
  // expressions and encode state keys over whole batches, so selection
  // views compact here (docs/VECTORIZED_EXEC.md).
  for (RecordBatchPtr& b : in) b = RecordBatch::Materialize(b);
  const size_t P = in.size();
  std::vector<ShardedStateStore*> stores(P);
  for (size_t p = 0; p < P; ++p) {
    SS_ASSIGN_OR_RETURN(stores[p],
                        ctx->state->GetStore(op_id_, static_cast<int>(p)));
  }

  struct PartitionWork {
    int chunks = 1;
    std::vector<KeyedEntries> buckets;  // chunks x shards
    std::vector<uint8_t> mask;
  };
  std::vector<PartitionWork> work(P);

  // Split: encode each row (the dedup key is the whole row) and route it to
  // a shard bucket.
  {
    std::vector<std::function<Status()>> tasks;
    for (size_t p = 0; p < P; ++p) {
      const int S = stores[p]->num_shards();
      const int64_t n = in[p]->num_rows();
      work[p].chunks = SplitChunks(n, S);
      work[p].buckets.resize(static_cast<size_t>(work[p].chunks) *
                             static_cast<size_t>(S));
      work[p].mask.assign(static_cast<size_t>(n), 0);
      const int C = work[p].chunks;
      const int64_t per = (n + C - 1) / C;
      for (int c = 0; c < C; ++c) {
        const int64_t lo = c * per;
        const int64_t hi = std::min(n, lo + per);
        tasks.push_back([&in, &work, p, c, lo, hi, S]() -> Status {
          KeyedEntries* buckets =
              &work[p].buckets[static_cast<size_t>(c) *
                               static_cast<size_t>(S)];
          std::string enc;
          for (int64_t i = lo; i < hi; ++i) {
            enc.clear();
            EncodeRow(in[p]->RowAt(i), &enc);
            buckets[ShardOfKey(enc, S)].Add(i, 0, enc);
          }
          return Status::OK();
        });
      }
    }
    SS_RETURN_IF_ERROR(ctx->RunStage(op_id_,
        name() + "[split]",
        CoalesceTasks(std::move(tasks), ShardStageTaskCap(ctx, P))));
  }

  // Probe: each shard task marks its first-seen rows in the partition's
  // shared mask. Writes land on disjoint bytes (a row routes to exactly one
  // shard), and the mask preserves input order, so the output is
  // byte-identical whatever the shard count.
  {
    std::vector<std::function<Status()>> tasks;
    for (size_t p = 0; p < P; ++p) {
      const int S = stores[p]->num_shards();
      for (int s = 0; s < S; ++s) {
        tasks.push_back([&work, &stores, p, s, S]() -> Status {
          StateShardProtocol* shard = stores[p]->shard(s);
          PartitionWork& w = work[p];
          for (int c = 0; c < w.chunks; ++c) {
            SS_RETURN_IF_ERROR(ForEachEntry(
                w.buckets[static_cast<size_t>(c) * static_cast<size_t>(S) +
                          static_cast<size_t>(s)],
                [&](int32_t i, int64_t, std::string_view enc) -> Status {
                  std::string key(enc);
                  if (!shard->Contains(key)) {
                    shard->Put(key, "");
                    w.mask[static_cast<size_t>(i)] = 1;
                  }
                  return Status::OK();
                }));
          }
          return Status::OK();
        });
      }
    }
    SS_RETURN_IF_ERROR(ctx->RunStage(op_id_,
        name(), CoalesceTasks(std::move(tasks), ShardStageTaskCap(ctx, P))));
  }

  std::vector<RecordBatchPtr> out(P);
  for (size_t p = 0; p < P; ++p) out[p] = in[p]->Filter(work[p].mask);
  return out;
}

// ---------------------------------------------------------------------------
// StreamStaticJoinExec
// ---------------------------------------------------------------------------

StreamStaticJoinExec::StreamStaticJoinExec(
    int op_id, PhysOpPtr stream_child, SchemaPtr out_schema,
    std::vector<ExprPtr> stream_keys, SchemaPtr static_schema,
    std::vector<Row> static_rows, std::vector<ExprPtr> static_keys,
    std::vector<int> stream_output_indices,
    std::vector<int> static_output_indices, bool stream_first,
    bool preserve_stream, std::vector<std::pair<int, int>> static_from_stream)
    : PhysOp(op_id, std::move(out_schema), {std::move(stream_child)}),
      stream_keys_(std::move(stream_keys)),
      static_schema_(std::move(static_schema)),
      stream_output_indices_(std::move(stream_output_indices)),
      static_output_indices_(std::move(static_output_indices)),
      stream_first_(stream_first),
      preserve_stream_(preserve_stream),
      static_from_stream_(std::move(static_from_stream)) {
  // Materialize the static side into a broadcast hash table once.
  for (Row& row : static_rows) {
    Row key;
    key.reserve(static_keys.size());
    for (const ExprPtr& e : static_keys) {
      auto v = e->EvalRow(row);
      SS_CHECK(v.ok()) << v.status().ToString();
      key.push_back(std::move(*v));
    }
    static_by_key_[std::move(key)].push_back(std::move(row));
  }
  // Unboxed probe index for a single int64-backed key.
  if (stream_keys_.size() == 1) {
    int64_key_ = true;
    for (const auto& [key, rows] : static_by_key_) {
      if (PhysicalKindOf(key[0].type()) != PhysicalKind::kInt64) {
        int64_key_ = false;
        break;
      }
      auto& bucket = static_by_int64_[key[0].int64_value()];
      for (const Row& r : rows) bucket.push_back(&r);
    }
    if (!int64_key_) static_by_int64_.clear();
  }
}

Result<std::vector<RecordBatchPtr>> StreamStaticJoinExec::ExecuteImpl(
    ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  // Materialize-on-demand boundary: join probing evaluates key expressions
  // over whole batches, so selection views compact here.
  for (RecordBatchPtr& b : in) b = RecordBatch::Materialize(b);
  std::vector<RecordBatchPtr> out(in.size());
  std::vector<std::function<Status()>> tasks;
  for (size_t p = 0; p < in.size(); ++p) {
    tasks.push_back([this, &in, &out, p]() -> Status {
      SS_ASSIGN_OR_RETURN(RecordBatchPtr batch, ExecutePartition(*in[p]));
      out[p] = std::move(batch);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->RunStage(op_id_, name(), std::move(tasks)));
  return out;
}

Result<RecordBatchPtr> StreamStaticJoinExec::ExecutePartition(
    const RecordBatch& input) {
  const int64_t n = input.num_rows();
  // Vectorized key evaluation, then per-row hash probe; output columns are
  // gathered typed (no per-cell boxing for the stream side).
  std::vector<ColumnPtr> key_cols(stream_keys_.size());
  for (size_t k = 0; k < stream_keys_.size(); ++k) {
    SS_ASSIGN_OR_RETURN(key_cols[k], stream_keys_[k]->EvalBatch(input));
  }
  std::vector<int64_t> emit_stream_index;
  std::vector<const Row*> emit_static_row;  // nullptr = null-padded
  if (int64_key_ &&
      PhysicalKindOf(key_cols[0]->type()) == PhysicalKind::kInt64) {
    // Unboxed probe on the single int64 key.
    const Column& kc = *key_cols[0];
    for (int64_t i = 0; i < n; ++i) {
      if (!kc.IsNull(i)) {
        auto it = static_by_int64_.find(kc.Int64At(i));
        if (it != static_by_int64_.end()) {
          for (const Row* match : it->second) {
            emit_stream_index.push_back(i);
            emit_static_row.push_back(match);
          }
          continue;
        }
      }
      if (preserve_stream_) {
        emit_stream_index.push_back(i);
        emit_static_row.push_back(nullptr);
      }
    }
  } else {
    Row key(stream_keys_.size());
    for (int64_t i = 0; i < n; ++i) {
      for (size_t k = 0; k < key_cols.size(); ++k) {
        key[k] = key_cols[k]->ValueAt(i);
      }
      auto it = static_by_key_.find(key);
      if (it != static_by_key_.end()) {
        for (const Row& match : it->second) {
          emit_stream_index.push_back(i);
          emit_static_row.push_back(&match);
        }
      } else if (preserve_stream_) {
        emit_stream_index.push_back(i);
        emit_static_row.push_back(nullptr);
      }
    }
  }

  // Build output columns.
  auto build_stream_column = [&](int src_idx) {
    const Column& src = *input.column(src_idx);
    ColumnPtr dst = Column::Make(src.type());
    dst->Reserve(static_cast<int64_t>(emit_stream_index.size()));
    for (int64_t i : emit_stream_index) AppendFromColumn(src, i, dst.get());
    return dst;
  };
  auto build_static_column = [&](int src_idx, TypeId type) {
    // USING-join key coalescing: take the stream's key value when there is
    // no static match (see constructor comment).
    int coalesce_from = -1;
    for (const auto& [static_idx, stream_idx] : static_from_stream_) {
      if (static_idx == src_idx) coalesce_from = stream_idx;
    }
    ColumnPtr dst = Column::Make(type);
    dst->Reserve(static_cast<int64_t>(emit_static_row.size()));
    for (size_t e = 0; e < emit_static_row.size(); ++e) {
      const Row* row = emit_static_row[e];
      if (row != nullptr) {
        dst->AppendValue((*row)[static_cast<size_t>(src_idx)]);
      } else if (coalesce_from >= 0) {
        dst->AppendFrom(*input.column(coalesce_from), emit_stream_index[e]);
      } else {
        dst->AppendNull();
      }
    }
    return dst;
  };

  std::vector<ColumnPtr> columns;
  columns.reserve(static_cast<size_t>(schema_->num_fields()));
  if (stream_first_) {
    for (int idx : stream_output_indices_) {
      columns.push_back(build_stream_column(idx));
    }
    for (int idx : static_output_indices_) {
      columns.push_back(
          build_static_column(idx, static_schema_->field(idx).type));
    }
  } else {
    for (int idx : static_output_indices_) {
      columns.push_back(
          build_static_column(idx, static_schema_->field(idx).type));
    }
    for (int idx : stream_output_indices_) {
      columns.push_back(build_stream_column(idx));
    }
  }
  return RecordBatch::Make(schema_, std::move(columns));
}

// ---------------------------------------------------------------------------
// StreamStreamJoinExec
// ---------------------------------------------------------------------------

namespace {

// State value codec for one join side's rows under one key:
// repeated [matched byte][encoded row].
std::string EncodeSideRows(const std::vector<std::pair<bool, Row>>& rows) {
  std::string out;
  for (const auto& [matched, row] : rows) {
    out.push_back(matched ? 1 : 0);
    EncodeRow(row, &out);
  }
  return out;
}

Result<std::vector<std::pair<bool, Row>>> DecodeSideRows(
    const std::string& data) {
  std::vector<std::pair<bool, Row>> rows;
  size_t pos = 0;
  while (pos < data.size()) {
    bool matched = data[pos++] != 0;
    SS_ASSIGN_OR_RETURN(Row row, DecodeRow(data, &pos));
    rows.emplace_back(matched, std::move(row));
  }
  return rows;
}

}  // namespace

StreamStreamJoinExec::StreamStreamJoinExec(
    int op_id, PhysOpPtr left, PhysOpPtr right, SchemaPtr out_schema,
    std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
    JoinType join_type, std::vector<int> right_output_indices,
    int left_time_index, int right_time_index,
    std::vector<std::pair<int, int>> left_from_right)
    : PhysOp(op_id, std::move(out_schema), {left, right}),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      join_type_(join_type),
      right_output_indices_(std::move(right_output_indices)),
      left_time_index_(left_time_index),
      right_time_index_(right_time_index),
      left_from_right_(std::move(left_from_right)) {
  left_arity_ = children_[0]->schema()->num_fields();
}

Row StreamStreamJoinExec::JoinedRow(const Row* left, const Row* right) const {
  Row out;
  out.reserve(static_cast<size_t>(schema_->num_fields()));
  if (left != nullptr) {
    out.insert(out.end(), left->begin(), left->end());
  } else {
    out.insert(out.end(), static_cast<size_t>(left_arity_), Value::Null());
    // USING-join key coalescing for null-padded right-outer results.
    if (right != nullptr) {
      for (const auto& [left_idx, right_idx] : left_from_right_) {
        out[static_cast<size_t>(left_idx)] =
            (*right)[static_cast<size_t>(right_idx)];
      }
    }
  }
  for (int idx : right_output_indices_) {
    out.push_back(right != nullptr ? (*right)[static_cast<size_t>(idx)]
                                   : Value::Null());
  }
  return out;
}

Result<std::vector<RecordBatchPtr>> StreamStreamJoinExec::ExecuteImpl(
    ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> left_in,
                      children_[0]->Execute(ctx));
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> right_in,
                      children_[1]->Execute(ctx));
  // Materialize-on-demand boundary (selection views compact here).
  for (RecordBatchPtr& b : left_in) b = RecordBatch::Materialize(b);
  for (RecordBatchPtr& b : right_in) b = RecordBatch::Materialize(b);
  if (left_in.size() != right_in.size()) {
    return Status::Internal("stream-stream join sides not co-partitioned");
  }
  const size_t P = left_in.size();
  std::vector<ShardedStateStore*> stores(P);
  for (size_t p = 0; p < P; ++p) {
    SS_ASSIGN_OR_RETURN(stores[p],
                        ctx->state->GetStore(op_id_, static_cast<int>(p)));
  }

  struct PartitionWork {
    // Per-shard buckets for each side. The shard is chosen by the hash of
    // the join key *without* the 'L'/'R' side byte, so both sides of a key
    // land in the same shard (the join needs them together); store keys
    // keep the side prefix within the shard.
    std::vector<KeyedEntries> left_buckets;
    std::vector<KeyedEntries> right_buckets;
    std::vector<std::vector<Row>> shard_rows;
  };
  std::vector<PartitionWork> work(P);

  // Split stage: evaluate join keys (vectorized) and route each side's rows
  // to shard buckets. One task per (partition, side).
  {
    std::vector<std::function<Status()>> tasks;
    for (size_t p = 0; p < P; ++p) {
      const int S = stores[p]->num_shards();
      work[p].left_buckets.resize(static_cast<size_t>(S));
      work[p].right_buckets.resize(static_cast<size_t>(S));
      work[p].shard_rows.resize(static_cast<size_t>(S));
      for (int side = 0; side < 2; ++side) {
        tasks.push_back([this, &left_in, &right_in, &work, p, side,
                         S]() -> Status {
          const RecordBatch& input =
              side == 0 ? *left_in[p] : *right_in[p];
          const std::vector<ExprPtr>& keys =
              side == 0 ? left_keys_ : right_keys_;
          std::vector<KeyedEntries>& buckets =
              side == 0 ? work[p].left_buckets : work[p].right_buckets;
          std::vector<ColumnPtr> key_cols(keys.size());
          for (size_t k = 0; k < keys.size(); ++k) {
            SS_ASSIGN_OR_RETURN(key_cols[k], keys[k]->EvalBatch(input));
          }
          std::string enc;
          const int64_t n = input.num_rows();
          for (int64_t i = 0; i < n; ++i) {
            enc.clear();
            enc.push_back(static_cast<char>(keys.size()));
            for (size_t k = 0; k < key_cols.size(); ++k) {
              key_cols[k]->EncodeValueTo(i, &enc);
            }
            buckets[static_cast<size_t>(ShardOfKey(enc, S))].Add(i, 0, enc);
          }
          return Status::OK();
        });
      }
    }
    SS_RETURN_IF_ERROR(ctx->RunStage(op_id_,
        name() + "[split]",
        CoalesceTasks(std::move(tasks), ShardStageTaskCap(ctx, P))));
  }

  // Shard stage: the symmetric-hash passes, restricted to each shard's
  // bucketed rows, in input order — so the joined multiset per shard is
  // shard-count-invariant.
  {
    std::vector<std::function<Status()>> tasks;
    for (size_t p = 0; p < P; ++p) {
      const int S = stores[p]->num_shards();
      for (int s = 0; s < S; ++s) {
        tasks.push_back([this, ctx, &left_in, &right_in, &work, &stores, p,
                         s]() -> Status {
          StateShardProtocol* shard = stores[p]->shard(s);
          PartitionWork& w = work[p];
          std::vector<Row>& out_rows = w.shard_rows[static_cast<size_t>(s)];

          // Working cache of decoded side-state. Tracks how many rows were
          // already stored (`base_n`) and whether stored rows changed
          // (`dirty`), so the flush can append just the new suffix for
          // grow-only keys instead of rewriting the value.
          struct CacheEntry {
            std::vector<std::pair<bool, Row>> rows;
            size_t base_n = 0;
            bool dirty = false;
          };
          std::unordered_map<std::string, CacheEntry> cache;
          auto load = [&](const std::string& store_key)
              -> Result<CacheEntry*> {
            auto it = cache.find(store_key);
            if (it == cache.end()) {
              CacheEntry entry;
              std::optional<std::string> stored = shard->Get(store_key);
              if (stored.has_value()) {
                SS_ASSIGN_OR_RETURN(entry.rows, DecodeSideRows(*stored));
                entry.base_n = entry.rows.size();
              }
              it = cache.emplace(store_key, std::move(entry)).first;
            }
            return &it->second;
          };

          // Pass 1: probe new left rows against the stored right side
          // (prior epochs), appending them to left state.
          SS_RETURN_IF_ERROR(ForEachEntry(
              w.left_buckets[static_cast<size_t>(s)],
              [&](int32_t i, int64_t, std::string_view enc) -> Status {
                Row lrow = left_in[p]->RowAt(i);
                std::string lkey = "L";
                lkey.append(enc);
                std::string rkey = lkey;
                rkey[0] = 'R';
                SS_ASSIGN_OR_RETURN(CacheEntry * right_entry, load(rkey));
                bool matched = false;
                for (size_t k = 0; k < right_entry->rows.size(); ++k) {
                  auto& [rmatched, rrow] = right_entry->rows[k];
                  out_rows.push_back(JoinedRow(&lrow, &rrow));
                  if (!rmatched && k < right_entry->base_n) {
                    right_entry->dirty = true;  // stored flag flips
                  }
                  rmatched = true;
                  matched = true;
                }
                SS_ASSIGN_OR_RETURN(CacheEntry * left_entry, load(lkey));
                left_entry->rows.emplace_back(matched, std::move(lrow));
                return Status::OK();
              }));
          // Pass 2: probe new right rows against left state (which now
          // includes this epoch's left rows, covering intra-epoch matches
          // exactly once).
          SS_RETURN_IF_ERROR(ForEachEntry(
              w.right_buckets[static_cast<size_t>(s)],
              [&](int32_t i, int64_t, std::string_view enc) -> Status {
                Row rrow = right_in[p]->RowAt(i);
                std::string rkey = "R";
                rkey.append(enc);
                std::string lkey = rkey;
                lkey[0] = 'L';
                SS_ASSIGN_OR_RETURN(CacheEntry * left_entry, load(lkey));
                bool matched = false;
                for (size_t k = 0; k < left_entry->rows.size(); ++k) {
                  auto& [lmatched, lrow] = left_entry->rows[k];
                  out_rows.push_back(JoinedRow(&lrow, &rrow));
                  if (!lmatched && k < left_entry->base_n) {
                    left_entry->dirty = true;
                  }
                  lmatched = true;
                  matched = true;
                }
                SS_ASSIGN_OR_RETURN(CacheEntry * right_entry, load(rkey));
                right_entry->rows.emplace_back(matched, std::move(rrow));
                return Status::OK();
              }));

          // Watermark-driven eviction: rows whose event time has fallen
          // below the watermark can no longer match. Unmatched rows on a
          // preserved outer side are emitted null-padded exactly once.
          const int64_t watermark = ctx->watermark_micros;
          const bool evicting =
              watermark != INT64_MIN &&
              (left_time_index_ >= 0 || right_time_index_ >= 0);
          if (evicting || ctx->is_batch) {
            // Pull every stored key of this shard into the cache so
            // eviction sees all state.
            std::vector<std::string> all_keys;
            shard->ForEach([&](const std::string& k, const std::string&) {
              all_keys.push_back(k);
            });
            for (const std::string& k : all_keys) {
              SS_RETURN_IF_ERROR(load(k).status());
            }
            for (auto& [store_key, entry] : cache) {
              const bool is_left = store_key[0] == 'L';
              const int time_index =
                  is_left ? left_time_index_ : right_time_index_;
              const bool preserved =
                  (is_left && join_type_ == JoinType::kLeftOuter) ||
                  (!is_left && join_type_ == JoinType::kRightOuter);
              std::vector<std::pair<bool, Row>> kept;
              for (auto& [matched, row] : entry.rows) {
                bool expire;
                if (ctx->is_batch) {
                  expire = true;  // batch run: finalize everything
                } else {
                  expire = time_index >= 0 &&
                           !row[static_cast<size_t>(time_index)].is_null() &&
                           row[static_cast<size_t>(time_index)]
                                   .int64_value() < watermark;
                }
                if (expire) {
                  if (preserved && !matched) {
                    out_rows.push_back(is_left ? JoinedRow(&row, nullptr)
                                               : JoinedRow(nullptr, &row));
                  }
                } else {
                  kept.emplace_back(matched, std::move(row));
                }
              }
              if (kept.size() != entry.rows.size()) entry.dirty = true;
              entry.rows = std::move(kept);
            }
          }

          // Flush: untouched entries are skipped, grow-only entries append
          // their new suffix, everything else is rewritten.
          for (const auto& [store_key, entry] : cache) {
            if (entry.rows.empty()) {
              if (entry.base_n > 0) shard->Remove(store_key);
            } else if (entry.dirty) {
              shard->Put(store_key, EncodeSideRows(entry.rows));
            } else if (entry.rows.size() > entry.base_n) {
              std::string tail;
              for (size_t k = entry.base_n; k < entry.rows.size(); ++k) {
                tail.push_back(entry.rows[k].first ? 1 : 0);
                EncodeRow(entry.rows[k].second, &tail);
              }
              SS_RETURN_IF_ERROR(shard->Append(store_key, tail));
            }
          }
          return Status::OK();
        });
      }
    }
    SS_RETURN_IF_ERROR(ctx->RunStage(op_id_,
        name(), CoalesceTasks(std::move(tasks), ShardStageTaskCap(ctx, P))));
  }

  // Deterministic merge in shard-index order.
  std::vector<RecordBatchPtr> out(P);
  for (size_t p = 0; p < P; ++p) {
    std::vector<Row> merged;
    size_t total = 0;
    for (const auto& sr : work[p].shard_rows) total += sr.size();
    merged.reserve(total);
    for (auto& sr : work[p].shard_rows) {
      merged.insert(merged.end(), std::make_move_iterator(sr.begin()),
                    std::make_move_iterator(sr.end()));
    }
    SS_ASSIGN_OR_RETURN(out[p], RecordBatch::FromRows(schema_, merged));
  }
  return out;
}

// ---------------------------------------------------------------------------
// FlatMapGroupsWithStateExec
// ---------------------------------------------------------------------------

FlatMapGroupsWithStateExec::FlatMapGroupsWithStateExec(
    int op_id, PhysOpPtr child, SchemaPtr out_schema,
    std::vector<NamedExpr> key_exprs, GroupUpdateFn update_fn,
    GroupStateTimeout timeout, bool require_single_output)
    : PhysOp(op_id, std::move(out_schema), {std::move(child)}),
      key_exprs_(std::move(key_exprs)),
      update_fn_(std::move(update_fn)),
      timeout_(timeout),
      require_single_output_(require_single_output) {}

Result<std::vector<RecordBatchPtr>> FlatMapGroupsWithStateExec::ExecuteImpl(
    ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  // Materialize-on-demand boundary (selection views compact here).
  for (RecordBatchPtr& b : in) b = RecordBatch::Materialize(b);
  std::vector<RecordBatchPtr> out(in.size());
  std::vector<std::function<Status()>> tasks;
  for (size_t p = 0; p < in.size(); ++p) {
    tasks.push_back([this, ctx, &in, &out, p]() -> Status {
      SS_ASSIGN_OR_RETURN(
          RecordBatchPtr batch,
          ExecutePartition(ctx, static_cast<int>(p), *in[p]));
      out[p] = std::move(batch);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->RunStage(op_id_, name(), std::move(tasks)));
  return out;
}

Result<RecordBatchPtr> FlatMapGroupsWithStateExec::ExecutePartition(
    ExecContext* ctx, int partition, const RecordBatch& input) {
  SS_ASSIGN_OR_RETURN(ShardedStateStore * store,
                      ctx->state->GetStore(op_id_, partition));
  const int64_t now = ctx->clock != nullptr ? ctx->clock->NowMicros() : 0;
  const int64_t watermark = ctx->watermark_micros;

  // Group the input rows by key.
  std::vector<ColumnPtr> key_cols(key_exprs_.size());
  for (size_t k = 0; k < key_exprs_.size(); ++k) {
    SS_ASSIGN_OR_RETURN(key_cols[k], key_exprs_[k].expr->EvalBatch(input));
  }
  std::map<std::string, std::pair<Row, std::vector<Row>>> groups;
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    Row key(key_exprs_.size());
    for (size_t k = 0; k < key_cols.size(); ++k) {
      key[k] = key_cols[k]->ValueAt(i);
    }
    std::string enc;
    EncodeRow(key, &enc);
    auto& slot = groups[enc];
    slot.first = std::move(key);
    slot.second.push_back(input.RowAt(i));
  }

  std::vector<Row> out_rows;

  // State value codec: [fixed64 timeout_at][encoded user row].
  auto load_state = [&](const std::string& enc)
      -> Result<std::pair<std::optional<Row>, int64_t>> {
    std::optional<std::string> stored = store->Get(enc);
    if (!stored.has_value()) {
      return std::make_pair(std::optional<Row>(), INT64_MAX);
    }
    size_t pos = 0;
    uint64_t timeout_at;
    if (!GetFixed64(*stored, &pos, &timeout_at)) {
      return Status::Internal("corrupt group state");
    }
    SS_ASSIGN_OR_RETURN(Row row, DecodeRow(*stored, &pos));
    return std::make_pair(std::optional<Row>(std::move(row)),
                          static_cast<int64_t>(timeout_at));
  };

  auto invoke = [&](const std::string& enc, const Row& key,
                    const std::vector<Row>& values,
                    bool timed_out) -> Status {
    SS_ASSIGN_OR_RETURN(auto loaded, load_state(enc));
    GroupState state(std::move(loaded.first), watermark, now, timed_out);
    if (!timed_out) {
      // A pre-armed timeout stays armed unless the function re-arms it.
      state.SetTimeoutTimestamp(loaded.second);
    }
    SS_ASSIGN_OR_RETURN(std::vector<Row> results,
                        update_fn_(key, values, &state));
    if (require_single_output_ && results.size() != 1) {
      return Status::InvalidArgument(
          "mapGroupsWithState update function must return exactly one row, "
          "got " + std::to_string(results.size()));
    }
    for (Row& r : results) {
      if (static_cast<int>(r.size()) != schema_->num_fields()) {
        return Status::InvalidArgument(
            "mapGroupsWithState output row arity mismatch");
      }
      out_rows.push_back(std::move(r));
    }
    if (state.removed() || (timed_out && !state.updated())) {
      // Timed-out state that the function did not refresh is dropped
      // (matching Spark: a timeout without update removes nothing
      // automatically, but keeping it would re-fire forever; Spark requires
      // the function to update or remove — we default to remove).
      store->Remove(enc);
    } else if (state.exists()) {
      std::string buf;
      int64_t timeout_at =
          timeout_ == GroupStateTimeout::kNone ? INT64_MAX
                                               : state.timeout_at_micros();
      PutFixed64(&buf, static_cast<uint64_t>(timeout_at));
      EncodeRow(state.get(), &buf);
      store->Put(enc, std::move(buf));
    }
    return Status::OK();
  };

  for (const auto& [enc, group] : groups) {
    SS_RETURN_IF_ERROR(invoke(enc, group.first, group.second, false));
  }

  // Timeout sweep: keys not updated this trigger whose deadline passed
  // (processing time vs. watermark, §4.3.2).
  if (timeout_ != GroupStateTimeout::kNone && !ctx->is_batch) {
    const int64_t deadline_clock =
        timeout_ == GroupStateTimeout::kProcessingTime ? now : watermark;
    std::vector<std::pair<std::string, Row>> timed_out_keys;
    Status iter_status;
    store->ForEach([&](const std::string& enc, const std::string& v) {
      if (groups.count(enc)) return;
      size_t pos = 0;
      uint64_t timeout_at;
      if (!GetFixed64(v, &pos, &timeout_at)) {
        iter_status = Status::Internal("corrupt group state");
        return;
      }
      if (deadline_clock != INT64_MIN &&
          static_cast<int64_t>(timeout_at) <= deadline_clock) {
        auto key = DecodeRow(enc);
        if (!key.ok()) {
          iter_status = key.status();
          return;
        }
        timed_out_keys.emplace_back(enc, std::move(*key));
      }
    });
    SS_RETURN_IF_ERROR(iter_status);
    for (const auto& [enc, key] : timed_out_keys) {
      SS_RETURN_IF_ERROR(invoke(enc, key, {}, true));
    }
  }
  return RecordBatch::FromRows(schema_, out_rows);
}

}  // namespace sstreaming

#include "physical/stateful_ops.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace sstreaming {

namespace {

// Appends value i of src to dst with matching physical type (no boxing).
void AppendFromColumn(const Column& src, int64_t i, Column* dst) {
  if (src.IsNull(i)) {
    dst->AppendNull();
    return;
  }
  switch (PhysicalKindOf(src.type())) {
    case PhysicalKind::kBool:
      dst->AppendBool(src.BoolAt(i));
      break;
    case PhysicalKind::kInt64:
      dst->AppendInt64(src.Int64At(i));
      break;
    case PhysicalKind::kFloat64:
      dst->AppendFloat64(src.Float64At(i));
      break;
    case PhysicalKind::kString:
      dst->AppendString(src.StringAt(i));
      break;
    case PhysicalKind::kNone:
      dst->AppendNull();
      break;
  }
}

void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool GetFixed64(const std::string& data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// StatefulAggExec
// ---------------------------------------------------------------------------

StatefulAggExec::StatefulAggExec(int op_id, PhysOpPtr child,
                                 SchemaPtr out_schema,
                                 std::vector<NamedExpr> group_exprs,
                                 std::vector<AggSpec> aggregates)
    : PhysOp(op_id, std::move(out_schema), {std::move(child)}),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)) {
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (group_exprs_[i].expr->kind() == Expr::Kind::kWindow) {
      window_key_index_ = static_cast<int>(i);
      window_expr_ = static_cast<const WindowExpr*>(group_exprs_[i].expr.get());
    }
  }
}

int StatefulAggExec::num_output_key_columns() const {
  int n = 0;
  for (const NamedExpr& g : group_exprs_) {
    n += g.expr->kind() == Expr::Kind::kWindow ? 2 : 1;
  }
  return n;
}

Result<std::vector<RecordBatchPtr>> StatefulAggExec::ExecuteImpl(
    ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  std::vector<RecordBatchPtr> out(in.size());
  std::vector<std::function<Status()>> tasks;
  for (size_t p = 0; p < in.size(); ++p) {
    tasks.push_back([this, ctx, &in, &out, p]() -> Status {
      SS_ASSIGN_OR_RETURN(
          RecordBatchPtr batch,
          ExecutePartition(ctx, static_cast<int>(p), *in[p]));
      out[p] = std::move(batch);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->scheduler->RunStage(name(), std::move(tasks)));
  return out;
}

Result<RecordBatchPtr> StatefulAggExec::ExecutePartition(
    ExecContext* ctx, int partition, const RecordBatch& input) {
  SS_ASSIGN_OR_RETURN(StateStore * store,
                      ctx->state->GetStore(op_id_, partition));
  const int64_t n = input.num_rows();
  const bool windowed = window_expr_ != nullptr;
  const int64_t watermark = ctx->watermark_micros;
  const int64_t window_size = windowed ? window_expr_->size_micros() : 0;

  // Evaluate group-key inputs: the window's time column for the window key,
  // the expression itself for scalar keys.
  std::vector<ColumnPtr> key_cols(group_exprs_.size());
  for (size_t g = 0; g < group_exprs_.size(); ++g) {
    const ExprPtr& e = group_exprs_[g].expr;
    if (static_cast<int>(g) == window_key_index_) {
      SS_ASSIGN_OR_RETURN(key_cols[g], window_expr_->time()->EvalBatch(input));
    } else {
      SS_ASSIGN_OR_RETURN(key_cols[g], e->EvalBatch(input));
    }
  }
  // Evaluate aggregate arguments.
  std::vector<ColumnPtr> arg_cols(aggregates_.size());
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    if (aggregates_[a].func == AggFunc::kCountAll) continue;
    SS_ASSIGN_OR_RETURN(arg_cols[a], aggregates_[a].arg->EvalBatch(input));
  }

  // Fold rows into per-key running state (cache writes, flush once). The
  // key is serialized directly from the key columns (byte-identical to
  // EncodeRow but without boxing) — this loop is the engine's hot path.
  std::unordered_map<std::string, Row> changed;
  const bool needs_args = [&] {
    for (const AggSpec& a : aggregates_) {
      if (a.func != AggFunc::kCountAll) return true;
    }
    return false;
  }();
  Row args(aggregates_.size());  // all-null is correct for count(*)
  std::vector<int64_t> window_starts;
  std::string enc;
  for (int64_t i = 0; i < n; ++i) {
    if (needs_args) {
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        if (aggregates_[a].func != AggFunc::kCountAll) {
          args[a] = arg_cols[a]->ValueAt(i);
        }
      }
    }
    window_starts.clear();
    if (windowed) {
      const Column& time_col = *key_cols[static_cast<size_t>(
          window_key_index_)];
      if (time_col.IsNull(i)) continue;  // no event time -> no window
      window_expr_->EnumerateWindowStarts(time_col.Int64At(i),
                                          &window_starts);
    } else {
      window_starts.push_back(0);  // one dummy iteration
    }
    for (int64_t wstart : window_starts) {
      if (windowed && watermark != INT64_MIN &&
          wstart + window_size <= watermark) {
        continue;  // late data for an already-closed window: dropped
      }
      enc.clear();
      enc.push_back(static_cast<char>(group_exprs_.size()));
      for (size_t g = 0; g < group_exprs_.size(); ++g) {
        if (static_cast<int>(g) == window_key_index_) {
          enc.push_back(static_cast<char>(TypeId::kTimestamp));
          char buf[8];
          std::memcpy(buf, &wstart, 8);
          enc.append(buf, 8);
        } else {
          key_cols[g]->EncodeValueTo(i, &enc);
        }
      }
      auto it = changed.find(enc);
      if (it == changed.end()) {
        Row state;
        std::optional<std::string> stored = store->Get(enc);
        if (stored.has_value()) {
          SS_ASSIGN_OR_RETURN(state, DecodeRow(*stored));
        } else {
          state = InitAggState(aggregates_);
        }
        it = changed.emplace(enc, std::move(state)).first;
      }
      UpdateAggState(aggregates_, args, &it->second);
    }
  }
  for (const auto& [enc, state] : changed) {
    std::string buf;
    EncodeRow(state, &buf);
    store->Put(enc, std::move(buf));
  }

  // Build output per sink mode.
  auto finalize = [&](const std::string& enc_key,
                      const Row& state) -> Result<Row> {
    SS_ASSIGN_OR_RETURN(Row key, DecodeRow(enc_key));
    Row out_row;
    for (size_t g = 0; g < key.size(); ++g) {
      if (static_cast<int>(g) == window_key_index_) {
        out_row.push_back(key[g]);  // window_start
        out_row.push_back(Value::Timestamp(key[g].int64_value() +
                                           window_size));  // window_end
      } else {
        out_row.push_back(key[g]);
      }
    }
    Row finals = FinalizeAggState(aggregates_, state);
    out_row.insert(out_row.end(), finals.begin(), finals.end());
    return out_row;
  };

  std::vector<Row> out_rows;
  if (ctx->is_batch) {
    // One-shot batch run: emit everything, no eviction needed.
    Status iter_status;
    store->ForEach([&](const std::string& k, const std::string& v) {
      auto state = DecodeRow(v);
      if (!state.ok()) {
        iter_status = state.status();
        return;
      }
      auto row = finalize(k, *state);
      if (!row.ok()) {
        iter_status = row.status();
        return;
      }
      out_rows.push_back(std::move(*row));
    });
    SS_RETURN_IF_ERROR(iter_status);
    return RecordBatch::FromRows(schema_, out_rows);
  }

  // Eviction of closed windows (and append-mode emission of their finals).
  std::vector<std::string> evict;
  if (windowed && watermark != INT64_MIN) {
    Status iter_status;
    store->ForEach([&](const std::string& k, const std::string& v) {
      auto key = DecodeRow(k);
      if (!key.ok()) {
        iter_status = key.status();
        return;
      }
      int64_t wstart =
          (*key)[static_cast<size_t>(window_key_index_)].int64_value();
      if (wstart + window_size <= watermark) {
        if (ctx->mode == OutputMode::kAppend) {
          auto state = DecodeRow(v);
          if (!state.ok()) {
            iter_status = state.status();
            return;
          }
          auto row = finalize(k, *state);
          if (!row.ok()) {
            iter_status = row.status();
            return;
          }
          out_rows.push_back(std::move(*row));
        }
        evict.push_back(k);
      }
    });
    SS_RETURN_IF_ERROR(iter_status);
    for (const std::string& k : evict) store->Remove(k);
  }

  if (ctx->mode == OutputMode::kUpdate) {
    std::unordered_set<std::string> evicted(evict.begin(), evict.end());
    for (const auto& [enc, state] : changed) {
      if (evicted.count(enc)) continue;  // closed this epoch; never re-emit
      SS_ASSIGN_OR_RETURN(Row row, finalize(enc, state));
      out_rows.push_back(std::move(row));
    }
  } else if (ctx->mode == OutputMode::kComplete) {
    Status iter_status;
    store->ForEach([&](const std::string& k, const std::string& v) {
      auto state = DecodeRow(v);
      if (!state.ok()) {
        iter_status = state.status();
        return;
      }
      auto row = finalize(k, *state);
      if (!row.ok()) {
        iter_status = row.status();
        return;
      }
      out_rows.push_back(std::move(*row));
    });
    SS_RETURN_IF_ERROR(iter_status);
  }
  return RecordBatch::FromRows(schema_, out_rows);
}

// ---------------------------------------------------------------------------
// DedupExec
// ---------------------------------------------------------------------------

DedupExec::DedupExec(int op_id, PhysOpPtr child)
    : PhysOp(op_id, child->schema(), {child}) {}

Result<std::vector<RecordBatchPtr>> DedupExec::ExecuteImpl(ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  std::vector<RecordBatchPtr> out(in.size());
  std::vector<std::function<Status()>> tasks;
  for (size_t p = 0; p < in.size(); ++p) {
    tasks.push_back([this, ctx, &in, &out, p]() -> Status {
      SS_ASSIGN_OR_RETURN(StateStore * store,
                          ctx->state->GetStore(op_id_, static_cast<int>(p)));
      const RecordBatchPtr& batch = in[p];
      std::vector<uint8_t> mask(static_cast<size_t>(batch->num_rows()), 0);
      for (int64_t i = 0; i < batch->num_rows(); ++i) {
        std::string enc;
        EncodeRow(batch->RowAt(i), &enc);
        if (!store->Contains(enc)) {
          store->Put(enc, "");
          mask[static_cast<size_t>(i)] = 1;
        }
      }
      out[p] = batch->Filter(mask);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->scheduler->RunStage(name(), std::move(tasks)));
  return out;
}

// ---------------------------------------------------------------------------
// StreamStaticJoinExec
// ---------------------------------------------------------------------------

StreamStaticJoinExec::StreamStaticJoinExec(
    int op_id, PhysOpPtr stream_child, SchemaPtr out_schema,
    std::vector<ExprPtr> stream_keys, SchemaPtr static_schema,
    std::vector<Row> static_rows, std::vector<ExprPtr> static_keys,
    std::vector<int> stream_output_indices,
    std::vector<int> static_output_indices, bool stream_first,
    bool preserve_stream, std::vector<std::pair<int, int>> static_from_stream)
    : PhysOp(op_id, std::move(out_schema), {std::move(stream_child)}),
      stream_keys_(std::move(stream_keys)),
      static_schema_(std::move(static_schema)),
      stream_output_indices_(std::move(stream_output_indices)),
      static_output_indices_(std::move(static_output_indices)),
      stream_first_(stream_first),
      preserve_stream_(preserve_stream),
      static_from_stream_(std::move(static_from_stream)) {
  // Materialize the static side into a broadcast hash table once.
  for (Row& row : static_rows) {
    Row key;
    key.reserve(static_keys.size());
    for (const ExprPtr& e : static_keys) {
      auto v = e->EvalRow(row);
      SS_CHECK(v.ok()) << v.status().ToString();
      key.push_back(std::move(*v));
    }
    static_by_key_[std::move(key)].push_back(std::move(row));
  }
  // Unboxed probe index for a single int64-backed key.
  if (stream_keys_.size() == 1) {
    int64_key_ = true;
    for (const auto& [key, rows] : static_by_key_) {
      if (PhysicalKindOf(key[0].type()) != PhysicalKind::kInt64) {
        int64_key_ = false;
        break;
      }
      auto& bucket = static_by_int64_[key[0].int64_value()];
      for (const Row& r : rows) bucket.push_back(&r);
    }
    if (!int64_key_) static_by_int64_.clear();
  }
}

Result<std::vector<RecordBatchPtr>> StreamStaticJoinExec::ExecuteImpl(
    ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  std::vector<RecordBatchPtr> out(in.size());
  std::vector<std::function<Status()>> tasks;
  for (size_t p = 0; p < in.size(); ++p) {
    tasks.push_back([this, &in, &out, p]() -> Status {
      SS_ASSIGN_OR_RETURN(RecordBatchPtr batch, ExecutePartition(*in[p]));
      out[p] = std::move(batch);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->scheduler->RunStage(name(), std::move(tasks)));
  return out;
}

Result<RecordBatchPtr> StreamStaticJoinExec::ExecutePartition(
    const RecordBatch& input) {
  const int64_t n = input.num_rows();
  // Vectorized key evaluation, then per-row hash probe; output columns are
  // gathered typed (no per-cell boxing for the stream side).
  std::vector<ColumnPtr> key_cols(stream_keys_.size());
  for (size_t k = 0; k < stream_keys_.size(); ++k) {
    SS_ASSIGN_OR_RETURN(key_cols[k], stream_keys_[k]->EvalBatch(input));
  }
  std::vector<int64_t> emit_stream_index;
  std::vector<const Row*> emit_static_row;  // nullptr = null-padded
  if (int64_key_ &&
      PhysicalKindOf(key_cols[0]->type()) == PhysicalKind::kInt64) {
    // Unboxed probe on the single int64 key.
    const Column& kc = *key_cols[0];
    for (int64_t i = 0; i < n; ++i) {
      if (!kc.IsNull(i)) {
        auto it = static_by_int64_.find(kc.Int64At(i));
        if (it != static_by_int64_.end()) {
          for (const Row* match : it->second) {
            emit_stream_index.push_back(i);
            emit_static_row.push_back(match);
          }
          continue;
        }
      }
      if (preserve_stream_) {
        emit_stream_index.push_back(i);
        emit_static_row.push_back(nullptr);
      }
    }
  } else {
    Row key(stream_keys_.size());
    for (int64_t i = 0; i < n; ++i) {
      for (size_t k = 0; k < key_cols.size(); ++k) {
        key[k] = key_cols[k]->ValueAt(i);
      }
      auto it = static_by_key_.find(key);
      if (it != static_by_key_.end()) {
        for (const Row& match : it->second) {
          emit_stream_index.push_back(i);
          emit_static_row.push_back(&match);
        }
      } else if (preserve_stream_) {
        emit_stream_index.push_back(i);
        emit_static_row.push_back(nullptr);
      }
    }
  }

  // Build output columns.
  auto build_stream_column = [&](int src_idx) {
    const Column& src = *input.column(src_idx);
    ColumnPtr dst = Column::Make(src.type());
    dst->Reserve(static_cast<int64_t>(emit_stream_index.size()));
    for (int64_t i : emit_stream_index) AppendFromColumn(src, i, dst.get());
    return dst;
  };
  auto build_static_column = [&](int src_idx, TypeId type) {
    // USING-join key coalescing: take the stream's key value when there is
    // no static match (see constructor comment).
    int coalesce_from = -1;
    for (const auto& [static_idx, stream_idx] : static_from_stream_) {
      if (static_idx == src_idx) coalesce_from = stream_idx;
    }
    ColumnPtr dst = Column::Make(type);
    dst->Reserve(static_cast<int64_t>(emit_static_row.size()));
    for (size_t e = 0; e < emit_static_row.size(); ++e) {
      const Row* row = emit_static_row[e];
      if (row != nullptr) {
        dst->AppendValue((*row)[static_cast<size_t>(src_idx)]);
      } else if (coalesce_from >= 0) {
        dst->AppendFrom(*input.column(coalesce_from), emit_stream_index[e]);
      } else {
        dst->AppendNull();
      }
    }
    return dst;
  };

  std::vector<ColumnPtr> columns;
  columns.reserve(static_cast<size_t>(schema_->num_fields()));
  if (stream_first_) {
    for (int idx : stream_output_indices_) {
      columns.push_back(build_stream_column(idx));
    }
    for (int idx : static_output_indices_) {
      columns.push_back(
          build_static_column(idx, static_schema_->field(idx).type));
    }
  } else {
    for (int idx : static_output_indices_) {
      columns.push_back(
          build_static_column(idx, static_schema_->field(idx).type));
    }
    for (int idx : stream_output_indices_) {
      columns.push_back(build_stream_column(idx));
    }
  }
  return RecordBatch::Make(schema_, std::move(columns));
}

// ---------------------------------------------------------------------------
// StreamStreamJoinExec
// ---------------------------------------------------------------------------

namespace {

// State value codec for one join side's rows under one key:
// repeated [matched byte][encoded row].
std::string EncodeSideRows(const std::vector<std::pair<bool, Row>>& rows) {
  std::string out;
  for (const auto& [matched, row] : rows) {
    out.push_back(matched ? 1 : 0);
    EncodeRow(row, &out);
  }
  return out;
}

Result<std::vector<std::pair<bool, Row>>> DecodeSideRows(
    const std::string& data) {
  std::vector<std::pair<bool, Row>> rows;
  size_t pos = 0;
  while (pos < data.size()) {
    bool matched = data[pos++] != 0;
    SS_ASSIGN_OR_RETURN(Row row, DecodeRow(data, &pos));
    rows.emplace_back(matched, std::move(row));
  }
  return rows;
}

}  // namespace

StreamStreamJoinExec::StreamStreamJoinExec(
    int op_id, PhysOpPtr left, PhysOpPtr right, SchemaPtr out_schema,
    std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
    JoinType join_type, std::vector<int> right_output_indices,
    int left_time_index, int right_time_index,
    std::vector<std::pair<int, int>> left_from_right)
    : PhysOp(op_id, std::move(out_schema), {left, right}),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      join_type_(join_type),
      right_output_indices_(std::move(right_output_indices)),
      left_time_index_(left_time_index),
      right_time_index_(right_time_index),
      left_from_right_(std::move(left_from_right)) {
  left_arity_ = children_[0]->schema()->num_fields();
}

Row StreamStreamJoinExec::JoinedRow(const Row* left, const Row* right) const {
  Row out;
  out.reserve(static_cast<size_t>(schema_->num_fields()));
  if (left != nullptr) {
    out.insert(out.end(), left->begin(), left->end());
  } else {
    out.insert(out.end(), static_cast<size_t>(left_arity_), Value::Null());
    // USING-join key coalescing for null-padded right-outer results.
    if (right != nullptr) {
      for (const auto& [left_idx, right_idx] : left_from_right_) {
        out[static_cast<size_t>(left_idx)] =
            (*right)[static_cast<size_t>(right_idx)];
      }
    }
  }
  for (int idx : right_output_indices_) {
    out.push_back(right != nullptr ? (*right)[static_cast<size_t>(idx)]
                                   : Value::Null());
  }
  return out;
}

Result<std::vector<RecordBatchPtr>> StreamStreamJoinExec::ExecuteImpl(
    ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> left_in,
                      children_[0]->Execute(ctx));
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> right_in,
                      children_[1]->Execute(ctx));
  if (left_in.size() != right_in.size()) {
    return Status::Internal("stream-stream join sides not co-partitioned");
  }
  std::vector<RecordBatchPtr> out(left_in.size());
  std::vector<std::function<Status()>> tasks;
  for (size_t p = 0; p < left_in.size(); ++p) {
    tasks.push_back([this, ctx, &left_in, &right_in, &out, p]() -> Status {
      SS_ASSIGN_OR_RETURN(RecordBatchPtr batch,
                          ExecutePartition(ctx, static_cast<int>(p),
                                           *left_in[p], *right_in[p]));
      out[p] = std::move(batch);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->scheduler->RunStage(name(), std::move(tasks)));
  return out;
}

Result<RecordBatchPtr> StreamStreamJoinExec::ExecutePartition(
    ExecContext* ctx, int partition, const RecordBatch& left_input,
    const RecordBatch& right_input) {
  SS_ASSIGN_OR_RETURN(StateStore * store,
                      ctx->state->GetStore(op_id_, partition));
  std::vector<Row> out_rows;

  // Working cache of decoded side-state, flushed at the end.
  std::unordered_map<std::string, std::vector<std::pair<bool, Row>>> cache;
  auto load = [&](const std::string& store_key)
      -> Result<std::vector<std::pair<bool, Row>>*> {
    auto it = cache.find(store_key);
    if (it == cache.end()) {
      std::vector<std::pair<bool, Row>> rows;
      std::optional<std::string> stored = store->Get(store_key);
      if (stored.has_value()) {
        SS_ASSIGN_OR_RETURN(rows, DecodeSideRows(*stored));
      }
      it = cache.emplace(store_key, std::move(rows)).first;
    }
    return &it->second;
  };

  auto key_of = [](const std::vector<ExprPtr>& keys, const Row& row,
                   char side) -> Result<std::string> {
    Row key;
    key.reserve(keys.size());
    for (const ExprPtr& e : keys) {
      SS_ASSIGN_OR_RETURN(Value v, e->EvalRow(row));
      key.push_back(std::move(v));
    }
    std::string enc(1, side);
    EncodeRow(key, &enc);
    return enc;
  };

  // Pass 1: probe new left rows against the stored right side (prior
  // epochs), appending them to left state.
  const int64_t nl = left_input.num_rows();
  for (int64_t i = 0; i < nl; ++i) {
    Row lrow = left_input.RowAt(i);
    SS_ASSIGN_OR_RETURN(std::string lkey, key_of(left_keys_, lrow, 'L'));
    std::string rkey = lkey;
    rkey[0] = 'R';
    SS_ASSIGN_OR_RETURN(auto* right_rows, load(rkey));
    bool matched = false;
    for (auto& [rmatched, rrow] : *right_rows) {
      out_rows.push_back(JoinedRow(&lrow, &rrow));
      rmatched = true;
      matched = true;
    }
    SS_ASSIGN_OR_RETURN(auto* left_rows, load(lkey));
    left_rows->emplace_back(matched, std::move(lrow));
  }
  // Pass 2: probe new right rows against left state (which now includes
  // this epoch's left rows, covering intra-epoch matches exactly once).
  const int64_t nr = right_input.num_rows();
  for (int64_t i = 0; i < nr; ++i) {
    Row rrow = right_input.RowAt(i);
    SS_ASSIGN_OR_RETURN(std::string rkey, key_of(right_keys_, rrow, 'R'));
    std::string lkey = rkey;
    lkey[0] = 'L';
    SS_ASSIGN_OR_RETURN(auto* left_rows, load(lkey));
    bool matched = false;
    for (auto& [lmatched, lrow] : *left_rows) {
      out_rows.push_back(JoinedRow(&lrow, &rrow));
      lmatched = true;
      matched = true;
    }
    SS_ASSIGN_OR_RETURN(auto* right_rows, load(rkey));
    right_rows->emplace_back(matched, std::move(rrow));
  }

  // Watermark-driven eviction: rows whose event time has fallen below the
  // watermark can no longer match. Unmatched rows on a preserved outer side
  // are emitted null-padded exactly once, here.
  const int64_t watermark = ctx->watermark_micros;
  const bool evicting = watermark != INT64_MIN &&
                        (left_time_index_ >= 0 || right_time_index_ >= 0);
  if (evicting || ctx->is_batch) {
    // Ensure every stored key is in the cache so eviction sees all state.
    std::vector<std::string> all_keys;
    store->ForEach([&](const std::string& k, const std::string&) {
      all_keys.push_back(k);
    });
    for (const std::string& k : all_keys) {
      SS_RETURN_IF_ERROR(load(k).status());
    }
    for (auto& [store_key, rows] : cache) {
      const bool is_left = store_key[0] == 'L';
      const int time_index = is_left ? left_time_index_ : right_time_index_;
      const bool preserved =
          (is_left && join_type_ == JoinType::kLeftOuter) ||
          (!is_left && join_type_ == JoinType::kRightOuter);
      std::vector<std::pair<bool, Row>> kept;
      for (auto& [matched, row] : rows) {
        bool expire;
        if (ctx->is_batch) {
          expire = true;  // batch run: finalize everything at the end
        } else {
          expire = time_index >= 0 &&
                   !row[static_cast<size_t>(time_index)].is_null() &&
                   row[static_cast<size_t>(time_index)].int64_value() <
                       watermark;
        }
        if (expire) {
          if (preserved && !matched) {
            out_rows.push_back(is_left ? JoinedRow(&row, nullptr)
                                       : JoinedRow(nullptr, &row));
          }
        } else {
          kept.emplace_back(matched, std::move(row));
        }
      }
      rows = std::move(kept);
    }
  }

  // Flush cache to the store.
  for (const auto& [store_key, rows] : cache) {
    if (rows.empty()) {
      store->Remove(store_key);
    } else {
      store->Put(store_key, EncodeSideRows(rows));
    }
  }
  return RecordBatch::FromRows(schema_, out_rows);
}

// ---------------------------------------------------------------------------
// FlatMapGroupsWithStateExec
// ---------------------------------------------------------------------------

FlatMapGroupsWithStateExec::FlatMapGroupsWithStateExec(
    int op_id, PhysOpPtr child, SchemaPtr out_schema,
    std::vector<NamedExpr> key_exprs, GroupUpdateFn update_fn,
    GroupStateTimeout timeout, bool require_single_output)
    : PhysOp(op_id, std::move(out_schema), {std::move(child)}),
      key_exprs_(std::move(key_exprs)),
      update_fn_(std::move(update_fn)),
      timeout_(timeout),
      require_single_output_(require_single_output) {}

Result<std::vector<RecordBatchPtr>> FlatMapGroupsWithStateExec::ExecuteImpl(
    ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  std::vector<RecordBatchPtr> out(in.size());
  std::vector<std::function<Status()>> tasks;
  for (size_t p = 0; p < in.size(); ++p) {
    tasks.push_back([this, ctx, &in, &out, p]() -> Status {
      SS_ASSIGN_OR_RETURN(
          RecordBatchPtr batch,
          ExecutePartition(ctx, static_cast<int>(p), *in[p]));
      out[p] = std::move(batch);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->scheduler->RunStage(name(), std::move(tasks)));
  return out;
}

Result<RecordBatchPtr> FlatMapGroupsWithStateExec::ExecutePartition(
    ExecContext* ctx, int partition, const RecordBatch& input) {
  SS_ASSIGN_OR_RETURN(StateStore * store,
                      ctx->state->GetStore(op_id_, partition));
  const int64_t now = ctx->clock != nullptr ? ctx->clock->NowMicros() : 0;
  const int64_t watermark = ctx->watermark_micros;

  // Group the input rows by key.
  std::vector<ColumnPtr> key_cols(key_exprs_.size());
  for (size_t k = 0; k < key_exprs_.size(); ++k) {
    SS_ASSIGN_OR_RETURN(key_cols[k], key_exprs_[k].expr->EvalBatch(input));
  }
  std::map<std::string, std::pair<Row, std::vector<Row>>> groups;
  for (int64_t i = 0; i < input.num_rows(); ++i) {
    Row key(key_exprs_.size());
    for (size_t k = 0; k < key_cols.size(); ++k) {
      key[k] = key_cols[k]->ValueAt(i);
    }
    std::string enc;
    EncodeRow(key, &enc);
    auto& slot = groups[enc];
    slot.first = std::move(key);
    slot.second.push_back(input.RowAt(i));
  }

  std::vector<Row> out_rows;

  // State value codec: [fixed64 timeout_at][encoded user row].
  auto load_state = [&](const std::string& enc)
      -> Result<std::pair<std::optional<Row>, int64_t>> {
    std::optional<std::string> stored = store->Get(enc);
    if (!stored.has_value()) {
      return std::make_pair(std::optional<Row>(), INT64_MAX);
    }
    size_t pos = 0;
    uint64_t timeout_at;
    if (!GetFixed64(*stored, &pos, &timeout_at)) {
      return Status::Internal("corrupt group state");
    }
    SS_ASSIGN_OR_RETURN(Row row, DecodeRow(*stored, &pos));
    return std::make_pair(std::optional<Row>(std::move(row)),
                          static_cast<int64_t>(timeout_at));
  };

  auto invoke = [&](const std::string& enc, const Row& key,
                    const std::vector<Row>& values,
                    bool timed_out) -> Status {
    SS_ASSIGN_OR_RETURN(auto loaded, load_state(enc));
    GroupState state(std::move(loaded.first), watermark, now, timed_out);
    if (!timed_out) {
      // A pre-armed timeout stays armed unless the function re-arms it.
      state.SetTimeoutTimestamp(loaded.second);
    }
    SS_ASSIGN_OR_RETURN(std::vector<Row> results,
                        update_fn_(key, values, &state));
    if (require_single_output_ && results.size() != 1) {
      return Status::InvalidArgument(
          "mapGroupsWithState update function must return exactly one row, "
          "got " + std::to_string(results.size()));
    }
    for (Row& r : results) {
      if (static_cast<int>(r.size()) != schema_->num_fields()) {
        return Status::InvalidArgument(
            "mapGroupsWithState output row arity mismatch");
      }
      out_rows.push_back(std::move(r));
    }
    if (state.removed() || (timed_out && !state.updated())) {
      // Timed-out state that the function did not refresh is dropped
      // (matching Spark: a timeout without update removes nothing
      // automatically, but keeping it would re-fire forever; Spark requires
      // the function to update or remove — we default to remove).
      store->Remove(enc);
    } else if (state.exists()) {
      std::string buf;
      int64_t timeout_at =
          timeout_ == GroupStateTimeout::kNone ? INT64_MAX
                                               : state.timeout_at_micros();
      PutFixed64(&buf, static_cast<uint64_t>(timeout_at));
      EncodeRow(state.get(), &buf);
      store->Put(enc, std::move(buf));
    }
    return Status::OK();
  };

  for (const auto& [enc, group] : groups) {
    SS_RETURN_IF_ERROR(invoke(enc, group.first, group.second, false));
  }

  // Timeout sweep: keys not updated this trigger whose deadline passed
  // (processing time vs. watermark, §4.3.2).
  if (timeout_ != GroupStateTimeout::kNone && !ctx->is_batch) {
    const int64_t deadline_clock =
        timeout_ == GroupStateTimeout::kProcessingTime ? now : watermark;
    std::vector<std::pair<std::string, Row>> timed_out_keys;
    Status iter_status;
    store->ForEach([&](const std::string& enc, const std::string& v) {
      if (groups.count(enc)) return;
      size_t pos = 0;
      uint64_t timeout_at;
      if (!GetFixed64(v, &pos, &timeout_at)) {
        iter_status = Status::Internal("corrupt group state");
        return;
      }
      if (deadline_clock != INT64_MIN &&
          static_cast<int64_t>(timeout_at) <= deadline_clock) {
        auto key = DecodeRow(enc);
        if (!key.ok()) {
          iter_status = key.status();
          return;
        }
        timed_out_keys.emplace_back(enc, std::move(*key));
      }
    });
    SS_RETURN_IF_ERROR(iter_status);
    for (const auto& [enc, key] : timed_out_keys) {
      SS_RETURN_IF_ERROR(invoke(enc, key, {}, true));
    }
  }
  return RecordBatch::FromRows(schema_, out_rows);
}

}  // namespace sstreaming

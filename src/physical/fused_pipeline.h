#ifndef SSTREAMING_PHYSICAL_FUSED_PIPELINE_H_
#define SSTREAMING_PHYSICAL_FUSED_PIPELINE_H_

#include <string>
#include <vector>

#include "expr/expression.h"
#include "physical/phys_op.h"

namespace sstreaming {

/// A maximal chain of stateless row-shape operators (Filter / Project /
/// Watermark) collapsed into one pass per batch (docs/VECTORIZED_EXEC.md).
/// Instead of each operator materializing an intermediate batch, the fused
/// pipeline carries a selection vector through the filter stages and, at a
/// projection, gathers only the columns the projection actually references.
///
/// Observability contract: the fused node has its own (fresh) op_id, but
/// every stage keeps the op_id of the operator it replaced — per-stage
/// OpStats are recorded under those original ids and CollectProfileNodes
/// exposes the stages as chained profile nodes, so EXPLAIN ANALYZE row
/// accounting and the sstreaming_operator_rows_* counters tie out exactly
/// as they did unfused. Watermark stages likewise observe event times under
/// their original op_id, keeping the engine's watermark map stable.
class FusedPipelineExec : public PhysOp {
 public:
  struct Stage {
    enum class Kind { kFilter, kProject, kWatermark };
    Kind kind;
    /// op_id of the operator this stage replaced (stats + watermark key).
    int op_id = 0;
    /// Original operator name (profile rendering).
    std::string name;
    // kFilter
    ExprPtr predicate;
    // kProject
    std::vector<NamedExpr> exprs;
    SchemaPtr schema;  // output schema of the projection
    // kWatermark
    int column_index = 0;
    int64_t delay_micros = 0;
    /// Column ordinals of the stage's input that its expressions read.
    std::vector<int> referenced;
  };

  /// `stages` are ordered bottom (nearest `child`) to top. `emit_selection`
  /// false compacts the final output (used when selection vectors are
  /// disabled but fusion is on).
  FusedPipelineExec(int op_id, PhysOpPtr child, std::vector<Stage> stages,
                    bool emit_selection);

  std::string name() const override;
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext* ctx) override;
  void CollectProfileNodes(std::vector<OpProfileNode>* out) const override;

  const std::vector<Stage>& stages() const { return stages_; }

 private:
  std::vector<Stage> stages_;
  bool emit_selection_;
};

/// Gathers the logical rows of `batch` (through its selection, if any) for
/// just the column ordinals in `referenced`; the remaining columns are
/// null-filled to the same length so ordinals keep their meaning. Returns
/// `batch` unchanged when it has no selection. Preserves ingest_micros.
RecordBatchPtr GatherReferenced(const RecordBatchPtr& batch,
                                const std::vector<int>& referenced);

/// Rewrites `root`, collapsing every maximal chain of >= 2 fusable
/// stateless operators (FilterExec / ProjectExec / WatermarkExec) into a
/// FusedPipelineExec. Fused nodes get fresh op_ids from `next_id`; shared
/// subtrees (DAG-shaped plans) are rewritten once. `emit_selection` is
/// forwarded to the fused nodes.
PhysOpPtr FusePipelines(const PhysOpPtr& root, int* next_id,
                        bool emit_selection);

}  // namespace sstreaming

#endif  // SSTREAMING_PHYSICAL_FUSED_PIPELINE_H_

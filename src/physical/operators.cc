#include "physical/operators.h"

#include <algorithm>

#include "common/arena.h"
#include "common/logging.h"

namespace sstreaming {

SourceExec::SourceExec(int op_id, SourcePtr source)
    : PhysOp(op_id, source->schema(), {}), source_(std::move(source)) {}

SourceExec::SourceExec(int op_id, SourcePtr source, std::vector<int> columns,
                       SchemaPtr schema)
    : PhysOp(op_id, std::move(schema), {}),
      source_(std::move(source)),
      columns_(std::move(columns)) {}

Result<std::vector<RecordBatchPtr>> SourceExec::ExecuteImpl(ExecContext* ctx) {
  auto it = ctx->offsets.find(source_->name());
  if (it == ctx->offsets.end()) {
    return Status::Internal("no offsets planned for source " +
                            source_->name());
  }
  const auto& [starts, ends] = it->second;
  const int parts = source_->num_partitions();
  if (static_cast<int>(starts.size()) != parts) {
    return Status::Internal("offset arity mismatch for " + source_->name());
  }
  std::vector<RecordBatchPtr> out(static_cast<size_t>(parts));
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(static_cast<size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    tasks.push_back([this, ctx, p, &starts, &ends, &out]() -> Status {
      RecordBatchPtr batch;
      if (columns_.empty()) {
        SS_ASSIGN_OR_RETURN(
            batch, source_->ReadPartition(p, starts[static_cast<size_t>(p)],
                                          ends[static_cast<size_t>(p)]));
      } else {
        SS_ASSIGN_OR_RETURN(batch, source_->ReadPartitionProjected(
                                       p, starts[static_cast<size_t>(p)],
                                       ends[static_cast<size_t>(p)],
                                       columns_));
      }
      ctx->CountSourceRows(source_->name(), batch->num_rows());
      if (batch->num_rows() > 0) {
        // Stamp e2e-latency provenance: when the source can't date its
        // records, the read time is the best (conservative, deterministic
        // under ManualClock) ingest approximation.
        int64_t ingest = source_->OldestIngestMicros(
            p, starts[static_cast<size_t>(p)], ends[static_cast<size_t>(p)]);
        if (ingest <= 0 && ctx->clock != nullptr) {
          ingest = ctx->clock->NowMicros();
        }
        batch->set_ingest_micros(ingest);
        ctx->ObserveIngest(ingest);
      }
      out[static_cast<size_t>(p)] = std::move(batch);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->RunStage(op_id_, name(), std::move(tasks)));
  return out;
}

StaticSourceExec::StaticSourceExec(int op_id, SchemaPtr schema,
                                   std::vector<RecordBatchPtr> batches,
                                   int num_partitions)
    : PhysOp(op_id, schema, {}),
      batches_(std::move(batches)),
      num_partitions_(num_partitions) {}

Result<std::vector<RecordBatchPtr>> StaticSourceExec::ExecuteImpl(
    ExecContext* ctx) {
  std::vector<RecordBatchPtr> out;
  if (!ctx->is_batch) {
    // In a streaming epoch static data contributes nothing new after epoch
    // 1; joins against static data materialize the table separately, so a
    // bare static source in a streaming plan emits only in the first epoch.
    if (ctx->epoch > 1) {
      for (int p = 0; p < num_partitions_; ++p) {
        out.push_back(RecordBatch::Empty(schema_));
      }
      return out;
    }
  }
  // Round-robin row split across partitions.
  RecordBatchPtr all = RecordBatch::Concat(schema_, batches_);
  std::vector<std::vector<uint8_t>> masks(
      static_cast<size_t>(num_partitions_),
      std::vector<uint8_t>(static_cast<size_t>(all->num_rows()), 0));
  for (int64_t i = 0; i < all->num_rows(); ++i) {
    masks[static_cast<size_t>(i % num_partitions_)]
         [static_cast<size_t>(i)] = 1;
  }
  for (int p = 0; p < num_partitions_; ++p) {
    out.push_back(all->Filter(masks[static_cast<size_t>(p)]));
  }
  return out;
}

FilterExec::FilterExec(int op_id, PhysOpPtr child, ExprPtr predicate,
                       bool emit_selection)
    : PhysOp(op_id, child->schema(), {child}),
      predicate_(std::move(predicate)),
      emit_selection_(emit_selection) {}

Result<std::vector<RecordBatchPtr>> FilterExec::ExecuteImpl(ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  std::vector<RecordBatchPtr> out(in.size());
  std::vector<std::function<Status()>> tasks;
  for (size_t p = 0; p < in.size(); ++p) {
    tasks.push_back([this, ctx, &in, &out, p]() -> Status {
      // EvalBatch requires a selection-free batch; upstream views (e.g. an
      // unfused filter chain) are compacted first.
      const RecordBatchPtr batch = RecordBatch::Materialize(in[p]);
      const int64_t n = batch->num_rows();
      SS_ASSIGN_OR_RETURN(ColumnPtr mask_col, predicate_->EvalBatch(*batch));
      if (!emit_selection_) {
        std::vector<uint8_t> mask(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
          // NULL predicate results drop the row (SQL semantics).
          mask[static_cast<size_t>(i)] =
              !mask_col->IsNull(i) && mask_col->BoolAt(i) ? 1 : 0;
        }
        out[p] = batch->Filter(mask);
        return Status::OK();
      }
      // Selection mode: record survivor indices instead of gathering
      // survivor rows — one int32 write per kept row, zero column copies.
      int32_t* idx = nullptr;
      std::shared_ptr<const void> keepalive;
      std::vector<int32_t> heap_idx;
      if (ctx->arena != nullptr) {
        auto span = ctx->arena->AllocSpan<int32_t>(static_cast<size_t>(n));
        idx = span.first;
        keepalive = std::move(span.second);
      } else {
        heap_idx.resize(static_cast<size_t>(n));
        idx = heap_idx.data();
      }
      int64_t kept = 0;
      for (int64_t i = 0; i < n; ++i) {
        if (!mask_col->IsNull(i) && mask_col->BoolAt(i)) {
          idx[kept++] = static_cast<int32_t>(i);
        }
      }
      if (kept == n) {
        out[p] = batch;  // every row survived: pass through, no copy
        return Status::OK();
      }
      SelectionVector sel =
          keepalive != nullptr
              ? SelectionVector::FromOwned(idx, kept, std::move(keepalive))
              : SelectionVector::FromVector(std::vector<int32_t>(
                    heap_idx.begin(), heap_idx.begin() + kept));
      out[p] = RecordBatch::MakeView(batch, std::move(sel));
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->RunStage(op_id_, name(), std::move(tasks)));
  return out;
}

ProjectExec::ProjectExec(int op_id, PhysOpPtr child, SchemaPtr schema,
                         std::vector<NamedExpr> exprs)
    : PhysOp(op_id, std::move(schema), {std::move(child)}),
      exprs_(std::move(exprs)) {}

Result<std::vector<RecordBatchPtr>> ProjectExec::ExecuteImpl(ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  std::vector<RecordBatchPtr> out(in.size());
  std::vector<std::function<Status()>> tasks;
  for (size_t p = 0; p < in.size(); ++p) {
    tasks.push_back([this, &in, &out, p]() -> Status {
      // EvalBatch requires a selection-free batch (fused pipelines avoid
      // this compaction by gathering only referenced columns).
      const RecordBatchPtr batch = RecordBatch::Materialize(in[p]);
      std::vector<ColumnPtr> columns;
      columns.reserve(exprs_.size());
      for (const NamedExpr& e : exprs_) {
        SS_ASSIGN_OR_RETURN(ColumnPtr col, e.expr->EvalBatch(*batch));
        columns.push_back(std::move(col));
      }
      auto projected = RecordBatch::Make(schema_, std::move(columns));
      projected->set_ingest_micros(batch->ingest_micros());
      out[p] = std::move(projected);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(ctx->RunStage(op_id_, name(), std::move(tasks)));
  return out;
}

WatermarkExec::WatermarkExec(int op_id, PhysOpPtr child, int column_index,
                             int64_t delay_micros)
    : PhysOp(op_id, child->schema(), {child}),
      column_index_(column_index),
      delay_micros_(delay_micros) {}

Result<std::vector<RecordBatchPtr>> WatermarkExec::ExecuteImpl(ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  for (const RecordBatchPtr& batch : in) {
    const Column& col = *batch->column(column_index_);
    int64_t max_ts = INT64_MIN;
    // Scan logical rows only: a selection view's dropped rows must not
    // advance the watermark.
    for (int64_t li = 0; li < batch->num_rows(); ++li) {
      const int64_t i = batch->PhysIndex(li);
      if (!col.IsNull(i) && col.Int64At(i) > max_ts) max_ts = col.Int64At(i);
    }
    if (max_ts != INT64_MIN) {
      ctx->ObserveEventTime(op_id_, max_ts - delay_micros_);
    }
  }
  return in;
}

ShuffleExec::ShuffleExec(int op_id, PhysOpPtr child, std::vector<ExprPtr> keys,
                         int num_partitions)
    : PhysOp(op_id, child->schema(), {child}),
      keys_(std::move(keys)),
      num_partitions_(num_partitions) {}

Result<std::vector<RecordBatchPtr>> ShuffleExec::ExecuteImpl(ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  const size_t in_parts = in.size();
  const size_t out_parts = static_cast<size_t>(num_partitions_);
  // Map stage: each input partition splits into one bucket per output
  // partition by key hash.
  std::vector<std::vector<RecordBatchPtr>> buckets(
      in_parts, std::vector<RecordBatchPtr>(out_parts));
  std::vector<std::function<Status()>> map_tasks;
  for (size_t p = 0; p < in_parts; ++p) {
    map_tasks.push_back([this, &in, &buckets, p, out_parts]() -> Status {
      // Materialize-on-demand boundary: key hashing evaluates expressions
      // over the whole batch, so selection views compact here.
      const RecordBatchPtr batch = RecordBatch::Materialize(in[p]);
      const int64_t n = batch->num_rows();
      std::vector<uint64_t> hashes(static_cast<size_t>(n), 0x811C9DC5ULL);
      for (const ExprPtr& key : keys_) {
        SS_ASSIGN_OR_RETURN(ColumnPtr col, key->EvalBatch(*batch));
        col->HashInto(&hashes);
      }
      // Single pass: bucket row indices, then one typed gather per bucket.
      std::vector<std::vector<int32_t>> indices(out_parts);
      for (int64_t i = 0; i < n; ++i) {
        indices[hashes[static_cast<size_t>(i)] % out_parts].push_back(
            static_cast<int32_t>(i));
      }
      for (size_t op = 0; op < out_parts; ++op) {
        buckets[p][op] = batch->Gather(indices[op]);
      }
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(
      ctx->RunStage(op_id_, name() + "/map", std::move(map_tasks)));

  // Reduce-side concat: one task per output partition.
  std::vector<RecordBatchPtr> out(out_parts);
  std::vector<std::function<Status()>> reduce_tasks;
  for (size_t op = 0; op < out_parts; ++op) {
    reduce_tasks.push_back([this, &buckets, &out, op, in_parts]() -> Status {
      std::vector<RecordBatchPtr> pieces;
      pieces.reserve(in_parts);
      for (size_t p = 0; p < in_parts; ++p) {
        pieces.push_back(buckets[p][op]);
      }
      out[op] = RecordBatch::Concat(schema_, pieces);
      return Status::OK();
    });
  }
  SS_RETURN_IF_ERROR(
      ctx->RunStage(op_id_, name() + "/reduce", std::move(reduce_tasks)));
  return out;
}

SortExec::SortExec(int op_id, PhysOpPtr child, std::vector<Key> keys)
    : PhysOp(op_id, child->schema(), {child}),
      keys_(std::move(keys)) {}

Result<std::vector<RecordBatchPtr>> SortExec::ExecuteImpl(ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  // Concat's single-batch fast path can pass a selection view through;
  // sort-key evaluation needs compact storage.
  RecordBatchPtr all = RecordBatch::Materialize(RecordBatch::Concat(schema_, in));
  // Evaluate the sort keys once, then order row indices.
  std::vector<ColumnPtr> key_cols;
  for (const Key& k : keys_) {
    SS_ASSIGN_OR_RETURN(ColumnPtr col, k.expr->EvalBatch(*all));
    key_cols.push_back(std::move(col));
  }
  std::vector<int64_t> order(static_cast<size_t>(all->num_rows()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](int64_t a, int64_t b) {
                     for (size_t k = 0; k < key_cols.size(); ++k) {
                       int c = key_cols[k]->ValueAt(a).Compare(
                           key_cols[k]->ValueAt(b));
                       if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  std::vector<Row> rows;
  rows.reserve(order.size());
  for (int64_t idx : order) rows.push_back(all->RowAt(idx));
  SS_ASSIGN_OR_RETURN(RecordBatchPtr sorted,
                      RecordBatch::FromRows(schema_, rows));
  return std::vector<RecordBatchPtr>{sorted};
}

LimitExec::LimitExec(int op_id, PhysOpPtr child, int64_t n)
    : PhysOp(op_id, child->schema(), {child}), n_(n) {}

Result<std::vector<RecordBatchPtr>> LimitExec::ExecuteImpl(ExecContext* ctx) {
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> in,
                      children_[0]->Execute(ctx));
  RecordBatchPtr all = RecordBatch::Concat(schema_, in);
  int64_t keep = std::min(n_, all->num_rows());
  return std::vector<RecordBatchPtr>{all->Slice(0, keep)};
}

}  // namespace sstreaming

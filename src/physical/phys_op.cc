#include "physical/phys_op.h"

#include <filesystem>

#include "common/logging.h"
#include "storage/fs.h"

namespace sstreaming {

StateManager::StateManager(std::string dir, int64_t version,
                           StateStore::Options options)
    : dir_(std::move(dir)), version_(version), options_(options),
      durable_(!dir_.empty()) {
  if (!durable_) {
    auto tmp = MakeTempDir("sstreaming_ephemeral_state");
    SS_CHECK(tmp.ok()) << tmp.status().ToString();
    ephemeral_dir_ = *tmp;
  }
}

StateManager::~StateManager() {
  if (!durable_ && !ephemeral_dir_.empty()) {
    RemoveDirRecursive(ephemeral_dir_).ok();
  }
}

std::string StateManager::StoreDir(int op_id, int partition) const {
  const std::string& root = durable_ ? dir_ : ephemeral_dir_;
  return root + "/op" + std::to_string(op_id) + "/p" +
         std::to_string(partition);
}

Result<StateStore*> StateManager::GetStore(int op_id, int partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(op_id, partition);
  auto it = stores_.find(key);
  if (it != stores_.end()) return it->second.get();
  int64_t restore = durable_ ? version_ : 0;
  SS_ASSIGN_OR_RETURN(
      std::unique_ptr<StateStore> store,
      StateStore::Open(StoreDir(op_id, partition), restore, options_));
  StateStore* raw = store.get();
  stores_[key] = std::move(store);
  return raw;
}

Status StateManager::PreopenExisting() {
  if (!durable_ || !FileExists(dir_)) return Status::OK();
  std::error_code ec;
  for (const auto& op_entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!op_entry.is_directory()) continue;
    std::string op_name = op_entry.path().filename().string();
    if (op_name.rfind("op", 0) != 0) continue;
    int op_id = std::atoi(op_name.c_str() + 2);
    for (const auto& part_entry :
         std::filesystem::directory_iterator(op_entry.path(), ec)) {
      if (!part_entry.is_directory()) continue;
      std::string part_name = part_entry.path().filename().string();
      if (part_name.rfind("p", 0) != 0) continue;
      int partition = std::atoi(part_name.c_str() + 1);
      SS_RETURN_IF_ERROR(GetStore(op_id, partition).status());
    }
  }
  return Status::OK();
}

Status StateManager::CommitAll(int64_t epoch) {
  if (!durable_) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, store] : stores_) {
    (void)key;
    SS_RETURN_IF_ERROR(store->Commit(epoch));
  }
  return Status::OK();
}

Status StateManager::PurgeBefore(int64_t keep) {
  if (!durable_) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, store] : stores_) {
    SS_RETURN_IF_ERROR(
        StateStore::PurgeBefore(StoreDir(key.first, key.second), keep));
  }
  return Status::OK();
}

int64_t StateManager::MinLoadedVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t min_version = version_;
  for (const auto& [key, store] : stores_) {
    (void)key;
    if (store->loaded_version() < min_version) {
      min_version = store->loaded_version();
    }
  }
  return min_version;
}

int64_t StateManager::TotalEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, store] : stores_) {
    (void)key;
    total += store->size();
  }
  return total;
}

int64_t StateManager::TotalBytesWritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, store] : stores_) {
    (void)key;
    total += store->bytes_written();
  }
  return total;
}

namespace {
void TreeStringRec(const PhysOp& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += op.name();
  *out += "\n";
  for (const PhysOpPtr& child : op.children()) {
    TreeStringRec(*child, depth + 1, out);
  }
}
}  // namespace

std::string PhysOp::TreeString() const {
  std::string out;
  TreeStringRec(*this, 0, &out);
  return out;
}

}  // namespace sstreaming

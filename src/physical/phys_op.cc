#include "physical/phys_op.h"

#include <filesystem>

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "storage/fs.h"

namespace sstreaming {

StateManager::StateManager(std::string dir, int64_t version,
                           ShardedStateStore::Options options)
    : dir_(std::move(dir)), version_(version), options_(options),
      durable_(!dir_.empty()) {
  if (!durable_) {
    auto tmp = MakeTempDir("sstreaming_ephemeral_state");
    SS_CHECK(tmp.ok()) << tmp.status().ToString();
    ephemeral_dir_ = *tmp;
  }
}

StateManager::~StateManager() {
  if (!durable_ && !ephemeral_dir_.empty()) {
    RemoveDirRecursive(ephemeral_dir_).ok();
  }
}

std::string StateManager::StoreDir(int op_id, int partition) const {
  const std::string& root = durable_ ? dir_ : ephemeral_dir_;
  return root + "/op" + std::to_string(op_id) + "/p" +
         std::to_string(partition);
}

Result<ShardedStateStore*> StateManager::GetStore(int op_id, int partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(op_id, partition);
  auto it = stores_.find(key);
  if (it != stores_.end()) return it->second.get();
  int64_t restore = durable_ ? version_ : 0;
  SS_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardedStateStore> store,
      ShardedStateStore::Open(StoreDir(op_id, partition), restore, options_));
  ShardedStateStore* raw = store.get();
  stores_[key] = std::move(store);
  return raw;
}

Status StateManager::PreopenExisting() {
  if (!durable_ || !FileExists(dir_)) return Status::OK();
  std::error_code ec;
  for (const auto& op_entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!op_entry.is_directory()) continue;
    std::string op_name = op_entry.path().filename().string();
    if (op_name.rfind("op", 0) != 0) continue;
    int op_id = std::atoi(op_name.c_str() + 2);
    for (const auto& part_entry :
         std::filesystem::directory_iterator(op_entry.path(), ec)) {
      if (!part_entry.is_directory()) continue;
      std::string part_name = part_entry.path().filename().string();
      if (part_name.rfind("p", 0) != 0) continue;
      int partition = std::atoi(part_name.c_str() + 1);
      SS_RETURN_IF_ERROR(GetStore(op_id, partition).status());
    }
  }
  return Status::OK();
}

Status StateManager::CommitAll(int64_t epoch) {
  if (!durable_) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  int64_t bytes_before = 0, entries = 0;
  for (auto& [key, store] : stores_) {
    (void)key;
    bytes_before += store->bytes_written();
  }
  int64_t t0 = MonotonicNanos();
  for (auto& [key, store] : stores_) {
    (void)key;
    SS_RETURN_IF_ERROR(store->Commit(epoch));
  }
  if (metrics_ != nullptr) {
    int64_t bytes_after = 0;
    for (auto& [key, store] : stores_) {
      (void)key;
      bytes_after += store->bytes_written();
      entries += store->size();
    }
    metrics_->GetHistogram("sstreaming_state_commit_nanos")
        ->Record(MonotonicNanos() - t0);
    metrics_->GetCounter("sstreaming_state_checkpoint_bytes_total")
        ->Increment(bytes_after - bytes_before);
    metrics_->GetCounter("sstreaming_state_commits_total")->Increment();
    metrics_->GetGauge("sstreaming_state_entries")->Set(entries);
  }
  return Status::OK();
}

Status StateManager::PurgeBefore(int64_t keep) {
  if (!durable_) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, store] : stores_) {
    SS_RETURN_IF_ERROR(ShardedStateStore::PurgeBefore(
        StoreDir(key.first, key.second), keep));
  }
  return Status::OK();
}

int64_t StateManager::MinLoadedVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t min_version = version_;
  for (const auto& [key, store] : stores_) {
    (void)key;
    if (store->loaded_version() < min_version) {
      min_version = store->loaded_version();
    }
  }
  return min_version;
}

int64_t StateManager::TotalEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, store] : stores_) {
    (void)key;
    total += store->size();
  }
  return total;
}

std::map<int, StateManager::OpStateSize> StateManager::PerOpSizes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<int, OpStateSize> out;
  for (const auto& [key, store] : stores_) {
    OpStateSize& size = out[key.first];
    size.rows += store->size();
    size.bytes += store->ApproxBytes();
  }
  return out;
}

std::map<int, std::vector<StateManager::OpStateSize>>
StateManager::PerOpShardSizes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<int, std::vector<OpStateSize>> out;
  for (const auto& [key, store] : stores_) {
    std::vector<OpStateSize>& sizes = out[key.first];
    std::vector<ShardedStateStore::ShardSize> shard_sizes =
        store->PerShardSizes();
    if (sizes.size() < shard_sizes.size()) sizes.resize(shard_sizes.size());
    for (size_t s = 0; s < shard_sizes.size(); ++s) {
      sizes[s].rows += shard_sizes[s].rows;
      sizes[s].bytes += shard_sizes[s].bytes;
    }
  }
  return out;
}

int64_t StateManager::TotalApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, store] : stores_) {
    (void)key;
    total += store->ApproxBytes();
  }
  return total;
}

int64_t StateManager::TotalBytesWritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, store] : stores_) {
    (void)key;
    total += store->bytes_written();
  }
  return total;
}

namespace {
void TreeStringRec(const PhysOp& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += op.name();
  *out += "\n";
  for (const PhysOpPtr& child : op.children()) {
    TreeStringRec(*child, depth + 1, out);
  }
}
}  // namespace

std::string PhysOp::TreeString() const {
  std::string out;
  TreeStringRec(*this, 0, &out);
  return out;
}

void PhysOp::CollectProfileNodes(std::vector<OpProfileNode>* out) const {
  OpProfileNode node;
  node.op_id = op_id_;
  node.name = name();
  node.is_source = is_source_scan();
  node.child_ids.reserve(children_.size());
  for (const PhysOpPtr& child : children_) {
    node.child_ids.push_back(child->op_id());
  }
  out->push_back(std::move(node));
}

Status ExecContext::RunStage(int op_id, const std::string& stage_name,
                             std::vector<std::function<Status()>> tasks) {
  StageWait wait;
  Status s = scheduler->RunStage(stage_name, std::move(tasks), &wait);
  // Merge even on failure: a stage that died after queueing is still
  // evidence for the doctor.
  std::lock_guard<std::mutex> lock(metrics_mu);
  OpStats& stats = op_stats[op_id];
  stats.tasks += wait.tasks;
  stats.queue_wait_nanos += wait.queue_wait_nanos;
  stats.max_queue_wait_nanos =
      std::max(stats.max_queue_wait_nanos, wait.max_queue_wait_nanos);
  stats.task_run_nanos += wait.run_nanos;
  stats.max_task_run_nanos =
      std::max(stats.max_task_run_nanos, wait.max_run_nanos);
  return s;
}

Result<std::vector<RecordBatchPtr>> PhysOp::Execute(ExecContext* ctx) {
  uint32_t op_label = 0;
  if (Profiler::active()) {
    op_label = profile_label_.load(std::memory_order_relaxed);
    if (op_label == 0) {
      op_label = Profiler::Instance().Intern(name());
      profile_label_.store(op_label, std::memory_order_relaxed);
    }
  }
  ProfileOpScope prof(op_label, op_id_);
  int64_t t0 = MonotonicNanos();
  Result<std::vector<RecordBatchPtr>> result = ExecuteImpl(ctx);
  int64_t dt = MonotonicNanos() - t0;
  {
    std::lock_guard<std::mutex> lock(ctx->metrics_mu);
    OpStats& stats = ctx->op_stats[op_id_];
    stats.wall_nanos += dt;
    ++stats.invocations;
    if (result.ok()) {
      stats.batches += static_cast<int64_t>(result->size());
      for (const RecordBatchPtr& batch : *result) {
        stats.rows_out += batch->num_rows();
        stats.bytes_out += batch->ApproxBytes();
      }
    }
  }
  if (ctx->tracer != nullptr) {
    ctx->tracer->AddSpan(name(), "operator", t0, dt, ctx->epoch);
  }
  return result;
}

}  // namespace sstreaming

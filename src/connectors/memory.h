#ifndef SSTREAMING_CONNECTORS_MEMORY_H_
#define SSTREAMING_CONNECTORS_MEMORY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "connectors/sink.h"
#include "connectors/source.h"
#include "types/row.h"

namespace sstreaming {

/// An in-memory replayable source, primarily for tests and examples: data is
/// added explicitly with AddData() and retained forever, so any offset range
/// can be re-read (the strongest form of replayability).
class MemoryStream : public Source {
 public:
  MemoryStream(std::string name, SchemaPtr schema, int num_partitions = 1);

  /// When set, every added row gets an ingest stamp of clock->NowMicros()
  /// (arrival time) for e2e-latency and backlog-age tracking; rows added
  /// without a clock read as undated (ingest 0). Set before adding data —
  /// the stream does not take ownership and the clock must outlive it.
  void set_ingest_clock(const Clock* clock) { ingest_clock_ = clock; }

  /// Appends rows round-robin across partitions (deterministic).
  Status AddData(const std::vector<Row>& rows);
  /// Appends rows to one partition.
  Status AddDataToPartition(int partition, const std::vector<Row>& rows);

  const std::string& name() const override { return name_; }
  SchemaPtr schema() const override { return schema_; }
  int num_partitions() const override {
    return static_cast<int>(partitions_.size());
  }
  Result<std::vector<int64_t>> LatestOffsets() const override;
  Result<RecordBatchPtr> ReadPartition(int partition, int64_t start,
                                       int64_t end) const override;
  int64_t OldestIngestMicros(int partition, int64_t start,
                             int64_t end) const override;

 private:
  std::string name_;
  SchemaPtr schema_;
  const Clock* ingest_clock_ = nullptr;
  mutable std::mutex mu_;
  std::vector<std::vector<Row>> partitions_ SS_GUARDED_BY(mu_);
  // Parallel to partitions_: arrival stamp per row (0 = undated).
  std::vector<std::vector<int64_t>> ingest_micros_ SS_GUARDED_BY(mu_);
  int next_partition_ SS_GUARDED_BY(mu_) = 0;
};

/// An in-memory table sink that exposes only *committed* epochs — the
/// mechanism behind the paper's "interactive queries on consistent snapshots
/// of stream output" (§1): a reader always sees a prefix-consistent table.
class MemorySink : public Sink {
 public:
  bool SupportsMode(OutputMode) const override { return true; }

  Status CommitEpoch(int64_t epoch, OutputMode mode, int num_key_columns,
                     const std::vector<RecordBatchPtr>& batches) override;

  /// The committed result table (order unspecified for update/complete).
  std::vector<Row> Snapshot() const;
  /// Rows sorted for deterministic assertions.
  std::vector<Row> SortedSnapshot() const;
  int64_t num_committed_epochs() const;
  int64_t last_committed_epoch() const;

 private:
  mutable std::mutex mu_;
  // Append mode: per-epoch row sets (idempotent re-commit replaces).
  std::map<int64_t, std::vector<Row>> append_epochs_ SS_GUARDED_BY(mu_);
  // Update mode: table keyed by the first num_key_columns columns.
  std::map<Row, Row, RowLess> update_table_ SS_GUARDED_BY(mu_);
  // Complete mode: the latest table.
  std::vector<Row> complete_table_ SS_GUARDED_BY(mu_);
  int64_t last_epoch_ SS_GUARDED_BY(mu_) = -1;
  int64_t committed_count_ SS_GUARDED_BY(mu_) = 0;
};

}  // namespace sstreaming

#endif  // SSTREAMING_CONNECTORS_MEMORY_H_

#ifndef SSTREAMING_CONNECTORS_RATE_SOURCE_H_
#define SSTREAMING_CONNECTORS_RATE_SOURCE_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "connectors/source.h"

namespace sstreaming {

/// A deterministic load-generating source producing `rows_per_second`
/// records spread across partitions, with schema (value: int64, timestamp:
/// timestamp). Offsets are derived from the clock, so the source is fully
/// replayable: record k of a partition always has the same contents.
/// Used for latency/throughput experiments (paper §9.3).
class RateSource : public Source {
 public:
  RateSource(std::string name, int64_t rows_per_second, int num_partitions,
             const Clock* clock);

  const std::string& name() const override { return name_; }
  SchemaPtr schema() const override { return schema_; }
  int num_partitions() const override { return num_partitions_; }
  Result<std::vector<int64_t>> LatestOffsets() const override;
  Result<RecordBatchPtr> ReadPartition(int partition, int64_t start,
                                       int64_t end) const override;

  /// Records are "ingested" the moment the rate schedule produces them, so
  /// the oldest ingest time of a range is simply the first record's
  /// timestamp (deterministic under ManualClock).
  int64_t OldestIngestMicros(int partition, int64_t start,
                             int64_t end) const override;

  /// The event time assigned to offset `offset` of `partition`.
  int64_t TimestampFor(int partition, int64_t offset) const;

 private:
  std::string name_;
  int64_t rows_per_second_;
  int num_partitions_;
  const Clock* clock_;
  int64_t start_micros_;
  SchemaPtr schema_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_CONNECTORS_RATE_SOURCE_H_

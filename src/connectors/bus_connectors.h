#ifndef SSTREAMING_CONNECTORS_BUS_CONNECTORS_H_
#define SSTREAMING_CONNECTORS_BUS_CONNECTORS_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "common/thread_annotations.h"
#include "connectors/sink.h"
#include "connectors/source.h"

namespace sstreaming {

/// Streaming source over a MessageBus topic (the Kafka connector analogue).
class BusSource : public Source {
 public:
  BusSource(MessageBus* bus, std::string topic, SchemaPtr schema);

  const std::string& name() const override { return name_; }
  SchemaPtr schema() const override { return schema_; }
  int num_partitions() const override { return num_partitions_; }
  Result<std::vector<int64_t>> LatestOffsets() const override;
  Result<RecordBatchPtr> ReadPartition(int partition, int64_t start,
                                       int64_t end) const override;
  /// Materializes only the requested columns from the broker records.
  Result<RecordBatchPtr> ReadPartitionProjected(
      int partition, int64_t start, int64_t end,
      const std::vector<int>& columns) const override;
  /// Broker arrival time of the oldest record in the range (0 when the bus
  /// has no ingest clock).
  int64_t OldestIngestMicros(int partition, int64_t start,
                             int64_t end) const override;

 private:
  MessageBus* bus_;
  std::string topic_;
  std::string name_;
  SchemaPtr schema_;
  int num_partitions_ = 0;
};

/// Sink writing result rows back to a MessageBus topic, partitioned by a
/// hash of the row. Like the real Kafka sink, cross-restart delivery is
/// at-least-once (the bus has no atomic multi-partition commit); within one
/// process lifetime re-commits of an epoch are suppressed, so tests observe
/// exactly-once under task retries.
class BusSink : public Sink {
 public:
  BusSink(MessageBus* bus, std::string topic);

  bool SupportsMode(OutputMode mode) const override {
    return mode != OutputMode::kComplete;
  }

  Status CommitEpoch(int64_t epoch, OutputMode mode, int num_key_columns,
                     const std::vector<RecordBatchPtr>& batches) override;

 private:
  MessageBus* bus_;
  std::string topic_;
  std::mutex mu_;
  std::map<int64_t, bool> committed_ SS_GUARDED_BY(mu_);
};

/// Sink invoking a user callback per committed epoch (foreachBatch).
class ForeachSink : public Sink {
 public:
  using Callback = std::function<Status(int64_t epoch, OutputMode mode,
                                        const std::vector<Row>& rows)>;

  explicit ForeachSink(Callback callback) : callback_(std::move(callback)) {}

  bool SupportsMode(OutputMode) const override { return true; }

  Status CommitEpoch(int64_t epoch, OutputMode mode, int /*num_key_columns*/,
                     const std::vector<RecordBatchPtr>& batches) override {
    std::vector<Row> rows;
    for (const auto& b : batches) {
      auto brows = b->ToRows();
      rows.insert(rows.end(), brows.begin(), brows.end());
    }
    return callback_(epoch, mode, rows);
  }

 private:
  Callback callback_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_CONNECTORS_BUS_CONNECTORS_H_

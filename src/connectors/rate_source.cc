#include "connectors/rate_source.h"

#include "common/logging.h"

namespace sstreaming {

RateSource::RateSource(std::string name, int64_t rows_per_second,
                       int num_partitions, const Clock* clock)
    : name_(std::move(name)),
      rows_per_second_(rows_per_second),
      num_partitions_(num_partitions),
      clock_(clock),
      start_micros_(clock->NowMicros()),
      schema_(Schema::Make({{"value", TypeId::kInt64, false},
                            {"timestamp", TypeId::kTimestamp, false}})) {
  SS_CHECK(rows_per_second_ > 0);
  SS_CHECK(num_partitions_ >= 1);
}

Result<std::vector<int64_t>> RateSource::LatestOffsets() const {
  int64_t elapsed = clock_->NowMicros() - start_micros_;
  if (elapsed < 0) elapsed = 0;
  // Total rows produced so far, split evenly (remainder to low partitions).
  int64_t total = elapsed * rows_per_second_ / 1000000;
  std::vector<int64_t> out(static_cast<size_t>(num_partitions_));
  for (int p = 0; p < num_partitions_; ++p) {
    out[static_cast<size_t>(p)] =
        total / num_partitions_ + (p < total % num_partitions_ ? 1 : 0);
  }
  return out;
}

int64_t RateSource::TimestampFor(int partition, int64_t offset) const {
  // Global index of this record in production order.
  int64_t global = offset * num_partitions_ + partition;
  return start_micros_ + global * 1000000 / rows_per_second_;
}

int64_t RateSource::OldestIngestMicros(int partition, int64_t start,
                                       int64_t end) const {
  if (partition < 0 || partition >= num_partitions_ || start >= end) return 0;
  return TimestampFor(partition, start);
}

Result<RecordBatchPtr> RateSource::ReadPartition(int partition, int64_t start,
                                                 int64_t end) const {
  if (partition < 0 || partition >= num_partitions_) {
    return Status::OutOfRange("bad partition");
  }
  ColumnPtr values = Column::Make(TypeId::kInt64);
  ColumnPtr times = Column::Make(TypeId::kTimestamp);
  values->Reserve(end - start);
  times->Reserve(end - start);
  for (int64_t off = start; off < end; ++off) {
    values->AppendInt64(off * num_partitions_ + partition);
    times->AppendInt64(TimestampFor(partition, off));
  }
  return RecordBatch::Make(schema_, {std::move(values), std::move(times)});
}

}  // namespace sstreaming

#ifndef SSTREAMING_CONNECTORS_SINK_H_
#define SSTREAMING_CONNECTORS_SINK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "logical/output_mode.h"
#include "types/record_batch.h"

namespace sstreaming {

/// A streaming output (paper §3 requirement 2): epoch commits must be
/// idempotent — re-delivering an epoch after a crash overwrites rather than
/// duplicates — which, combined with replayable sources, yields exactly-once
/// results.
///
/// The meaning of `batches` depends on the output mode:
///  - kAppend:   new result rows produced by this epoch (final, never
///               retracted);
///  - kUpdate:   result rows whose values changed this epoch; the first
///               `num_key_columns` columns identify the row to upsert;
///  - kComplete: the entire result table as of this epoch.
class Sink {
 public:
  virtual ~Sink() = default;

  /// True if the sink can apply the given output mode.
  virtual bool SupportsMode(OutputMode mode) const = 0;

  /// Atomically and idempotently commits one epoch's output.
  virtual Status CommitEpoch(int64_t epoch, OutputMode mode,
                             int num_key_columns,
                             const std::vector<RecordBatchPtr>& batches) = 0;
};

using SinkPtr = std::shared_ptr<Sink>;

}  // namespace sstreaming

#endif  // SSTREAMING_CONNECTORS_SINK_H_

#ifndef SSTREAMING_CONNECTORS_FILE_CONNECTORS_H_
#define SSTREAMING_CONNECTORS_FILE_CONNECTORS_H_

#include <string>
#include <vector>

#include "connectors/sink.h"
#include "connectors/source.h"

namespace sstreaming {

/// Streaming source over a directory of JSONL files (the paper's running
/// example reads JSON files continually uploaded to a directory, §4.1).
/// Files are ordered by name; the single partition's offset is the global
/// record index across that ordering. Replayable as long as files are not
/// deleted; new files appended to the directory extend the stream.
class JsonFileSource : public Source {
 public:
  JsonFileSource(std::string dir, SchemaPtr schema);

  const std::string& name() const override { return name_; }
  SchemaPtr schema() const override { return schema_; }
  int num_partitions() const override { return 1; }
  Result<std::vector<int64_t>> LatestOffsets() const override;
  Result<RecordBatchPtr> ReadPartition(int partition, int64_t start,
                                       int64_t end) const override;

  /// Parses one JSONL line against `schema` (exposed for tests). Missing
  /// keys and unparseable fields become NULL — the paper's motivating
  /// "mis-parsed input" scenario surfaces as NULLs, not crashes (§7.2).
  static Result<Row> ParseLine(const Schema& schema, const std::string& line);

 private:
  std::string dir_;
  std::string name_;
  SchemaPtr schema_;
};

/// Epoch-atomic file sink: each committed epoch becomes one JSONL file
/// `epoch=<N>.jsonl`, written via temp+rename; re-committing an epoch
/// replaces its file (idempotence). Supports append (one file per epoch's
/// new rows) and complete (one file per epoch holding the whole table,
/// the paper's §4.1 example).
class JsonFileSink : public Sink {
 public:
  explicit JsonFileSink(std::string dir);

  bool SupportsMode(OutputMode mode) const override {
    return mode != OutputMode::kUpdate;  // files can't update in place
  }

  Status CommitEpoch(int64_t epoch, OutputMode mode, int num_key_columns,
                     const std::vector<RecordBatchPtr>& batches) override;

  /// All rows across committed epoch files, given the schema (append mode);
  /// for complete mode use ReadEpoch of the latest epoch.
  Result<std::vector<Row>> ReadAll(const Schema& schema) const;
  Result<std::vector<Row>> ReadEpoch(const Schema& schema,
                                     int64_t epoch) const;
  Result<std::vector<int64_t>> ListEpochs() const;

  /// Removes epoch files > epoch (manual rollback cleanup, paper §7.2
  /// footnote: "remove faulty data from the output sink").
  Status RemoveEpochsAfter(int64_t epoch);

 private:
  std::string EpochPath(int64_t epoch) const;

  std::string dir_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_CONNECTORS_FILE_CONNECTORS_H_

#include "connectors/file_connectors.h"

#include <algorithm>

#include "common/json.h"
#include "storage/fs.h"
#include "testing/failpoints.h"

namespace sstreaming {

namespace {

Json ValueToJson(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return Json::Null();
    case TypeId::kBool:
      return Json::Bool(v.bool_value());
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return Json::Int(v.int64_value());
    case TypeId::kFloat64:
      return Json::Double(v.float64_value());
    case TypeId::kString:
      return Json::Str(v.string_value());
  }
  return Json::Null();
}

Value JsonToValue(const Json& j, TypeId type) {
  if (j.is_null()) return Value::Null();
  switch (type) {
    case TypeId::kBool:
      if (j.is_bool()) return Value::Bool(j.bool_value());
      return Value::Null();
    case TypeId::kInt64:
      if (j.is_number()) return Value::Int64(j.int_value());
      return Value::Null();
    case TypeId::kTimestamp:
      if (j.is_number()) return Value::Timestamp(j.int_value());
      return Value::Null();
    case TypeId::kFloat64:
      if (j.is_number()) return Value::Float64(j.double_value());
      return Value::Null();
    case TypeId::kString:
      if (j.is_string()) return Value::Str(j.string_value());
      // Tolerate non-string scalars by stringifying them.
      return Value::Str(j.Dump());
    case TypeId::kNull:
      return Value::Null();
  }
  return Value::Null();
}

std::string RowToJsonl(const Schema& schema, const Row& row) {
  Json obj = Json::Object();
  for (int i = 0; i < schema.num_fields(); ++i) {
    obj.Set(schema.field(i).name, ValueToJson(row[static_cast<size_t>(i)]));
  }
  return obj.Dump();
}

std::vector<Row> ParseJsonl(const Schema& schema, const std::string& text) {
  std::vector<Row> rows;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    auto row = JsonFileSource::ParseLine(schema, line);
    if (row.ok()) rows.push_back(std::move(*row));
  }
  return rows;
}

}  // namespace

JsonFileSource::JsonFileSource(std::string dir, SchemaPtr schema)
    : dir_(std::move(dir)), name_("files:" + dir_),
      schema_(std::move(schema)) {}

Result<Row> JsonFileSource::ParseLine(const Schema& schema,
                                      const std::string& line) {
  SS_ASSIGN_OR_RETURN(Json obj, Json::Parse(line));
  if (!obj.is_object()) {
    return Status::InvalidArgument("JSONL line is not an object");
  }
  Row row;
  row.reserve(static_cast<size_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    row.push_back(obj.Has(f.name) ? JsonToValue(obj.Get(f.name), f.type)
                                  : Value::Null());
  }
  return row;
}

Result<std::vector<int64_t>> JsonFileSource::LatestOffsets() const {
  SS_FAILPOINT("source.get_offsets");
  SS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  int64_t total = 0;
  for (const std::string& name : names) {
    SS_ASSIGN_OR_RETURN(std::string text, ReadFile(dir_ + "/" + name));
    total += static_cast<int64_t>(
        std::count(text.begin(), text.end(), '\n'));
    if (!text.empty() && text.back() != '\n') ++total;
  }
  return std::vector<int64_t>{total};
}

Result<RecordBatchPtr> JsonFileSource::ReadPartition(int partition,
                                                     int64_t start,
                                                     int64_t end) const {
  if (partition != 0) return Status::OutOfRange("file source has 1 partition");
  SS_FAILPOINT("source.get_batch");
  SS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  std::vector<Row> rows;
  int64_t index = 0;
  for (const std::string& name : names) {
    if (index >= end) break;
    SS_ASSIGN_OR_RETURN(std::string text, ReadFile(dir_ + "/" + name));
    std::vector<Row> file_rows = ParseJsonl(*schema_, text);
    for (Row& row : file_rows) {
      if (index >= start && index < end) rows.push_back(std::move(row));
      ++index;
      if (index >= end) break;
    }
  }
  return RecordBatch::FromRows(schema_, rows);
}

JsonFileSink::JsonFileSink(std::string dir) : dir_(std::move(dir)) {
  EnsureDir(dir_).ok();
}

std::string JsonFileSink::EpochPath(int64_t epoch) const {
  char name[40];
  std::snprintf(name, sizeof(name), "epoch=%012lld.jsonl",
                static_cast<long long>(epoch));
  return dir_ + "/" + name;
}

Status JsonFileSink::CommitEpoch(int64_t epoch, OutputMode mode,
                                 int /*num_key_columns*/,
                                 const std::vector<RecordBatchPtr>& batches) {
  if (!SupportsMode(mode)) {
    return Status::InvalidArgument("file sink does not support update mode");
  }
  SS_FAILPOINT("sink.commit.before_apply");
  std::string text;
  for (const auto& b : batches) {
    for (int64_t i = 0; i < b->num_rows(); ++i) {
      text += RowToJsonl(*b->schema(), b->RowAt(i));
      text += "\n";
    }
  }
  if (mode == OutputMode::kComplete) {
    // One file holds the whole table; older epoch files are superseded and
    // removed so the directory always shows exactly one consistent result.
    SS_RETURN_IF_ERROR(WriteFileAtomic(EpochPath(epoch), text));
    SS_ASSIGN_OR_RETURN(std::vector<int64_t> epochs, ListEpochs());
    for (int64_t e : epochs) {
      if (e < epoch) SS_RETURN_IF_ERROR(RemoveFile(EpochPath(e)));
    }
    return Status::OK();
  }
  return WriteFileAtomic(EpochPath(epoch), text);
}

Result<std::vector<int64_t>> JsonFileSink::ListEpochs() const {
  SS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  std::vector<int64_t> epochs;
  for (const std::string& name : names) {
    long long e;
    if (std::sscanf(name.c_str(), "epoch=%lld.jsonl", &e) == 1) {
      epochs.push_back(e);
    }
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Result<std::vector<Row>> JsonFileSink::ReadEpoch(const Schema& schema,
                                                 int64_t epoch) const {
  SS_ASSIGN_OR_RETURN(std::string text, ReadFile(EpochPath(epoch)));
  return ParseJsonl(schema, text);
}

Result<std::vector<Row>> JsonFileSink::ReadAll(const Schema& schema) const {
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> epochs, ListEpochs());
  std::vector<Row> rows;
  for (int64_t e : epochs) {
    SS_ASSIGN_OR_RETURN(std::vector<Row> epoch_rows, ReadEpoch(schema, e));
    rows.insert(rows.end(), epoch_rows.begin(), epoch_rows.end());
  }
  return rows;
}

Status JsonFileSink::RemoveEpochsAfter(int64_t epoch) {
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> epochs, ListEpochs());
  for (int64_t e : epochs) {
    if (e > epoch) SS_RETURN_IF_ERROR(RemoveFile(EpochPath(e)));
  }
  return Status::OK();
}

}  // namespace sstreaming

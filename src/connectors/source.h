#ifndef SSTREAMING_CONNECTORS_SOURCE_H_
#define SSTREAMING_CONNECTORS_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/record_batch.h"
#include "types/schema.h"

namespace sstreaming {

/// A replayable streaming input (paper §3 requirement 1): data is addressed
/// by (partition, offset) and any recent range can be re-read, which is what
/// makes exactly-once recovery possible. Offsets are per-partition,
/// monotonically increasing, half-open ranges.
class Source {
 public:
  virtual ~Source() = default;

  /// Stable name used in the write-ahead log.
  virtual const std::string& name() const = 0;

  virtual SchemaPtr schema() const = 0;

  virtual int num_partitions() const = 0;

  /// Current end offset (one past last record) for each partition. The
  /// master calls this when defining an epoch (paper §6.1 step 1).
  virtual Result<std::vector<int64_t>> LatestOffsets() const = 0;

  /// Reads records [start, end) of one partition as a columnar batch.
  /// Must be deterministic for committed ranges (replayability).
  virtual Result<RecordBatchPtr> ReadPartition(int partition, int64_t start,
                                               int64_t end) const = 0;

  /// Projection pushdown (paper §5.3): reads only the given columns (indices
  /// into schema()). Sources that can skip column materialization override
  /// this; the default reads everything and selects.
  virtual Result<RecordBatchPtr> ReadPartitionProjected(
      int partition, int64_t start, int64_t end,
      const std::vector<int>& columns) const {
    SS_ASSIGN_OR_RETURN(RecordBatchPtr batch,
                        ReadPartition(partition, start, end));
    return batch->SelectColumns(columns);
  }

  /// Ingest timestamp (clock micros) of the oldest record in [start, end) of
  /// one partition, or 0 when the source cannot date its records. Feeds the
  /// e2e-latency stamp on freshly read batches and the backlog-age gauge for
  /// deferred ranges; must be deterministic for committed ranges, like
  /// ReadPartition.
  virtual int64_t OldestIngestMicros(int partition, int64_t start,
                                     int64_t end) const {
    (void)partition;
    (void)start;
    (void)end;
    return 0;
  }
};

using SourcePtr = std::shared_ptr<Source>;

}  // namespace sstreaming

#endif  // SSTREAMING_CONNECTORS_SOURCE_H_

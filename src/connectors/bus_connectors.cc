#include "connectors/bus_connectors.h"

#include "common/logging.h"

namespace sstreaming {

BusSource::BusSource(MessageBus* bus, std::string topic, SchemaPtr schema)
    : bus_(bus),
      topic_(std::move(topic)),
      name_("bus:" + topic_),
      schema_(std::move(schema)) {
  auto np = bus_->NumPartitions(topic_);
  SS_CHECK(np.ok()) << "BusSource over unknown topic " << topic_;
  num_partitions_ = *np;
}

Result<std::vector<int64_t>> BusSource::LatestOffsets() const {
  return bus_->EndOffsets(topic_);
}

Result<RecordBatchPtr> BusSource::ReadPartition(int partition, int64_t start,
                                                int64_t end) const {
  return bus_->ReadBatch(topic_, partition, start, end, schema_);
}

Result<RecordBatchPtr> BusSource::ReadPartitionProjected(
    int partition, int64_t start, int64_t end,
    const std::vector<int>& columns) const {
  std::vector<Field> fields;
  fields.reserve(columns.size());
  for (int c : columns) fields.push_back(schema_->field(c));
  return bus_->ReadBatch(topic_, partition, start, end,
                         Schema::Make(std::move(fields)), &columns);
}

int64_t BusSource::OldestIngestMicros(int partition, int64_t start,
                                      int64_t end) const {
  auto oldest = bus_->OldestIngestMicros(topic_, partition, start, end);
  return oldest.ok() ? *oldest : 0;
}

BusSink::BusSink(MessageBus* bus, std::string topic)
    : bus_(bus), topic_(std::move(topic)) {}

Status BusSink::CommitEpoch(int64_t epoch, OutputMode /*mode*/,
                            int /*num_key_columns*/,
                            const std::vector<RecordBatchPtr>& batches) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (committed_.count(epoch)) return Status::OK();  // suppress re-commit
    committed_[epoch] = true;
  }
  SS_ASSIGN_OR_RETURN(int num_partitions, bus_->NumPartitions(topic_));
  std::vector<std::vector<Row>> per_partition(
      static_cast<size_t>(num_partitions));
  for (const auto& b : batches) {
    for (int64_t i = 0; i < b->num_rows(); ++i) {
      Row row = b->RowAt(i);
      int p = static_cast<int>(HashRow(row) %
                               static_cast<uint64_t>(num_partitions));
      per_partition[static_cast<size_t>(p)].push_back(std::move(row));
    }
  }
  for (int p = 0; p < num_partitions; ++p) {
    if (per_partition[static_cast<size_t>(p)].empty()) continue;
    SS_RETURN_IF_ERROR(
        bus_->AppendBatch(topic_, p,
                          std::move(per_partition[static_cast<size_t>(p)]))
            .status());
  }
  return Status::OK();
}

}  // namespace sstreaming

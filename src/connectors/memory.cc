#include "connectors/memory.h"

#include <algorithm>

#include "common/logging.h"
#include "testing/failpoints.h"

namespace sstreaming {

MemoryStream::MemoryStream(std::string name, SchemaPtr schema,
                           int num_partitions)
    : name_(std::move(name)), schema_(std::move(schema)) {
  SS_CHECK(num_partitions >= 1);
  partitions_.resize(static_cast<size_t>(num_partitions));
  ingest_micros_.resize(static_cast<size_t>(num_partitions));
}

Status MemoryStream::AddData(const std::vector<Row>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = ingest_clock_ ? ingest_clock_->NowMicros() : 0;
  for (const Row& row : rows) {
    if (static_cast<int>(row.size()) != schema_->num_fields()) {
      return Status::InvalidArgument("row arity mismatch in AddData");
    }
    partitions_[static_cast<size_t>(next_partition_)].push_back(row);
    ingest_micros_[static_cast<size_t>(next_partition_)].push_back(now);
    next_partition_ = (next_partition_ + 1) % num_partitions();
  }
  return Status::OK();
}

Status MemoryStream::AddDataToPartition(int partition,
                                        const std::vector<Row>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partition < 0 || partition >= num_partitions()) {
    return Status::OutOfRange("bad partition");
  }
  int64_t now = ingest_clock_ ? ingest_clock_->NowMicros() : 0;
  auto& log = partitions_[static_cast<size_t>(partition)];
  log.insert(log.end(), rows.begin(), rows.end());
  ingest_micros_[static_cast<size_t>(partition)].resize(log.size(), now);
  return Status::OK();
}

Result<std::vector<int64_t>> MemoryStream::LatestOffsets() const {
  SS_FAILPOINT("source.get_offsets");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t> out;
  out.reserve(partitions_.size());
  for (const auto& p : partitions_) {
    out.push_back(static_cast<int64_t>(p.size()));
  }
  return out;
}

Result<RecordBatchPtr> MemoryStream::ReadPartition(int partition,
                                                   int64_t start,
                                                   int64_t end) const {
  SS_FAILPOINT("source.get_batch");
  std::lock_guard<std::mutex> lock(mu_);
  if (partition < 0 || partition >= num_partitions()) {
    return Status::OutOfRange("bad partition");
  }
  const auto& log = partitions_[static_cast<size_t>(partition)];
  if (start < 0 || start > static_cast<int64_t>(log.size()) || end < start) {
    return Status::OutOfRange("bad offset range");
  }
  if (end > static_cast<int64_t>(log.size())) {
    end = static_cast<int64_t>(log.size());
  }
  std::vector<Row> rows(log.begin() + start, log.begin() + end);
  return RecordBatch::FromRows(schema_, rows);
}

int64_t MemoryStream::OldestIngestMicros(int partition, int64_t start,
                                         int64_t end) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (partition < 0 || partition >= num_partitions()) return 0;
  const auto& stamps = ingest_micros_[static_cast<size_t>(partition)];
  if (start < 0) start = 0;
  if (end > static_cast<int64_t>(stamps.size())) {
    end = static_cast<int64_t>(stamps.size());
  }
  // Undated rows (stamp 0) don't pull the minimum to zero.
  int64_t oldest = 0;
  for (int64_t i = start; i < end; ++i) {
    int64_t s = stamps[static_cast<size_t>(i)];
    if (s > 0 && (oldest == 0 || s < oldest)) oldest = s;
  }
  return oldest;
}

Status MemorySink::CommitEpoch(int64_t epoch, OutputMode mode,
                               int num_key_columns,
                               const std::vector<RecordBatchPtr>& batches) {
  // Before any state mutates: a crash here loses the whole delivery.
  SS_FAILPOINT("sink.commit.before_apply");
  std::lock_guard<std::mutex> lock(mu_);
  switch (mode) {
    case OutputMode::kAppend: {
      std::vector<Row> rows;
      for (const auto& b : batches) {
        auto brows = b->ToRows();
        rows.insert(rows.end(), brows.begin(), brows.end());
      }
      append_epochs_[epoch] = std::move(rows);  // idempotent by epoch
      break;
    }
    case OutputMode::kUpdate: {
      if (num_key_columns <= 0) {
        return Status::InvalidArgument(
            "update mode requires key columns for upsert");
      }
      for (const auto& b : batches) {
        for (int64_t i = 0; i < b->num_rows(); ++i) {
          Row row = b->RowAt(i);
          Row key(row.begin(), row.begin() + num_key_columns);
          update_table_[std::move(key)] = std::move(row);
        }
      }
      break;
    }
    case OutputMode::kComplete: {
      if (epoch < last_epoch_) break;  // stale recommit of an older epoch
      std::vector<Row> rows;
      for (const auto& b : batches) {
        auto brows = b->ToRows();
        rows.insert(rows.end(), brows.begin(), brows.end());
      }
      complete_table_ = std::move(rows);
      break;
    }
  }
  if (epoch > last_epoch_) last_epoch_ = epoch;
  ++committed_count_;
  // After the sink applied the epoch but before the engine learns it did:
  // recovery must re-deliver and the sink's idempotence must absorb it.
  SS_FAILPOINT("sink.commit.after_apply");
  return Status::OK();
}

std::vector<Row> MemorySink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row> out;
  for (const auto& [epoch, rows] : append_epochs_) {
    (void)epoch;
    out.insert(out.end(), rows.begin(), rows.end());
  }
  for (const auto& [key, row] : update_table_) {
    (void)key;
    out.push_back(row);
  }
  out.insert(out.end(), complete_table_.begin(), complete_table_.end());
  return out;
}

std::vector<Row> MemorySink::SortedSnapshot() const {
  std::vector<Row> out = Snapshot();
  std::sort(out.begin(), out.end(), RowLess());
  return out;
}

int64_t MemorySink::num_committed_epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_count_;
}

int64_t MemorySink::last_committed_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_epoch_;
}

}  // namespace sstreaming

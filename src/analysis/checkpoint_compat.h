#ifndef SSTREAMING_ANALYSIS_CHECKPOINT_COMPAT_H_
#define SSTREAMING_ANALYSIS_CHECKPOINT_COMPAT_H_

#include <optional>
#include <string>

#include "analysis/diagnostics.h"
#include "analysis/plan_fingerprint.h"
#include "common/status.h"

namespace sstreaming {

/// Checkpoint↔plan compatibility: before a restarted query recovers, its
/// freshly computed PlanFingerprint is diffed against the plan manifest the
/// previous run persisted into the checkpoint directory. Divergences come
/// back as SS3xxx diagnostics (docs/PLAN_DIAGNOSTICS.md), errors blocking
/// the start unless QueryOptions::allow_checkpoint_incompatibility is set
/// (docs/UPGRADES.md describes the workflow).

/// Path of the manifest inside a checkpoint directory.
std::string PlanManifestPath(const std::string& checkpoint_dir);

struct ManifestLoadResult {
  /// The parsed manifest; nullopt when the directory has none (first start,
  /// or a torn write was truncated away — see torn_repaired).
  std::optional<PlanFingerprint> fingerprint;
  /// True when an unparseable manifest file was found and removed. A
  /// WriteFileAtomic publishes complete bytes or nothing, so an unparseable
  /// file is the torn-write crash artifact (same discipline as the history
  /// log's torn-tail truncation); callers surface SS3011 and rewrite.
  bool torn_repaired = false;
};

/// Loads (and, for torn files, repairs) the manifest. A file that parses as
/// JSON but is semantically invalid — unsupported formatVersion, missing
/// fields, hash mismatch — is NOT torn: it returns the error for callers to
/// surface as SS3007.
Result<ManifestLoadResult> LoadPlanManifest(const std::string& checkpoint_dir);

/// Persists `fingerprint` as the checkpoint's manifest via WriteFileAtomic
/// (failpoint seam "manifest.write").
Status StorePlanManifest(const std::string& checkpoint_dir,
                         const PlanFingerprint& fingerprint);

/// Diffs a proposed (restarting) plan against the on-disk manifest's
/// fingerprint: every divergence appends one SS3xxx diagnostic with the
/// operator provenance recorded in whichever side still has the operator.
PlanAnalysis DiffFingerprints(const PlanFingerprint& on_disk,
                              const PlanFingerprint& proposed);

struct CompatCheck {
  PlanAnalysis analysis;
  /// False on a fresh checkpoint (nothing to diff against).
  bool had_manifest = false;
};

/// The pre-recovery gate StreamingQuery::Start runs: load (repairing a torn
/// manifest into an SS3011 warning), then diff against `proposed`. A
/// semantically corrupt manifest becomes an SS3007 error instead of failing
/// the load, so the override flag can force past it too.
Result<CompatCheck> CheckCheckpointCompatibility(
    const std::string& checkpoint_dir, const PlanFingerprint& proposed);

/// Offline checkpoint linting (ssctl lint-checkpoint): validates manifest
/// integrity, cross-checks its shard count against every on-disk SHARDS
/// meta file under <dir>/state, and — when `against` is non-null — diffs the
/// manifest against that candidate fingerprint, reporting the same SS3xxx
/// codes Start would. Returns NotFound when the directory has no manifest.
Result<PlanAnalysis> LintCheckpoint(const std::string& checkpoint_dir,
                                    const PlanFingerprint* against);

}  // namespace sstreaming

#endif  // SSTREAMING_ANALYSIS_CHECKPOINT_COMPAT_H_

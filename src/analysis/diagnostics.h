#ifndef SSTREAMING_ANALYSIS_DIAGNOSTICS_H_
#define SSTREAMING_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace sstreaming {

/// Stable diagnostic codes emitted by the static plan analyzer (see
/// docs/PLAN_DIAGNOSTICS.md for the catalogue with examples and fixes).
/// SS1xxx are errors: the query cannot run incrementally as written.
/// SS2xxx are warnings: the query runs, but with a property the operator
/// almost certainly wants to know about (unbounded state, lost watermark).
/// SS3xxx are checkpoint-compatibility findings: the restarted plan's
/// canonical fingerprint diverges from the manifest persisted in the
/// checkpoint directory (see docs/UPGRADES.md). Errors in that family block
/// recovery unless QueryOptions::allow_checkpoint_incompatibility is set,
/// in which case they are downgraded to warnings with the same code.
/// Codes are append-only — never renumber a shipped code.
enum class DiagCode {
  // --- errors ---
  kNotStreaming = 1001,             // plan has no streaming source
  kMultipleAggregations = 1002,     // >1 aggregation on the streaming path
  kAppendAggregateNoWatermark = 1003,  // append-mode agg lacks watermarked
                                       // event-time window
  kStreamStreamOuterNoWatermark = 1004,  // outer join needs both watermarks
  kStaticSidePreserved = 1005,      // stream-static outer preserves static
  kSortNotComplete = 1006,          // sort outside complete mode
  kSortBeforeAggregation = 1007,    // sort without a preceding aggregation
  kLimitNotComplete = 1008,         // limit outside complete mode
  kEventTimeTimeoutNoWatermark = 1009,  // mapGroupsWithState event-time
                                        // timeout without a watermark
  kCompleteNoAggregation = 1010,    // complete mode needs bounded state

  // --- warnings ---
  kUnboundedAggregationState = 2001,  // aggregate w/o watermark: state grows
  kUnboundedDistinctState = 2002,     // dedup w/o watermark: state grows
  kUnboundedJoinState = 2003,         // stream-stream join w/o watermark
  kWatermarkDroppedByProjection = 2004,  // projection drops the watermarked
                                         // column a stateful op needs
  kCompleteModeMemory = 2005,       // complete mode rewrites whole result
  kStateWithoutTimeout = 2006,      // mapGroupsWithState never expires state

  // --- checkpoint compatibility (errors unless overridden) ---
  kCheckpointKeySchemaChanged = 3001,   // stateful op's state key changed
  kCheckpointStatefulOpRemoved = 3002,  // manifest op missing from new plan
  kCheckpointOutputModeChanged = 3003,  // append/update/complete flipped
  kCheckpointShardCountChanged = 3004,  // num_state_shards vs on-disk layout
  kCheckpointPartitionCountChanged = 3005,  // state is laid out per partition
  kCheckpointStateDetailChanged = 3006,  // agg funcs / join type / timeout
  kCheckpointManifestCorrupt = 3007,    // parseable but semantically invalid

  // --- checkpoint compatibility (always warnings) ---
  kCheckpointStatefulOpAdded = 3008,    // new stateful op starts empty
  kCheckpointPlanShapeChanged = 3009,   // stateless-only divergence
  kCheckpointWatermarkChanged = 3010,   // watermark column/delay changed
  kCheckpointManifestTorn = 3011,       // torn manifest truncated on open
};

/// Every shipped code, in numeric order — the doc↔code parity test walks
/// this to keep docs/PLAN_DIAGNOSTICS.md from drifting. Extend it whenever
/// a code is added to DiagCode (the parity test fails loudly if you don't,
/// as the new code's doc heading will have no enum twin to match).
const std::vector<DiagCode>& AllDiagCodes();

/// True for the SS3xxx checkpoint-compatibility family.
bool IsCheckpointCode(DiagCode code);

enum class DiagSeverity { kError, kWarning };

const char* DiagSeverityName(DiagSeverity severity);

/// "SS1003"-style stable identifier for a code.
std::string DiagCodeString(DiagCode code);

/// One finding of the static plan analyzer: what rule fired (code), how bad
/// it is, where in the plan (node provenance: the offending node's one-line
/// rendering plus its path from the root), and a human-readable message
/// that names the offending operator and the output mode involved. For
/// unbounded-state findings, `state_growth` carries the asymptotic estimate
/// (e.g. "O(distinct group keys)").
struct Diagnostic {
  DiagCode code;
  DiagSeverity severity = DiagSeverity::kError;
  std::string message;
  /// One-line rendering of the plan node the finding anchors to.
  std::string node;
  /// Root-to-node path, e.g. "Aggregate > Project > StreamScan".
  std::string path;
  /// Asymptotic state-growth estimate; empty when not applicable.
  std::string state_growth;

  /// "SS2001 warning [Aggregate(...)]: message (state grows O(...))".
  std::string Render() const;
  Json ToJson() const;
};

/// The analyzer's report: every rule violation and advisory in one place
/// (never first-error-wins). `FirstErrorStatus()` converts the report back
/// into the legacy single-Status contract: each error code maps to the
/// Status kind callers match on (AnalysisError, UnsupportedOperation,
/// InvalidArgument).
class PlanAnalysis {
 public:
  void Add(Diagnostic diag) { diagnostics_.push_back(std::move(diag)); }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::vector<Diagnostic> errors() const;
  std::vector<Diagnostic> warnings() const;
  bool has_errors() const;

  /// True when `code` fired at least once (test helper).
  bool Has(DiagCode code) const;

  /// OK when there are no errors (warnings never fail a query); otherwise
  /// the first error rendered as the Status kind its code maps to.
  Status FirstErrorStatus() const;

  /// Multi-line human rendering: a summary header then one line per
  /// diagnostic, errors first.
  std::string Explain() const;

  /// {"errors": [...], "warnings": [...]} of Diagnostic::ToJson().
  Json ToJson() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_ANALYSIS_DIAGNOSTICS_H_

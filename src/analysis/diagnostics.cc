#include "analysis/diagnostics.h"

#include <algorithm>

namespace sstreaming {

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
  }
  return "?";
}

std::string DiagCodeString(DiagCode code) {
  return "SS" + std::to_string(static_cast<int>(code));
}

const std::vector<DiagCode>& AllDiagCodes() {
  static const std::vector<DiagCode> kCodes = {
      DiagCode::kNotStreaming,
      DiagCode::kMultipleAggregations,
      DiagCode::kAppendAggregateNoWatermark,
      DiagCode::kStreamStreamOuterNoWatermark,
      DiagCode::kStaticSidePreserved,
      DiagCode::kSortNotComplete,
      DiagCode::kSortBeforeAggregation,
      DiagCode::kLimitNotComplete,
      DiagCode::kEventTimeTimeoutNoWatermark,
      DiagCode::kCompleteNoAggregation,
      DiagCode::kUnboundedAggregationState,
      DiagCode::kUnboundedDistinctState,
      DiagCode::kUnboundedJoinState,
      DiagCode::kWatermarkDroppedByProjection,
      DiagCode::kCompleteModeMemory,
      DiagCode::kStateWithoutTimeout,
      DiagCode::kCheckpointKeySchemaChanged,
      DiagCode::kCheckpointStatefulOpRemoved,
      DiagCode::kCheckpointOutputModeChanged,
      DiagCode::kCheckpointShardCountChanged,
      DiagCode::kCheckpointPartitionCountChanged,
      DiagCode::kCheckpointStateDetailChanged,
      DiagCode::kCheckpointManifestCorrupt,
      DiagCode::kCheckpointStatefulOpAdded,
      DiagCode::kCheckpointPlanShapeChanged,
      DiagCode::kCheckpointWatermarkChanged,
      DiagCode::kCheckpointManifestTorn,
  };
  return kCodes;
}

bool IsCheckpointCode(DiagCode code) {
  int value = static_cast<int>(code);
  return value >= 3000 && value < 4000;
}

std::string Diagnostic::Render() const {
  std::string out = DiagCodeString(code);
  out += " ";
  out += DiagSeverityName(severity);
  if (!node.empty()) {
    out += " [";
    out += node;
    out += "]";
  }
  out += ": ";
  out += message;
  if (!state_growth.empty()) {
    out += " (state grows ";
    out += state_growth;
    out += ")";
  }
  return out;
}

Json Diagnostic::ToJson() const {
  Json obj = Json::Object();
  obj.Set("code", Json::Str(DiagCodeString(code)));
  obj.Set("severity", Json::Str(DiagSeverityName(severity)));
  obj.Set("message", Json::Str(message));
  obj.Set("node", Json::Str(node));
  obj.Set("path", Json::Str(path));
  if (!state_growth.empty()) {
    obj.Set("state_growth", Json::Str(state_growth));
  }
  return obj;
}

std::vector<Diagnostic> PlanAnalysis::errors() const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == DiagSeverity::kError) out.push_back(d);
  }
  return out;
}

std::vector<Diagnostic> PlanAnalysis::warnings() const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == DiagSeverity::kWarning) out.push_back(d);
  }
  return out;
}

bool PlanAnalysis::has_errors() const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [](const Diagnostic& d) {
                       return d.severity == DiagSeverity::kError;
                     });
}

bool PlanAnalysis::Has(DiagCode code) const {
  return std::any_of(
      diagnostics_.begin(), diagnostics_.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

Status PlanAnalysis::FirstErrorStatus() const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != DiagSeverity::kError) continue;
    std::string msg = d.Render();
    switch (d.code) {
      case DiagCode::kNotStreaming:
        return Status::InvalidArgument(std::move(msg));
      case DiagCode::kMultipleAggregations:
      case DiagCode::kStaticSidePreserved:
      case DiagCode::kSortNotComplete:
      case DiagCode::kSortBeforeAggregation:
      case DiagCode::kLimitNotComplete:
        return Status::UnsupportedOperation(std::move(msg));
      default:
        // Checkpoint-compatibility violations are preconditions on the
        // durable state the query is being restarted against; watermark/
        // output-mode semantics violations are analysis errors.
        if (IsCheckpointCode(d.code)) {
          return Status::FailedPrecondition(std::move(msg));
        }
        return Status::AnalysisError(std::move(msg));
    }
  }
  return Status::OK();
}

std::string PlanAnalysis::Explain() const {
  std::vector<Diagnostic> errs = errors();
  std::vector<Diagnostic> warns = warnings();
  std::string out = "plan analysis: " + std::to_string(errs.size()) +
                    " error(s), " + std::to_string(warns.size()) +
                    " warning(s)\n";
  for (const Diagnostic& d : errs) {
    out += "  ";
    out += d.Render();
    out += "\n";
    if (!d.path.empty()) out += "    at: " + d.path + "\n";
  }
  for (const Diagnostic& d : warns) {
    out += "  ";
    out += d.Render();
    out += "\n";
    if (!d.path.empty()) out += "    at: " + d.path + "\n";
  }
  return out;
}

Json PlanAnalysis::ToJson() const {
  Json errs = Json::Array();
  for (const Diagnostic& d : errors()) errs.Append(d.ToJson());
  Json warns = Json::Array();
  for (const Diagnostic& d : warnings()) warns.Append(d.ToJson());
  Json obj = Json::Object();
  obj.Set("errors", std::move(errs));
  obj.Set("warnings", std::move(warns));
  return obj;
}

}  // namespace sstreaming

#include "analysis/checkpoint_compat.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "storage/fs.h"
#include "testing/failpoints.h"

namespace sstreaming {

namespace {

constexpr char kManifestFile[] = "plan_manifest.json";

Diagnostic CompatDiag(DiagCode code, DiagSeverity severity,
                      std::string message, std::string node = "",
                      std::string path = "") {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.node = std::move(node);
  d.path = std::move(path);
  return d;
}

std::string JoinList(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out.empty() ? "(none)" : out;
}

/// Compares one aligned pair of stateful operators.
void DiffStatefulPair(const OperatorFingerprint& old_op,
                      const OperatorFingerprint& new_op, size_t position,
                      PlanAnalysis* report) {
  const std::string where = "stateful operator #" +
                            std::to_string(position + 1);
  if (old_op.kind != new_op.kind) {
    report->Add(CompatDiag(
        DiagCode::kCheckpointStatefulOpRemoved, DiagSeverity::kError,
        where + " changed kind: checkpoint holds " + old_op.kind +
            " state but the plan now has " + new_op.kind +
            " there; its state cannot be adopted",
        new_op.Render(), new_op.path));
    return;  // further field diffs on mismatched kinds are noise
  }
  if (old_op.key_schema != new_op.key_schema) {
    report->Add(CompatDiag(
        DiagCode::kCheckpointKeySchemaChanged, DiagSeverity::kError,
        where + " (" + old_op.kind + ") changed its state key from " +
            old_op.key_schema + " to " + new_op.key_schema +
            "; checkpointed rows are keyed and routed by the old encoding",
        new_op.Render(), new_op.path));
  }
  if (old_op.detail != new_op.detail) {
    report->Add(CompatDiag(
        DiagCode::kCheckpointStateDetailChanged, DiagSeverity::kError,
        where + " (" + old_op.kind + ") changed its state encoding from [" +
            old_op.detail + "] to [" + new_op.detail +
            "]; checkpointed values would be folded with the wrong "
            "functions",
        new_op.Render(), new_op.path));
  }
  if (old_op.watermark_columns != new_op.watermark_columns) {
    report->Add(CompatDiag(
        DiagCode::kCheckpointWatermarkChanged, DiagSeverity::kWarning,
        where + " (" + old_op.kind + ") is now bounded by watermarks {" +
            JoinList(new_op.watermark_columns) + "} instead of {" +
            JoinList(old_op.watermark_columns) +
            "}; eviction timing changes, state layout does not",
        new_op.Render(), new_op.path));
  }
}

}  // namespace

std::string PlanManifestPath(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/" + kManifestFile;
}

Result<ManifestLoadResult> LoadPlanManifest(
    const std::string& checkpoint_dir) {
  ManifestLoadResult result;
  const std::string path = PlanManifestPath(checkpoint_dir);
  if (!FileExists(path)) return result;
  SS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  Result<Json> json = Json::Parse(text);
  if (!json.ok()) {
    // Unparseable bytes under the final name = a torn atomic write (crash
    // between publish and durability). Truncate-on-open like the history
    // log: remove it so the new run's manifest replaces it cleanly.
    (void)RemoveFile(path);
    result.torn_repaired = true;
    return result;
  }
  SS_ASSIGN_OR_RETURN(PlanFingerprint fp, PlanFingerprint::FromJson(*json));
  result.fingerprint = std::move(fp);
  return result;
}

Status StorePlanManifest(const std::string& checkpoint_dir,
                         const PlanFingerprint& fingerprint) {
  SS_FAILPOINT("manifest.write");
  SS_RETURN_IF_ERROR(EnsureDir(checkpoint_dir));
  return WriteFileAtomic(PlanManifestPath(checkpoint_dir),
                         fingerprint.ToJson().DumpPretty() + "\n");
}

PlanAnalysis DiffFingerprints(const PlanFingerprint& on_disk,
                              const PlanFingerprint& proposed) {
  PlanAnalysis report;
  if (on_disk.output_mode != proposed.output_mode) {
    report.Add(CompatDiag(
        DiagCode::kCheckpointOutputModeChanged, DiagSeverity::kError,
        "output mode changed from " + on_disk.output_mode + " to " +
            proposed.output_mode +
            "; the sink's contract and the aggregates' emission rules "
            "differ between modes"));
  }
  if (on_disk.num_state_shards != proposed.num_state_shards) {
    report.Add(CompatDiag(
        DiagCode::kCheckpointShardCountChanged, DiagSeverity::kError,
        "num_state_shards changed from " +
            std::to_string(on_disk.num_state_shards) + " to " +
            std::to_string(proposed.num_state_shards) +
            "; durable keys are routed hash % " +
            std::to_string(on_disk.num_state_shards) +
            " (resharding is not supported)"));
  }
  if (on_disk.num_partitions != proposed.num_partitions) {
    report.Add(CompatDiag(
        DiagCode::kCheckpointPartitionCountChanged, DiagSeverity::kError,
        "num_partitions changed from " +
            std::to_string(on_disk.num_partitions) + " to " +
            std::to_string(proposed.num_partitions) +
            "; state directories are laid out per (operator, partition)"));
  }

  std::vector<const OperatorFingerprint*> old_ops = on_disk.StatefulOps();
  std::vector<const OperatorFingerprint*> new_ops = proposed.StatefulOps();
  const size_t common = std::min(old_ops.size(), new_ops.size());
  for (size_t i = 0; i < common; ++i) {
    DiffStatefulPair(*old_ops[i], *new_ops[i], i, &report);
  }
  for (size_t i = common; i < old_ops.size(); ++i) {
    report.Add(CompatDiag(
        DiagCode::kCheckpointStatefulOpRemoved, DiagSeverity::kError,
        "stateful operator #" + std::to_string(i + 1) + " (" +
            old_ops[i]->Render() +
            ") was removed from the plan; its checkpointed state would be "
            "silently orphaned",
        old_ops[i]->Render(), old_ops[i]->path));
  }
  for (size_t i = common; i < new_ops.size(); ++i) {
    report.Add(CompatDiag(
        DiagCode::kCheckpointStatefulOpAdded, DiagSeverity::kWarning,
        "stateful operator #" + std::to_string(i + 1) + " (" +
            new_ops[i]->Render() +
            ") is new; it starts with empty state and will not see rows "
            "from before this restart",
        new_ops[i]->Render(), new_ops[i]->path));
  }

  if (on_disk.watermarks != proposed.watermarks) {
    report.Add(CompatDiag(
        DiagCode::kCheckpointWatermarkChanged, DiagSeverity::kWarning,
        "watermark declarations changed from {" +
            JoinList(on_disk.watermarks) + "} to {" +
            JoinList(proposed.watermarks) +
            "}; lateness bounds shift but checkpointed state stays valid"));
  }

  if (report.diagnostics().empty() &&
      on_disk.PlanHash() != proposed.PlanHash()) {
    report.Add(CompatDiag(
        DiagCode::kCheckpointPlanShapeChanged, DiagSeverity::kWarning,
        "the plan changed shape (stateless operators added, removed, or "
        "edited) but every stateful operator is compatible; recovery "
        "proceeds against the existing state"));
  }
  return report;
}

Result<CompatCheck> CheckCheckpointCompatibility(
    const std::string& checkpoint_dir, const PlanFingerprint& proposed) {
  CompatCheck check;
  auto loaded = LoadPlanManifest(checkpoint_dir);
  if (!loaded.ok()) {
    if (!loaded.status().IsInvalidArgument()) return loaded.status();
    // Parseable-but-invalid: real corruption or a manifest from a newer
    // build, never a torn write. Surface it as a blocking diagnostic the
    // override flag can still force past.
    check.had_manifest = true;
    check.analysis.Add(CompatDiag(
        DiagCode::kCheckpointManifestCorrupt, DiagSeverity::kError,
        "checkpoint manifest at " + PlanManifestPath(checkpoint_dir) +
            " is invalid: " + loaded.status().message()));
    return check;
  }
  if (loaded->torn_repaired) {
    check.analysis.Add(CompatDiag(
        DiagCode::kCheckpointManifestTorn, DiagSeverity::kWarning,
        "checkpoint manifest at " + PlanManifestPath(checkpoint_dir) +
            " was torn (crash during write); it was truncated away and "
            "will be rewritten — this start is not compatibility-checked"));
    return check;
  }
  if (!loaded->fingerprint.has_value()) return check;  // fresh checkpoint
  check.had_manifest = true;
  check.analysis = DiffFingerprints(*loaded->fingerprint, proposed);
  return check;
}

Result<PlanAnalysis> LintCheckpoint(const std::string& checkpoint_dir,
                                    const PlanFingerprint* against) {
  if (!FileExists(checkpoint_dir)) {
    return Status::NotFound("no checkpoint directory at " + checkpoint_dir);
  }
  PlanAnalysis report;
  auto loaded = LoadPlanManifest(checkpoint_dir);
  if (!loaded.ok()) {
    if (!loaded.status().IsInvalidArgument()) return loaded.status();
    report.Add(CompatDiag(
        DiagCode::kCheckpointManifestCorrupt, DiagSeverity::kError,
        "checkpoint manifest at " + PlanManifestPath(checkpoint_dir) +
            " is invalid: " + loaded.status().message()));
    return report;
  }
  if (loaded->torn_repaired) {
    report.Add(CompatDiag(
        DiagCode::kCheckpointManifestTorn, DiagSeverity::kWarning,
        "checkpoint manifest at " + PlanManifestPath(checkpoint_dir) +
            " was torn (crash during write); it has been truncated away"));
    return report;
  }
  if (!loaded->fingerprint.has_value()) {
    return Status::NotFound("checkpoint at " + checkpoint_dir +
                            " has no plan manifest (written by runs of "
                            "this version at query start)");
  }
  const PlanFingerprint& manifest = *loaded->fingerprint;

  // Cross-check the manifest's shard count against every SHARDS meta file
  // the state tree actually holds (layout: state/op<N>/p<M>/SHARDS).
  std::error_code ec;
  const std::string state_root = checkpoint_dir + "/state";
  for (const auto& op_entry :
       std::filesystem::directory_iterator(state_root, ec)) {
    if (!op_entry.is_directory()) continue;
    std::error_code ec2;
    for (const auto& part_entry :
         std::filesystem::directory_iterator(op_entry.path(), ec2)) {
      if (!part_entry.is_directory()) continue;
      const std::string meta = (part_entry.path() / "SHARDS").string();
      if (!FileExists(meta)) continue;
      auto text = ReadFile(meta);
      if (!text.ok()) return text.status();
      int on_disk = std::atoi(text->c_str());
      if (on_disk != manifest.num_state_shards) {
        report.Add(CompatDiag(
            DiagCode::kCheckpointShardCountChanged, DiagSeverity::kError,
            "state at " + part_entry.path().string() + " is laid out with " +
                std::to_string(on_disk) +
                " shards but the manifest records " +
                std::to_string(manifest.num_state_shards)));
      }
    }
  }

  if (against != nullptr) {
    PlanAnalysis diff = DiffFingerprints(manifest, *against);
    for (const Diagnostic& d : diff.diagnostics()) report.Add(d);
  }
  return report;
}

}  // namespace sstreaming

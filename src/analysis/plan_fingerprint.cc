#include "analysis/plan_fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "analysis/plan_analyzer.h"
#include "types/data_type.h"

namespace sstreaming {

namespace {

const char* KindName(LogicalPlan::Kind kind) {
  switch (kind) {
    case LogicalPlan::Kind::kScan:
      return "Scan";
    case LogicalPlan::Kind::kStreamScan:
      return "StreamScan";
    case LogicalPlan::Kind::kFilter:
      return "Filter";
    case LogicalPlan::Kind::kProject:
      return "Project";
    case LogicalPlan::Kind::kAggregate:
      return "Aggregate";
    case LogicalPlan::Kind::kJoin:
      return "Join";
    case LogicalPlan::Kind::kDistinct:
      return "Distinct";
    case LogicalPlan::Kind::kSort:
      return "Sort";
    case LogicalPlan::Kind::kLimit:
      return "Limit";
    case LogicalPlan::Kind::kWithWatermark:
      return "WithWatermark";
    case LogicalPlan::Kind::kFlatMapGroupsWithState:
      return "FlatMapGroupsWithState";
  }
  return "?";
}

const char* TimeoutName(GroupStateTimeout timeout) {
  switch (timeout) {
    case GroupStateTimeout::kNone:
      return "none";
    case GroupStateTimeout::kProcessingTime:
      return "processing-time";
    case GroupStateTimeout::kEventTime:
      return "event-time";
  }
  return "?";
}

uint64_t Fnv1a(const std::string& data, uint64_t h) {
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr uint64_t kFnvBasis = 14695981039346656037ull;

std::string HashHex(uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// One group/join key entry: "name: type", with window geometry inlined
/// because changing it re-keys every state row.
std::string KeyEntry(const NamedExpr& e) {
  if (e.expr->kind() == Expr::Kind::kWindow) {
    const auto& w = static_cast<const WindowExpr&>(*e.expr);
    std::vector<std::string> refs;
    w.time()->CollectColumnRefs(&refs);
    std::string cols;
    for (const std::string& r : refs) {
      if (!cols.empty()) cols += ",";
      cols += r;
    }
    return e.OutputName() + ": window[" + std::to_string(w.size_micros()) +
           "/" + std::to_string(w.slide_micros()) + "](" + cols + ")";
  }
  return e.OutputName() + ": " + TypeName(e.expr->type());
}

std::string KeyList(const std::vector<NamedExpr>& exprs) {
  std::string out = "(";
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) out += ", ";
    out += KeyEntry(exprs[i]);
  }
  out += ")";
  return out;
}

std::string JoinKeyList(const std::vector<ExprPtr>& keys) {
  std::string out = "(";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i]->ToString();
    out += ": ";
    out += TypeName(keys[i]->type());
  }
  out += ")";
  return out;
}

std::vector<std::string> SortedWatermarks(const PlanPtr& plan,
                                          const std::string& prefix = "") {
  std::vector<std::string> out;
  for (const std::string& col : PropagatedWatermarkColumns(plan)) {
    out.push_back(prefix + col);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CollectWatermarkDecls(const PlanPtr& plan,
                           std::vector<std::string>* out) {
  if (plan->kind() == LogicalPlan::Kind::kWithWatermark) {
    const auto& node = static_cast<const WithWatermarkNode&>(*plan);
    out->push_back(node.column() + "@" +
                   std::to_string(node.delay_micros()));
  }
  for (const PlanPtr& child : plan->children()) {
    CollectWatermarkDecls(child, out);
  }
}

}  // namespace

uint64_t OperatorFingerprint::IdentityHash() const {
  uint64_t h = Fnv1a(kind, kFnvBasis);
  h = Fnv1a(stateful ? "|s|" : "|-|", h);
  h = Fnv1a(key_schema, h);
  h = Fnv1a("|", h);
  h = Fnv1a(detail, h);
  for (const std::string& col : watermark_columns) {
    h = Fnv1a("|wm:" + col, h);
  }
  return h;
}

std::string OperatorFingerprint::Render() const {
  std::string out = kind;
  if (stateful) out += "*";
  if (!key_schema.empty()) out += " key=" + key_schema;
  if (!detail.empty()) out += " [" + detail + "]";
  if (!watermark_columns.empty()) {
    out += " wm={";
    for (size_t i = 0; i < watermark_columns.size(); ++i) {
      if (i > 0) out += ",";
      out += watermark_columns[i];
    }
    out += "}";
  }
  return out;
}

Json OperatorFingerprint::ToJson() const {
  Json obj = Json::Object();
  obj.Set("kind", Json::Str(kind));
  obj.Set("stateful", Json::Bool(stateful));
  obj.Set("keySchema", Json::Str(key_schema));
  obj.Set("detail", Json::Str(detail));
  Json wm = Json::Array();
  for (const std::string& col : watermark_columns) {
    wm.Append(Json::Str(col));
  }
  obj.Set("watermarkColumns", std::move(wm));
  obj.Set("path", Json::Str(path));
  obj.Set("hash", Json::Str(HashHex(IdentityHash())));
  return obj;
}

Result<OperatorFingerprint> OperatorFingerprint::FromJson(const Json& json) {
  if (!json.is_object() || !json.Get("kind").is_string() ||
      !json.Get("stateful").is_bool()) {
    return Status::InvalidArgument("operator fingerprint entry is malformed");
  }
  OperatorFingerprint op;
  op.kind = json.Get("kind").string_value();
  op.stateful = json.Get("stateful").bool_value();
  op.key_schema = json.Get("keySchema").string_value();
  op.detail = json.Get("detail").string_value();
  for (const Json& col : json.Get("watermarkColumns").array_items()) {
    if (col.is_string()) op.watermark_columns.push_back(col.string_value());
  }
  op.path = json.Get("path").string_value();
  if (json.Get("hash").is_string() &&
      json.Get("hash").string_value() != HashHex(op.IdentityHash())) {
    return Status::InvalidArgument(
        "operator fingerprint hash does not match its fields (manifest "
        "edited or corrupted): " + op.Render());
  }
  return op;
}

uint64_t PlanFingerprint::PlanHash() const {
  uint64_t h = Fnv1a(output_mode, kFnvBasis);
  h = Fnv1a("|p" + std::to_string(num_partitions), h);
  h = Fnv1a("|s" + std::to_string(num_state_shards), h);
  for (const std::string& wm : watermarks) h = Fnv1a("|wm:" + wm, h);
  for (const OperatorFingerprint& op : operators) {
    h = Fnv1a("|op:" + HashHex(op.IdentityHash()) + "@" + op.path, h);
  }
  return h;
}

uint64_t PlanFingerprint::StatefulHash() const {
  uint64_t h = kFnvBasis;
  for (const OperatorFingerprint& op : operators) {
    if (!op.stateful) continue;
    h = Fnv1a("|op:" + HashHex(op.IdentityHash()), h);
  }
  return h;
}

std::vector<const OperatorFingerprint*> PlanFingerprint::StatefulOps() const {
  std::vector<const OperatorFingerprint*> out;
  for (const OperatorFingerprint& op : operators) {
    if (op.stateful) out.push_back(&op);
  }
  return out;
}

std::string PlanFingerprint::Render() const {
  std::string out = "plan fingerprint (v" + std::to_string(format_version) +
                    "): mode=" + output_mode +
                    " partitions=" + std::to_string(num_partitions) +
                    " shards=" + std::to_string(num_state_shards) + "\n";
  out += "  plan hash " + HashHex(PlanHash()) + ", stateful hash " +
         HashHex(StatefulHash()) + "\n";
  if (!watermarks.empty()) {
    out += "  watermarks:";
    for (const std::string& wm : watermarks) out += " " + wm;
    out += "\n";
  }
  for (const OperatorFingerprint& op : operators) {
    out += op.stateful ? "  [S] " : "      ";
    out += op.Render();
    out += "\n";
  }
  return out;
}

Json PlanFingerprint::ToJson() const {
  Json obj = Json::Object();
  obj.Set("formatVersion", Json::Int(format_version));
  obj.Set("outputMode", Json::Str(output_mode));
  obj.Set("numPartitions", Json::Int(num_partitions));
  obj.Set("numStateShards", Json::Int(num_state_shards));
  Json wms = Json::Array();
  for (const std::string& wm : watermarks) wms.Append(Json::Str(wm));
  obj.Set("watermarks", std::move(wms));
  Json ops = Json::Array();
  for (const OperatorFingerprint& op : operators) ops.Append(op.ToJson());
  obj.Set("operators", std::move(ops));
  obj.Set("planHash", Json::Str(HashHex(PlanHash())));
  obj.Set("statefulHash", Json::Str(HashHex(StatefulHash())));
  return obj;
}

Result<PlanFingerprint> PlanFingerprint::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("plan manifest is not a JSON object");
  }
  if (!json.Get("formatVersion").is_int()) {
    return Status::InvalidArgument("plan manifest lacks formatVersion");
  }
  PlanFingerprint fp;
  fp.format_version =
      static_cast<int>(json.Get("formatVersion").int_value());
  if (fp.format_version < 1 || fp.format_version > kFormatVersion) {
    return Status::InvalidArgument(
        "plan manifest formatVersion " + std::to_string(fp.format_version) +
        " is not supported (this build reads up to v" +
        std::to_string(kFormatVersion) + ")");
  }
  if (!json.Get("outputMode").is_string() ||
      !json.Get("numPartitions").is_int() ||
      !json.Get("numStateShards").is_int() ||
      !json.Get("operators").is_array()) {
    return Status::InvalidArgument("plan manifest lacks required fields");
  }
  fp.output_mode = json.Get("outputMode").string_value();
  fp.num_partitions =
      static_cast<int>(json.Get("numPartitions").int_value());
  fp.num_state_shards =
      static_cast<int>(json.Get("numStateShards").int_value());
  for (const Json& wm : json.Get("watermarks").array_items()) {
    if (wm.is_string()) fp.watermarks.push_back(wm.string_value());
  }
  for (const Json& op : json.Get("operators").array_items()) {
    SS_ASSIGN_OR_RETURN(OperatorFingerprint parsed,
                        OperatorFingerprint::FromJson(op));
    fp.operators.push_back(std::move(parsed));
  }
  if (json.Get("planHash").is_string() &&
      json.Get("planHash").string_value() != HashHex(fp.PlanHash())) {
    return Status::InvalidArgument(
        "plan manifest planHash does not match its operators (manifest "
        "edited or corrupted)");
  }
  return fp;
}

namespace {

/// Pre-order fingerprint walk mirroring PathString provenance.
void FingerprintNode(const PlanPtr& plan, std::string path,
                     std::vector<OperatorFingerprint>* out) {
  OperatorFingerprint op;
  op.kind = KindName(plan->kind());
  op.path = path.empty() ? op.kind : path + " > " + op.kind;

  switch (plan->kind()) {
    case LogicalPlan::Kind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(*plan);
      op.stateful = plan->IsStreaming();
      op.key_schema = KeyList(node.group_exprs());
      std::string aggs;
      for (const AggSpec& spec : node.aggregates()) {
        if (!aggs.empty()) aggs += ", ";
        aggs += spec.ToString();
      }
      op.detail = aggs;
      op.watermark_columns = SortedWatermarks(plan->children()[0]);
      break;
    }
    case LogicalPlan::Kind::kJoin: {
      const auto& node = static_cast<const JoinNode&>(*plan);
      // Only a stream-stream join retains durable state: a static side is
      // rebuilt from its scan every epoch.
      op.stateful = plan->children()[0]->IsStreaming() &&
                    plan->children()[1]->IsStreaming();
      op.key_schema = "l" + JoinKeyList(node.left_keys()) + " = r" +
                      JoinKeyList(node.right_keys());
      op.detail = JoinTypeName(node.join_type());
      op.watermark_columns = SortedWatermarks(plan->children()[0], "l:");
      for (const std::string& wm :
           SortedWatermarks(plan->children()[1], "r:")) {
        op.watermark_columns.push_back(wm);
      }
      break;
    }
    case LogicalPlan::Kind::kDistinct: {
      // Dedup keys on the whole input row; the child schema IS the key.
      op.stateful = plan->IsStreaming();
      const SchemaPtr& child_schema = plan->children()[0]->schema();
      op.key_schema =
          child_schema != nullptr ? child_schema->ToString() : "(?)";
      op.watermark_columns = SortedWatermarks(plan->children()[0]);
      break;
    }
    case LogicalPlan::Kind::kFlatMapGroupsWithState: {
      const auto& node =
          static_cast<const FlatMapGroupsWithStateNode&>(*plan);
      op.stateful = true;
      op.key_schema = KeyList(node.key_exprs());
      // The update function itself cannot be fingerprinted (it is code, and
      // swapping it between restarts is the paper's §7.1 code-update
      // feature) — only the key, timeout clock, and output shape are pinned.
      op.detail = std::string("timeout=") + TimeoutName(node.timeout()) +
                  ", out=" +
                  (node.output_schema() != nullptr
                       ? node.output_schema()->ToString()
                       : "(?)");
      op.watermark_columns = SortedWatermarks(plan->children()[0]);
      break;
    }
    case LogicalPlan::Kind::kWithWatermark: {
      const auto& node = static_cast<const WithWatermarkNode&>(*plan);
      op.detail = node.column() + "@" + std::to_string(node.delay_micros());
      break;
    }
    default:
      break;
  }
  std::string child_path = op.path;
  out->push_back(std::move(op));
  for (const PlanPtr& child : plan->children()) {
    FingerprintNode(child, child_path, out);
  }
}

}  // namespace

PlanFingerprint ComputePlanFingerprint(const PlanPtr& analyzed,
                                       OutputMode mode, int num_partitions,
                                       int num_state_shards) {
  PlanFingerprint fp;
  fp.output_mode = OutputModeName(mode);
  fp.num_partitions = num_partitions;
  fp.num_state_shards = num_state_shards;
  CollectWatermarkDecls(analyzed, &fp.watermarks);
  std::sort(fp.watermarks.begin(), fp.watermarks.end());
  FingerprintNode(analyzed, "", &fp.operators);
  return fp;
}

}  // namespace sstreaming

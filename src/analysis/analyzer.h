#ifndef SSTREAMING_ANALYSIS_ANALYZER_H_
#define SSTREAMING_ANALYSIS_ANALYZER_H_

#include <map>
#include <string>

#include "logical/output_mode.h"
#include "logical/plan.h"

namespace sstreaming {

/// Query analysis (paper §5.1): resolves names and types bottom-up, computes
/// output schemas, and rejects invalid queries with AnalysisError. Produces a
/// new, fully resolved plan tree; the input is unchanged.
class Analyzer {
 public:
  static Result<PlanPtr> Analyze(const PlanPtr& plan);
};

/// Checks that an *analyzed* streaming query is incrementalizable (§5.2) and
/// that the chosen sink output mode is valid for it (§5.1). A thin wrapper
/// over PlanAnalyzer::Analyze (analysis/plan_analyzer.h) that keeps the
/// legacy single-Status contract: the first SS1xxx error diagnostic is
/// returned as UnsupportedOperation / AnalysisError with the paper's
/// semantics:
///  - at most one aggregation on the streaming path;
///  - append mode requires monotonic output: aggregations must group by an
///    event-time window over a watermarked column;
///  - complete mode requires an aggregation (bounded result state);
///  - sorting only after aggregation, only in complete mode;
///  - limit only in complete mode;
///  - stream-stream outer joins require watermarks on both sides;
///  - stream-static outer joins must preserve the stream side;
///  - mapGroupsWithState event-time timeouts require a watermark.
Status ValidateStreamingQuery(const PlanPtr& analyzed_plan, OutputMode mode);

/// Event-time columns declared via withWatermark in the subtree, mapped to
/// their delay (the engine uses these to advance the query watermark).
std::map<std::string, int64_t> CollectWatermarkColumns(const PlanPtr& plan);

}  // namespace sstreaming

#endif  // SSTREAMING_ANALYSIS_ANALYZER_H_

#include "analysis/analyzer.h"

#include <set>

#include "analysis/plan_analyzer.h"
#include "common/logging.h"

namespace sstreaming {

namespace {

Status CheckNoDuplicateNames(const Schema& schema, const char* where) {
  std::set<std::string> seen;
  for (const Field& f : schema.fields()) {
    if (!seen.insert(f.name).second) {
      return Status::AnalysisError(std::string(where) +
                                   ": duplicate output column '" + f.name +
                                   "'");
    }
  }
  return Status::OK();
}

}  // namespace

// Definitions live outside the anonymous namespace because Analyzer is a
// friend of LogicalPlan (needed to set schema_ on the rebuilt nodes).
Result<PlanPtr> Analyzer::Analyze(const PlanPtr& plan) {
  switch (plan->kind()) {
    case LogicalPlan::Kind::kScan: {
      const auto& node = static_cast<const ScanNode&>(*plan);
      auto out = std::make_shared<ScanNode>(node.data_schema(),
                                            node.batches());
      out->schema_ = node.data_schema();
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kStreamScan: {
      const auto& node = static_cast<const StreamScanNode&>(*plan);
      auto out = std::make_shared<StreamScanNode>(node.source());
      out->schema_ = node.source()->schema();
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kFilter: {
      const auto& node = static_cast<const FilterNode&>(*plan);
      SS_ASSIGN_OR_RETURN(PlanPtr child, Analyze(node.children()[0]));
      SS_ASSIGN_OR_RETURN(ExprPtr pred,
                          node.predicate()->Resolve(*child->schema()));
      if (pred->type() != TypeId::kBool && pred->type() != TypeId::kNull) {
        return Status::AnalysisError(
            "filter predicate must be boolean, got " +
            std::string(TypeName(pred->type())) + " in " +
            node.predicate()->ToString());
      }
      auto out = std::make_shared<FilterNode>(child, std::move(pred));
      out->schema_ = child->schema();
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kProject: {
      const auto& node = static_cast<const ProjectNode&>(*plan);
      SS_ASSIGN_OR_RETURN(PlanPtr child, Analyze(node.children()[0]));
      const Schema& in = *child->schema();
      std::vector<NamedExpr> items;
      if (node.include_star()) {
        // Expand '*': all child columns, with same-named items overriding.
        for (const Field& f : in.fields()) {
          const NamedExpr* override_item = nullptr;
          for (const NamedExpr& e : node.exprs()) {
            if (e.OutputName() == f.name) override_item = &e;
          }
          items.push_back(override_item
                              ? *override_item
                              : NamedExpr{Col(f.name), f.name});
        }
        for (const NamedExpr& e : node.exprs()) {
          if (in.IndexOf(e.OutputName()) < 0) items.push_back(e);
        }
      } else {
        items = node.exprs();
      }
      std::vector<NamedExpr> resolved;
      std::vector<Field> fields;
      for (const NamedExpr& item : items) {
        SS_ASSIGN_OR_RETURN(ExprPtr e, item.expr->Resolve(in));
        std::string name =
            item.name.empty() ? item.expr->output_name() : item.name;
        fields.push_back(Field{name, e->type(), /*nullable=*/true});
        resolved.push_back(NamedExpr{std::move(e), std::move(name)});
      }
      Schema schema(std::move(fields));
      SS_RETURN_IF_ERROR(CheckNoDuplicateNames(schema, "project"));
      auto out = std::make_shared<ProjectNode>(child, std::move(resolved));
      out->schema_ = std::make_shared<Schema>(std::move(schema));
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(*plan);
      SS_ASSIGN_OR_RETURN(PlanPtr child, Analyze(node.children()[0]));
      const Schema& in = *child->schema();
      std::vector<NamedExpr> group_resolved;
      std::vector<Field> fields;
      int window_keys = 0;
      for (const NamedExpr& g : node.group_exprs()) {
        SS_ASSIGN_OR_RETURN(ExprPtr e, g.expr->Resolve(in));
        std::string name = g.name.empty() ? g.expr->output_name() : g.name;
        if (e->kind() == Expr::Kind::kWindow) {
          ++window_keys;
          if (window_keys > 1) {
            return Status::AnalysisError(
                "at most one window() group key is supported");
          }
          fields.push_back(Field{name + "_start", TypeId::kTimestamp, false});
          fields.push_back(Field{name + "_end", TypeId::kTimestamp, false});
        } else {
          fields.push_back(Field{name, e->type(), /*nullable=*/true});
        }
        group_resolved.push_back(NamedExpr{std::move(e), std::move(name)});
      }
      std::vector<AggSpec> aggs_resolved;
      for (const AggSpec& spec : node.aggregates()) {
        AggSpec r = spec;
        TypeId arg_type = TypeId::kNull;
        if (spec.func != AggFunc::kCountAll) {
          if (spec.arg == nullptr) {
            return Status::AnalysisError("aggregate " +
                                         std::string(AggFuncName(spec.func)) +
                                         " needs an argument");
          }
          SS_ASSIGN_OR_RETURN(ExprPtr a, spec.arg->Resolve(in));
          arg_type = a->type();
          r.arg = std::move(a);
        }
        SS_ASSIGN_OR_RETURN(TypeId out_type,
                            AggOutputType(spec.func, arg_type));
        fields.push_back(Field{r.name, out_type, /*nullable=*/true});
        aggs_resolved.push_back(std::move(r));
      }
      if (aggs_resolved.empty()) {
        return Status::AnalysisError("aggregation requires at least one "
                                     "aggregate function");
      }
      Schema schema(std::move(fields));
      SS_RETURN_IF_ERROR(CheckNoDuplicateNames(schema, "aggregate"));
      auto out = std::make_shared<AggregateNode>(
          child, std::move(group_resolved), std::move(aggs_resolved));
      out->schema_ = std::make_shared<Schema>(std::move(schema));
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kJoin: {
      const auto& node = static_cast<const JoinNode&>(*plan);
      SS_ASSIGN_OR_RETURN(PlanPtr left, Analyze(node.children()[0]));
      SS_ASSIGN_OR_RETURN(PlanPtr right, Analyze(node.children()[1]));
      if (node.left_keys().empty()) {
        return Status::AnalysisError("join requires at least one key");
      }
      std::vector<ExprPtr> lkeys;
      std::vector<ExprPtr> rkeys;
      // Right key columns that mirror a same-named left key are dropped from
      // the output (the usual USING-join behavior).
      std::set<std::string> dropped_right;
      for (size_t i = 0; i < node.left_keys().size(); ++i) {
        SS_ASSIGN_OR_RETURN(ExprPtr lk,
                            node.left_keys()[i]->Resolve(*left->schema()));
        SS_ASSIGN_OR_RETURN(ExprPtr rk,
                            node.right_keys()[i]->Resolve(*right->schema()));
        bool compatible = lk->type() == rk->type() ||
                          (IsNumeric(lk->type()) && IsNumeric(rk->type()));
        if (!compatible) {
          return Status::AnalysisError(
              std::string("join key type mismatch: ") + TypeName(lk->type()) +
              " vs " + TypeName(rk->type()));
        }
        if (node.left_keys()[i]->kind() == Expr::Kind::kColumnRef &&
            node.right_keys()[i]->kind() == Expr::Kind::kColumnRef) {
          const auto& lref =
              static_cast<const ColumnRefExpr&>(*node.left_keys()[i]);
          const auto& rref =
              static_cast<const ColumnRefExpr&>(*node.right_keys()[i]);
          if (lref.name() == rref.name()) dropped_right.insert(rref.name());
        }
        lkeys.push_back(std::move(lk));
        rkeys.push_back(std::move(rk));
      }
      std::vector<Field> fields = left->schema()->fields();
      std::set<std::string> left_names;
      for (const Field& f : fields) left_names.insert(f.name);
      for (const Field& f : right->schema()->fields()) {
        if (dropped_right.count(f.name)) continue;
        Field out_field = f;
        if (left_names.count(f.name)) out_field.name = f.name + "_r";
        // Outer joins make the non-preserved side nullable.
        out_field.nullable = true;
        fields.push_back(std::move(out_field));
      }
      Schema schema(std::move(fields));
      SS_RETURN_IF_ERROR(CheckNoDuplicateNames(schema, "join"));
      auto out = std::make_shared<JoinNode>(left, right, node.join_type(),
                                            std::move(lkeys),
                                            std::move(rkeys));
      out->schema_ = std::make_shared<Schema>(std::move(schema));
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kDistinct: {
      const auto& node = static_cast<const DistinctNode&>(*plan);
      SS_ASSIGN_OR_RETURN(PlanPtr child, Analyze(node.children()[0]));
      auto out = std::make_shared<DistinctNode>(child);
      out->schema_ = child->schema();
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kSort: {
      const auto& node = static_cast<const SortNode&>(*plan);
      SS_ASSIGN_OR_RETURN(PlanPtr child, Analyze(node.children()[0]));
      std::vector<SortKey> keys;
      for (const SortKey& k : node.keys()) {
        SS_ASSIGN_OR_RETURN(ExprPtr e, k.expr->Resolve(*child->schema()));
        keys.push_back(SortKey{std::move(e), k.ascending});
      }
      auto out = std::make_shared<SortNode>(child, std::move(keys));
      out->schema_ = child->schema();
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kLimit: {
      const auto& node = static_cast<const LimitNode&>(*plan);
      SS_ASSIGN_OR_RETURN(PlanPtr child, Analyze(node.children()[0]));
      if (node.n() < 0) {
        return Status::AnalysisError("limit must be non-negative");
      }
      auto out = std::make_shared<LimitNode>(child, node.n());
      out->schema_ = child->schema();
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kWithWatermark: {
      const auto& node = static_cast<const WithWatermarkNode&>(*plan);
      SS_ASSIGN_OR_RETURN(PlanPtr child, Analyze(node.children()[0]));
      int idx = child->schema()->IndexOf(node.column());
      if (idx < 0) {
        return Status::AnalysisError("withWatermark: no column '" +
                                     node.column() + "'");
      }
      if (child->schema()->field(idx).type != TypeId::kTimestamp) {
        return Status::AnalysisError(
            "withWatermark: column '" + node.column() +
            "' must be a timestamp, is " +
            TypeName(child->schema()->field(idx).type));
      }
      if (node.delay_micros() < 0) {
        return Status::AnalysisError("withWatermark: negative delay");
      }
      auto out = std::make_shared<WithWatermarkNode>(child, node.column(),
                                                     node.delay_micros());
      out->schema_ = child->schema();
      return PlanPtr(out);
    }
    case LogicalPlan::Kind::kFlatMapGroupsWithState: {
      const auto& node =
          static_cast<const FlatMapGroupsWithStateNode&>(*plan);
      SS_ASSIGN_OR_RETURN(PlanPtr child, Analyze(node.children()[0]));
      if (node.key_exprs().empty()) {
        return Status::AnalysisError("groupByKey requires at least one key");
      }
      std::vector<NamedExpr> keys;
      for (const NamedExpr& k : node.key_exprs()) {
        SS_ASSIGN_OR_RETURN(ExprPtr e, k.expr->Resolve(*child->schema()));
        std::string name = k.name.empty() ? k.expr->output_name() : k.name;
        keys.push_back(NamedExpr{std::move(e), std::move(name)});
      }
      if (node.output_schema() == nullptr ||
          node.output_schema()->num_fields() == 0) {
        return Status::AnalysisError(
            "mapGroupsWithState requires a non-empty output schema");
      }
      auto out = std::make_shared<FlatMapGroupsWithStateNode>(
          child, std::move(keys), node.update_fn(), node.output_schema(),
          node.timeout(), node.require_single_output());
      out->schema_ = node.output_schema();
      return PlanPtr(out);
    }
  }
  return Status::Internal("unknown plan node");
}

Status ValidateStreamingQuery(const PlanPtr& plan, OutputMode mode) {
  // The yes/no contract is now a view over the full static plan analysis:
  // run every pass, keep the first error (warnings never block a query).
  // Callers that want the complete report — all violations, provenance,
  // unbounded-state warnings — use PlanAnalyzer::Analyze directly.
  return PlanAnalyzer::Analyze(plan, mode).FirstErrorStatus();
}

std::map<std::string, int64_t> CollectWatermarkColumns(const PlanPtr& plan) {
  std::map<std::string, int64_t> out;
  if (plan->kind() == LogicalPlan::Kind::kWithWatermark) {
    const auto& node = static_cast<const WithWatermarkNode&>(*plan);
    out[node.column()] = node.delay_micros();
  }
  for (const PlanPtr& child : plan->children()) {
    for (const auto& [col, delay] : CollectWatermarkColumns(child)) {
      auto it = out.find(col);
      if (it == out.end() || delay > it->second) out[col] = delay;
    }
  }
  return out;
}

}  // namespace sstreaming

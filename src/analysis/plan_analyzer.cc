#include "analysis/plan_analyzer.h"

#include <functional>
#include <memory>
#include <vector>

namespace sstreaming {

namespace {

const char* KindName(LogicalPlan::Kind kind) {
  switch (kind) {
    case LogicalPlan::Kind::kScan:
      return "Scan";
    case LogicalPlan::Kind::kStreamScan:
      return "StreamScan";
    case LogicalPlan::Kind::kFilter:
      return "Filter";
    case LogicalPlan::Kind::kProject:
      return "Project";
    case LogicalPlan::Kind::kAggregate:
      return "Aggregate";
    case LogicalPlan::Kind::kJoin:
      return "Join";
    case LogicalPlan::Kind::kDistinct:
      return "Distinct";
    case LogicalPlan::Kind::kSort:
      return "Sort";
    case LogicalPlan::Kind::kLimit:
      return "Limit";
    case LogicalPlan::Kind::kWithWatermark:
      return "WithWatermark";
    case LogicalPlan::Kind::kFlatMapGroupsWithState:
      return "FlatMapGroupsWithState";
  }
  return "?";
}

// Root-to-node provenance, e.g. "Sort > Aggregate > StreamScan".
std::string PathString(const std::vector<const LogicalPlan*>& ancestors,
                       const LogicalPlan& node) {
  std::string out;
  for (const LogicalPlan* a : ancestors) {
    out += KindName(a->kind());
    out += " > ";
  }
  out += KindName(node.kind());
  return out;
}

// ---------------------------------------------------------------------------
// Watermark propagation (pass 1's derivation; memoized per analysis run)
// ---------------------------------------------------------------------------

/// Derives, bottom-up, the set of output columns of each node that still
/// carry a watermark. This is stricter than CollectWatermarkColumns (which
/// only gathers withWatermark declarations in the subtree): a projection
/// that drops or fails to forward the event-time column loses the
/// watermark, and a join renames the right side the same way the analyzer
/// does (USING-key drop, `_r` collision suffix).
class WatermarkDerivation {
 public:
  const std::set<std::string>& Get(const PlanPtr& plan) {
    auto it = memo_.find(plan.get());
    if (it != memo_.end()) return it->second;
    return memo_.emplace(plan.get(), Compute(plan)).first->second;
  }

 private:
  std::set<std::string> Compute(const PlanPtr& plan) {
    switch (plan->kind()) {
      case LogicalPlan::Kind::kScan:
      case LogicalPlan::Kind::kStreamScan:
        return {};
      case LogicalPlan::Kind::kWithWatermark: {
        const auto& node = static_cast<const WithWatermarkNode&>(*plan);
        std::set<std::string> out = Get(plan->children()[0]);
        out.insert(node.column());
        return out;
      }
      case LogicalPlan::Kind::kFilter:
      case LogicalPlan::Kind::kDistinct:
      case LogicalPlan::Kind::kSort:
      case LogicalPlan::Kind::kLimit:
        return Get(plan->children()[0]);
      case LogicalPlan::Kind::kProject: {
        // Only a direct column reference forwards the watermark: any
        // computed expression (cast, arithmetic) yields a new value whose
        // lateness bound is unknown.
        const auto& node = static_cast<const ProjectNode&>(*plan);
        const std::set<std::string>& in = Get(plan->children()[0]);
        std::set<std::string> out;
        for (const NamedExpr& e : node.exprs()) {
          if (e.expr->kind() != Expr::Kind::kColumnRef) continue;
          const auto& ref = static_cast<const ColumnRefExpr&>(*e.expr);
          if (in.count(ref.name())) out.insert(e.OutputName());
        }
        return out;
      }
      case LogicalPlan::Kind::kAggregate: {
        // A window over a watermarked column emits watermarked
        // `<name>_start`/`<name>_end` bounds; any other group key is a
        // value, not an event-time bound.
        const auto& node = static_cast<const AggregateNode&>(*plan);
        const std::set<std::string>& in = Get(plan->children()[0]);
        std::set<std::string> out;
        for (const NamedExpr& g : node.group_exprs()) {
          if (g.expr->kind() != Expr::Kind::kWindow) continue;
          std::vector<std::string> refs;
          g.expr->CollectColumnRefs(&refs);
          for (const std::string& r : refs) {
            if (in.count(r)) {
              out.insert(g.OutputName() + "_start");
              out.insert(g.OutputName() + "_end");
              break;
            }
          }
        }
        return out;
      }
      case LogicalPlan::Kind::kJoin: {
        const auto& node = static_cast<const JoinNode&>(*plan);
        const PlanPtr& left = plan->children()[0];
        const PlanPtr& right = plan->children()[1];
        std::set<std::string> out = Get(left);
        // Mirror the analyzer's output naming: right key columns that
        // mirror a same-named left key are dropped; other collisions get
        // an `_r` suffix.
        std::set<std::string> dropped_right;
        for (size_t i = 0; i < node.left_keys().size(); ++i) {
          if (node.left_keys()[i]->kind() == Expr::Kind::kColumnRef &&
              node.right_keys()[i]->kind() == Expr::Kind::kColumnRef) {
            const auto& l =
                static_cast<const ColumnRefExpr&>(*node.left_keys()[i]);
            const auto& r =
                static_cast<const ColumnRefExpr&>(*node.right_keys()[i]);
            if (l.name() == r.name()) dropped_right.insert(r.name());
          }
        }
        std::set<std::string> left_names;
        if (left->schema() != nullptr) {
          for (const Field& f : left->schema()->fields()) {
            left_names.insert(f.name);
          }
        }
        for (const std::string& col : Get(right)) {
          if (dropped_right.count(col)) continue;
          out.insert(left_names.count(col) ? col + "_r" : col);
        }
        return out;
      }
      case LogicalPlan::Kind::kFlatMapGroupsWithState:
        // The output schema is user-defined; no column provably carries
        // the input's lateness bound.
        return {};
    }
    return {};
  }

  std::map<const LogicalPlan*, std::set<std::string>> memo_;
};

// ---------------------------------------------------------------------------
// Pass framework (mirrors the optimizer's rule structure)
// ---------------------------------------------------------------------------

struct PassContext {
  PlanPtr root;
  OutputMode mode;
  WatermarkDerivation* watermarks;
};

class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;
  virtual const char* name() const = 0;
  virtual void Run(const PassContext& ctx, PlanAnalysis* report) = 0;
};

Diagnostic MakeDiag(DiagCode code, DiagSeverity severity,
                    const LogicalPlan& node,
                    const std::vector<const LogicalPlan*>& ancestors,
                    std::string message, std::string state_growth = "") {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.node = node.ToString();
  d.path = PathString(ancestors, node);
  d.state_growth = std::move(state_growth);
  return d;
}

// True if the subtree contains a streaming aggregation.
bool HasStreamingAggregate(const PlanPtr& plan) {
  if (plan->kind() == LogicalPlan::Kind::kAggregate && plan->IsStreaming()) {
    return true;
  }
  for (const PlanPtr& child : plan->children()) {
    if (HasStreamingAggregate(child)) return true;
  }
  return false;
}

// True when the aggregate groups by an event-time window over a column that
// still carries a watermark at its input — the condition for groups to
// close (and state to be pruned) as the watermark advances.
bool AggregateHasWatermarkBound(const AggregateNode& agg,
                                const std::set<std::string>& input_wm) {
  for (const NamedExpr& g : agg.group_exprs()) {
    if (g.expr->kind() != Expr::Kind::kWindow) continue;
    std::vector<std::string> refs;
    g.expr->CollectColumnRefs(&refs);
    for (const std::string& r : refs) {
      if (input_wm.count(r)) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pass 2: output-mode validation (§5.1/§5.2), all violations reported
// ---------------------------------------------------------------------------

class OutputModeValidationPass : public AnalysisPass {
 public:
  const char* name() const override { return "output-mode-validation"; }

  void Run(const PassContext& ctx, PlanAnalysis* report) override {
    streaming_aggregates_ = 0;
    Walk(ctx, *ctx.root, report);
    if (ctx.mode == OutputMode::kComplete && streaming_aggregates_ == 0) {
      report->Add(MakeDiag(
          DiagCode::kCompleteNoAggregation, DiagSeverity::kError, *ctx.root,
          {},
          std::string("complete output mode requires an aggregation: the "
                      "engine only retains state proportional to the number "
                      "of result keys (paper §5.1); this query's root "
                      "operator is ") +
              KindName(ctx.root->kind())));
    }
  }

 private:
  void Walk(const PassContext& ctx, const LogicalPlan& node,
            PlanAnalysis* report) {
    ancestors_.push_back(&node);
    for (const PlanPtr& child : node.children()) {
      Walk(ctx, *child, report);
    }
    ancestors_.pop_back();
    const char* mode = OutputModeName(ctx.mode);
    switch (node.kind()) {
      case LogicalPlan::Kind::kAggregate: {
        if (!node.IsStreaming()) break;
        ++streaming_aggregates_;
        if (streaming_aggregates_ > 1) {
          report->Add(MakeDiag(
              DiagCode::kMultipleAggregations, DiagSeverity::kError, node,
              ancestors_,
              std::string("Aggregate: streaming queries support at most one "
                          "aggregation on the streaming path regardless of "
                          "output mode (here: ") +
                  mode +
                  "; paper §5.2); use mapGroupsWithState for custom "
                  "multi-level logic"));
        }
        if (ctx.mode == OutputMode::kAppend) {
          const auto& agg = static_cast<const AggregateNode&>(node);
          const std::set<std::string>& wm =
              ctx.watermarks->Get(node.children()[0]);
          if (!AggregateHasWatermarkBound(agg, wm)) {
            report->Add(MakeDiag(
                DiagCode::kAppendAggregateNoWatermark, DiagSeverity::kError,
                node, ancestors_,
                "Aggregate: append output mode requires the aggregation to "
                "group by an event-time window over a watermarked column — "
                "without one the engine can never know it has stopped "
                "receiving records for a group (paper §4.2)"));
          }
        }
        break;
      }
      case LogicalPlan::Kind::kJoin: {
        const auto& join = static_cast<const JoinNode&>(node);
        bool left_stream = join.children()[0]->IsStreaming();
        bool right_stream = join.children()[1]->IsStreaming();
        if (!left_stream && !right_stream) break;
        if (left_stream && right_stream) {
          if (join.join_type() == JoinType::kInner) break;
          bool lwm = !ctx.watermarks->Get(join.children()[0]).empty();
          bool rwm = !ctx.watermarks->Get(join.children()[1]).empty();
          if (!lwm || !rwm) {
            std::string side = !lwm && !rwm ? "either input"
                               : !lwm       ? "the left input"
                                            : "the right input";
            report->Add(MakeDiag(
                DiagCode::kStreamStreamOuterNoWatermark, DiagSeverity::kError,
                node, ancestors_,
                std::string(JoinTypeName(join.join_type())) +
                    " Join: stream-stream outer joins in " + mode +
                    " output mode require watermarks on both inputs so the "
                    "unmatched side can eventually be emitted (paper §5.2); "
                    "no watermark reaches " +
                    side));
          }
        } else {
          bool bad_left =
              join.join_type() == JoinType::kLeftOuter && !left_stream;
          bool bad_right =
              join.join_type() == JoinType::kRightOuter && !right_stream;
          if (bad_left || bad_right) {
            report->Add(MakeDiag(
                DiagCode::kStaticSidePreserved, DiagSeverity::kError, node,
                ancestors_,
                std::string(JoinTypeName(join.join_type())) +
                    " Join: the preserved side is the static " +
                    (bad_left ? "left" : "right") +
                    " input, which is not incrementalizable in " + mode +
                    " output mode (the static side would need re-emission "
                    "as the stream grows); preserve the streaming side "
                    "instead"));
          }
        }
        break;
      }
      case LogicalPlan::Kind::kSort: {
        if (!node.IsStreaming()) break;
        if (ctx.mode != OutputMode::kComplete) {
          report->Add(MakeDiag(
              DiagCode::kSortNotComplete, DiagSeverity::kError, node,
              ancestors_,
              std::string("Sort: sorting a streaming query is only "
                          "supported in complete output mode, not ") +
                  mode + " (paper §5.2)"));
        }
        if (!HasStreamingAggregate(node.children()[0])) {
          report->Add(MakeDiag(
              DiagCode::kSortBeforeAggregation, DiagSeverity::kError, node,
              ancestors_,
              "Sort: sorting a streaming query is only supported after an "
              "aggregation (paper §5.2); this Sort's input is the raw "
              "stream"));
        }
        break;
      }
      case LogicalPlan::Kind::kLimit: {
        if (!node.IsStreaming()) break;
        if (ctx.mode != OutputMode::kComplete) {
          report->Add(MakeDiag(
              DiagCode::kLimitNotComplete, DiagSeverity::kError, node,
              ancestors_,
              std::string("Limit: limit on a streaming query is only "
                          "supported in complete output mode, not ") +
                  mode));
        }
        break;
      }
      case LogicalPlan::Kind::kFlatMapGroupsWithState: {
        if (!node.IsStreaming()) break;
        const auto& fm = static_cast<const FlatMapGroupsWithStateNode&>(node);
        if (fm.timeout() == GroupStateTimeout::kEventTime &&
            ctx.watermarks->Get(node.children()[0]).empty()) {
          report->Add(MakeDiag(
              DiagCode::kEventTimeTimeoutNoWatermark, DiagSeverity::kError,
              node, ancestors_,
              std::string("FlatMapGroupsWithState: event-time timeouts "
                          "require a watermark on the input (in any output "
                          "mode, here ") +
                  mode + ") — without one timeouts can never fire"));
        }
        break;
      }
      default:
        break;
    }
  }

  int streaming_aggregates_ = 0;
  std::vector<const LogicalPlan*> ancestors_;
};

// ---------------------------------------------------------------------------
// Pass 1: unbounded-state analysis (watermark propagation, SS2001-SS2003,
// SS2006)
// ---------------------------------------------------------------------------

class UnboundedStatePass : public AnalysisPass {
 public:
  const char* name() const override { return "unbounded-state"; }

  void Run(const PassContext& ctx, PlanAnalysis* report) override {
    Walk(ctx, ctx.root, report);
  }

 private:
  void Walk(const PassContext& ctx, const PlanPtr& plan,
            PlanAnalysis* report) {
    ancestors_.push_back(plan.get());
    for (const PlanPtr& child : plan->children()) {
      Walk(ctx, child, report);
    }
    ancestors_.pop_back();
    if (!plan->IsStreaming()) return;
    const LogicalPlan& node = *plan;
    switch (node.kind()) {
      case LogicalPlan::Kind::kAggregate: {
        // In append mode this is already the SS1003 *error*; the warning
        // covers update/complete, where the query runs but state for every
        // group is retained forever.
        if (ctx.mode == OutputMode::kAppend) break;
        const auto& agg = static_cast<const AggregateNode&>(node);
        const std::set<std::string>& wm =
            ctx.watermarks->Get(node.children()[0]);
        if (!AggregateHasWatermarkBound(agg, wm)) {
          report->Add(MakeDiag(
              DiagCode::kUnboundedAggregationState, DiagSeverity::kWarning,
              node, ancestors_,
              std::string("Aggregate: streaming aggregation in ") +
                  OutputModeName(ctx.mode) +
                  " output mode has no event-time window over a watermarked "
                  "column, so no group ever closes and its state is never "
                  "pruned; add withWatermark() and group by window() to "
                  "bound it",
              "O(distinct group keys)"));
        }
        break;
      }
      case LogicalPlan::Kind::kDistinct: {
        if (ctx.watermarks->Get(node.children()[0]).empty()) {
          report->Add(MakeDiag(
              DiagCode::kUnboundedDistinctState, DiagSeverity::kWarning,
              node, ancestors_,
              std::string("Distinct: deduplicating a stream in ") +
                  OutputModeName(ctx.mode) +
                  " output mode without a watermark retains every row key "
                  "seen forever; add withWatermark() so old keys can be "
                  "dropped once they are provably final",
              "O(distinct rows observed)"));
        }
        break;
      }
      case LogicalPlan::Kind::kJoin: {
        const auto& join = static_cast<const JoinNode&>(node);
        if (!join.children()[0]->IsStreaming() ||
            !join.children()[1]->IsStreaming()) {
          break;
        }
        // Outer joins without watermarks are the SS1004 error; the warning
        // covers inner stream-stream joins, which are legal but buffer the
        // unbounded side(s) forever.
        if (join.join_type() != JoinType::kInner) break;
        bool lwm = !ctx.watermarks->Get(join.children()[0]).empty();
        bool rwm = !ctx.watermarks->Get(join.children()[1]).empty();
        if (lwm && rwm) break;
        std::string side = !lwm && !rwm ? "both inputs"
                           : !lwm       ? "the left input"
                                        : "the right input";
        report->Add(MakeDiag(
            DiagCode::kUnboundedJoinState, DiagSeverity::kWarning, node,
            ancestors_,
            std::string("inner Join: stream-stream join in ") +
                OutputModeName(ctx.mode) +
                " output mode buffers every input row to match against "
                "future arrivals; no watermark reaches " + side +
                ", so that buffer is never pruned — add withWatermark() on "
                "both inputs to bound it",
            "O(rows retained on the unwatermarked side)"));
        break;
      }
      case LogicalPlan::Kind::kFlatMapGroupsWithState: {
        const auto& fm = static_cast<const FlatMapGroupsWithStateNode&>(node);
        if (fm.timeout() == GroupStateTimeout::kNone) {
          report->Add(MakeDiag(
              DiagCode::kStateWithoutTimeout, DiagSeverity::kWarning, node,
              ancestors_,
              std::string("FlatMapGroupsWithState: no timeout is "
                          "configured (in ") +
                  OutputModeName(ctx.mode) +
                  " output mode), so per-key state lives until the user "
                  "function removes it — keys that go quiet leak state; "
                  "configure a processing-time or event-time timeout",
              "O(distinct keys ever seen)"));
        }
        break;
      }
      default:
        break;
    }
  }

  std::vector<const LogicalPlan*> ancestors_;
};

// ---------------------------------------------------------------------------
// Pass 3: sanity (SS2004 dropped watermark, SS2005 complete-mode memory)
// ---------------------------------------------------------------------------

class SanityPass : public AnalysisPass {
 public:
  const char* name() const override { return "sanity"; }

  void Run(const PassContext& ctx, PlanAnalysis* report) override {
    Walk(ctx, ctx.root, /*under_stateful=*/false, report);
    if (ctx.mode == OutputMode::kComplete &&
        HasStreamingAggregate(ctx.root)) {
      report->Add(MakeDiag(
          DiagCode::kCompleteModeMemory, DiagSeverity::kWarning, *ctx.root,
          {},
          "complete output mode rewrites the entire result table on every "
          "trigger; driver memory and sink write volume are proportional "
          "to the total number of result keys, not to the new data (paper "
          "§5.1) — prefer update mode for high-cardinality keys"));
    }
  }

 private:
  static bool IsStatefulConsumer(const LogicalPlan& node) {
    switch (node.kind()) {
      case LogicalPlan::Kind::kAggregate:
      case LogicalPlan::Kind::kDistinct:
      case LogicalPlan::Kind::kFlatMapGroupsWithState:
        return node.IsStreaming();
      case LogicalPlan::Kind::kJoin:
        return node.children()[0]->IsStreaming() &&
               node.children()[1]->IsStreaming();
      default:
        return false;
    }
  }

  void Walk(const PassContext& ctx, const PlanPtr& plan, bool under_stateful,
            PlanAnalysis* report) {
    const LogicalPlan& node = *plan;
    if (under_stateful && node.kind() == LogicalPlan::Kind::kProject) {
      const std::set<std::string>& in =
          ctx.watermarks->Get(node.children()[0]);
      if (!in.empty() && ctx.watermarks->Get(plan).empty()) {
        std::string cols;
        for (const std::string& c : in) {
          if (!cols.empty()) cols += ", ";
          cols += "'" + c + "'";
        }
        report->Add(MakeDiag(
            DiagCode::kWatermarkDroppedByProjection, DiagSeverity::kWarning,
            node, ancestors_,
            "Project: this projection drops every watermarked event-time "
            "column (" + cols +
                ") while a stateful operator above it needs the watermark "
                "to bound its state; forward the column (or re-declare "
                "withWatermark above the projection)"));
      }
    }
    ancestors_.push_back(plan.get());
    bool child_under = under_stateful || IsStatefulConsumer(node);
    for (const PlanPtr& child : node.children()) {
      Walk(ctx, child, child_under, report);
    }
    ancestors_.pop_back();
  }

  std::vector<const LogicalPlan*> ancestors_;
};

}  // namespace

PlanAnalysis PlanAnalyzer::Analyze(const PlanPtr& plan, OutputMode mode) {
  PlanAnalysis report;
  if (!plan->IsStreaming()) {
    Diagnostic d;
    d.code = DiagCode::kNotStreaming;
    d.severity = DiagSeverity::kError;
    d.message =
        std::string("not a streaming query (no streaming source) in ") +
        OutputModeName(mode) +
        " output mode; run it with the batch executor instead";
    d.node = plan->ToString();
    d.path = KindName(plan->kind());
    report.Add(std::move(d));
    // The remaining passes reason about incremental execution; none of
    // their conclusions are meaningful for a batch plan.
    return report;
  }
  WatermarkDerivation watermarks;
  PassContext ctx{plan, mode, &watermarks};
  // Error passes run before warning passes so FirstErrorStatus() (and the
  // rendered report) lead with what actually blocks the query.
  OutputModeValidationPass output_mode;
  UnboundedStatePass unbounded;
  SanityPass sanity;
  AnalysisPass* passes[] = {&output_mode, &unbounded, &sanity};
  for (AnalysisPass* pass : passes) {
    pass->Run(ctx, &report);
  }
  return report;
}

std::set<std::string> PropagatedWatermarkColumns(const PlanPtr& plan) {
  WatermarkDerivation derivation;
  return derivation.Get(plan);
}

}  // namespace sstreaming

#ifndef SSTREAMING_ANALYSIS_PLAN_FINGERPRINT_H_
#define SSTREAMING_ANALYSIS_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "logical/output_mode.h"
#include "logical/plan.h"

namespace sstreaming {

/// Canonical identity of one plan operator, as far as durable state cares.
/// Two operators with equal fingerprints can adopt each other's checkpointed
/// state; anything that changes how state rows are keyed, encoded, or folded
/// must change the fingerprint. Cosmetic properties (expression aliases on
/// stateless nodes, filter predicates) deliberately do not contribute to the
/// stateful identity — they only move `PlanFingerprint::plan_hash`.
struct OperatorFingerprint {
  /// Canonical operator kind ("Aggregate", "Join", ...).
  std::string kind;
  /// True when the operator holds keyed state across epochs (aggregations,
  /// stream-stream joins, dedup, mapGroupsWithState).
  bool stateful = false;
  /// Canonical rendering of the state key: names + types in key order (the
  /// encoded-key layout is order-sensitive). Empty for stateless operators.
  std::string key_schema;
  /// Operator-specific state encoding beyond the key: aggregate function
  /// list (state slots concatenate in spec order), join type, group-state
  /// timeout + output schema, window geometry.
  std::string detail;
  /// Event-time columns of the operator's *input* that carry a watermark —
  /// what bounds this operator's state. Sorted (the set is order-free).
  std::vector<std::string> watermark_columns;
  /// Root-to-node provenance ("Aggregate > Project > StreamScan"). Not part
  /// of the identity hash: an added stateless ancestor must not orphan
  /// state.
  std::string path;

  /// FNV-1a over kind|stateful|key_schema|detail|watermark_columns.
  uint64_t IdentityHash() const;
  /// "Aggregate key=(w_start: timestamp, k: string) [sum(v) as total]".
  std::string Render() const;
  Json ToJson() const;
  static Result<OperatorFingerprint> FromJson(const Json& json);
};

/// The versioned plan manifest persisted into the checkpoint directory at
/// query start and diffed against the restarted plan before recovery
/// (analysis/checkpoint_compat.h). Operators appear in pre-order; stateful
/// identity is the ordered subsequence of stateful operators.
struct PlanFingerprint {
  /// Bump when the manifest encoding changes incompatibly. Readers reject
  /// newer versions (SS3007) instead of guessing.
  static constexpr int kFormatVersion = 1;

  int format_version = kFormatVersion;
  std::string output_mode;   // OutputModeName rendering
  int num_partitions = 0;    // state layout is per (op, partition)
  int num_state_shards = 0;  // keys are routed hash % shards on disk
  /// Every withWatermark declaration in the plan as "column@delay_micros",
  /// sorted. Changing a delay shifts eviction, not state layout: warning.
  std::vector<std::string> watermarks;
  std::vector<OperatorFingerprint> operators;

  /// Hash over every operator (shape-sensitive): differs on any plan edit.
  uint64_t PlanHash() const;
  /// Hash over the stateful subsequence only (what recovery must preserve).
  uint64_t StatefulHash() const;
  /// The stateful operators, in plan order.
  std::vector<const OperatorFingerprint*> StatefulOps() const;

  /// Multi-line human rendering (EXPLAIN appends this).
  std::string Render() const;
  Json ToJson() const;
  /// Rejects documents whose formatVersion is newer than kFormatVersion or
  /// whose required fields are missing/mistyped (callers map that to
  /// SS3007).
  static Result<PlanFingerprint> FromJson(const Json& json);
};

/// Computes the canonical fingerprint of an *analyzed* logical plan
/// (schemas resolved). `mode`/`num_partitions`/`num_state_shards` come from
/// QueryOptions — they are part of the durable layout even though they are
/// not plan nodes.
PlanFingerprint ComputePlanFingerprint(const PlanPtr& analyzed,
                                       OutputMode mode, int num_partitions,
                                       int num_state_shards);

}  // namespace sstreaming

#endif  // SSTREAMING_ANALYSIS_PLAN_FINGERPRINT_H_

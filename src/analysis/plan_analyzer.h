#ifndef SSTREAMING_ANALYSIS_PLAN_ANALYZER_H_
#define SSTREAMING_ANALYSIS_PLAN_ANALYZER_H_

#include <map>
#include <set>
#include <string>

#include "analysis/diagnostics.h"
#include "logical/output_mode.h"
#include "logical/plan.h"

namespace sstreaming {

/// Rule-based static analysis over an *analyzed* logical plan (the
/// incremental-execution counterpart of the optimizer's rule set). Where
/// `ValidateStreamingQuery` answers yes/no, the plan analyzer explains:
/// every pass walks the tree and appends structured diagnostics — stable
/// SSxxxx codes, severity, node provenance — to one PlanAnalysis report
/// instead of stopping at the first violation (paper §4.2's output-mode
/// checks, generalized per Begoli et al., SIGMOD 2019: watermark
/// propagation and emission semantics are statically derivable).
///
/// Passes:
///  1. Watermark propagation — derives, per node, which event-time columns
///     still carry a watermark in that node's output (through projections,
///     joins and window aggregations), and flags operators whose state is
///     unbounded without one (SS2001-SS2003, SS2006) with an asymptotic
///     state-growth estimate.
///  2. Output-mode validation — the §5.1/§5.2 incrementalizability rules
///     (SS1002-SS1010), reporting *all* violations with provenance.
///  3. Sanity — watermark dropped by a projection below a stateful
///     operator (SS2004), complete-mode memory advisory (SS2005).
class PlanAnalyzer {
 public:
  /// Runs every pass. `plan` must have been through Analyzer::Analyze
  /// (schemas resolved); the plan itself is never modified.
  static PlanAnalysis Analyze(const PlanPtr& plan, OutputMode mode);
};

/// The watermark-propagation relation on its own (exposed for tests and
/// EXPLAIN): the set of output columns of `plan` that carry a watermark,
/// tracking renames through projections, the USING-join drop/`_r` rename,
/// and window group keys (a window over a watermarked column yields
/// watermarked `<name>_start`/`<name>_end` bounds).
std::set<std::string> PropagatedWatermarkColumns(const PlanPtr& plan);

}  // namespace sstreaming

#endif  // SSTREAMING_ANALYSIS_PLAN_ANALYZER_H_

#ifndef SSTREAMING_TESTING_FAILPOINTS_H_
#define SSTREAMING_TESTING_FAILPOINTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sstreaming {

class MetricsRegistry;

/// Deterministic fault injection for crash-recovery testing (the chaos
/// harness in tests/ sweeps every site; see docs/FAULT_INJECTION.md).
///
/// A *failpoint* is a named site on a durability-critical code path,
/// declared with SS_FAILPOINT("wal.commit.before_write"). Disarmed sites
/// cost one relaxed atomic load and a never-taken branch; armed sites
/// consult the process-global registry, which can inject an error Status,
/// a delay, or a torn write on the Nth evaluation (or probabilistically,
/// seeded via common/random.h so runs are reproducible).
///
/// Arm programmatically (tests) or from the environment:
///   SSTREAMING_FAILPOINTS="wal.commit.before_write=error@2;fs.rename=io"
///
/// Spec grammar (see ParseSpec):
///   <name>=<action>[:<param>][@<hit>][%<prob>][~<seed>][!]
///     action: error|io|notfound|aborted|internal (injected Status code),
///             delay:<micros>, torn (fs.write sites: truncate then fail)
///     @<hit>: fire on the Nth evaluation of the site (default 1)
///     %<prob>: instead of a fixed hit, fire with probability per
///              evaluation, from a Random seeded with ~<seed> ^ hash(name)
///     !: sticky — keep firing on every evaluation from the Nth on
struct FailpointSpec {
  enum class Action {
    kError,  // return an injected Status
    kDelay,  // sleep delay_micros, then continue
    kTorn,   // WriteFileAtomic only: publish a truncated file, then fail
  };

  Action action = Action::kError;
  StatusCode code = StatusCode::kIOError;
  int64_t delay_micros = 0;
  int hit = 1;             // 1-based evaluation index that fires
  bool sticky = false;     // fire on every evaluation >= hit
  double probability = 0;  // > 0: ignore `hit`, fire probabilistically
  uint64_t seed = 0;       // seeds the per-failpoint Random
};

/// Static per-site handle; one lives at each SS_FAILPOINT expansion and
/// registers itself with the global registry on first execution of the
/// enclosing code path.
class FailpointSite {
 public:
  explicit FailpointSite(const char* name);

  FailpointSite(const FailpointSite&) = delete;
  FailpointSite& operator=(const FailpointSite&) = delete;

  const std::string& name() const { return name_; }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

 private:
  friend class Failpoints;

  std::string name_;
  std::atomic<bool> armed_{false};
};

/// Process-global failpoint registry. Singleton; never destroyed (sites in
/// static storage may outlive any other object).
class Failpoints {
 public:
  static Failpoints& Instance();

  /// Arms `name` with `spec`, resetting its evaluation/trigger counters.
  /// The name does not need a registered site yet; the spec applies as soon
  /// as one registers (this is how env-var arming reaches sites that run
  /// later). Rejects malformed specs (e.g. hit < 1).
  Status Arm(const std::string& name, FailpointSpec spec);

  void Disarm(const std::string& name);
  void DisarmAll();

  /// Parses one "name=spec" entry of the grammar above.
  static Result<std::pair<std::string, FailpointSpec>> ParseSpec(
      const std::string& entry);

  /// Parses and arms a ';'- or ','-separated spec list (the
  /// SSTREAMING_FAILPOINTS syntax). Applied automatically from that env var
  /// when the registry is first used.
  Status ArmFromString(const std::string& specs);

  /// Names of all failpoints whose sites have executed at least once (the
  /// set a chaos sweep enumerates after a fault-free run), sorted.
  std::vector<std::string> RegisteredNames() const;

  /// Evaluations of the site while armed / faults actually injected.
  int64_t evaluations(const std::string& name) const;
  int64_t triggers(const std::string& name) const;

  /// When set, every injected fault increments
  /// `sstreaming_failpoint_triggers_total{failpoint="<name>"}`.
  void set_metrics(MetricsRegistry* metrics);

  /// True if `status` was produced by an armed failpoint (the chaos harness
  /// uses this to tell injected crashes from real bugs).
  static bool IsInjected(const Status& status);

  // --- called from the SS_FAILPOINT machinery ---
  void Register(FailpointSite* site);
  /// Decides whether the armed site fires; returns the injected error (or
  /// sleeps and returns OK for delay specs). kTorn specs evaluated through
  /// this path inject a plain error.
  Status Evaluate(FailpointSite* site);
  /// Like Evaluate but for kTorn specs: returns true when the torn write
  /// should happen (the caller truncates + publishes + fails itself).
  /// Non-torn specs never fire through this path.
  bool EvaluateTorn(FailpointSite* site);

 private:
  struct Entry {
    bool armed = false;
    FailpointSpec spec;
    int64_t evaluations = 0;
    int64_t triggers = 0;
    Random rng{0};  // for probabilistic specs; reseeded at Arm
    std::vector<FailpointSite*> sites;
  };

  Failpoints();

  /// Returns true when this evaluation fires (counts it either way).
  bool Fires(Entry* entry) SS_REQUIRES(mu_);
  void CountTrigger(const std::string& name, Entry* entry)
      SS_REQUIRES(mu_);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_ SS_GUARDED_BY(mu_);
  MetricsRegistry* metrics_ SS_GUARDED_BY(mu_) = nullptr;
};

}  // namespace sstreaming

/// Declares a failpoint site. In a function returning Status or Result<T>,
/// an injected error propagates via `return`. Compiles to a no-op branch
/// when the site is disarmed; compiles away entirely with
/// -DSSTREAMING_DISABLE_FAILPOINTS.
#ifdef SSTREAMING_DISABLE_FAILPOINTS
#define SS_FAILPOINT(name_literal) \
  do {                             \
  } while (0)
#else
#define SS_FAILPOINT(name_literal)                                      \
  do {                                                                  \
    static ::sstreaming::FailpointSite _ss_fp_site(name_literal);       \
    if (_ss_fp_site.armed()) {                                          \
      ::sstreaming::Status _ss_fp_status =                              \
          ::sstreaming::Failpoints::Instance().Evaluate(&_ss_fp_site);  \
      if (!_ss_fp_status.ok()) return _ss_fp_status;                    \
    }                                                                   \
  } while (0)
#endif

#endif  // SSTREAMING_TESTING_FAILPOINTS_H_

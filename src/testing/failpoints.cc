#include "testing/failpoints.h"

#include <chrono>
#include <cstdlib>
#include <functional>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"

namespace sstreaming {

namespace {

constexpr char kInjectedPrefix[] = "failpoint: ";

Result<StatusCode> ParseActionCode(const std::string& action) {
  if (action == "error" || action == "io") return StatusCode::kIOError;
  if (action == "notfound") return StatusCode::kNotFound;
  if (action == "aborted" || action == "abort") return StatusCode::kAborted;
  if (action == "internal") return StatusCode::kInternal;
  return Status::InvalidArgument("unknown failpoint action: " + action);
}

Status MakeInjected(const std::string& name, const FailpointSpec& spec) {
  std::string msg = kInjectedPrefix + name + " (injected " +
                    StatusCodeToString(spec.code) + ")";
  return Status(spec.code, std::move(msg));
}

}  // namespace

FailpointSite::FailpointSite(const char* name) : name_(name) {
  Failpoints::Instance().Register(this);
}

Failpoints& Failpoints::Instance() {
  // Intentionally leaked: sites in static storage may evaluate during
  // static destruction of other objects.
  static Failpoints* instance = new Failpoints();
  return *instance;
}

Failpoints::Failpoints() {
  const char* env = std::getenv("SSTREAMING_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    Status s = ArmFromString(env);
    if (!s.ok()) {
      SS_LOG(Error) << "ignoring bad SSTREAMING_FAILPOINTS: " << s.ToString();
    }
  }
}

void Failpoints::Register(FailpointSite* site) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[site->name()];
  entry.sites.push_back(site);
  site->armed_.store(entry.armed, std::memory_order_relaxed);
}

Status Failpoints::Arm(const std::string& name, FailpointSpec spec) {
  if (spec.hit < 1) {
    return Status::InvalidArgument("failpoint hit must be >= 1 for " + name);
  }
  if (spec.probability < 0 || spec.probability > 1) {
    return Status::InvalidArgument("failpoint probability out of [0,1] for " +
                                   name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  entry.armed = true;
  entry.spec = spec;
  entry.evaluations = 0;
  entry.triggers = 0;
  entry.rng = Random(spec.seed ^ std::hash<std::string>{}(name));
  for (FailpointSite* site : entry.sites) {
    site->armed_.store(true, std::memory_order_relaxed);
  }
  return Status::OK();
}

void Failpoints::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  it->second.armed = false;
  for (FailpointSite* site : it->second.sites) {
    site->armed_.store(false, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    entry.armed = false;
    for (FailpointSite* site : entry.sites) {
      site->armed_.store(false, std::memory_order_relaxed);
    }
  }
}

Result<std::pair<std::string, FailpointSpec>> Failpoints::ParseSpec(
    const std::string& entry) {
  size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint spec needs <name>=<action>: " +
                                   entry);
  }
  std::string name = entry.substr(0, eq);
  std::string rest = entry.substr(eq + 1);
  FailpointSpec spec;

  // Trailing '!' = sticky.
  if (!rest.empty() && rest.back() == '!') {
    spec.sticky = true;
    rest.pop_back();
  }
  // Optional ~<seed>, then %<prob>, then @<hit>, right to left.
  auto take_suffix = [&rest](char sigil) -> std::string {
    size_t pos = rest.rfind(sigil);
    if (pos == std::string::npos) return "";
    std::string v = rest.substr(pos + 1);
    rest.resize(pos);
    return v;
  };
  std::string seed_str = take_suffix('~');
  std::string prob_str = take_suffix('%');
  std::string hit_str = take_suffix('@');
  try {
    if (!seed_str.empty()) spec.seed = std::stoull(seed_str);
    if (!prob_str.empty()) spec.probability = std::stod(prob_str);
    if (!hit_str.empty()) spec.hit = std::stoi(hit_str);
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad failpoint spec numbers: " + entry);
  }

  // What remains is action[:param].
  std::string action = rest;
  std::string param;
  size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    action = rest.substr(0, colon);
    param = rest.substr(colon + 1);
  }
  if (action == "delay") {
    spec.action = FailpointSpec::Action::kDelay;
    try {
      spec.delay_micros = param.empty() ? 1000 : std::stoll(param);
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad delay micros: " + entry);
    }
  } else if (action == "torn") {
    spec.action = FailpointSpec::Action::kTorn;
    spec.code = StatusCode::kIOError;
  } else {
    spec.action = FailpointSpec::Action::kError;
    SS_ASSIGN_OR_RETURN(spec.code, ParseActionCode(action));
  }
  return std::make_pair(std::move(name), spec);
}

Status Failpoints::ArmFromString(const std::string& specs) {
  size_t start = 0;
  while (start < specs.size()) {
    size_t end = specs.find_first_of(";,", start);
    if (end == std::string::npos) end = specs.size();
    std::string entry = specs.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    SS_ASSIGN_OR_RETURN(auto parsed, ParseSpec(entry));
    SS_RETURN_IF_ERROR(Arm(parsed.first, parsed.second));
  }
  return Status::OK();
}

std::vector<std::string> Failpoints::RegisteredNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (!entry.sites.empty()) names.push_back(name);
  }
  return names;  // map order = sorted
}

int64_t Failpoints::evaluations(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.evaluations;
}

int64_t Failpoints::triggers(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.triggers;
}

void Failpoints::set_metrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
}

bool Failpoints::IsInjected(const Status& status) {
  return !status.ok() &&
         status.message().compare(0, sizeof(kInjectedPrefix) - 1,
                                  kInjectedPrefix) == 0;
}

bool Failpoints::Fires(Entry* entry) {
  ++entry->evaluations;
  if (entry->spec.probability > 0) {
    return entry->rng.NextDouble() < entry->spec.probability;
  }
  if (entry->spec.sticky) return entry->evaluations >= entry->spec.hit;
  return entry->evaluations == entry->spec.hit;
}

void Failpoints::CountTrigger(const std::string& name, Entry* entry) {
  ++entry->triggers;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("sstreaming_failpoint_triggers_total",
                     {{"failpoint", name}})
        ->Increment();
  }
}

Status Failpoints::Evaluate(FailpointSite* site) {
  FailpointSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(site->name());
    if (it == entries_.end() || !it->second.armed) return Status::OK();
    Entry& entry = it->second;
    // Torn specs only fire at torn-aware call sites (EvaluateTorn);
    // evaluating one here is a plain pass-through so hit counts stay
    // comparable across sites sharing a name.
    if (entry.spec.action == FailpointSpec::Action::kTorn) {
      return Status::OK();
    }
    if (!Fires(&entry)) return Status::OK();
    CountTrigger(site->name(), &entry);
    spec = entry.spec;
  }
  if (spec.action == FailpointSpec::Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::microseconds(spec.delay_micros));
    return Status::OK();
  }
  return MakeInjected(site->name(), spec);
}

bool Failpoints::EvaluateTorn(FailpointSite* site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(site->name());
  if (it == entries_.end() || !it->second.armed) return false;
  Entry& entry = it->second;
  if (entry.spec.action != FailpointSpec::Action::kTorn) return false;
  if (!Fires(&entry)) return false;
  CountTrigger(site->name(), &entry);
  return true;
}

}  // namespace sstreaming

#include "incremental/incrementalizer.h"

#include <set>

#include "analysis/analyzer.h"
#include "common/logging.h"
#include "physical/fused_pipeline.h"
#include "physical/operators.h"
#include "physical/stateful_ops.h"

namespace sstreaming {

namespace {

class Builder {
 public:
  Builder(int num_partitions, const IncrementalizeOptions& options)
      : num_partitions_(num_partitions), options_(options) {}

  Result<PhysOpPtr> Build(const PlanPtr& plan) {
    switch (plan->kind()) {
      case LogicalPlan::Kind::kScan: {
        const auto& node = static_cast<const ScanNode&>(*plan);
        return PhysOpPtr(std::make_shared<StaticSourceExec>(
            NextId(), node.schema(), node.batches(), num_partitions_));
      }
      case LogicalPlan::Kind::kStreamScan: {
        const auto& node = static_cast<const StreamScanNode&>(*plan);
        sources_.push_back(node.source());
        return PhysOpPtr(
            std::make_shared<SourceExec>(NextId(), node.source()));
      }
      case LogicalPlan::Kind::kFilter: {
        const auto& node = static_cast<const FilterNode&>(*plan);
        SS_ASSIGN_OR_RETURN(PhysOpPtr child, Build(node.children()[0]));
        return PhysOpPtr(std::make_shared<FilterExec>(
            NextId(), child, node.predicate(), options_.selection_vectors));
      }
      case LogicalPlan::Kind::kProject: {
        const auto& node = static_cast<const ProjectNode&>(*plan);
        // Pure column projection directly above a stream scan: push the
        // column subset into the source read itself (§5.3).
        if (node.children()[0]->kind() == LogicalPlan::Kind::kStreamScan) {
          bool pure = true;
          std::vector<int> indices;
          for (const NamedExpr& e : node.exprs()) {
            if (e.expr->kind() != Expr::Kind::kColumnRef) {
              pure = false;
              break;
            }
            indices.push_back(
                static_cast<const ColumnRefExpr&>(*e.expr).index());
          }
          if (pure && !indices.empty()) {
            const auto& scan =
                static_cast<const StreamScanNode&>(*node.children()[0]);
            sources_.push_back(scan.source());
            return PhysOpPtr(std::make_shared<SourceExec>(
                NextId(), scan.source(), std::move(indices), node.schema()));
          }
        }
        SS_ASSIGN_OR_RETURN(PhysOpPtr child, Build(node.children()[0]));
        return PhysOpPtr(std::make_shared<ProjectExec>(
            NextId(), child, node.schema(), node.exprs()));
      }
      case LogicalPlan::Kind::kWithWatermark: {
        const auto& node = static_cast<const WithWatermarkNode&>(*plan);
        SS_ASSIGN_OR_RETURN(PhysOpPtr child, Build(node.children()[0]));
        int idx = node.schema()->IndexOf(node.column());
        SS_CHECK(idx >= 0);
        return PhysOpPtr(std::make_shared<WatermarkExec>(
            NextId(), child, idx, node.delay_micros()));
      }
      case LogicalPlan::Kind::kDistinct: {
        const auto& node = static_cast<const DistinctNode&>(*plan);
        SS_ASSIGN_OR_RETURN(PhysOpPtr child, Build(node.children()[0]));
        // Co-locate equal rows: shuffle on every column.
        std::vector<ExprPtr> keys;
        for (const Field& f : node.schema()->fields()) {
          SS_ASSIGN_OR_RETURN(ExprPtr key,
                              Col(f.name)->Resolve(*node.schema()));
          keys.push_back(std::move(key));
        }
        auto shuffle = std::make_shared<ShuffleExec>(
            NextId(), child, std::move(keys), num_partitions_);
        has_stateful_ = true;
        return PhysOpPtr(
            std::make_shared<DedupExec>(NextId(), PhysOpPtr(shuffle)));
      }
      case LogicalPlan::Kind::kAggregate:
        return BuildAggregate(static_cast<const AggregateNode&>(*plan));
      case LogicalPlan::Kind::kJoin:
        return BuildJoin(static_cast<const JoinNode&>(*plan));
      case LogicalPlan::Kind::kSort: {
        const auto& node = static_cast<const SortNode&>(*plan);
        SS_ASSIGN_OR_RETURN(PhysOpPtr child, Build(node.children()[0]));
        std::vector<SortExec::Key> keys;
        for (const SortKey& k : node.keys()) {
          keys.push_back(SortExec::Key{k.expr, k.ascending});
        }
        return PhysOpPtr(
            std::make_shared<SortExec>(NextId(), child, std::move(keys)));
      }
      case LogicalPlan::Kind::kLimit: {
        const auto& node = static_cast<const LimitNode&>(*plan);
        SS_ASSIGN_OR_RETURN(PhysOpPtr child, Build(node.children()[0]));
        return PhysOpPtr(
            std::make_shared<LimitExec>(NextId(), child, node.n()));
      }
      case LogicalPlan::Kind::kFlatMapGroupsWithState: {
        const auto& node =
            static_cast<const FlatMapGroupsWithStateNode&>(*plan);
        SS_ASSIGN_OR_RETURN(PhysOpPtr child, Build(node.children()[0]));
        std::vector<ExprPtr> shuffle_keys;
        for (const NamedExpr& k : node.key_exprs()) {
          shuffle_keys.push_back(k.expr);
        }
        auto shuffle = std::make_shared<ShuffleExec>(
            NextId(), child, std::move(shuffle_keys), num_partitions_);
        has_stateful_ = true;
        return PhysOpPtr(std::make_shared<FlatMapGroupsWithStateExec>(
            NextId(), PhysOpPtr(shuffle), node.output_schema(),
            node.key_exprs(), node.update_fn(), node.timeout(),
            node.require_single_output()));
      }
    }
    return Status::Internal("unknown logical node");
  }

  const std::vector<SourcePtr>& sources() const { return sources_; }
  bool has_stateful() const { return has_stateful_; }
  int top_level_key_columns() const { return top_level_key_columns_; }
  int* mutable_next_id() { return &next_id_; }

 private:
  int NextId() { return next_id_++; }

  Result<PhysOpPtr> BuildAggregate(const AggregateNode& node) {
    SS_ASSIGN_OR_RETURN(PhysOpPtr child, Build(node.children()[0]));
    // Shuffle so equal group keys land in the same partition. Tumbling
    // windows hash by window start; sliding windows rely on the scalar keys
    // (or collapse to one partition if the window is the only key, since a
    // record's windows would otherwise span partitions).
    std::vector<ExprPtr> shuffle_keys;
    for (const NamedExpr& g : node.group_exprs()) {
      if (g.expr->kind() == Expr::Kind::kWindow) {
        const auto& w = static_cast<const WindowExpr&>(*g.expr);
        if (w.is_tumbling()) shuffle_keys.push_back(g.expr);
      } else {
        shuffle_keys.push_back(g.expr);
      }
    }
    if (shuffle_keys.empty()) {
      SS_ASSIGN_OR_RETURN(
          ExprPtr zero,
          Lit(0)->Resolve(*node.children()[0]->schema()));
      shuffle_keys.push_back(std::move(zero));
    }
    auto shuffle = std::make_shared<ShuffleExec>(
        NextId(), child, std::move(shuffle_keys), num_partitions_);
    has_stateful_ = true;
    auto agg = std::make_shared<StatefulAggExec>(
        NextId(), PhysOpPtr(shuffle), node.schema(), node.group_exprs(),
        node.aggregates());
    top_level_key_columns_ = agg->num_output_key_columns();
    return PhysOpPtr(agg);
  }

  Result<PhysOpPtr> BuildJoin(const JoinNode& node) {
    const PlanPtr& left = node.children()[0];
    const PlanPtr& right = node.children()[1];
    const bool left_stream = left->IsStreaming();
    const bool right_stream = right->IsStreaming();

    // Which right-side columns survive into the output (the analyzer drops
    // right key columns that mirror a same-named left key), plus the
    // (left column, right column) pairs for USING-key coalescing when the
    // preserved side's key column was the dropped one.
    std::set<int> dropped_right;
    std::vector<std::pair<int, int>> left_from_right;
    for (size_t i = 0; i < node.left_keys().size(); ++i) {
      if (node.left_keys()[i]->kind() == Expr::Kind::kColumnRef &&
          node.right_keys()[i]->kind() == Expr::Kind::kColumnRef) {
        const auto& lref =
            static_cast<const ColumnRefExpr&>(*node.left_keys()[i]);
        const auto& rref =
            static_cast<const ColumnRefExpr&>(*node.right_keys()[i]);
        if (lref.name() == rref.name()) {
          dropped_right.insert(rref.index());
          left_from_right.emplace_back(lref.index(), rref.index());
        }
      }
    }
    std::vector<int> right_output_indices;
    for (int i = 0; i < right->schema()->num_fields(); ++i) {
      if (!dropped_right.count(i)) right_output_indices.push_back(i);
    }
    std::vector<int> all_left_indices;
    for (int i = 0; i < left->schema()->num_fields(); ++i) {
      all_left_indices.push_back(i);
    }

    if (left_stream && right_stream) {
      SS_ASSIGN_OR_RETURN(PhysOpPtr lchild, Build(left));
      SS_ASSIGN_OR_RETURN(PhysOpPtr rchild, Build(right));
      auto lshuffle = std::make_shared<ShuffleExec>(
          NextId(), lchild, node.left_keys(), num_partitions_);
      auto rshuffle = std::make_shared<ShuffleExec>(
          NextId(), rchild, node.right_keys(), num_partitions_);
      // Event-time columns for state eviction, from each side's watermark.
      auto time_index = [](const PlanPtr& side) {
        auto wm = CollectWatermarkColumns(side);
        if (wm.empty()) return -1;
        return side->schema()->IndexOf(wm.begin()->first);
      };
      has_stateful_ = true;
      return PhysOpPtr(std::make_shared<StreamStreamJoinExec>(
          NextId(), PhysOpPtr(lshuffle), PhysOpPtr(rshuffle), node.schema(),
          node.left_keys(), node.right_keys(), node.join_type(),
          right_output_indices, time_index(left), time_index(right),
          left_from_right));
    }

    // Stream-static (or static-static in batch runs): materialize the
    // static side once, broadcast-hash-join against the (possibly
    // streaming) other side.
    const bool stream_is_left = left_stream || !right_stream;
    const PlanPtr& stream_side = stream_is_left ? left : right;
    const PlanPtr& static_side = stream_is_left ? right : left;
    SS_ASSIGN_OR_RETURN(std::vector<Row> static_rows,
                        RunStaticPlan(static_side, num_partitions_));
    SS_ASSIGN_OR_RETURN(PhysOpPtr stream_child, Build(stream_side));
    bool preserve_stream =
        (stream_is_left && node.join_type() == JoinType::kLeftOuter) ||
        (!stream_is_left && node.join_type() == JoinType::kRightOuter);
    std::vector<int> stream_output_indices;
    std::vector<int> static_output_indices;
    if (stream_is_left) {
      stream_output_indices = all_left_indices;
      static_output_indices = right_output_indices;
    } else {
      stream_output_indices = right_output_indices;
      static_output_indices = all_left_indices;
    }
    // Coalescing applies when the stream is the right side: its dropped key
    // columns come back from the static (left) column positions.
    std::vector<std::pair<int, int>> static_from_stream;
    if (!stream_is_left) static_from_stream = left_from_right;
    return PhysOpPtr(std::make_shared<StreamStaticJoinExec>(
        NextId(), stream_child, node.schema(),
        stream_is_left ? node.left_keys() : node.right_keys(),
        static_side->schema(), std::move(static_rows),
        stream_is_left ? node.right_keys() : node.left_keys(),
        std::move(stream_output_indices), std::move(static_output_indices),
        /*stream_first=*/stream_is_left, preserve_stream,
        std::move(static_from_stream)));
  }

  int num_partitions_;
  IncrementalizeOptions options_;
  int next_id_ = 0;
  std::vector<SourcePtr> sources_;
  bool has_stateful_ = false;
  int top_level_key_columns_ = 0;
};

}  // namespace

Result<PhysicalPlan> Incrementalize(const PlanPtr& analyzed,
                                    int num_partitions,
                                    const IncrementalizeOptions& options) {
  if (!analyzed->analyzed()) {
    return Status::InvalidArgument("plan must be analyzed first");
  }
  Builder builder(num_partitions, options);
  SS_ASSIGN_OR_RETURN(PhysOpPtr root, builder.Build(analyzed));
  if (options.fuse_pipelines) {
    // Fused nodes take fresh op_ids above the existing range, so original
    // operators keep theirs — checkpoint state directories (op<N>/p<M>),
    // watermark maps, and per-operator metrics stay stable under fusion.
    root = FusePipelines(root, builder.mutable_next_id(),
                         options.selection_vectors);
  }
  PhysicalPlan plan;
  plan.root = std::move(root);
  plan.sources = builder.sources();
  plan.has_stateful = builder.has_stateful();
  plan.num_key_columns = builder.top_level_key_columns();
  return plan;
}

Result<std::vector<Row>> RunStaticPlan(const PlanPtr& analyzed,
                                       int num_partitions) {
  if (analyzed->IsStreaming()) {
    return Status::InvalidArgument("RunStaticPlan needs a static plan");
  }
  SS_ASSIGN_OR_RETURN(PhysicalPlan plan,
                      Incrementalize(analyzed, num_partitions));
  InlineScheduler scheduler;
  StateManager state("", 0, ShardedStateStore::Options());
  SystemClock clock;
  ExecContext ctx;
  ctx.epoch = 1;
  ctx.mode = OutputMode::kAppend;
  ctx.is_batch = true;
  ctx.scheduler = &scheduler;
  ctx.state = &state;
  ctx.clock = &clock;
  SS_ASSIGN_OR_RETURN(std::vector<RecordBatchPtr> batches,
                      plan.root->Execute(&ctx));
  std::vector<Row> rows;
  for (const RecordBatchPtr& b : batches) {
    auto brows = b->ToRows();
    rows.insert(rows.end(), brows.begin(), brows.end());
  }
  return rows;
}

}  // namespace sstreaming

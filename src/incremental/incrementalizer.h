#ifndef SSTREAMING_INCREMENTAL_INCREMENTALIZER_H_
#define SSTREAMING_INCREMENTAL_INCREMENTALIZER_H_

#include <vector>

#include "logical/plan.h"
#include "physical/phys_op.h"

namespace sstreaming {

/// The incrementalized form of a query (paper §5.2): a DAG of physical
/// operators that updates the result in time proportional to new data, plus
/// the metadata the engine needs to run it.
struct PhysicalPlan {
  PhysOpPtr root;
  /// Streaming sources in the plan (the engine plans offsets for each).
  std::vector<SourcePtr> sources;
  /// Leading output columns identifying a result row for update-mode
  /// upserts (the aggregation's group key); 0 when the query has no
  /// aggregation at the top.
  int num_key_columns = 0;
  /// True if any operator keeps state (drives state checkpointing).
  bool has_stateful = false;
};

/// Physical-planning knobs (docs/VECTORIZED_EXEC.md). Both default on; the
/// differential tests run the cross-product to prove output equivalence.
struct IncrementalizeOptions {
  /// Collapse chains of stateless operators into FusedPipelineExec nodes.
  bool fuse_pipelines = true;
  /// Filters emit zero-copy selection views instead of gathering survivors.
  bool selection_vectors = true;
};

/// Maps an *analyzed* logical plan to physical operators. `num_partitions`
/// is the shuffle fan-out for stateful stages. Works for both streaming
/// plans (incremental operators over the state store) and static plans (the
/// same operators in one-shot batch mode — the paper's batch/stream
/// unification, §7.3).
///
/// Static subtrees under a join are evaluated eagerly here (the broadcast
/// side of a stream-static join is materialized once per query start).
Result<PhysicalPlan> Incrementalize(const PlanPtr& analyzed,
                                    int num_partitions,
                                    const IncrementalizeOptions& options =
                                        IncrementalizeOptions());

/// Fully evaluates a static (non-streaming) analyzed plan to rows by running
/// its physical form once in batch mode.
Result<std::vector<Row>> RunStaticPlan(const PlanPtr& analyzed,
                                       int num_partitions);

}  // namespace sstreaming

#endif  // SSTREAMING_INCREMENTAL_INCREMENTALIZER_H_

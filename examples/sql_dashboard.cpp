// SQL end to end — the paper's other front end (§4.1: "users can write SQL
// directly; all APIs produce a relational query plan"), combined with the
// §8.4 monitoring-pipeline shape: one streaming SQL query maintains a
// dashboard table; the same SqlContext serves ad-hoc batch SQL over static
// data; and a QueryManager runs it all with a structured metrics log.

#include <cstdio>

#include "common/logging.h"
#include "connectors/memory.h"
#include "exec/batch_executor.h"
#include "exec/query_manager.h"
#include "sql/parser.h"
#include "storage/fs.h"

using namespace sstreaming;  // NOLINT — example brevity

namespace {
constexpr int64_t kSec = 1000000;
}

int main() {
  GlobalLogLevel() = LogLevel::kInfo;

  // Service request logs stream in.
  SchemaPtr schema = Schema::Make({{"service", TypeId::kString, false},
                                   {"latency_ms", TypeId::kInt64, false},
                                   {"ts", TypeId::kTimestamp, false}});
  auto requests = std::make_shared<MemoryStream>("requests", schema, 2);

  SqlContext ctx;
  ctx.RegisterTable("requests", DataFrame::ReadStream(requests));

  // The dashboard query, in SQL, over 30-second event-time windows.
  auto dashboard_df = ctx.Sql(
      "SELECT window(ts, '30 seconds') AS w, service, "
      "       COUNT(*) AS requests, AVG(latency_ms) AS avg_latency, "
      "       MAX(latency_ms) AS worst "
      "FROM requests "
      "GROUP BY window(ts, '30 seconds'), service");
  SS_CHECK(dashboard_df.ok()) << dashboard_df.status().ToString();

  auto dashboard = std::make_shared<MemorySink>();
  QueryManager manager;
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  SS_CHECK_OK(manager.StartQuerySynchronous("dashboard", *dashboard_df,
                                            dashboard, opts));

  // Traffic arrives...
  auto req = [&](const char* svc, int64_t ms, int64_t sec) {
    SS_CHECK_OK(requests->AddData(
        {{Value::Str(svc), Value::Int64(ms), Value::Timestamp(sec * kSec)}}));
  };
  for (int64_t s = 0; s < 60; s += 3) {
    req("api", 20 + s % 9, s);
    req("auth", 8 + s % 5, s);
    req("api", 180 + s % 30, s + 1);  // slow tail
  }
  SS_CHECK_OK(manager.ProcessAllAvailable());

  // ...and the dashboard table reflects a consistent snapshot.
  std::printf("--- dashboard (streaming SQL result) ---\n");
  std::printf("%10s %8s %10s %12s %8s\n", "window", "service", "requests",
              "avg_latency", "worst");
  for (const Row& row : dashboard->SortedSnapshot()) {
    std::printf("%8llds %8s %10s %11.1f %8s\n",
                static_cast<long long>(row[0].int64_value() / kSec),
                row[2].ToString().c_str(), row[3].ToString().c_str(),
                row[4].float64_value(), row[5].ToString().c_str());
  }

  // Structured metrics event log (§7.4).
  auto dir = MakeTempDir("sql_dashboard").TakeValue();
  MetricsEventLog metrics(dir + "/metrics.jsonl");
  SS_CHECK_OK(metrics.Report("dashboard", *manager.Get("dashboard")));
  auto events = metrics.ReadAll().TakeValue();
  std::printf("\nmetrics event log (%zu epoch records), last: %s\n",
              events.size(), events.back().Dump().c_str());

  // Ad-hoc batch SQL with the same context style (§7.3 unification).
  SqlContext batch_ctx;
  batch_ctx.RegisterTable(
      "slo", DataFrame::FromRows(
                 Schema::Make({{"service", TypeId::kString, false},
                               {"slo_ms", TypeId::kInt64, false}}),
                 {{Value::Str("api"), Value::Int64(100)},
                  {Value::Str("auth"), Value::Int64(50)}})
                 .TakeValue());
  auto slo = RunBatchSorted(
      *batch_ctx.Sql("SELECT service, slo_ms FROM slo ORDER BY service"));
  std::printf("\nstatic SLO table via batch SQL:\n");
  for (const Row& row : *slo) {
    std::printf("  %s: %sms\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }
  RemoveDirRecursive(dir).ok();
  return 0;
}

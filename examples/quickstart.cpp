// Quickstart — the paper's §4.1 running example, end to end:
//
//   "a batch job that counts clicks by country of origin ... changing this
//    job to use Structured Streaming only requires modifying the input and
//    output sources, not the transformation in the middle."
//
// JSON files are continually "uploaded" to an input directory; the query
// continually maintains /counts as a complete-mode file sink. The same
// transformation is also run as a one-shot batch job to show the unified
// API (§7.3).

#include <cstdio>

#include "common/logging.h"
#include "connectors/file_connectors.h"
#include "exec/batch_executor.h"
#include "exec/streaming_query.h"
#include "storage/fs.h"

using namespace sstreaming;  // NOLINT — example brevity

int main() {
  GlobalLogLevel() = LogLevel::kInfo;
  std::string dir = MakeTempDir("quickstart").TakeValue();
  std::string in_dir = dir + "/in";
  std::string out_dir = dir + "/counts";
  SS_CHECK_OK(EnsureDir(in_dir));

  SchemaPtr schema = Schema::Make({{"country", TypeId::kString, false},
                                   {"user", TypeId::kString, false}});

  // --- The transformation in the middle (identical for batch & stream) ---
  auto counts = [](DataFrame data) {
    return data.GroupBy({"country"}).Count();
  };

  // A first batch of input files.
  SS_CHECK_OK(WriteFileAtomic(in_dir + "/batch-000.jsonl",
                              "{\"country\":\"ca\",\"user\":\"u1\"}\n"
                              "{\"country\":\"us\",\"user\":\"u2\"}\n"
                              "{\"country\":\"ca\",\"user\":\"u3\"}\n"));

  // --- Streaming: data = spark.readStream.format("json").load("/in") ---
  auto source = std::make_shared<JsonFileSource>(in_dir, schema);
  auto sink = std::make_shared<JsonFileSink>(out_dir);
  QueryOptions opts;
  opts.mode = OutputMode::kComplete;  // whole result file per update (§4.1)
  opts.checkpoint_dir = dir + "/checkpoint";
  auto query = StreamingQuery::Start(
      counts(DataFrame::ReadStream(source)), sink, opts);
  SS_CHECK(query.ok()) << query.status().ToString();

  SS_CHECK_OK((*query)->ProcessAllAvailable());
  SchemaPtr out_schema = Schema::Make({{"country", TypeId::kString, false},
                                       {"count", TypeId::kInt64, false}});
  std::printf("after first file set (epoch %lld):\n",
              static_cast<long long>((*query)->last_epoch()));
  auto result1 = sink->ReadEpoch(*out_schema, (*query)->last_epoch());
  SS_CHECK(result1.ok());
  for (const Row& row : *result1) {
    std::printf("  %s: %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // More files arrive; the result table is updated incrementally.
  SS_CHECK_OK(WriteFileAtomic(in_dir + "/batch-001.jsonl",
                              "{\"country\":\"ca\",\"user\":\"u4\"}\n"
                              "{\"country\":\"de\",\"user\":\"u5\"}\n"));
  SS_CHECK_OK((*query)->ProcessAllAvailable());
  std::printf("after second file set (epoch %lld):\n",
              static_cast<long long>((*query)->last_epoch()));
  auto result2 = sink->ReadEpoch(*out_schema, (*query)->last_epoch());
  SS_CHECK(result2.ok());
  for (const Row& row : *result2) {
    std::printf("  %s: %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // --- Batch: the same `counts` transformation over static data (§7.3) ---
  auto static_df = DataFrame::FromRows(
                       schema, {{Value::Str("jp"), Value::Str("u6")},
                                {Value::Str("jp"), Value::Str("u7")}})
                       .TakeValue();
  auto batch_result = RunBatchSorted(counts(static_df));
  SS_CHECK(batch_result.ok());
  std::printf("same code as a batch job:\n");
  for (const Row& row : *batch_result) {
    std::printf("  %s: %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  RemoveDirRecursive(dir).ok();
  return 0;
}

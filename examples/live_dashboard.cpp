// Live dashboard — the observability layer end to end (paper §7.4):
//
// A rate source feeds a windowed count; the query runs on a background
// trigger loop while the embedded HTTP server exposes everything a
// dashboard or `curl` needs:
//
//   curl http://127.0.0.1:<port>/metrics                # Prometheus scrape
//   curl http://127.0.0.1:<port>/queries                # queries + progress
//   curl http://127.0.0.1:<port>/queries/dashboard/plan # live EXPLAIN ANALYZE
//   curl http://127.0.0.1:<port>/queries/dashboard/trace > trace.json
//                                                       # chrome://tracing
//
// Flags: --port <n> (default 0 = ephemeral), --serve-seconds <n> (default
// 10; 0 = serve until killed), --checkpoint <dir> (default none = ephemeral;
// with a dir the run is recoverable and /queries/dashboard/history serves
// the durable event log). tools/http_smoke.sh drives this binary in CI.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "connectors/memory.h"
#include "connectors/rate_source.h"
#include "exec/query_manager.h"

using namespace sstreaming;  // NOLINT — example brevity

int main(int argc, char** argv) {
  int port = 0;
  int serve_seconds = 10;
  const char* checkpoint_dir = "";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--serve-seconds") == 0 && i + 1 < argc) {
      serve_seconds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port <n>] [--serve-seconds <n>]"
                   " [--checkpoint <dir>]\n",
                   argv[0]);
      return 2;
    }
  }
  GlobalLogLevel() = LogLevel::kWarn;

  // 5000 rows/s across 2 partitions, counted in 1-second tumbling windows.
  auto source = std::make_shared<RateSource>("rate", 5000, 2,
                                             SystemClock::Default());
  auto sink = std::make_shared<MemorySink>();
  DataFrame df =
      DataFrame::ReadStream(source)
          .WithWatermark("timestamp", 2 * 1000000)
          .GroupBy({As(TumblingWindow(Col("timestamp"), 1000000), "window")})
          .Count();

  QueryManager manager;
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  opts.trigger = Trigger::ProcessingTime(200 * 1000);  // 200ms epochs
  opts.checkpoint_dir = checkpoint_dir;
  SS_CHECK_OK(manager.StartQuery("dashboard", df, sink, opts));
  SS_CHECK_OK(manager.ServeHttp(port));
  std::printf("serving http://127.0.0.1:%d\n", manager.http_port());
  std::printf("  /metrics /healthz /queries /queries/dashboard{,/plan,/trace}\n");
  std::fflush(stdout);

  int elapsed = 0;
  while (serve_seconds == 0 || elapsed < serve_seconds) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    ++elapsed;
    for (const auto& [name, progress] : manager.LatestProgress()) {
      std::printf("[%3ds] %s: epoch=%lld rows=%lld state_bytes=%lld\n",
                  elapsed, name.c_str(),
                  static_cast<long long>(progress.epoch),
                  static_cast<long long>(progress.rows_read),
                  static_cast<long long>(progress.state_bytes));
    }
    std::fflush(stdout);
  }

  Status error = manager.AnyError();
  manager.StopHttp();
  manager.StopAll();
  SS_CHECK(error.ok()) << error.ToString();
  std::printf("done\n");
  return 0;
}

// Information-security platform (paper §8.1): the DNS-exfiltration detector.
//
//   "One simplified query to detect such an attack essentially computes the
//    aggregate size of the DNS requests sent by every host over a time
//    interval. If the aggregate is greater than a given threshold, the
//    query flags the corresponding host as potentially being compromised."
//
// The example also demonstrates the platform's other pillar: joining the
// streaming DNS log against the organization's static device inventory so
// alerts name a machine and owner, not just an IP, and querying a
// consistent snapshot of the alert table interactively while the stream
// runs (paper §1: "interactive queries on consistent snapshots").

#include <cstdio>

#include "common/logging.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"

using namespace sstreaming;  // NOLINT — example brevity

namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr DnsLogSchema() {
  return Schema::Make({{"src_ip", TypeId::kString, false},
                       {"query", TypeId::kString, false},
                       {"bytes", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Dns(const char* ip, const char* q, int64_t bytes, int64_t sec) {
  return {Value::Str(ip), Value::Str(q), Value::Int64(bytes),
          Value::Timestamp(sec * kSec)};
}

}  // namespace

int main() {
  GlobalLogLevel() = LogLevel::kInfo;

  // IDS output lands on the message-bus analogue of S3/Kafka.
  auto dns_log = std::make_shared<MemoryStream>("dns", DnsLogSchema(), 4);

  // Static device inventory (the "organization's internal database").
  DataFrame devices =
      DataFrame::FromRows(
          Schema::Make({{"src_ip", TypeId::kString, false},
                        {"hostname", TypeId::kString, false},
                        {"owner", TypeId::kString, false}}),
          {{Value::Str("10.0.0.1"), Value::Str("laptop-ann"),
            Value::Str("ann")},
           {Value::Str("10.0.0.2"), Value::Str("build-server"),
            Value::Str("infra")},
           {Value::Str("10.0.0.3"), Value::Str("laptop-bob"),
            Value::Str("bob")}})
          .TakeValue();

  // The alert query: per-host DNS bytes over 60s event-time windows,
  // enriched with the device inventory, thresholded. The analyst "develops
  // the query offline and pushes it to the alerting cluster" — here it is
  // just a DataFrame.
  constexpr int64_t kThresholdBytes = 4096;
  DataFrame alerts =
      DataFrame::ReadStream(dns_log)
          .WithWatermark("time", 30 * kSec)
          .GroupBy({As(TumblingWindow(Col("time"), 60 * kSec), "window"),
                    NamedExpr{Col("src_ip"), "src_ip"}})
          .Agg({SumOf(Col("bytes"), "dns_bytes"), CountAll("requests")})
          .Where(Gt(Col("dns_bytes"), Lit(kThresholdBytes)))
          .Join(devices, {"src_ip"}, JoinType::kLeftOuter);

  auto alert_table = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 4;
  auto query = StreamingQuery::Start(alerts, alert_table, opts);
  SS_CHECK(query.ok()) << query.status().ToString();

  // Normal traffic plus a host exfiltrating data in DNS queries.
  std::vector<Row> traffic;
  for (int i = 0; i < 20; ++i) {
    traffic.push_back(Dns("10.0.0.1", "example.com", 80, 5 + i));
    traffic.push_back(Dns("10.0.0.3", "updates.vendor.com", 95, 5 + i));
    // Malware on 10.0.0.2 piggybacks stolen data into long subdomains.
    traffic.push_back(
        Dns("10.0.0.2", "aGVsbG8gd29ybGQ.attacker.example", 700, 5 + i));
  }
  SS_CHECK_OK(dns_log->AddData(traffic));
  SS_CHECK_OK((*query)->ProcessAllAvailable());

  // An analyst queries the alert table interactively: this snapshot is
  // prefix-consistent — it reflects exactly the committed epochs.
  std::printf("--- alerts (interactive snapshot) ---\n");
  for (const Row& row : alert_table->SortedSnapshot()) {
    // (window_start, window_end, src_ip, dns_bytes, requests, host, owner)
    std::printf(
        "window [%llds..%llds) host=%s bytes=%s requests=%s device=%s "
        "owner=%s\n",
        static_cast<long long>(row[0].int64_value() / kSec),
        static_cast<long long>(row[1].int64_value() / kSec),
        row[2].ToString().c_str(), row[3].ToString().c_str(),
        row[4].ToString().c_str(), row[5].ToString().c_str(),
        row[6].ToString().c_str());
  }
  const auto& progress = (*query)->recent_progress().back();
  std::printf("\nquery progress: epoch=%lld rows_read=%lld state=%lld "
              "entries watermark=%llds\n",
              static_cast<long long>(progress.epoch),
              static_cast<long long>(progress.rows_read),
              static_cast<long long>(progress.state_entries),
              static_cast<long long>(progress.watermark_micros / kSec));
  return 0;
}

// Custom session windows with mapGroupsWithState — the paper's Figure 3:
//
//   "an update function that simply tracks the number of events for each
//    key as its state, returns that as its result, and times out keys
//    after 30 min ... a new table `lens` that contains the session
//    lengths."
//
// Sessions are defined as a series of events for the same user with gaps
// under 30 minutes. When a session times out, its final event count is
// emitted; the aggregate of the result table then gives the average events
// per session — all with exactly-once state management handled by the
// engine (§4.3.2: "all of the state management ... is transparent to user
// code").

#include <cstdio>

#include "common/clock.h"
#include "common/logging.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"

using namespace sstreaming;  // NOLINT — example brevity

namespace {

constexpr int64_t kMin = 60 * 1000000LL;

SchemaPtr EventSchema() {
  return Schema::Make({{"user_id", TypeId::kString, false},
                       {"page", TypeId::kString, false},
                       {"time", TypeId::kTimestamp, false}});
}

}  // namespace

int main() {
  GlobalLogLevel() = LogLevel::kInfo;
  ManualClock clock(0);  // processing time under test control

  auto events = std::make_shared<MemoryStream>("events", EventSchema(), 2);

  // Figure 3's updateFunc, in this API's shape: state = [event count].
  GroupUpdateFn update_func =
      [](const Row& key, const std::vector<Row>& new_values,
         GroupState* state) -> Result<std::vector<Row>> {
    int64_t total = state->exists() ? state->get()[0].int64_value() : 0;
    total += static_cast<int64_t>(new_values.size());
    if (state->HasTimedOut()) {
      Row session = {key[0], Value::Int64(total)};
      state->remove();
      return std::vector<Row>{session};  // the closed session's length
    }
    state->update({Value::Int64(total)});
    state->SetTimeoutDuration(30 * kMin);
    return std::vector<Row>{};
  };

  SchemaPtr lens_schema = Schema::Make(
      {{"user_id", TypeId::kString, false}, {"events", TypeId::kInt64,
                                             false}});
  DataFrame lens = DataFrame::ReadStream(events)
                       .GroupByKey({As(Col("user_id"), "user_id")})
                       .FlatMapGroupsWithState(
                           update_func, lens_schema,
                           GroupStateTimeout::kProcessingTime);

  auto sessions = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  opts.num_partitions = 2;
  opts.clock = &clock;
  auto query = StreamingQuery::Start(lens, sessions, opts);
  SS_CHECK(query.ok()) << query.status().ToString();

  auto click = [&](const char* user, const char* page) {
    SS_CHECK_OK(events->AddData(
        {{Value::Str(user), Value::Str(page),
          Value::Timestamp(clock.NowMicros())}}));
  };

  // Two users browse; ann leaves, bob keeps going.
  click("ann", "/home");
  click("bob", "/home");
  click("ann", "/docs");
  SS_CHECK_OK((*query)->ProcessAllAvailable());

  clock.AdvanceMicros(20 * kMin);
  click("bob", "/pricing");
  SS_CHECK_OK((*query)->ProcessAllAvailable());

  clock.AdvanceMicros(15 * kMin);  // ann idle 35 min -> session closes
  click("carol", "/home");
  SS_CHECK_OK((*query)->ProcessAllAvailable());

  clock.AdvanceMicros(35 * kMin);  // everyone idle -> all sessions close
  click("dave", "/home");
  SS_CHECK_OK((*query)->ProcessAllAvailable());

  std::printf("--- closed sessions (user, events) ---\n");
  int64_t total_sessions = 0;
  int64_t total_events = 0;
  for (const Row& row : sessions->SortedSnapshot()) {
    std::printf("  %-6s %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
    ++total_sessions;
    total_events += row[1].int64_value();
  }
  std::printf("average events per session: %.2f\n",
              static_cast<double>(total_events) /
                  static_cast<double>(total_sessions));
  return 0;
}
